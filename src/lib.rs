//! # rescnn — Characterizing and Taming Resolution in Convolutional Neural Networks
//!
//! Umbrella crate re-exporting the full reproduction of Yan, Luo & Ceze
//! (IISWC 2021): a dynamic-resolution inference pipeline built on top of a
//! tensor library, CNN model zoo, progressive image codec, synthetic dataset
//! generators, a hardware cost model with kernel autotuning, and a calibrated
//! accuracy oracle.
//!
//! # Quickstart
//!
//! ```
//! use rescnn::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Generate a tiny synthetic ImageNet-like dataset.
//! let dataset = DatasetSpec::imagenet_like().with_len(8).build(42);
//! assert_eq!(dataset.len(), 8);
//! # Ok(())
//! # }
//! ```

pub use rescnn_core as core;
pub use rescnn_data as data;
pub use rescnn_hwsim as hwsim;
pub use rescnn_imaging as imaging;
pub use rescnn_models as models;
pub use rescnn_oracle as oracle;
pub use rescnn_projpeg as projpeg;
pub use rescnn_tensor as tensor;

/// Convenience re-exports of the most commonly used types across the workspace.
pub mod prelude {
    pub use rescnn_core::prelude::*;
    pub use rescnn_data::prelude::*;
    pub use rescnn_hwsim::prelude::*;
    pub use rescnn_imaging::prelude::*;
    pub use rescnn_models::prelude::*;
    pub use rescnn_oracle::prelude::*;
    pub use rescnn_projpeg::prelude::*;
    pub use rescnn_tensor::prelude::*;
}
