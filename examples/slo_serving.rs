//! SLO-aware serving: deadlines, degrade-before-shed admission, and
//! per-request fault isolation.
//!
//! A burst of requests with per-request deadlines is admitted on a virtual
//! clock fed by the calibrated cost model. Requests whose deadline the planned
//! resolution cannot meet are degraded down the resolution ladder (bounded by
//! an SSIM floor) before any request is shed, and a deliberately corrupted
//! stream faults alone while every healthy request completes.
//!
//! Run with: `cargo run --release --example slo_serving`

use rescnn::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset_kind = DatasetKind::CarsLike;
    let backbone = ModelKind::ResNet18;
    let resolutions = vec![112, 168, 224];

    println!("Training the scale model...");
    let train = DatasetSpec::for_kind(dataset_kind).with_len(60).with_max_dimension(96).build(1);
    let trainer = ScaleModelTrainer::new(
        ScaleModelConfig { resolutions: resolutions.clone(), ..Default::default() },
        backbone,
        dataset_kind,
    );
    let scale_model = trainer.train(&train, 3)?;
    let config = PipelineConfig::new(backbone, dataset_kind)
        .with_crop(CropRatio::new(0.56)?)
        .with_resolutions(resolutions);
    let pipeline = DynamicResolutionPipeline::new(config, scale_model, AccuracyOracle::new(77))?;

    // Service-time estimates per ladder rung from the analytic cost model.
    let latency = ResolutionLatencyModel::analytic(&pipeline)?;
    let top_ms = latency.estimate_ms(224).max(1.0);
    println!("Estimated service times:");
    for &res in &[112usize, 168, 224] {
        println!("  {res:>3} px  {:.1} ms", latency.estimate_ms(res));
    }

    // A burst of simultaneous arrivals with deadlines 2.5 estimated services
    // out, plus one corrupted stream: enough room for the first requests at
    // full resolution, a degradation window after that, then shedding.
    let queue = DatasetSpec::for_kind(dataset_kind).with_len(12).with_max_dimension(96).build(7);
    let quality = pipeline.config().encode_quality;
    let options = SloOptions::default().with_latency_model(latency).with_ssim_floor(0.35);
    let mut scheduler = SloScheduler::new(&pipeline, options);
    for (i, sample) in queue.iter().enumerate() {
        let arrival = i as f64 * 0.01;
        let mut request = SloRequest::new(sample, arrival, arrival + 2.5 * top_ms);
        if i == 3 {
            // Bit-rot in storage: this request must fail alone.
            request =
                request.with_storage(sample.encode_progressive(quality)?.with_truncated_scan(0, 2));
        }
        scheduler.submit(request);
    }

    let report = scheduler.run()?;
    println!("\nPer-request outcomes:");
    for (i, outcome) in report.outcomes.iter().enumerate() {
        match outcome {
            SloOutcome::Completed(c) if c.served_resolution < c.planned_resolution => println!(
                "  req {i:>2}  degraded {} -> {} px, finished {:.1} ms",
                c.planned_resolution, c.served_resolution, c.virtual_finish_ms
            ),
            SloOutcome::Completed(c) => println!(
                "  req {i:>2}  completed at {} px, finished {:.1} ms",
                c.served_resolution, c.virtual_finish_ms
            ),
            SloOutcome::Rejected(Rejected::Overloaded) => println!("  req {i:>2}  shed (overload)"),
            SloOutcome::Rejected(Rejected::DeadlineExceeded) => {
                println!("  req {i:>2}  expired in queue")
            }
            SloOutcome::Rejected(Rejected::CircuitOpen) => {
                println!("  req {i:>2}  shed (source breaker open)")
            }
            SloOutcome::Failed(err) => println!("  req {i:>2}  faulted: {err}"),
        }
    }
    println!(
        "\ngoodput {:.2}  degraded {}  shed {}  faulted {}  p99 {:.1} ms  mean SSIM {:.3}",
        report.goodput,
        report.degraded,
        report.shed,
        report.faulted,
        report.p99_latency_ms,
        report.mean_delivered_ssim
    );
    Ok(())
}
