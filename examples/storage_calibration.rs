//! Storage calibration (§V): find, per resolution, the minimal SSIM threshold — and hence
//! the minimal number of progressive scans — that keeps accuracy within 0.05%, then report
//! the read-bandwidth savings (the mechanism behind Figure 6 and Tables III/IV).
//!
//! Run with: `cargo run --release --example storage_calibration`

use rescnn::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset_kind = DatasetKind::CarsLike;
    let model = ModelKind::ResNet18;
    let crop = CropRatio::new(0.75)?;
    let resolutions = [112usize, 224, 336, 448];

    println!("Computing calibration curves on a small Cars-like calibration split...");
    let calibration_set =
        DatasetSpec::for_kind(dataset_kind).with_len(24).with_max_dimension(224).build(3);
    let curves = CalibrationCurves::compute(&calibration_set, model, crop, &resolutions, 90)?;
    let oracle = AccuracyOracle::new(0);

    let calibrator = StorageCalibrator::default();
    let policy = calibrator.calibrate(&curves, &oracle);

    println!(
        "\n{:>10} {:>16} {:>14} {:>14} {:>14}",
        "resolution", "SSIM threshold", "full acc", "calib acc", "read size"
    );
    for (idx, &res) in resolutions.iter().enumerate() {
        let threshold = policy.threshold_for(res).expect("calibrated resolution");
        let full = curves.full_read_accuracy(&oracle, idx);
        let (calibrated, read) = curves.accuracy_at_threshold(&oracle, idx, threshold);
        println!(
            "{:>10} {:>16.4} {:>13.1}% {:>13.1}% {:>13.1}%",
            res,
            threshold,
            full * 100.0,
            calibrated * 100.0,
            read * 100.0
        );
    }

    println!(
        "\nHigher resolutions tolerate lower fidelity, so they often read *less* data than\n\
         low resolutions while keeping accuracy — the counter-intuitive finding of §V."
    );
    Ok(())
}
