//! Resilient request lifecycle: retry-with-demotion and per-source circuit
//! breaking, end to end.
//!
//! Act 1 injects transient execute-stage panics and shows the same queue
//! served twice: without a retry policy the hit requests are terminal
//! failures; with `RetryPolicy` they are re-admitted with virtual-clock
//! backoff, demoted one rung down the ladder, and recovered as completions.
//!
//! Act 2 gives one client (`SourceId`) persistently corrupt streams: its
//! repeated decode failures trip a per-source circuit breaker, later requests
//! are shed at the gate without spending decode/plan compute, and after the
//! cooldown a healthy probe closes the circuit again.
//!
//! Run with: `cargo run --release --example resilience`

use rescnn::prelude::*;

fn outcome_line(i: usize, outcome: &SloOutcome) -> String {
    match outcome {
        SloOutcome::Completed(c) if c.retries > 0 => format!(
            "  req {i:>2}  recovered on retry {} at {} px (planned {} px), finished {:.1} ms",
            c.retries, c.served_resolution, c.planned_resolution, c.virtual_finish_ms
        ),
        SloOutcome::Completed(c) if c.served_resolution < c.planned_resolution => format!(
            "  req {i:>2}  degraded {} -> {} px, finished {:.1} ms",
            c.planned_resolution, c.served_resolution, c.virtual_finish_ms
        ),
        SloOutcome::Completed(c) => format!(
            "  req {i:>2}  completed at {} px, finished {:.1} ms",
            c.served_resolution, c.virtual_finish_ms
        ),
        SloOutcome::Rejected(Rejected::CircuitOpen) => {
            format!("  req {i:>2}  shed at the gate (source breaker open)")
        }
        SloOutcome::Rejected(rejection) => format!("  req {i:>2}  rejected: {rejection:?}"),
        SloOutcome::Failed(err) => format!("  req {i:>2}  faulted: {err}"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset_kind = DatasetKind::CarsLike;
    let backbone = ModelKind::ResNet18;
    let resolutions = vec![112usize, 224];

    println!("Training the scale model...");
    let train = DatasetSpec::for_kind(dataset_kind).with_len(60).with_max_dimension(96).build(1);
    let trainer = ScaleModelTrainer::new(
        ScaleModelConfig { resolutions: resolutions.clone(), ..Default::default() },
        backbone,
        dataset_kind,
    );
    let scale_model = trainer.train(&train, 3)?;
    let config = PipelineConfig::new(backbone, dataset_kind)
        .with_crop(CropRatio::new(0.56)?)
        .with_resolutions(resolutions);
    let pipeline = DynamicResolutionPipeline::new(config, scale_model, AccuracyOracle::new(77))?;
    let latency = ResolutionLatencyModel::analytic(&pipeline)?;
    let top_ms = latency.estimate_ms(224).max(1.0);

    // ---- Act 1: retry-with-demotion converts transient failures ------------
    println!("\n== Act 1: transient panics, with and without retry ==");
    let queue = DatasetSpec::for_kind(dataset_kind).with_len(6).with_max_dimension(96).build(7);
    let base = SloOptions::default()
        .with_latency_model(latency.clone())
        // Requests 1 and 4 panic mid-execute on their first attempt.
        .with_chaos_panic_requests(vec![1, 4]);
    for (label, options) in [
        ("without retry", base.clone()),
        ("with retry(2) + demotion", base.clone().with_retry(RetryPolicy::new(2))),
    ] {
        let mut scheduler = SloScheduler::new(&pipeline, options);
        for (i, sample) in queue.iter().enumerate() {
            let arrival = i as f64 * 2.0 * top_ms;
            scheduler.submit(SloRequest::new(sample, arrival, arrival + 30.0 * top_ms));
        }
        let report = scheduler.run()?;
        println!("{label}:");
        for (i, outcome) in report.outcomes.iter().enumerate() {
            println!("{}", outcome_line(i, outcome));
        }
        println!(
            "  -> completed {}  recovered {}  retry attempts {}  faulted {}",
            report.completed, report.recovered, report.retry_attempts, report.faulted
        );
    }

    // ---- Act 2: circuit breaker trips, sheds, probes, recovers -------------
    println!("\n== Act 2: a corrupt client trips its circuit breaker ==");
    let quality = pipeline.config().encode_quality;
    let hot = SourceId(7);
    let cold = SourceId(9);
    // Breaker: 2 consecutive failures trip; the circuit stays open for
    // 10 estimated services, then one probe is admitted half-open.
    let options = SloOptions::default()
        .with_latency_model(latency)
        .with_breaker(CircuitBreakerPolicy::new(2, 10.0 * top_ms));
    let mut scheduler = SloScheduler::new(&pipeline, options);
    let sample = &queue[0];
    // The hot client sends a corrupt stream every estimated service; its
    // 3rd and 4th requests are shed at the gate. At 15 services it has
    // recovered — the probe request is healthy and closes the circuit.
    for k in 0..4 {
        let arrival = k as f64 * top_ms;
        let corrupt = sample.encode_progressive(quality)?.with_truncated_scan(0, 2);
        scheduler.submit(
            SloRequest::new(sample, arrival, arrival + 40.0 * top_ms)
                .with_source(hot)
                .with_storage(corrupt),
        );
    }
    scheduler.submit(
        SloRequest::new(sample, 15.0 * top_ms, 55.0 * top_ms).with_source(hot), // healthy probe
    );
    // A well-behaved client interleaves and is never affected.
    for k in 0..3 {
        let arrival = (k as f64 + 0.5) * top_ms;
        scheduler
            .submit(SloRequest::new(sample, arrival, arrival + 40.0 * top_ms).with_source(cold));
    }
    let report = scheduler.run()?;
    for (i, outcome) in report.outcomes.iter().enumerate() {
        println!("{}", outcome_line(i, outcome));
    }
    println!(
        "  -> breaker trips {}  shed at gate {}  faulted {}  completed {}",
        report.breaker_trips, report.breaker_shed, report.faulted, report.completed
    );
    Ok(())
}
