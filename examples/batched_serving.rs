//! Batched serving of mixed-resolution traffic through the persistent worker pool.
//!
//! A queue of concurrent inference requests is planned (preview + scale model),
//! grouped into resolution buckets, and executed bucket-by-bucket with batch-level
//! data parallelism. The aggregate report is identical to serving the queue one
//! request at a time — batching is purely an execution-efficiency decision — while
//! the per-bucket statistics show where the resolution/cost trade-off puts the
//! serving time.
//!
//! Run with: `cargo run --release --example batched_serving`

use std::time::Instant;

use rescnn::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset_kind = DatasetKind::CarsLike;
    let backbone = ModelKind::ResNet50;
    let resolutions = vec![112, 168, 224, 280, 336, 392, 448];

    println!("Training the scale model...");
    let train = DatasetSpec::for_kind(dataset_kind).with_len(96).with_max_dimension(224).build(0);
    let trainer = ScaleModelTrainer::new(
        ScaleModelConfig { resolutions: resolutions.clone(), ..Default::default() },
        backbone,
        dataset_kind,
    );
    let scale_model = trainer.train(&train, 4)?;

    let config = PipelineConfig::new(backbone, dataset_kind).with_resolutions(resolutions);
    let pipeline = DynamicResolutionPipeline::new(config, scale_model, AccuracyOracle::new(7))?;

    // A burst of concurrent requests, as a serving frontend would queue them.
    let queue = DatasetSpec::for_kind(dataset_kind).with_len(64).with_max_dimension(224).build(99);
    println!("Serving a {}-request mixed-resolution queue...\n", queue.len());

    let sequential_start = Instant::now();
    let sequential = pipeline.evaluate(&queue)?;
    let sequential_seconds = sequential_start.elapsed().as_secs_f64();

    let batched_start = Instant::now();
    let served = pipeline.evaluate_batched(&queue, BatchOptions::default().with_max_batch(16))?;
    let batched_seconds = batched_start.elapsed().as_secs_f64();

    assert_eq!(
        served.report, sequential,
        "batched serving must reproduce the sequential report exactly"
    );
    println!(
        "accuracy {:.1}%  mean cost {:.2} GFLOPs  (identical sequential vs. batched)",
        served.report.accuracy * 100.0,
        served.report.mean_gflops
    );
    println!(
        "wall clock: sequential {:.2} s  |  batched {:.2} s  ({} threads, planning {:.2} s)\n",
        sequential_seconds, batched_seconds, served.threads, served.planning_seconds
    );

    println!(
        "{:>10} {:>9} {:>8} {:>13} {:>14} {:>12}",
        "bucket", "requests", "batches", "outer/inner", "batch latency", "throughput"
    );
    for bucket in &served.buckets {
        println!(
            "{:>7}² {:>9} {:>8} {:>12} {:>11.1} ms {:>8.1} req/s",
            bucket.resolution,
            bucket.requests,
            bucket.batches,
            format!("{}/{}", bucket.outer_parallelism, bucket.inner_parallelism),
            bucket.mean_batch_latency_ms,
            bucket.throughput_rps,
        );
    }
    Ok(())
}
