//! Quickstart: generate a tiny synthetic dataset, inspect the resolution/FLOPs trade-off,
//! run a real CNN forward pass, and progressively encode an image.
//!
//! Run with: `cargo run --release --example quickstart`

use rescnn::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The compute side of the trade-off: FLOPs grow ~quadratically with resolution.
    let arch = ModelKind::ResNet18.arch(1000);
    println!("ResNet-18 compute cost by resolution (paper Table I convention):");
    for res in PAPER_RESOLUTIONS {
        println!("  {res:>3} x {res:<3} -> {:>5.1} GFLOPs", arch.gflops(res)?);
    }

    // 2. A tiny synthetic dataset standing in for ImageNet.
    let dataset = DatasetSpec::imagenet_like().with_len(4).with_max_dimension(192).build(42);
    println!("\nGenerated {} ImageNet-like samples:", dataset.len());
    for sample in &dataset {
        let (w, h) = sample.dimensions();
        println!(
            "  sample {:>6}  class {:>3}  {}x{}  object scale {:.2}  detail {:.2}",
            sample.id,
            sample.class,
            w,
            h,
            sample.object_scale(),
            sample.detail_level()
        );
    }

    // 3. Run a real (randomly initialized) CNN forward pass on one rendered image.
    let sample = &dataset[0];
    let image = sample.render()?;
    let preview = crop_and_resize(&image, CropRatio::new(0.75)?, 64)?;
    let network = Network::new(ModelKind::ResNet18, 10, 0);
    let logits = network.forward(&preview.to_tensor(&Normalization::default()))?;
    println!("\nResNet-18 forward pass at 64x64 produced {} logits", logits.shape().c);

    // 4. Store the image progressively and read it back scan by scan.
    let encoded = ProgressiveImage::encode(&image, 90, ScanPlan::standard())?;
    println!("\nProgressive encoding ({} bytes total):", encoded.total_bytes());
    for scan in 1..=encoded.num_scans() {
        let decoded = encoded.decode(scan)?;
        println!(
            "  scan {scan}: {:>7} bytes read ({:>4.1}%), SSIM {:.3}",
            encoded.cumulative_bytes(scan),
            encoded.read_fraction(scan) * 100.0,
            ssim(&image, &decoded)?
        );
    }
    Ok(())
}
