//! Dynamic-resolution inference on a Cars-like workload with an unknown crop size — the
//! paper's headline scenario (Figures 4, 8, 9).
//!
//! A scale model is trained with the cross-validation sharding of Figure 5, then the
//! dynamic pipeline is compared against every static resolution at a crop the deployment
//! did not anticipate.
//!
//! Run with: `cargo run --release --example dynamic_resolution`

use rescnn::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset_kind = DatasetKind::CarsLike;
    let backbone = ModelKind::ResNet50;
    let resolutions = vec![112, 168, 224, 280, 336, 392, 448];

    // Train the scale model (Figure 5 protocol: 4 shards, labels from held-out backbones).
    println!("Training the scale model on {} samples...", 96);
    let train = DatasetSpec::for_kind(dataset_kind).with_len(96).with_max_dimension(224).build(0);
    let trainer = ScaleModelTrainer::new(
        ScaleModelConfig { resolutions: resolutions.clone(), ..Default::default() },
        backbone,
        dataset_kind,
    );
    let scale_model = trainer.train(&train, 4)?;

    // Deploy against a surprise crop: the serving system receives 25% centre crops.
    let surprise_crop = CropRatio::new(0.25)?;
    let config = PipelineConfig::new(backbone, dataset_kind)
        .with_crop(surprise_crop)
        .with_resolutions(resolutions.clone());
    let pipeline = DynamicResolutionPipeline::new(config, scale_model, AccuracyOracle::new(7))?;

    let test = DatasetSpec::for_kind(dataset_kind).with_len(150).with_max_dimension(224).build(99);
    println!(
        "Evaluating on {} held-out samples at a {} crop...\n",
        test.len(),
        surprise_crop.label()
    );

    println!("{:<22} {:>10} {:>12}", "method", "GFLOPs", "accuracy");
    let mut best_static = 0.0f64;
    for &res in &resolutions {
        let report = pipeline.evaluate_static(&test, res, false)?;
        best_static = best_static.max(report.accuracy);
        println!(
            "{:<22} {:>10.2} {:>11.1}%",
            format!("static {res}x{res}"),
            report.mean_gflops,
            report.accuracy * 100.0
        );
    }
    let dynamic = pipeline.evaluate(&test)?;
    println!(
        "{:<22} {:>10.2} {:>11.1}%",
        "dynamic resolution",
        dynamic.mean_gflops,
        dynamic.accuracy * 100.0
    );
    println!("\nResolutions chosen by the scale model: {:?}", dynamic.resolution_histogram);
    println!(
        "Dynamic resolution recovers {:.1} of the best static accuracy ({:.1}%) without knowing the crop in advance.",
        dynamic.accuracy / best_static,
        best_static * 100.0
    );
    Ok(())
}
