//! Resolution-specialized kernel tuning (§VI): compare autotuned convolution schedules
//! against an MKLDNN-like library baseline on the paper's two CPUs, and measure a real
//! tiled convolution kernel on the host to show the same effect with wall-clock time.
//!
//! Run with: `cargo run --release --example kernel_tuning`

use std::time::Instant;

use rescnn::prelude::*;
use rescnn::tensor::{conv2d_tiled, ConvTiling};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Analytic model: tuned vs. library latency for ResNet-50 on both paper platforms.
    let arch = ModelKind::ResNet50.arch(1000);
    let tuner = AutoTuner::new(TunerConfig::default());
    let library = LibraryKernels::mkldnn_like();
    for profile in CpuProfile::paper_platforms() {
        println!("== {profile} ==");
        println!(
            "{:>10} {:>12} {:>12} {:>9}",
            "resolution", "tuned (ms)", "library (ms)", "speedup"
        );
        for res in [112usize, 168, 224, 280, 336, 392, 448] {
            let tuned = tuner.tune_network(&arch, res, &profile)?;
            let lib = library.plan(&arch, res, &profile)?;
            println!(
                "{:>10} {:>12.1} {:>12.1} {:>8.2}x",
                res,
                tuned.latency_ms(),
                lib.latency_ms(),
                lib.latency_ms() / tuned.latency_ms()
            );
        }
        println!();
    }

    // 2. Real kernels on this machine: the best tiling depends on the input resolution.
    println!("Host CPU: measured conv2d time for two tilings at two resolutions");
    let params = Conv2dParams::new(16, 32, 3, 1, 1);
    let weight = Tensor::kaiming(Shape::new(32, 16, 3, 3), 16 * 9, 1);
    let tilings =
        [("small tiles", ConvTiling::new(8, 4, 16)), ("large tiles", ConvTiling::new(32, 8, 64))];
    for res in [28usize, 56] {
        let input = Tensor::random_uniform(Shape::chw(16, res, res), 1.0, res as u64);
        for (name, tiling) in tilings {
            let start = Instant::now();
            let mut runs = 0u32;
            while start.elapsed().as_millis() < 200 {
                let _ = conv2d_tiled(&input, &weight, None, &params, tiling)?;
                runs += 1;
            }
            let per_run = start.elapsed().as_secs_f64() * 1e3 / runs as f64;
            println!("  {res:>3}x{res:<3} {name:<12} {per_run:>7.2} ms/run");
        }
    }
    println!("\nNo single implementation wins at every resolution — the reason the paper\nautotunes kernels per resolution instead of relying on a fixed library.");

    // 3. The packed engine, measured: sweep real algorithms over one ResNet-50 layer
    //    at two resolutions and compare with what the dispatch layer picks.
    use rescnn::hwsim::{
        CalibratedCostModel, CpuProfile as HwCpuProfile, MeasuredSweepConfig, MeasuredTuner,
    };
    use rescnn::tensor::ConvAlgo;
    println!("\nMeasured engine sweep (wall-clock, this host):");
    let tuner = MeasuredTuner::new(MeasuredSweepConfig { int8: true, ..Default::default() });
    for res in [112usize, 224] {
        let layer = arch.conv_layers(res)?[10];
        println!("  layer {:?} at input {}:", layer.params.kernel, layer.input);
        for kernel in tuner.sweep_layer(&layer, &ConvAlgo::ALL) {
            println!(
                "    {:<14} {:>2} thread(s) {:>8.2} ms  {:>6.1} GMAC/s",
                kernel.algo.to_string(),
                kernel.threads,
                kernel.seconds * 1e3,
                kernel.gmacs_per_s
            );
        }
        println!("    dispatch picks: {}", tuner.dispatched_algo(&layer));
    }

    // 4. Winograd F(2x2,3x3) and F(4x4,3x3) vs the packed im2col engine on
    //    stride-1 3x3 layers across the full resolution ladder (the PR 4/PR 7
    //    speedup table; the `winograd` group of `cargo bench --bench
    //    conv_kernels` reproduces the same numbers with criterion timing). The
    //    alpha=6 arm only competes where its characterized numerical gate
    //    admits the shape (`MeasuredTuner::admits_f4`).
    use rescnn::models::ConvLayerShape;
    use rescnn::tensor::{
        conv2d_winograd_f4_prepared, conv2d_winograd_prepared, conv2d_with_algo, FusedActivation,
        WinogradFilter,
    };
    println!("\nWinograd F(2x2)/F(4x4) vs packed im2col (64->64 3x3 stride-1, this host):");
    println!(
        "{:>10} {:>12} {:>9} {:>9} {:>8} {:>8} {:>5}",
        "resolution", "im2col (ms)", "f2 (ms)", "f4 (ms)", "f2 gain", "f4 gain", "gate"
    );
    let params = Conv2dParams::new(64, 64, 3, 1, 1);
    let weight = Tensor::kaiming(Shape::new(64, 64, 3, 3), 64 * 9, 1);
    let filter = WinogradFilter::prepare(&weight, &params)?;
    let filter_f4 = WinogradFilter::prepare_f4(&weight, &params)?;
    let time_ms = |f: &mut dyn FnMut()| {
        f(); // warm caches and the scratch arena
        let start = Instant::now();
        let mut runs = 0u32;
        while start.elapsed().as_millis() < 300 {
            f();
            runs += 1;
        }
        start.elapsed().as_secs_f64() * 1e3 / runs as f64
    };
    for res in [112usize, 168, 224, 280, 336, 392, 448] {
        let input = Tensor::random_uniform(Shape::chw(64, res, res), 1.0, res as u64);
        let base = time_ms(&mut || {
            conv2d_with_algo(&input, &weight, None, &params, ConvAlgo::Im2colPacked).unwrap();
        });
        let wino = time_ms(&mut || {
            conv2d_winograd_prepared(&input, &filter, None, &params, FusedActivation::None)
                .unwrap();
        });
        let wino_f4 = time_ms(&mut || {
            conv2d_winograd_f4_prepared(&input, &filter_f4, None, &params, FusedActivation::None)
                .unwrap();
        });
        let admitted = tuner.admits_f4(&ConvLayerShape { params, input: input.shape() });
        println!(
            "{res:>10} {base:>12.2} {wino:>9.2} {wino_f4:>9.2} {:>7.2}x {:>7.2}x {:>5}",
            base / wino,
            base / wino_f4,
            if admitted { "ok" } else { "cut" }
        );
    }

    // 5. Int8 quantized GEMM vs the f32 packed engine on the ResNet stage
    //    shapes (prepared layers, static activation range — the serving
    //    configuration). The accuracy gate is the shape-pure unit-error probe
    //    `int8_unit_error` checked against `INT8_TOLERANCE`; dispatch offers
    //    the arm only where the gate admits AND the deployment opted in
    //    (`MeasuredSweepConfig::int8`).
    use rescnn::tensor::{
        conv_output_extent, int8_unit_error, tensor_range, ConvEpilogue, PreparedLayer,
        INT8_TOLERANCE,
    };
    println!("\nInt8 quantized vs f32 packed GEMM (prepared layers, this host):");
    println!(
        "{:>18} {:>12} {:>10} {:>8} {:>10} {:>5}",
        "stage shape", "f32 (ms)", "int8 (ms)", "speedup", "unit err", "gate"
    );
    for (ic, oc, k, res) in [
        (64usize, 64usize, 3usize, 56usize),
        (128, 128, 3, 28),
        (256, 256, 3, 14),
        (512, 512, 3, 7),
    ] {
        let params = Conv2dParams::new(ic, oc, k, 1, k / 2);
        let weight = Tensor::kaiming(Shape::new(oc, ic, k, k), ic * k * k, 7);
        let input = Tensor::random_uniform(Shape::chw(ic, res, res), 1.0, res as u64);
        let mut prepared = PreparedLayer::new(weight, None, params)?;
        let (lo, hi) = tensor_range(&input);
        prepared.set_int8_range(lo, hi);
        prepared.int8_weights()?; // prepack outside the timed region
        let oh = conv_output_extent(res, k, 1, k / 2)?;
        let mut out = Tensor::zeros(Shape::chw(oc, oh, oh));
        let f32_ms = time_ms(&mut || {
            prepared
                .forward_with_algo_into(
                    &input,
                    ConvAlgo::Im2colPacked,
                    ConvEpilogue::activation(FusedActivation::None),
                    &mut out,
                )
                .unwrap();
        });
        let int8_ms = time_ms(&mut || {
            prepared
                .forward_with_algo_into(
                    &input,
                    ConvAlgo::Int8,
                    ConvEpilogue::activation(FusedActivation::None),
                    &mut out,
                )
                .unwrap();
        });
        let err = int8_unit_error(&params, input.shape())?;
        let admitted = err <= INT8_TOLERANCE;
        println!(
            "{:>11}x{k} @{res:<3} {f32_ms:>12.3} {int8_ms:>10.3} {:>7.2}x {err:>10.3} {:>5}",
            format!("{ic}->{oc}"),
            f32_ms / int8_ms,
            if admitted { "ok" } else { "cut" }
        );
    }

    // 6. Close the loop: feed the measured sweeps into a calibrated cost model,
    //    export the measured-fastest dispatch table, and persist it — the file a
    //    serving deployment points `PipelineConfig::with_conv_calibration` at.
    let mut calibrated = CalibratedCostModel::new(HwCpuProfile::host());
    let layers = arch.conv_layers(224)?;
    calibrated.calibrate_layers(&tuner, &layers[..layers.len().min(12)]);
    let table = calibrated.dispatch_table();
    let path = std::env::temp_dir().join("rescnn-conv-calibration.txt");
    calibrated.save(&path)?;
    println!(
        "\nCalibrated dispatch: {} layer shapes measured; table persisted to {}",
        table.len(),
        path.display()
    );
    let swept = &layers[..layers.len().min(12)];
    let f2_measured = swept
        .iter()
        .filter(|l| calibrated.measured_seconds(l, ConvAlgo::Winograd).is_some())
        .count();
    let f4_measured = swept
        .iter()
        .filter(|l| calibrated.measured_seconds(l, ConvAlgo::WinogradF4).is_some())
        .count();
    let int8_measured =
        swept.iter().filter(|l| calibrated.measured_seconds(l, ConvAlgo::Int8).is_some()).count();
    println!(
        "  winograd arms measured & persisted: f2 on {f2_measured} shapes, f4 on {f4_measured} \
         (numerical gate admits)"
    );
    println!(
        "  int8 arm measured & persisted on {int8_measured} shapes (opted in; unit-error gate \
         admits)"
    );
    for layer in layers.iter().take(12) {
        println!(
            "  {:>3}x{:<3} k={} s={} {:>4}ch -> {}",
            layer.input.h,
            layer.input.w,
            layer.params.kernel,
            layer.params.stride,
            layer.params.in_channels,
            calibrated.best_algo(layer)
        );
    }
    Ok(())
}
