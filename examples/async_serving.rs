//! Async real-clock serving: a long-running front-end with non-blocking
//! submission, bounded backpressure, graceful drain, and deterministic
//! record/replay.
//!
//! An [`SloServer`] wraps the virtual-clock admission core in a real-clock
//! event loop: requests are submitted from this thread as they "arrive",
//! completions stream to a consumer thread as they settle, and shutdown is a
//! graceful drain that finishes in-flight work before the report is built.
//! The run is recorded, and the recorded trace is then replayed through the
//! batch scheduler — the replayed admission decisions must match the live
//! run's bit for bit.
//!
//! Run with: `cargo run --release --example async_serving`

use rescnn::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset_kind = DatasetKind::CarsLike;
    let backbone = ModelKind::ResNet18;
    let resolutions = vec![112, 168, 224];

    println!("Training the scale model...");
    let train = DatasetSpec::for_kind(dataset_kind).with_len(60).with_max_dimension(96).build(1);
    let trainer = ScaleModelTrainer::new(
        ScaleModelConfig { resolutions: resolutions.clone(), ..Default::default() },
        backbone,
        dataset_kind,
    );
    let scale_model = trainer.train(&train, 3)?;
    let config = PipelineConfig::new(backbone, dataset_kind)
        .with_crop(CropRatio::new(0.56)?)
        .with_resolutions(resolutions);
    let pipeline =
        Arc::new(DynamicResolutionPipeline::new(config, scale_model, AccuracyOracle::new(77))?);

    let latency = ResolutionLatencyModel::analytic(&pipeline)?;
    let top_ms = latency.estimate_ms(224).max(1.0);
    let options = SloOptions::default().with_latency_model(latency).with_ssim_floor(0.35);

    // A long-running server: bounded submission queue, recorded admission.
    let server_config = ServerConfig::default()
        .with_options(options.clone())
        .with_queue_capacity(16)
        .with_record(true);
    let mut server = SloServer::start(Arc::clone(&pipeline), server_config)?;

    // Completions stream to their own consumer as they settle — submission
    // never waits for inference.
    let stream = server.completions().expect("a fresh server has its stream");
    let consumer = std::thread::spawn(move || {
        let mut settled = Vec::new();
        for completion in stream {
            let verdict = match &completion.outcome {
                SloOutcome::Completed(c) if c.served_resolution < c.planned_resolution => {
                    format!("degraded {} -> {} px", c.planned_resolution, c.served_resolution)
                }
                SloOutcome::Completed(c) => format!("completed at {} px", c.served_resolution),
                SloOutcome::Rejected(Rejected::Overloaded) => "shed (overload)".into(),
                SloOutcome::Rejected(Rejected::DeadlineExceeded) => "expired".into(),
                SloOutcome::Rejected(Rejected::CircuitOpen) => "shed (breaker)".into(),
                SloOutcome::Failed(err) => format!("faulted: {err}"),
            };
            println!(
                "  ticket {:>2}  {verdict:<22} wall {:>6.1} ms  deadline {}",
                completion.ticket.0,
                completion.wall_latency_ms,
                if completion.deadline_met { "met" } else { "missed" },
            );
            settled.push(completion);
        }
        settled
    });

    // A paced burst: generous, tight, and hopeless deadlines mixed so the
    // live run serves some requests and sheds or expires the rest.
    println!("\nSubmitting a paced burst (slack in units of the top-rung estimate):");
    let queue = DatasetSpec::for_kind(dataset_kind).with_len(12).with_max_dimension(96).build(7);
    let slacks = [20.0, 20.0, 4.0, 2.0, 0.0, 20.0, 1.5, 4.0, 0.0, 20.0, 2.0, 1.0];
    let mut accepted = Vec::new();
    for (i, slack) in slacks.iter().enumerate() {
        let index = i % queue.len();
        let sample = Arc::new(queue[index].clone());
        match server.submit(ServerRequest::new(sample, slack * top_ms)) {
            Ok(_) => accepted.push(index),
            // Bounded queue: overload surfaces as a typed error at the gate.
            Err(err) => println!("  submit {i:>2}  rejected: {err}"),
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    // Graceful shutdown: new submissions are rejected, in-flight work drains.
    server.drain();
    match server.submit(ServerRequest::new(Arc::new(queue[0].clone()), 1_000.0)) {
        Err(SubmitError::Draining) => println!("\nDraining: late submission rejected (typed)"),
        other => println!("\nUnexpected post-drain submit result: {other:?}"),
    }
    let report = server.join()?;
    let settled = consumer.join().expect("consumer thread finished");
    assert_eq!(settled.len(), accepted.len(), "every accepted ticket settles exactly once");

    println!(
        "\nserved {}  degraded {}  shed {}  expired {}  wall p50 {:.1} ms  p99 {:.1} ms  drain {:.1} ms ({})",
        report.slo.completed,
        report.slo.degraded,
        report.slo.shed,
        report.slo.expired,
        report.wall_p50_ms,
        report.wall_p99_ms,
        report.drain_seconds * 1_000.0,
        if report.drained_gracefully { "graceful" } else { "hard-cancelled" },
    );

    // Deterministic replay: round-trip the recorded trace through its on-disk
    // format, rebuild the batch scheduler over the same samples, and replay.
    let trace = report.trace.as_ref().expect("recording runs carry their trace");
    let reloaded = ServingTrace::from_text(&trace.to_text())?;
    let mut scheduler = SloScheduler::new(&pipeline, options);
    for &index in &accepted {
        scheduler.submit(SloRequest::new(&queue[index], 0.0, 1.0));
    }
    let (_, replayed) = scheduler.replay(&reloaded)?;
    assert_eq!(
        replayed.decisions, trace.decisions,
        "replayed admission decisions must match the live run bitwise"
    );
    println!("replay: {} recorded decisions reproduced bitwise", trace.decisions.len());
    Ok(())
}
