//! Cross-crate integration tests: the dynamic-resolution pipeline assembled end to end,
//! exercising dataset generation, rendering, progressive storage, calibration, the scale
//! model, the accuracy oracle, and the kernel cost model together.

use rescnn::prelude::*;

fn trained_pipeline(
    dataset_kind: DatasetKind,
    backbone: ModelKind,
    crop: f64,
    storage: StoragePolicy,
) -> DynamicResolutionPipeline {
    let resolutions = vec![112usize, 224, 336, 448];
    let train = DatasetSpec::for_kind(dataset_kind).with_len(60).with_max_dimension(96).build(11);
    let trainer = ScaleModelTrainer::new(
        ScaleModelConfig { resolutions: resolutions.clone(), epochs: 30, ..Default::default() },
        backbone,
        dataset_kind,
    );
    let scale_model = trainer.train(&train, 3).expect("scale model trains");
    let config = PipelineConfig::new(backbone, dataset_kind)
        .with_crop(CropRatio::new(crop).expect("valid crop"))
        .with_resolutions(resolutions)
        .with_storage(storage);
    DynamicResolutionPipeline::new(config, scale_model, AccuracyOracle::new(5))
        .expect("pipeline builds")
}

#[test]
fn dynamic_pipeline_is_near_best_static_and_cheaper_than_max_resolution() {
    let pipeline = trained_pipeline(
        DatasetKind::CarsLike,
        ModelKind::ResNet18,
        0.56,
        StoragePolicy::read_all(),
    );
    let test = DatasetSpec::cars_like().with_len(48).with_max_dimension(96).build(77);

    let dynamic = pipeline.evaluate(&test).expect("dynamic evaluation");
    let mut best_static_acc = 0.0f64;
    let mut max_static_gflops = 0.0f64;
    for &res in &pipeline.config().resolutions.clone() {
        let report = pipeline.evaluate_static(&test, res, false).expect("static evaluation");
        best_static_acc = best_static_acc.max(report.accuracy);
        max_static_gflops = max_static_gflops.max(report.mean_gflops);
    }
    assert!(dynamic.accuracy >= best_static_acc - 0.15);
    assert!(dynamic.mean_gflops < max_static_gflops);
    assert!(dynamic.mean_read_fraction <= 1.0 + 1e-9);
}

#[test]
fn calibrated_storage_saves_bytes_without_losing_accuracy() {
    let crop = CropRatio::new(0.75).expect("valid crop");
    let resolutions = [224usize, 448];
    let calibration_set = DatasetSpec::cars_like().with_len(10).with_max_dimension(96).build(21);
    let curves =
        CalibrationCurves::compute(&calibration_set, ModelKind::ResNet18, crop, &resolutions, 90)
            .expect("curves");
    let oracle = AccuracyOracle::new(5);
    let policy = StorageCalibrator::default().calibrate(&curves, &oracle);

    let pipeline =
        trained_pipeline(DatasetKind::CarsLike, ModelKind::ResNet18, 0.75, policy.clone());
    let eval = DatasetSpec::cars_like().with_len(20).with_max_dimension(96).build(31);
    for &res in &resolutions {
        let default = pipeline.evaluate_static(&eval, res, false).expect("default");
        let calibrated = pipeline.evaluate_static(&eval, res, true).expect("calibrated");
        // Calibration may only cost a sliver of accuracy and must never read more data.
        assert!(default.accuracy - calibrated.accuracy <= 0.06);
        assert!(calibrated.mean_read_fraction <= 1.0 + 1e-9);
        assert!(calibrated.mean_bytes_read > 0.0);
    }
}

#[test]
fn tuned_kernels_beat_library_for_both_backbones_on_both_cpus() {
    let tuner = AutoTuner::new(TunerConfig { trials: 48, refine_rounds: 2, seed: 0 });
    let library = LibraryKernels::mkldnn_like();
    for profile in CpuProfile::paper_platforms() {
        for kind in [ModelKind::ResNet18, ModelKind::ResNet50] {
            let arch = kind.arch(1000);
            for res in [112usize, 280] {
                let tuned = tuner.tune_network(&arch, res, &profile).expect("tuned plan");
                let lib = library.plan(&arch, res, &profile).expect("library plan");
                assert!(
                    tuned.latency_ms() < lib.latency_ms(),
                    "{kind} @{res} on {}: tuned {} vs library {}",
                    profile.name,
                    tuned.latency_ms(),
                    lib.latency_ms()
                );
            }
        }
    }
}

#[test]
fn progressive_storage_round_trips_through_the_real_codec() {
    let dataset = DatasetSpec::imagenet_like().with_len(3).with_max_dimension(128).build(9);
    for sample in &dataset {
        let original = sample.render().expect("render");
        let encoded = sample.encode_progressive(85).expect("encode");
        let full = encoded.decode(encoded.num_scans()).expect("decode");
        assert_eq!(full.dimensions(), original.dimensions());
        assert!(ssim(&original, &full).expect("ssim") > 0.85);
        // Byte accounting is consistent.
        assert!(encoded.cumulative_bytes(1) < encoded.total_bytes());
        assert!(encoded.total_bytes() < original.raw_byte_size());
    }
}

#[test]
fn real_network_forward_matches_arch_flops_accounting() {
    // The executable ResNet-18 and the symbolic ArchSpec must agree on structure: the
    // forward pass works at any resolution the spec can account for.
    let net = Network::new(ModelKind::ResNet18, 7, 1);
    let arch = ModelKind::ResNet18.arch(7);
    for res in [32usize, 48, 64] {
        let flops = arch.gflops(res).expect("flops");
        assert!(flops > 0.0);
        let image = render_scene(&SceneSpec::new(res, res, 3)).expect("render");
        let logits = net.forward(&image.to_tensor(&Normalization::default())).expect("forward");
        assert_eq!(logits.shape().c, 7);
        assert!(!logits.has_non_finite());
    }
}

#[test]
fn oracle_and_pipeline_agree_on_full_quality_static_accuracy() {
    let pipeline = trained_pipeline(
        DatasetKind::ImageNetLike,
        ModelKind::ResNet50,
        0.75,
        StoragePolicy::read_all(),
    );
    let eval = DatasetSpec::imagenet_like().with_len(64).with_max_dimension(96).build(3);
    let oracle = AccuracyOracle::new(5);
    let report = pipeline.evaluate_static(&eval, 224, false).expect("static");
    let direct = oracle.accuracy(
        &eval,
        &EvalContext::full_quality(
            ModelKind::ResNet50,
            DatasetKind::ImageNetLike,
            224,
            CropRatio::new(0.75).expect("crop"),
        ),
    );
    assert!((report.accuracy - direct).abs() < 1e-9);
}
