//! # rescnn-oracle
//!
//! The calibrated backbone-accuracy model. The paper's accuracy numbers come from
//! ResNet-18/50 backbones trained on ImageNet and Stanford Cars; training those models is
//! outside the scope of a CPU-only reproduction, so this crate encodes the *measured
//! response surfaces* the paper reports — how accuracy depends on apparent object scale
//! (crop × resolution), on image quality (SSIM of what was actually decoded), and on the
//! model family — and re-evaluates them per sample, deterministically.
//!
//! Every constant is documented with the paper number it is anchored to (see
//! [`Calibration`]); every experiment downstream *measures* accuracy by pushing real
//! (synthetic) images through real cropping, resizing, and progressive decoding and asking
//! the oracle about exactly what came out, so the pipeline's decisions are evaluated
//! end-to-end rather than assumed.
//!
//! # Examples
//! ```
//! use rescnn_data::{DatasetKind, DatasetSpec};
//! use rescnn_imaging::CropRatio;
//! use rescnn_models::ModelKind;
//! use rescnn_oracle::{AccuracyOracle, EvalContext};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = DatasetSpec::imagenet_like().with_len(64).with_max_dimension(96).build(0);
//! let oracle = AccuracyOracle::new(0);
//! let at_224 = EvalContext::full_quality(
//!     ModelKind::ResNet18, DatasetKind::ImageNetLike, 224, CropRatio::new(0.75)?);
//! let at_112 = at_224.with_resolution(112);
//! assert!(oracle.accuracy(&data, &at_224) >= oracle.accuracy(&data, &at_112));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod calibration;
#[allow(clippy::module_inception)]
mod oracle;

pub use calibration::{Calibration, QualityResponse, ScaleResponse};
pub use oracle::{AccuracyOracle, EvalContext};

/// Commonly used items, intended for glob import.
pub mod prelude {
    pub use crate::{AccuracyOracle, Calibration, EvalContext};
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rescnn_data::{DatasetKind, DatasetSpec};
    use rescnn_imaging::CropRatio;
    use rescnn_models::ModelKind;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn probability_always_valid(seed in 0u64..1000, res_idx in 0usize..7,
                                     crop in 0.1f64..1.0, quality in 0.5f64..1.0) {
            let res = [112usize, 168, 224, 280, 336, 392, 448][res_idx];
            let data = DatasetSpec::cars_like().with_len(4).with_max_dimension(64).build(seed);
            let oracle = AccuracyOracle::new(seed);
            let ctx = EvalContext {
                model: ModelKind::ResNet50,
                dataset: DatasetKind::CarsLike,
                resolution: res,
                crop: CropRatio::new(crop).unwrap(),
                quality,
            };
            for s in &data {
                let p = oracle.probability_correct(s, &ctx);
                prop_assert!((0.0..=1.0).contains(&p));
            }
        }

        #[test]
        fn quality_is_monotone(quality_lo in 0.5f64..0.95, delta in 0.01f64..0.05) {
            let data = DatasetSpec::imagenet_like().with_len(8).with_max_dimension(64).build(3);
            let oracle = AccuracyOracle::new(0);
            let base = EvalContext::full_quality(
                ModelKind::ResNet18, DatasetKind::ImageNetLike, 224, CropRatio::new(0.75).unwrap());
            for s in &data {
                let lo = oracle.probability_correct(s, &base.with_quality(quality_lo));
                let hi = oracle.probability_correct(s, &base.with_quality(quality_lo + delta));
                prop_assert!(hi + 1e-12 >= lo);
            }
        }
    }
}
