//! Calibrated response-surface parameters.
//!
//! Every constant in this file is anchored to a number the paper reports; the anchor is
//! documented next to each value. The oracle combines these responses multiplicatively:
//!
//! ```text
//! P(correct) = base_accuracy(model, dataset)
//!            × scale_response(apparent object size)
//!            × clip_response(visible object fraction)
//!            × quality_response(SSIM vs. per-resolution knee)
//!            × difficulty_response(per-sample difficulty)
//! ```

use serde::{Deserialize, Serialize};

use rescnn_data::DatasetKind;
use rescnn_models::ModelKind;

/// Scale-response parameters for one dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleResponse {
    /// Apparent object size (pixels of object diameter at the inference resolution) at
    /// which accuracy peaks. Anchored to the paper's observation that 224-trained models
    /// peak near 280 × 280 inference with standard crops (Table I, Figures 8/9).
    pub optimal_apparent_px: f64,
    /// Log₂-domain width of the accuracy falloff when objects appear *smaller* than
    /// optimal. Anchored to Table I's 47.8 % @112 vs. 70.7 % peak for ImageNet/ResNet-18
    /// and the much steeper Cars drop (35.6 % @112 vs. 89.4 % peak, Table IV).
    pub sigma_small: f64,
    /// Falloff width when objects appear *larger* than optimal (over-magnification).
    /// Anchored to the mild degradation at 336–448 in Table I (ImageNet) and the sharp
    /// degradation of Cars at small crops / high resolutions (Figure 9, 25 % crop).
    pub sigma_large: f64,
}

/// Quality (SSIM) response parameters for one dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityResponse {
    /// SSIM knee at 112 × 112: quality above the knee costs no accuracy.
    /// The paper's calibration searches SSIM thresholds in `[0.94, 1.0]` (§V), with lower
    /// resolutions needing higher fidelity, so the knee at 112 sits near the top of that
    /// interval.
    pub knee_at_112: f64,
    /// Knee decrease per doubling of resolution. Anchored to the §V finding that higher
    /// resolutions maintain accuracy at *lower* quality (Cars keeps accuracy reading just
    /// over half the data at high resolutions).
    pub knee_drop_per_octave: f64,
    /// Accuracy lost per unit of SSIM shortfall below the knee (the slope of Figure 6's
    /// curves once quality is insufficient). Lower resolutions degrade more rapidly, which
    /// emerges from the knee being higher there.
    pub slope: f64,
    /// How strongly a sample's detail level shifts its personal knee (fine-grained samples
    /// need more fidelity).
    pub detail_shift: f64,
}

/// Full per-(dataset, model) calibration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Top-1 accuracy at the optimal scale with full-quality input.
    /// Anchors: Tables III/IV "Default" columns at each model's best static resolution —
    /// ImageNet R18 70.7 %, R50 76.0 %, Cars R18 89.5 %, R50 91.6 %.
    pub base_accuracy: f64,
    /// Scale response.
    pub scale: ScaleResponse,
    /// Quality response.
    pub quality: QualityResponse,
    /// Weight of the per-sample difficulty term (fraction of accuracy the hardest samples
    /// lose even under ideal conditions).
    pub difficulty_weight: f64,
}

impl Calibration {
    /// Looks up the calibration for a (dataset, model) pair.
    pub fn for_pair(dataset: DatasetKind, model: ModelKind) -> Self {
        let scale = match dataset {
            DatasetKind::ImageNetLike => {
                ScaleResponse { optimal_apparent_px: 160.0, sigma_small: 1.45, sigma_large: 2.2 }
            }
            DatasetKind::CarsLike => {
                ScaleResponse { optimal_apparent_px: 200.0, sigma_small: 1.1, sigma_large: 1.2 }
            }
        };
        let quality = match dataset {
            DatasetKind::ImageNetLike => QualityResponse {
                knee_at_112: 0.975,
                knee_drop_per_octave: 0.022,
                slope: 6.0,
                detail_shift: 0.015,
            },
            DatasetKind::CarsLike => QualityResponse {
                knee_at_112: 0.962,
                knee_drop_per_octave: 0.035,
                slope: 5.0,
                detail_shift: 0.010,
            },
        };
        let base_accuracy = match (dataset, model) {
            (DatasetKind::ImageNetLike, ModelKind::ResNet18) => 0.715,
            (DatasetKind::ImageNetLike, ModelKind::ResNet50) => 0.768,
            (DatasetKind::ImageNetLike, ModelKind::MobileNetV2) => 0.70,
            (DatasetKind::CarsLike, ModelKind::ResNet18) => 0.905,
            (DatasetKind::CarsLike, ModelKind::ResNet50) => 0.925,
            (DatasetKind::CarsLike, ModelKind::MobileNetV2) => 0.88,
        };
        Calibration { base_accuracy, scale, quality, difficulty_weight: 0.12 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrations_reflect_paper_ordering() {
        let im_r18 = Calibration::for_pair(DatasetKind::ImageNetLike, ModelKind::ResNet18);
        let im_r50 = Calibration::for_pair(DatasetKind::ImageNetLike, ModelKind::ResNet50);
        let cars_r18 = Calibration::for_pair(DatasetKind::CarsLike, ModelKind::ResNet18);
        let cars_r50 = Calibration::for_pair(DatasetKind::CarsLike, ModelKind::ResNet50);
        // ResNet-50 beats ResNet-18 on both datasets; Cars accuracies exceed ImageNet.
        assert!(im_r50.base_accuracy > im_r18.base_accuracy);
        assert!(cars_r50.base_accuracy > cars_r18.base_accuracy);
        assert!(cars_r18.base_accuracy > im_r50.base_accuracy);
        // Cars is more scale-sensitive (smaller sigmas) and more fidelity-tolerant
        // (lower knee, faster knee drop).
        assert!(cars_r18.scale.sigma_small < im_r18.scale.sigma_small);
        assert!(cars_r18.scale.sigma_large < im_r18.scale.sigma_large);
        assert!(cars_r18.quality.knee_at_112 < im_r18.quality.knee_at_112);
        assert!(cars_r18.quality.knee_drop_per_octave > im_r18.quality.knee_drop_per_octave);
    }

    #[test]
    fn all_pairs_have_sane_values() {
        for dataset in DatasetKind::ALL {
            for model in ModelKind::ALL {
                let c = Calibration::for_pair(dataset, model);
                assert!((0.5..=1.0).contains(&c.base_accuracy));
                assert!(c.scale.optimal_apparent_px > 50.0);
                assert!(c.scale.sigma_small > 0.0 && c.scale.sigma_large > 0.0);
                assert!((0.9..1.0).contains(&c.quality.knee_at_112));
                assert!(c.quality.slope > 0.0);
                assert!((0.0..0.5).contains(&c.difficulty_weight));
            }
        }
    }
}
