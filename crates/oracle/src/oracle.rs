//! The accuracy oracle: deterministic per-sample correctness under a given evaluation
//! configuration.

use serde::{Deserialize, Serialize};

use rescnn_data::{DatasetKind, Sample};
use rescnn_imaging::CropRatio;
use rescnn_models::ModelKind;

use crate::calibration::Calibration;

/// Everything about *how* a sample is presented to the backbone that affects correctness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalContext {
    /// Backbone model.
    pub model: ModelKind,
    /// Dataset family the backbone was trained on.
    pub dataset: DatasetKind,
    /// Square inference resolution.
    pub resolution: usize,
    /// Centre-crop ratio applied before resizing.
    pub crop: CropRatio,
    /// Quality of the presented pixels relative to a full-fidelity resize at the same
    /// resolution (SSIM in `[0, 1]`; `1.0` when all image data is read).
    pub quality: f64,
}

impl EvalContext {
    /// A full-quality context (all image data read).
    pub fn full_quality(
        model: ModelKind,
        dataset: DatasetKind,
        resolution: usize,
        crop: CropRatio,
    ) -> Self {
        EvalContext { model, dataset, resolution, crop, quality: 1.0 }
    }

    /// Returns a copy with a different quality value.
    pub fn with_quality(mut self, quality: f64) -> Self {
        self.quality = quality;
        self
    }

    /// Returns a copy with a different resolution.
    pub fn with_resolution(mut self, resolution: usize) -> Self {
        self.resolution = resolution;
        self
    }
}

/// Deterministic hash → `[0, 1)` used for per-sample draws.
fn unit_hash(a: u64, b: u64) -> f64 {
    let mut x = a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// The calibrated backbone-accuracy model.
///
/// The oracle answers one question: *would a backbone of this family, trained on this
/// dataset, classify this sample correctly when presented at this resolution, crop, and
/// quality?* The answer is a deterministic function of the sample identity and the
/// context, so experiments are exactly reproducible, and it is monotone in the underlying
/// correctness probability (an image that is correct at probability 0.6 stays correct in
/// every context whose probability is ≥ 0.6), which is what makes per-image resolution
/// selection meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct AccuracyOracle {
    /// Seed folded into every per-sample draw; different seeds model independently trained
    /// backbones (the paper's seed1/seed2/seed3 curves in Figure 6).
    pub training_seed: u64,
}

impl AccuracyOracle {
    /// Creates an oracle representing one trained backbone instance.
    pub fn new(training_seed: u64) -> Self {
        AccuracyOracle { training_seed }
    }

    /// The apparent object size in pixels when `sample` is centre-cropped and resized to
    /// the context's resolution.
    pub fn apparent_object_px(sample: &Sample, ctx: &EvalContext) -> f64 {
        let crop_linear = ctx.crop.linear_fraction();
        let visible_scale = (sample.object_scale() / crop_linear).min(1.0);
        visible_scale * ctx.resolution as f64
    }

    /// Fraction of the object that survives the centre crop (1.0 when it fits entirely).
    pub fn visible_fraction(sample: &Sample, ctx: &EvalContext) -> f64 {
        (ctx.crop.linear_fraction() / sample.object_scale()).min(1.0)
    }

    /// The probability that the backbone classifies `sample` correctly under `ctx`.
    pub fn probability_correct(&self, sample: &Sample, ctx: &EvalContext) -> f64 {
        let cal = Calibration::for_pair(ctx.dataset, ctx.model);

        // --- Scale response -----------------------------------------------------------
        let apparent = Self::apparent_object_px(sample, ctx).max(1.0);
        let log_ratio = (apparent / cal.scale.optimal_apparent_px).log2();
        let sigma = if log_ratio < 0.0 { cal.scale.sigma_small } else { cal.scale.sigma_large };
        let scale_response = (-0.5 * (log_ratio / sigma).powi(2)).exp();

        // --- Clipping response (object larger than the crop) ---------------------------
        let visible = Self::visible_fraction(sample, ctx);
        let clip_response = 0.30 + 0.70 * visible;

        // --- Quality response -----------------------------------------------------------
        let octaves = (ctx.resolution as f64 / 112.0).log2().max(0.0);
        let knee = cal.quality.knee_at_112 - cal.quality.knee_drop_per_octave * octaves
            + cal.quality.detail_shift * (sample.detail_level() - 0.5);
        let quality_response = if ctx.quality >= knee {
            1.0
        } else {
            (1.0 - cal.quality.slope * (knee - ctx.quality)).max(0.0)
        };

        // --- Per-sample difficulty -------------------------------------------------------
        let difficulty_response = 1.0 - cal.difficulty_weight * sample.difficulty;

        (cal.base_accuracy
            * scale_response
            * clip_response
            * quality_response
            * difficulty_response)
            .clamp(0.0, 1.0)
    }

    /// Deterministic correctness decision for `sample` under `ctx`.
    ///
    /// The per-sample draw is shared across contexts, so correctness is monotone in
    /// [`Self::probability_correct`]: raising the probability can only flip a sample from
    /// wrong to right, never the reverse.
    pub fn is_correct(&self, sample: &Sample, ctx: &EvalContext) -> bool {
        let draw = unit_hash(sample.id, self.training_seed.wrapping_add(0x5EED));
        draw < self.probability_correct(sample, ctx)
    }

    /// Top-1 accuracy of a backbone over a set of samples under one context.
    pub fn accuracy<'a, I: IntoIterator<Item = &'a Sample>>(
        &self,
        samples: I,
        ctx: &EvalContext,
    ) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for sample in samples {
            total += 1;
            if self.is_correct(sample, ctx) {
                correct += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescnn_data::DatasetSpec;

    fn imagenet(n: usize) -> rescnn_data::Dataset {
        DatasetSpec::imagenet_like().with_len(n).with_max_dimension(96).build(1)
    }

    fn cars(n: usize) -> rescnn_data::Dataset {
        DatasetSpec::cars_like().with_len(n).with_max_dimension(96).build(1)
    }

    fn ctx(
        model: ModelKind,
        dataset: DatasetKind,
        res: usize,
        crop: f64,
        quality: f64,
    ) -> EvalContext {
        EvalContext {
            model,
            dataset,
            resolution: res,
            crop: CropRatio::new(crop).unwrap(),
            quality,
        }
    }

    #[test]
    fn probabilities_are_valid_and_deterministic() {
        let oracle = AccuracyOracle::new(0);
        let data = imagenet(32);
        let context = ctx(ModelKind::ResNet18, DatasetKind::ImageNetLike, 224, 0.75, 1.0);
        for s in &data {
            let p = oracle.probability_correct(s, &context);
            assert!((0.0..=1.0).contains(&p));
            assert_eq!(oracle.is_correct(s, &context), oracle.is_correct(s, &context));
        }
    }

    #[test]
    fn resolution_sweep_peaks_near_280_for_standard_crop() {
        // Table I shape: accuracy rises to ~280 then flattens/declines slightly.
        let oracle = AccuracyOracle::new(0);
        let data = imagenet(600);
        let acc = |res: usize| {
            oracle.accuracy(
                &data,
                &ctx(ModelKind::ResNet18, DatasetKind::ImageNetLike, res, 0.75, 1.0),
            )
        };
        let a112 = acc(112);
        let a224 = acc(224);
        let a280 = acc(280);
        let a448 = acc(448);
        assert!(a112 < a224, "112 ({a112}) must lose to 224 ({a224})");
        assert!(a280 >= a224 - 0.01, "280 ({a280}) should be near the peak ({a224})");
        assert!(a448 < a280 + 0.01, "448 ({a448}) should not beat 280 ({a280})");
        assert!(a448 > a112, "448 ({a448}) should still beat 112 ({a112}) at this crop");
        // Magnitudes in the right neighbourhood of Table I.
        assert!((0.38..=0.60).contains(&a112), "112 accuracy {a112}");
        assert!((0.60..=0.75).contains(&a280), "280 accuracy {a280}");
    }

    #[test]
    fn small_crops_favor_low_resolutions() {
        // Figures 8/9: with a 25% centre crop the apparent scale grows, so the best
        // resolution shifts down and very high resolutions hurt.
        let oracle = AccuracyOracle::new(0);
        let data = cars(600);
        let acc = |res: usize, crop: f64| {
            oracle.accuracy(&data, &ctx(ModelKind::ResNet18, DatasetKind::CarsLike, res, crop, 1.0))
        };
        // At 25% crop on Cars, 448 is worse than 112 (the paper's headline crossover).
        assert!(acc(448, 0.25) < acc(112, 0.25));
        // At 75% crop the ordering flips back.
        assert!(acc(448, 0.75) > acc(112, 0.75));
    }

    #[test]
    fn resnet50_beats_resnet18() {
        let oracle = AccuracyOracle::new(0);
        let data = imagenet(500);
        let c18 = ctx(ModelKind::ResNet18, DatasetKind::ImageNetLike, 224, 0.75, 1.0);
        let c50 = ctx(ModelKind::ResNet50, DatasetKind::ImageNetLike, 224, 0.75, 1.0);
        assert!(oracle.accuracy(&data, &c50) > oracle.accuracy(&data, &c18));
    }

    #[test]
    fn quality_below_knee_costs_accuracy_and_more_so_at_low_resolution() {
        let oracle = AccuracyOracle::new(0);
        let data = imagenet(500);
        let drop = |res: usize| {
            let full = oracle.accuracy(
                &data,
                &ctx(ModelKind::ResNet50, DatasetKind::ImageNetLike, res, 0.75, 1.0),
            );
            let degraded = oracle.accuracy(
                &data,
                &ctx(ModelKind::ResNet50, DatasetKind::ImageNetLike, res, 0.75, 0.93),
            );
            full - degraded
        };
        let drop_112 = drop(112);
        let drop_448 = drop(448);
        assert!(drop_112 > 0.0, "low quality must cost accuracy at 112");
        assert!(
            drop_112 > drop_448,
            "quality loss should hurt more at 112 ({drop_112}) than at 448 ({drop_448})"
        );
    }

    #[test]
    fn quality_above_knee_is_free() {
        let oracle = AccuracyOracle::new(0);
        let data = cars(300);
        let full = oracle
            .accuracy(&data, &ctx(ModelKind::ResNet18, DatasetKind::CarsLike, 336, 0.75, 1.0));
        let slightly_degraded = oracle
            .accuracy(&data, &ctx(ModelKind::ResNet18, DatasetKind::CarsLike, 336, 0.75, 0.985));
        assert!((full - slightly_degraded).abs() < 0.005);
    }

    #[test]
    fn correctness_is_monotone_in_probability() {
        // If a sample is correct in a context, it stays correct in any context with a
        // higher probability (shared per-sample draw).
        let oracle = AccuracyOracle::new(3);
        let data = imagenet(100);
        let low = ctx(ModelKind::ResNet18, DatasetKind::ImageNetLike, 112, 0.75, 0.9);
        let high = ctx(ModelKind::ResNet18, DatasetKind::ImageNetLike, 280, 0.75, 1.0);
        for s in &data {
            let p_low = oracle.probability_correct(s, &low);
            let p_high = oracle.probability_correct(s, &high);
            if p_high >= p_low && oracle.is_correct(s, &low) {
                assert!(oracle.is_correct(s, &high));
            }
        }
    }

    #[test]
    fn different_training_seeds_give_different_but_similar_accuracy() {
        let data = imagenet(800);
        let context = ctx(ModelKind::ResNet18, DatasetKind::ImageNetLike, 224, 0.75, 1.0);
        let a = AccuracyOracle::new(1).accuracy(&data, &context);
        let b = AccuracyOracle::new(2).accuracy(&data, &context);
        assert!((a - b).abs() < 0.05, "seeds should agree within a few points: {a} vs {b}");
        assert_ne!(
            AccuracyOracle::new(1).is_correct(&data[0], &context),
            AccuracyOracle::new(1).is_correct(&data[0], &context) ^ true
        );
    }

    #[test]
    fn apparent_size_and_visibility_helpers() {
        let data = imagenet(4);
        let s = &data[0];
        let small_crop = ctx(ModelKind::ResNet18, DatasetKind::ImageNetLike, 224, 0.25, 1.0);
        let big_crop = ctx(ModelKind::ResNet18, DatasetKind::ImageNetLike, 224, 1.0, 1.0);
        assert!(
            AccuracyOracle::apparent_object_px(s, &small_crop)
                >= AccuracyOracle::apparent_object_px(s, &big_crop)
        );
        assert!(
            AccuracyOracle::visible_fraction(s, &big_crop)
                >= AccuracyOracle::visible_fraction(s, &small_crop)
        );
        assert!(AccuracyOracle::visible_fraction(s, &big_crop) <= 1.0);
    }

    #[test]
    fn empty_sample_set_gives_zero_accuracy() {
        let oracle = AccuracyOracle::default();
        let context = ctx(ModelKind::ResNet18, DatasetKind::ImageNetLike, 224, 0.75, 1.0);
        assert_eq!(oracle.accuracy(std::iter::empty(), &context), 0.0);
    }
}
