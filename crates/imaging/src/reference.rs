//! Reference implementations of the imaging hot paths, kept as measured baselines.
//!
//! PR 3 rewrote [`ssim_with`](crate::ssim_with) on integral images and
//! [`resize`](crate::resize) as a separable two-pass transform with cached axis plans.
//! The pre-rewrite implementations live here verbatim so that
//!
//! * the parity tests can pin the fast paths against them (`resize` bitwise;
//!   `ssim_with` to ≤ 1e-12, see the tolerance note on [`ssim_with`]), and
//! * the `imaging_ops` benchmark group can keep reporting the measured speedup.
//!
//! Production code must not call these; they are deliberately the slow versions.

use crate::error::{ImagingError, Result};
use crate::image::Image;
use crate::metrics::SsimConfig;
use crate::resize::Filter;

/// The original windowed SSIM: accumulates the five window sums with a fresh O(window²)
/// row-major loop per window. Semantics identical to [`crate::ssim_with`] up to the
/// association order of the window sums.
///
/// # Errors
/// Same contract as [`crate::ssim_with`].
pub fn ssim_with(reference: &Image, distorted: &Image, config: SsimConfig) -> Result<f64> {
    if reference.dimensions() != distorted.dimensions() {
        return Err(ImagingError::DimensionMismatch {
            first: reference.dimensions(),
            second: distorted.dimensions(),
        });
    }
    if config.window == 0 || config.stride == 0 {
        return Err(ImagingError::EmptyImage);
    }
    let (w, h) = reference.dimensions();
    let lx = reference.to_luma();
    let ly = distorted.to_luma();
    let win = config.window.min(w).min(h);
    let c1 = (config.k1 * 1.0_f64).powi(2);
    let c2 = (config.k2 * 1.0_f64).powi(2);

    let mut total = 0.0;
    let mut count = 0usize;
    let mut y0 = 0;
    while y0 + win <= h {
        let mut x0 = 0;
        while x0 + win <= w {
            let mut sum_x = 0.0f64;
            let mut sum_y = 0.0f64;
            let mut sum_xx = 0.0f64;
            let mut sum_yy = 0.0f64;
            let mut sum_xy = 0.0f64;
            for dy in 0..win {
                let row = (y0 + dy) * w + x0;
                for dx in 0..win {
                    let a = lx[row + dx] as f64;
                    let b = ly[row + dx] as f64;
                    sum_x += a;
                    sum_y += b;
                    sum_xx += a * a;
                    sum_yy += b * b;
                    sum_xy += a * b;
                }
            }
            let n = (win * win) as f64;
            let mu_x = sum_x / n;
            let mu_y = sum_y / n;
            let var_x = (sum_xx / n - mu_x * mu_x).max(0.0);
            let var_y = (sum_yy / n - mu_y * mu_y).max(0.0);
            let cov = sum_xy / n - mu_x * mu_y;
            let score = ((2.0 * mu_x * mu_y + c1) * (2.0 * cov + c2))
                / ((mu_x * mu_x + mu_y * mu_y + c1) * (var_x + var_y + c2));
            total += score;
            count += 1;
            x0 += config.stride;
        }
        y0 += config.stride;
    }
    if count == 0 {
        // Images smaller than the window: fall back to a single global window.
        let shrunk = SsimConfig { window: w.min(h), stride: 1, ..config };
        if shrunk.window == win {
            return Ok(1.0);
        }
        return ssim_with(reference, distorted, shrunk);
    }
    Ok((total / count as f64).clamp(-1.0, 1.0))
}

/// The original single-pass resize: recomputes the horizontal sample positions and
/// weights for every output row. Bitwise identical to [`crate::resize`].
///
/// # Errors
/// Same contract as [`crate::resize`].
pub fn resize(
    image: &Image,
    target_width: usize,
    target_height: usize,
    filter: Filter,
) -> Result<Image> {
    if target_width == 0 || target_height == 0 {
        return Err(ImagingError::InvalidResize { width: target_width, height: target_height });
    }
    if (target_width, target_height) == image.dimensions() {
        return Ok(image.clone());
    }
    let mut out = Image::zeros(target_width, target_height)?;
    let (sw, sh) = (image.width() as f32, image.height() as f32);
    let x_ratio = sw / target_width as f32;
    let y_ratio = sh / target_height as f32;

    match filter {
        Filter::Nearest => {
            for y in 0..target_height {
                let sy = ((y as f32 + 0.5) * y_ratio).floor().clamp(0.0, sh - 1.0) as usize;
                for x in 0..target_width {
                    let sx = ((x as f32 + 0.5) * x_ratio).floor().clamp(0.0, sw - 1.0) as usize;
                    out.set_pixel(x, y, image.pixel(sx, sy));
                }
            }
        }
        Filter::Bilinear => {
            for y in 0..target_height {
                // Align sample centres (the "half-pixel centres" convention).
                let fy = ((y as f32 + 0.5) * y_ratio - 0.5).clamp(0.0, sh - 1.0);
                let y0 = fy.floor() as usize;
                let y1 = (y0 + 1).min(image.height() - 1);
                let wy = fy - y0 as f32;
                for x in 0..target_width {
                    let fx = ((x as f32 + 0.5) * x_ratio - 0.5).clamp(0.0, sw - 1.0);
                    let x0 = fx.floor() as usize;
                    let x1 = (x0 + 1).min(image.width() - 1);
                    let wx = fx - x0 as f32;
                    let p00 = image.pixel(x0, y0);
                    let p10 = image.pixel(x1, y0);
                    let p01 = image.pixel(x0, y1);
                    let p11 = image.pixel(x1, y1);
                    let mut rgb = [0.0f32; 3];
                    for (c, v) in rgb.iter_mut().enumerate() {
                        let top = p00[c] * (1.0 - wx) + p10[c] * wx;
                        let bottom = p01[c] * (1.0 - wx) + p11[c] * wx;
                        *v = top * (1.0 - wy) + bottom * wy;
                    }
                    out.set_pixel(x, y, rgb);
                }
            }
        }
    }
    Ok(out)
}
