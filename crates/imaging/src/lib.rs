//! # rescnn-imaging
//!
//! Image representation and processing substrate: planar RGB images, bilinear/nearest
//! resizing, centre cropping with the paper's area-fraction crop ratios, PSNR/SSIM quality
//! metrics, and a procedural synthetic-scene renderer that stands in for the ImageNet and
//! Stanford Cars photographs the original evaluation used.
//!
//! # Examples
//! ```
//! use rescnn_imaging::{render_scene, crop_and_resize, ssim, CropRatio, SceneSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scene = SceneSpec::new(320, 240, 42).with_object_scale(0.4);
//! let image = render_scene(&scene)?;
//! let at_224 = crop_and_resize(&image, CropRatio::new(0.75)?, 224)?;
//! let at_112 = crop_and_resize(&image, CropRatio::new(0.75)?, 112)?;
//! assert_eq!(at_224.dimensions(), (224, 224));
//! assert_eq!(at_112.dimensions(), (112, 112));
//! assert!(ssim(&at_224, &at_224)? > 0.999);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod error;
mod image;
mod metrics;
pub mod reference;
mod resize;
mod synth;

pub use error::{ImagingError, Result};
pub use image::{Image, Normalization};
pub use metrics::{psnr, ssim, ssim_with, QualityMetric, SsimConfig, SsimReference};
pub use resize::{
    center_crop, crop, crop_and_resize, crop_and_resize_cow, resize, resize_cow, resize_square,
    CropRatio, Filter,
};
pub use synth::{render_scene, ObjectShape, SceneSpec};

/// Commonly used items, intended for glob import.
pub mod prelude {
    pub use crate::{
        center_crop, crop_and_resize, psnr, render_scene, resize_square, ssim, CropRatio, Filter,
        Image, ImagingError, Normalization, QualityMetric, SceneSpec,
    };
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn resize_always_hits_target((w, h, tw, th) in (1usize..40, 1usize..40, 1usize..64, 1usize..64)) {
            let img = Image::from_fn(w, h, |x, y| [(x % 3) as f32 / 3.0, (y % 5) as f32 / 5.0, 0.5]).unwrap();
            let out = resize(&img, tw, th, Filter::Bilinear).unwrap();
            prop_assert_eq!(out.dimensions(), (tw, th));
            // Bilinear output never exceeds the input's value range.
            prop_assert!(out.as_planar().iter().all(|&v| (-1e-6..=1.0 + 1e-6).contains(&v)));
        }

        #[test]
        fn center_crop_is_square_and_bounded((w, h) in (2usize..200, 2usize..200), ratio in 0.05f64..1.0) {
            let img = Image::filled(w, h, [0.5; 3]).unwrap();
            let cropped = center_crop(&img, CropRatio::new(ratio).unwrap()).unwrap();
            let (cw, ch) = cropped.dimensions();
            prop_assert_eq!(cw, ch);
            prop_assert!(cw <= w.min(h));
            prop_assert!(cw >= 1);
        }

        #[test]
        fn ssim_is_symmetric_and_bounded(seed_a in 0u64..50, seed_b in 0u64..50) {
            let a = render_scene(&SceneSpec::new(48, 48, 3).with_seed(seed_a)).unwrap();
            let b = render_scene(&SceneSpec::new(48, 48, 5).with_seed(seed_b)).unwrap();
            let s_ab = ssim(&a, &b).unwrap();
            let s_ba = ssim(&b, &a).unwrap();
            prop_assert!((-1.0..=1.0).contains(&s_ab));
            prop_assert!((s_ab - s_ba).abs() < 1e-9);
        }

        #[test]
        fn rendered_scenes_stay_in_unit_range(class in 0usize..200, scale in 0.05f64..1.0, detail in 0.0f64..1.0) {
            let spec = SceneSpec::new(40, 32, class).with_object_scale(scale).with_detail(detail);
            let img = render_scene(&spec).unwrap();
            prop_assert!(img.as_planar().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }

        #[test]
        fn psnr_nonnegative_for_unit_images(noise in 0.0f32..0.8) {
            let a = Image::filled(16, 16, [0.5; 3]).unwrap();
            let b = Image::filled(16, 16, [(0.5 + noise).min(1.0); 3]).unwrap();
            let p = psnr(&a, &b).unwrap();
            prop_assert!(p >= 0.0);
        }
    }
}
