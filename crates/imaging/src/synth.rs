//! Procedural synthetic scene rendering.
//!
//! The paper evaluates on ImageNet and Stanford Cars, which we cannot ship. Instead we
//! render *synthetic scenes*: each image contains one foreground object of a controlled
//! apparent scale and texture-detail level, on a textured background. The controlled scale
//! is what makes the reproduction meaningful — the paper's central phenomena (crop size ⇄
//! object scale ⇄ best inference resolution, and detail ⇄ required image quality) are
//! functions of exactly these parameters.

use serde::{Deserialize, Serialize};

use crate::error::{ImagingError, Result};
use crate::image::Image;

/// Shape of the rendered foreground object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectShape {
    /// A filled disc.
    Disc,
    /// An axis-aligned square.
    Square,
    /// A diamond (L1 ball).
    Diamond,
    /// A wide ellipse (2:1 aspect), loosely car-like.
    Ellipse,
}

impl ObjectShape {
    /// All shapes, indexable by class id.
    pub const ALL: [ObjectShape; 4] =
        [ObjectShape::Disc, ObjectShape::Square, ObjectShape::Diamond, ObjectShape::Ellipse];

    /// Signed membership test: returns `true` when the normalized offset `(dx, dy)` (in
    /// units of the object radius) lies inside the shape.
    fn contains(&self, dx: f64, dy: f64) -> bool {
        match self {
            ObjectShape::Disc => dx * dx + dy * dy <= 1.0,
            ObjectShape::Square => dx.abs() <= 0.9 && dy.abs() <= 0.9,
            ObjectShape::Diamond => dx.abs() + dy.abs() <= 1.2,
            ObjectShape::Ellipse => (dx / 1.15).powi(2) + (dy / 0.6).powi(2) <= 1.0,
        }
    }
}

/// Full description of a synthetic scene.
///
/// Rendering is deterministic in the spec (including `seed`), so datasets can be
/// regenerated on demand without storing pixels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneSpec {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Class identity; selects the object shape, hue, and texture phase.
    pub class_id: usize,
    /// Object diameter as a fraction of the image's short side, in `(0, 1]`.
    pub object_scale: f64,
    /// Object centre x as a fraction of width (0.5 = centred).
    pub center_x: f64,
    /// Object centre y as a fraction of height.
    pub center_y: f64,
    /// Texture-detail level in `[0, 1]`: 0 = flat colour, 1 = dense high-frequency texture.
    /// Fine-grained classes (Cars-like datasets) carry class-discriminative detail.
    pub detail_level: f64,
    /// Background clutter level in `[0, 1]`.
    pub background_complexity: f64,
    /// Deterministic rendering seed (varies lighting/phase across images of a class).
    pub seed: u64,
}

impl SceneSpec {
    /// Creates a centred scene with sensible defaults for the given canvas and class.
    pub fn new(width: usize, height: usize, class_id: usize) -> Self {
        SceneSpec {
            width,
            height,
            class_id,
            object_scale: 0.5,
            center_x: 0.5,
            center_y: 0.5,
            detail_level: 0.5,
            background_complexity: 0.3,
            seed: 0,
        }
    }

    /// Sets the object scale (fraction of the short side).
    pub fn with_object_scale(mut self, scale: f64) -> Self {
        self.object_scale = scale;
        self
    }

    /// Sets the texture-detail level.
    pub fn with_detail(mut self, detail: f64) -> Self {
        self.detail_level = detail;
        self
    }

    /// Sets the background complexity.
    pub fn with_background(mut self, complexity: f64) -> Self {
        self.background_complexity = complexity;
        self
    }

    /// Sets the rendering seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the object centre (fractions of width/height).
    pub fn with_center(mut self, cx: f64, cy: f64) -> Self {
        self.center_x = cx;
        self.center_y = cy;
        self
    }

    /// Validates the spec.
    ///
    /// # Errors
    /// Returns an error if the canvas is empty or any fraction is out of range.
    pub fn validate(&self) -> Result<()> {
        if self.width == 0 || self.height == 0 {
            return Err(ImagingError::EmptyImage);
        }
        if !(self.object_scale > 0.0 && self.object_scale <= 1.0) {
            return Err(ImagingError::InvalidFraction {
                name: "object_scale",
                value: self.object_scale,
            });
        }
        for (name, v) in [
            ("detail_level", self.detail_level),
            ("background_complexity", self.background_complexity),
            ("center_x", self.center_x),
            ("center_y", self.center_y),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(ImagingError::InvalidFraction { name, value: v });
            }
        }
        Ok(())
    }

    /// Object diameter in pixels on the rendered canvas.
    pub fn object_diameter_px(&self) -> f64 {
        self.object_scale * self.width.min(self.height) as f64
    }
}

/// Cheap deterministic hash → `[0, 1)` used for per-class and per-seed variation.
fn unit_hash(a: u64, b: u64) -> f64 {
    let mut x = a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xD1B5_4A32_D192_ED03);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// HSV → RGB helper for class-dependent hues (s, v in `[0, 1]`).
fn hsv_to_rgb(h: f64, s: f64, v: f64) -> [f32; 3] {
    let h = (h.rem_euclid(1.0)) * 6.0;
    let i = h.floor() as i32 % 6;
    let f = h - h.floor();
    let p = v * (1.0 - s);
    let q = v * (1.0 - f * s);
    let t = v * (1.0 - (1.0 - f) * s);
    let (r, g, b) = match i {
        0 => (v, t, p),
        1 => (q, v, p),
        2 => (p, v, t),
        3 => (p, q, v),
        4 => (t, p, v),
        _ => (v, p, q),
    };
    [r as f32, g as f32, b as f32]
}

/// Renders a synthetic scene.
///
/// The image contains:
/// * a background made of a smooth colour gradient plus low-frequency clutter whose
///   amplitude follows `background_complexity`;
/// * one foreground object (shape, hue, and texture phase derived from `class_id`) of
///   diameter `object_scale × short_side`, carrying a high-frequency class-discriminative
///   texture whose spatial frequency and contrast follow `detail_level`.
///
/// # Errors
/// Returns an error if the spec fails validation.
pub fn render_scene(spec: &SceneSpec) -> Result<Image> {
    spec.validate()?;
    let class = spec.class_id as u64;
    let hue = unit_hash(class, 1);
    let hue_bg = unit_hash(class, 2) * 0.5 + 0.25;
    let phase = unit_hash(class, 3) * std::f64::consts::TAU;
    let light = 0.85 + 0.15 * unit_hash(spec.seed, 4);
    let shape = ObjectShape::ALL[(spec.class_id / 7) % ObjectShape::ALL.len()];

    let obj_rgb = hsv_to_rgb(hue, 0.65, 0.75 * light);
    let obj_rgb2 = hsv_to_rgb(hue + 0.13, 0.55, 0.45 * light);
    let bg_rgb = hsv_to_rgb(hue_bg, 0.25, 0.55);

    let radius = spec.object_diameter_px() / 2.0;
    let cx = spec.center_x * spec.width as f64;
    let cy = spec.center_y * spec.height as f64;

    // Texture frequency: measured in cycles across the object diameter. High detail means
    // the class-discriminative pattern only survives if enough pixels (and enough DCT
    // coefficients) are retained downstream.
    let cycles = 2.0 + 22.0 * spec.detail_level;
    let tex_freq = cycles * std::f64::consts::PI / radius.max(1.0);
    let bg_freq = 8.0 / spec.width.min(spec.height).max(1) as f64;
    let bg_amp = 0.25 * spec.background_complexity;
    let jitter_x = (unit_hash(spec.seed, 5) - 0.5) * radius * 0.1;
    let jitter_y = (unit_hash(spec.seed, 6) - 0.5) * radius * 0.1;

    Image::from_fn(spec.width, spec.height, |x, y| {
        let xf = x as f64;
        let yf = y as f64;
        // Background: gradient + two sinusoidal clutter fields.
        let grad = 0.15 * (xf / spec.width as f64 - 0.5) + 0.1 * (yf / spec.height as f64 - 0.5);
        let clutter = bg_amp
            * ((xf * bg_freq * 3.1 + phase).sin() * (yf * bg_freq * 2.3).cos()
                + 0.5 * (xf * bg_freq * 7.7 + yf * bg_freq * 5.1).sin());
        let mut rgb = [
            (bg_rgb[0] as f64 + grad + clutter).clamp(0.0, 1.0) as f32,
            (bg_rgb[1] as f64 + grad + 0.8 * clutter).clamp(0.0, 1.0) as f32,
            (bg_rgb[2] as f64 + grad * 0.5 + 0.6 * clutter).clamp(0.0, 1.0) as f32,
        ];

        let dx = (xf - cx - jitter_x) / radius.max(1e-9);
        let dy = (yf - cy - jitter_y) / radius.max(1e-9);
        if shape.contains(dx, dy) {
            // Class-discriminative texture: oriented stripes + a radial ring pattern.
            let orientation = phase;
            let u = dx * orientation.cos() + dy * orientation.sin();
            let r = (dx * dx + dy * dy).sqrt();
            let stripes = (u * tex_freq * radius + phase).sin();
            let rings = (r * tex_freq * radius * 0.5).cos();
            let tex = 0.5 + 0.5 * (0.7 * stripes + 0.3 * rings);
            let contrast = 0.25 + 0.6 * spec.detail_level;
            let edge = (1.0 - r).clamp(0.0, 1.0).powf(0.3);
            for c in 0..3 {
                let base = obj_rgb[c] as f64 * (1.0 - contrast * tex)
                    + obj_rgb2[c] as f64 * (contrast * tex);
                rgb[c] = (base * (0.6 + 0.4 * edge) * light).clamp(0.0, 1.0) as f32;
            }
        }
        rgb
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ssim;
    use crate::resize::{center_crop, CropRatio};

    #[test]
    fn render_is_deterministic() {
        let spec = SceneSpec::new(96, 80, 17).with_seed(5);
        let a = render_scene(&spec).unwrap();
        let b = render_scene(&spec).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_and_classes_differ() {
        let base = SceneSpec::new(64, 64, 3).with_seed(1);
        let a = render_scene(&base).unwrap();
        let b = render_scene(&base.clone().with_seed(2)).unwrap();
        let c = render_scene(&SceneSpec::new(64, 64, 4).with_seed(1)).unwrap();
        assert!(a.mean_abs_diff(&b).unwrap() > 1e-4);
        assert!(a.mean_abs_diff(&c).unwrap() > 1e-3);
    }

    #[test]
    fn validation_rejects_bad_fractions() {
        assert!(render_scene(&SceneSpec::new(0, 10, 1)).is_err());
        assert!(render_scene(&SceneSpec::new(10, 10, 1).with_object_scale(0.0)).is_err());
        assert!(render_scene(&SceneSpec::new(10, 10, 1).with_object_scale(1.5)).is_err());
        assert!(render_scene(&SceneSpec::new(10, 10, 1).with_detail(-0.1)).is_err());
        assert!(render_scene(&SceneSpec::new(10, 10, 1).with_background(1.1)).is_err());
        assert!(render_scene(&SceneSpec::new(10, 10, 1).with_center(1.2, 0.5)).is_err());
    }

    #[test]
    fn object_occupies_expected_extent() {
        // A large object changes the centre of the image relative to a tiny object.
        let big = render_scene(&SceneSpec::new(120, 120, 2).with_object_scale(0.8)).unwrap();
        let small = render_scene(&SceneSpec::new(120, 120, 2).with_object_scale(0.1)).unwrap();
        // Corner pixels are background in both.
        assert!(big.pixel(2, 2)[0] - small.pixel(2, 2)[0] < 1e-3);
        // Pixels at ~30% from centre are object in `big` but background in `small`.
        let p_big = big.pixel(60 + 30, 60);
        let p_small = small.pixel(60 + 30, 60);
        let diff: f32 = p_big.iter().zip(&p_small).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 0.05, "object extent did not change pixels: {diff}");
    }

    #[test]
    fn detail_level_adds_high_frequency_content() {
        // Higher detail ⇒ downsampling and re-upsampling loses more (lower SSIM vs original).
        let flat = render_scene(&SceneSpec::new(128, 128, 9).with_detail(0.05)).unwrap();
        let fine = render_scene(&SceneSpec::new(128, 128, 9).with_detail(0.95)).unwrap();
        let down_up = |img: &Image| {
            let small =
                crate::resize::resize_square(img, 32, crate::resize::Filter::Bilinear).unwrap();
            crate::resize::resize_square(&small, 128, crate::resize::Filter::Bilinear).unwrap()
        };
        let s_flat = ssim(&flat, &down_up(&flat)).unwrap();
        let s_fine = ssim(&fine, &down_up(&fine)).unwrap();
        assert!(
            s_flat > s_fine,
            "flat {s_flat} should survive downsampling better than fine {s_fine}"
        );
    }

    #[test]
    fn center_crop_keeps_centered_object() {
        let spec = SceneSpec::new(200, 150, 12).with_object_scale(0.3);
        let img = render_scene(&spec).unwrap();
        let cropped = center_crop(&img, CropRatio::new(0.25).unwrap()).unwrap();
        // Object diameter 0.3*150 = 45 px; crop side = 75 px, so the object is inside and
        // pixels in the cropped view map back to the same original pixels.
        let x0 = (img.width() - cropped.width()) / 2;
        let y0 = (img.height() - cropped.height()) / 2;
        let c = cropped.pixel(cropped.width() / 2, cropped.height() / 2);
        let o = img.pixel(x0 + cropped.width() / 2, y0 + cropped.height() / 2);
        for (a, b) in c.iter().zip(&o) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn shapes_cover_all_variants() {
        for (i, shape) in ObjectShape::ALL.iter().enumerate() {
            assert!(shape.contains(0.0, 0.0), "shape {i} must contain its centre");
            assert!(!shape.contains(3.0, 3.0), "shape {i} must not contain far points");
        }
    }

    #[test]
    fn object_diameter_accounts_for_short_side() {
        let spec = SceneSpec::new(400, 100, 0).with_object_scale(0.5);
        assert_eq!(spec.object_diameter_px(), 50.0);
    }
}
