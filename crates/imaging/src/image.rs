//! Planar RGB image representation.

use serde::{Deserialize, Serialize};

use rescnn_tensor::{Shape, Tensor};

use crate::error::{ImagingError, Result};

/// Per-channel normalization constants used when converting an image to a model input
/// tensor. Defaults follow the ImageNet convention.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normalization {
    /// Per-channel mean subtracted from the `[0, 1]` pixel values.
    pub mean: [f32; 3],
    /// Per-channel standard deviation dividing the centred pixel values.
    pub std: [f32; 3],
}

impl Default for Normalization {
    fn default() -> Self {
        Normalization { mean: [0.485, 0.456, 0.406], std: [0.229, 0.224, 0.225] }
    }
}

impl Normalization {
    /// The identity normalization (no centring or scaling).
    pub const fn identity() -> Self {
        Normalization { mean: [0.0; 3], std: [1.0; 3] }
    }
}

/// A planar (channel-major) RGB image with `f32` samples in `[0, 1]`.
///
/// The planar layout matches the NCHW tensor layout used by the models, making the
/// image ⇄ tensor conversion a copy rather than a transpose.
///
/// # Examples
/// ```
/// use rescnn_imaging::Image;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let img = Image::filled(32, 24, [0.2, 0.4, 0.6])?;
/// assert_eq!(img.width(), 32);
/// assert_eq!(img.pixel(0, 0), [0.2, 0.4, 0.6]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Image {
    width: usize,
    height: usize,
    /// Planar data: `[R plane | G plane | B plane]`, each plane `height * width` row-major.
    data: Vec<f32>,
}

impl Image {
    /// Number of colour channels (always 3).
    pub const CHANNELS: usize = 3;

    /// Creates a black image.
    ///
    /// # Errors
    /// Returns [`ImagingError::EmptyImage`] if either dimension is zero.
    pub fn zeros(width: usize, height: usize) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(ImagingError::EmptyImage);
        }
        Ok(Image { width, height, data: vec![0.0; width * height * Self::CHANNELS] })
    }

    /// Creates an image filled with a constant colour.
    ///
    /// # Errors
    /// Returns [`ImagingError::EmptyImage`] if either dimension is zero.
    pub fn filled(width: usize, height: usize, rgb: [f32; 3]) -> Result<Self> {
        let mut img = Image::zeros(width, height)?;
        for (c, &value) in rgb.iter().enumerate() {
            img.plane_mut(c).fill(value);
        }
        Ok(img)
    }

    /// Creates an image from a planar buffer (`3 * width * height` samples).
    ///
    /// # Errors
    /// Returns an error if the dimensions are zero or the buffer length does not match.
    pub fn from_planar(width: usize, height: usize, data: Vec<f32>) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(ImagingError::EmptyImage);
        }
        let expected = width * height * Self::CHANNELS;
        if data.len() != expected {
            return Err(ImagingError::BufferMismatch { expected, actual: data.len() });
        }
        Ok(Image { width, height, data })
    }

    /// Creates an image by evaluating `f(x, y) -> [r, g, b]` at every pixel.
    ///
    /// # Errors
    /// Returns [`ImagingError::EmptyImage`] if either dimension is zero.
    pub fn from_fn<F: FnMut(usize, usize) -> [f32; 3]>(
        width: usize,
        height: usize,
        mut f: F,
    ) -> Result<Self> {
        let mut img = Image::zeros(width, height)?;
        for y in 0..height {
            for x in 0..width {
                img.set_pixel(x, y, f(x, y));
            }
        }
        Ok(img)
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// `(width, height)` pair.
    pub fn dimensions(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Total number of pixels.
    pub fn pixel_count(&self) -> usize {
        self.width * self.height
    }

    /// Immutable access to one colour plane.
    ///
    /// # Panics
    /// Panics if `channel >= 3`.
    pub fn plane(&self, channel: usize) -> &[f32] {
        assert!(channel < Self::CHANNELS, "channel out of range");
        let size = self.width * self.height;
        &self.data[channel * size..(channel + 1) * size]
    }

    /// Mutable access to one colour plane.
    ///
    /// # Panics
    /// Panics if `channel >= 3`.
    pub fn plane_mut(&mut self, channel: usize) -> &mut [f32] {
        assert!(channel < Self::CHANNELS, "channel out of range");
        let size = self.width * self.height;
        &mut self.data[channel * size..(channel + 1) * size]
    }

    /// The full planar sample buffer.
    pub fn as_planar(&self) -> &[f32] {
        &self.data
    }

    /// Reads the pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn pixel(&self, x: usize, y: usize) -> [f32; 3] {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let size = self.width * self.height;
        let idx = y * self.width + x;
        [self.data[idx], self.data[size + idx], self.data[2 * size + idx]]
    }

    /// Writes the pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn set_pixel(&mut self, x: usize, y: usize, rgb: [f32; 3]) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let size = self.width * self.height;
        let idx = y * self.width + x;
        self.data[idx] = rgb[0];
        self.data[size + idx] = rgb[1];
        self.data[2 * size + idx] = rgb[2];
    }

    /// Clamps all samples into `[0, 1]`.
    pub fn clamp(&mut self) {
        for v in &mut self.data {
            *v = v.clamp(0.0, 1.0);
        }
    }

    /// Returns the luma (Rec. 601) plane of the image.
    pub fn to_luma(&self) -> Vec<f32> {
        let size = self.width * self.height;
        let (r, g, b) = (&self.data[..size], &self.data[size..2 * size], &self.data[2 * size..]);
        r.iter().zip(g).zip(b).map(|((&r, &g), &b)| 0.299 * r + 0.587 * g + 0.114 * b).collect()
    }

    /// Converts the image into a `1 × 3 × H × W` tensor with the given normalization.
    pub fn to_tensor(&self, norm: &Normalization) -> Tensor {
        let shape = Shape::new(1, Self::CHANNELS, self.height, self.width);
        let mut data = Vec::with_capacity(shape.volume());
        for c in 0..Self::CHANNELS {
            for &v in self.plane(c) {
                data.push((v - norm.mean[c]) / norm.std[c]);
            }
        }
        Tensor::from_vec(shape, data).expect("planar image buffer always matches its shape")
    }

    /// Builds an image from a `1 × 3 × H × W` (or `3 × H × W`-shaped) tensor, undoing the
    /// normalization and clamping to `[0, 1]`.
    ///
    /// # Errors
    /// Returns an error if the tensor does not have exactly three channels or has a batch
    /// dimension larger than one.
    pub fn from_tensor(tensor: &Tensor, norm: &Normalization) -> Result<Self> {
        let shape = tensor.shape();
        if shape.n != 1 || shape.c != Self::CHANNELS {
            return Err(ImagingError::BufferMismatch {
                expected: Self::CHANNELS,
                actual: shape.n * shape.c,
            });
        }
        let mut img = Image::zeros(shape.w, shape.h)?;
        for c in 0..Self::CHANNELS {
            let src = tensor.plane(0, c);
            let dst = img.plane_mut(c);
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = (s * norm.std[c] + norm.mean[c]).clamp(0.0, 1.0);
            }
        }
        Ok(img)
    }

    /// Mean absolute per-sample difference between two images of identical dimensions.
    ///
    /// # Errors
    /// Returns [`ImagingError::DimensionMismatch`] if dimensions differ.
    pub fn mean_abs_diff(&self, other: &Image) -> Result<f32> {
        if self.dimensions() != other.dimensions() {
            return Err(ImagingError::DimensionMismatch {
                first: self.dimensions(),
                second: other.dimensions(),
            });
        }
        let sum: f32 = self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).sum();
        Ok(sum / self.data.len() as f32)
    }

    /// Approximate in-memory/storage footprint of the raw image in bytes (8-bit RGB).
    pub fn raw_byte_size(&self) -> u64 {
        (self.width * self.height * Self::CHANNELS) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_pixel_access() {
        let mut img = Image::zeros(4, 3).unwrap();
        assert_eq!(img.dimensions(), (4, 3));
        assert_eq!(img.pixel_count(), 12);
        img.set_pixel(2, 1, [0.1, 0.2, 0.3]);
        assert_eq!(img.pixel(2, 1), [0.1, 0.2, 0.3]);
        assert_eq!(img.pixel(0, 0), [0.0, 0.0, 0.0]);
        assert_eq!(img.raw_byte_size(), 36);
    }

    #[test]
    fn zero_dimension_rejected() {
        assert!(Image::zeros(0, 4).is_err());
        assert!(Image::zeros(4, 0).is_err());
        assert!(Image::from_planar(0, 0, vec![]).is_err());
    }

    #[test]
    fn from_planar_validates_length() {
        assert!(Image::from_planar(2, 2, vec![0.0; 12]).is_ok());
        assert!(Image::from_planar(2, 2, vec![0.0; 11]).is_err());
    }

    #[test]
    fn filled_and_from_fn() {
        let img = Image::filled(3, 3, [1.0, 0.5, 0.25]).unwrap();
        assert_eq!(img.pixel(2, 2), [1.0, 0.5, 0.25]);
        let grad = Image::from_fn(4, 2, |x, _| [x as f32 / 4.0, 0.0, 0.0]).unwrap();
        assert_eq!(grad.pixel(3, 1)[0], 0.75);
    }

    #[test]
    fn luma_weights() {
        let img = Image::filled(2, 2, [1.0, 1.0, 1.0]).unwrap();
        let luma = img.to_luma();
        assert!(luma.iter().all(|&v| (v - 1.0).abs() < 1e-5));
        let red = Image::filled(1, 1, [1.0, 0.0, 0.0]).unwrap();
        assert!((red.to_luma()[0] - 0.299).abs() < 1e-5);
    }

    #[test]
    fn tensor_round_trip() {
        let img =
            Image::from_fn(6, 5, |x, y| [x as f32 / 6.0, y as f32 / 5.0, ((x + y) % 2) as f32])
                .unwrap();
        let norm = Normalization::default();
        let t = img.to_tensor(&norm);
        assert_eq!(t.shape(), Shape::new(1, 3, 5, 6));
        let back = Image::from_tensor(&t, &norm).unwrap();
        assert!(img.mean_abs_diff(&back).unwrap() < 1e-5);
    }

    #[test]
    fn from_tensor_rejects_bad_shapes() {
        let t = Tensor::zeros(Shape::new(1, 4, 2, 2));
        assert!(Image::from_tensor(&t, &Normalization::identity()).is_err());
        let t = Tensor::zeros(Shape::new(2, 3, 2, 2));
        assert!(Image::from_tensor(&t, &Normalization::identity()).is_err());
    }

    #[test]
    fn diff_requires_same_dims() {
        let a = Image::zeros(2, 2).unwrap();
        let b = Image::zeros(3, 2).unwrap();
        assert!(a.mean_abs_diff(&b).is_err());
        assert_eq!(a.mean_abs_diff(&a).unwrap(), 0.0);
    }

    #[test]
    fn clamp_bounds_samples() {
        let mut img = Image::filled(2, 2, [2.0, -1.0, 0.5]).unwrap();
        img.clamp();
        assert_eq!(img.pixel(0, 0), [1.0, 0.0, 0.5]);
    }

    #[test]
    #[should_panic(expected = "pixel out of bounds")]
    fn out_of_bounds_pixel_panics() {
        let img = Image::zeros(2, 2).unwrap();
        let _ = img.pixel(2, 0);
    }
}
