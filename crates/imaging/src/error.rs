//! Error types for image construction and processing.

use std::error::Error;
use std::fmt;

/// Error raised by image construction, cropping, resizing, or quality-metric evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum ImagingError {
    /// The pixel buffer length does not match `width * height * channels`.
    BufferMismatch {
        /// Required number of samples.
        expected: usize,
        /// Provided number of samples.
        actual: usize,
    },
    /// An image dimension was zero.
    EmptyImage,
    /// A crop region falls outside the image or has zero extent.
    InvalidCrop {
        /// Image width.
        width: usize,
        /// Image height.
        height: usize,
        /// Requested crop width.
        crop_width: usize,
        /// Requested crop height.
        crop_height: usize,
    },
    /// A resize target dimension was zero.
    InvalidResize {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
    },
    /// Two images that must share dimensions do not.
    DimensionMismatch {
        /// Dimensions of the first image (width, height).
        first: (usize, usize),
        /// Dimensions of the second image (width, height).
        second: (usize, usize),
    },
    /// A fraction parameter (crop ratio, quality, …) was outside `(0, 1]`.
    InvalidFraction {
        /// Name of the offending parameter.
        name: &'static str,
        /// Provided value.
        value: f64,
    },
}

impl fmt::Display for ImagingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImagingError::BufferMismatch { expected, actual } => {
                write!(f, "pixel buffer length {actual} does not match expected {expected}")
            }
            ImagingError::EmptyImage => write!(f, "image dimensions must be non-zero"),
            ImagingError::InvalidCrop { width, height, crop_width, crop_height } => {
                write!(f, "crop {crop_width}x{crop_height} does not fit in image {width}x{height}")
            }
            ImagingError::InvalidResize { width, height } => {
                write!(f, "resize target {width}x{height} must be non-zero")
            }
            ImagingError::DimensionMismatch { first, second } => write!(
                f,
                "image dimensions differ: {}x{} vs {}x{}",
                first.0, first.1, second.0, second.1
            ),
            ImagingError::InvalidFraction { name, value } => {
                write!(f, "parameter `{name}` must lie in (0, 1], got {value}")
            }
        }
    }
}

impl Error for ImagingError {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ImagingError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ImagingError::EmptyImage.to_string().contains("non-zero"));
        assert!(ImagingError::BufferMismatch { expected: 3, actual: 4 }.to_string().contains('3'));
        assert!(ImagingError::InvalidCrop { width: 4, height: 4, crop_width: 8, crop_height: 8 }
            .to_string()
            .contains("8x8"));
        assert!(ImagingError::InvalidResize { width: 0, height: 3 }.to_string().contains("0x3"));
        assert!(ImagingError::DimensionMismatch { first: (1, 2), second: (3, 4) }
            .to_string()
            .contains("3x4"));
        assert!(ImagingError::InvalidFraction { name: "crop", value: 1.5 }
            .to_string()
            .contains("crop"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ImagingError>();
    }
}
