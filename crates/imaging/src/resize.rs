//! Resizing and cropping.
//!
//! The paper's pipeline is built around two geometric operations: *center cropping* a
//! fraction of the source image (which changes the apparent scale of objects, Figure 3)
//! and *resizing* the crop to the inference resolution (which changes the level of detail
//! and the compute cost). Both are implemented here from scratch.

use std::borrow::Cow;
use std::cell::RefCell;
use std::rc::Rc;

use serde::{Deserialize, Serialize};

use crate::error::{ImagingError, Result};
use crate::image::Image;

/// Interpolation filters supported by [`resize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Filter {
    /// Nearest-neighbour sampling (fast, blocky).
    Nearest,
    /// Bilinear interpolation (the default used throughout the workspace, matching common
    /// training pipelines).
    Bilinear,
}

/// Precomputed bilinear sampling positions for one axis: for each output coordinate, the
/// two source indices and the interpolation weight. The weights are computed with the
/// exact expressions of the reference single-pass implementation (half-pixel-centre
/// alignment), so plan-driven resizes stay bitwise identical to it.
struct AxisPlan {
    src: usize,
    dst: usize,
    lo: Vec<usize>,
    hi: Vec<usize>,
    weight: Vec<f32>,
}

impl AxisPlan {
    fn build(src: usize, dst: usize) -> Self {
        let ratio = src as f32 / dst as f32;
        let mut lo = Vec::with_capacity(dst);
        let mut hi = Vec::with_capacity(dst);
        let mut weight = Vec::with_capacity(dst);
        for i in 0..dst {
            // Align sample centres (the "half-pixel centres" convention).
            let f = ((i as f32 + 0.5) * ratio - 0.5).clamp(0.0, src as f32 - 1.0);
            let i0 = f.floor() as usize;
            lo.push(i0);
            hi.push((i0 + 1).min(src - 1));
            weight.push(f - i0 as f32);
        }
        AxisPlan { src, dst, lo, hi, weight }
    }
}

/// How many axis plans each thread keeps. The pipeline cycles through the preview
/// resolution plus the candidate ladder (seven resolutions, two axes each at most),
/// so 16 covers a full serving configuration without eviction.
const AXIS_PLAN_CACHE_CAP: usize = 16;

thread_local! {
    /// Small MRU cache of axis plans keyed by `(src, dst)`. Thread-local so pool workers
    /// planning different requests never contend on a lock.
    static AXIS_PLANS: RefCell<Vec<Rc<AxisPlan>>> = const { RefCell::new(Vec::new()) };
}

fn axis_plan(src: usize, dst: usize) -> Rc<AxisPlan> {
    AXIS_PLANS.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(pos) = cache.iter().position(|p| p.src == src && p.dst == dst) {
            let plan = cache.remove(pos);
            cache.push(Rc::clone(&plan));
            return plan;
        }
        let plan = Rc::new(AxisPlan::build(src, dst));
        if cache.len() >= AXIS_PLAN_CACHE_CAP {
            cache.remove(0);
        }
        cache.push(Rc::clone(&plan));
        plan
    })
}

/// Horizontally interpolates one source row through the x-axis plan.
#[inline]
fn interpolate_row(src_row: &[f32], plan: &AxisPlan, out: &mut [f32]) {
    for x in 0..plan.dst {
        let p0 = src_row[plan.lo[x]];
        let p1 = src_row[plan.hi[x]];
        out[x] = p0 * (1.0 - plan.weight[x]) + p1 * plan.weight[x];
    }
}

/// Rolling cache of the two most recent horizontally-interpolated source rows. Because
/// output rows walk the source top-to-bottom, two slots are enough for full reuse:
/// consecutive output rows usually share a source row (`y1` of one is `y0` of the next).
struct RowCache {
    rows: [(usize, Vec<f32>); 2],
}

impl RowCache {
    fn new(width: usize) -> Self {
        RowCache { rows: [(usize::MAX, vec![0.0; width]), (usize::MAX, vec![0.0; width])] }
    }

    /// Returns the slot holding the interpolation of source row `sy`, computing it into
    /// the least-recently-useful slot on a miss.
    fn fetch(&mut self, sy: usize, src_plane: &[f32], src_w: usize, plan: &AxisPlan) -> usize {
        if self.rows[0].0 == sy {
            return 0;
        }
        if self.rows[1].0 == sy {
            return 1;
        }
        // Fill an empty slot first, else evict the older source row: rows are consumed
        // in ascending order, so the smaller index can never be needed again.
        let slot = if self.rows[0].0 == usize::MAX {
            0
        } else if self.rows[1].0 == usize::MAX {
            1
        } else if self.rows[0].0 < self.rows[1].0 {
            0
        } else {
            1
        };
        self.rows[slot].0 = sy;
        interpolate_row(&src_plane[sy * src_w..(sy + 1) * src_w], plan, &mut self.rows[slot].1);
        slot
    }
}

fn resize_bilinear(image: &Image, target_width: usize, target_height: usize) -> Result<Image> {
    let x_plan = axis_plan(image.width(), target_width);
    let y_plan = axis_plan(image.height(), target_height);
    let mut out = Image::zeros(target_width, target_height)?;
    let src_w = image.width();
    for c in 0..Image::CHANNELS {
        let src_plane = image.plane(c);
        let mut cache = RowCache::new(target_width);
        let dst_plane = out.plane_mut(c);
        for y in 0..target_height {
            let wy = y_plan.weight[y];
            let top = cache.fetch(y_plan.lo[y], src_plane, src_w, &x_plan);
            let bottom = cache.fetch(y_plan.hi[y], src_plane, src_w, &x_plan);
            let dst_row = &mut dst_plane[y * target_width..(y + 1) * target_width];
            let (top_row, bottom_row) = (&cache.rows[top].1, &cache.rows[bottom].1);
            for x in 0..target_width {
                dst_row[x] = top_row[x] * (1.0 - wy) + bottom_row[x] * wy;
            }
        }
    }
    Ok(out)
}

fn resize_nearest(image: &Image, target_width: usize, target_height: usize) -> Result<Image> {
    let (sw, sh) = (image.width() as f32, image.height() as f32);
    let x_ratio = sw / target_width as f32;
    let y_ratio = sh / target_height as f32;
    // Index tables are computed once per axis instead of once per output pixel, with the
    // reference expressions.
    let sx: Vec<usize> = (0..target_width)
        .map(|x| ((x as f32 + 0.5) * x_ratio).floor().clamp(0.0, sw - 1.0) as usize)
        .collect();
    let mut out = Image::zeros(target_width, target_height)?;
    let src_w = image.width();
    for c in 0..Image::CHANNELS {
        let src_plane = image.plane(c);
        let dst_plane = out.plane_mut(c);
        for y in 0..target_height {
            let sy = ((y as f32 + 0.5) * y_ratio).floor().clamp(0.0, sh - 1.0) as usize;
            let src_row = &src_plane[sy * src_w..(sy + 1) * src_w];
            let dst_row = &mut dst_plane[y * target_width..(y + 1) * target_width];
            for (d, &s) in dst_row.iter_mut().zip(&sx) {
                *d = src_row[s];
            }
        }
    }
    Ok(out)
}

/// Resizes an image to `target_width × target_height`, borrowing the input when the
/// dimensions already match instead of cloning it.
///
/// The bilinear path is a separable two-pass transform (horizontal interpolation of the
/// needed source rows, then vertical blending) driven by per-axis index/weight tables
/// cached per thread by `(src, dst)` extent. Each output sample evaluates the exact same
/// floating-point expressions in the same order as the reference single-pass
/// implementation ([`crate::reference::resize`]), so results are bitwise identical.
///
/// # Errors
/// Returns [`ImagingError::InvalidResize`] when either target dimension is zero.
pub fn resize_cow(
    image: &Image,
    target_width: usize,
    target_height: usize,
    filter: Filter,
) -> Result<Cow<'_, Image>> {
    if target_width == 0 || target_height == 0 {
        return Err(ImagingError::InvalidResize { width: target_width, height: target_height });
    }
    if (target_width, target_height) == image.dimensions() {
        return Ok(Cow::Borrowed(image));
    }
    let resized = match filter {
        Filter::Nearest => resize_nearest(image, target_width, target_height)?,
        Filter::Bilinear => resize_bilinear(image, target_width, target_height)?,
    };
    Ok(Cow::Owned(resized))
}

/// Resizes an image to `target_width × target_height`. See [`resize_cow`] for the
/// implementation notes (and for a variant that avoids the clone when the dimensions
/// already match).
///
/// # Errors
/// Returns [`ImagingError::InvalidResize`] when either target dimension is zero.
pub fn resize(
    image: &Image,
    target_width: usize,
    target_height: usize,
    filter: Filter,
) -> Result<Image> {
    Ok(resize_cow(image, target_width, target_height, filter)?.into_owned())
}

/// Resizes an image to a square `resolution × resolution`, the shape consumed by the
/// backbone models.
///
/// # Errors
/// Returns [`ImagingError::InvalidResize`] when `resolution` is zero.
pub fn resize_square(image: &Image, resolution: usize, filter: Filter) -> Result<Image> {
    resize(image, resolution, resolution, filter)
}

/// Extracts a rectangular region.
///
/// # Errors
/// Returns [`ImagingError::InvalidCrop`] when the region has zero extent or exceeds the
/// image bounds.
pub fn crop(image: &Image, x0: usize, y0: usize, width: usize, height: usize) -> Result<Image> {
    if width == 0 || height == 0 || x0 + width > image.width() || y0 + height > image.height() {
        return Err(ImagingError::InvalidCrop {
            width: image.width(),
            height: image.height(),
            crop_width: width,
            crop_height: height,
        });
    }
    Image::from_fn(width, height, |x, y| image.pixel(x0 + x, y0 + y))
}

/// A centre-crop policy expressed as the *fraction of image area* retained, following the
/// paper's 25 % / 56 % / 75 % / 100 % crop settings (§VII-b). The linear crop extent is the
/// square root of the area fraction, so `CropRatio::new(0.25)` keeps the central half of
/// each dimension.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CropRatio(f64);

impl CropRatio {
    /// The four crop settings evaluated by the paper.
    pub const PAPER_SET: [f64; 4] = [0.25, 0.56, 0.75, 1.0];

    /// Creates a crop ratio.
    ///
    /// # Errors
    /// Returns [`ImagingError::InvalidFraction`] unless `0 < area_fraction <= 1`.
    pub fn new(area_fraction: f64) -> Result<Self> {
        if !(area_fraction > 0.0 && area_fraction <= 1.0) {
            return Err(ImagingError::InvalidFraction { name: "crop ratio", value: area_fraction });
        }
        Ok(CropRatio(area_fraction))
    }

    /// The full-image (no-op) crop.
    pub const fn full() -> Self {
        CropRatio(1.0)
    }

    /// The retained area fraction.
    pub fn area_fraction(&self) -> f64 {
        self.0
    }

    /// The retained linear fraction (`sqrt(area)`).
    pub fn linear_fraction(&self) -> f64 {
        self.0.sqrt()
    }

    /// Percentage label used in figures ("25%", "56%", …).
    pub fn label(&self) -> String {
        format!("{:.0}%", self.0 * 100.0)
    }
}

impl Default for CropRatio {
    fn default() -> Self {
        CropRatio::full()
    }
}

/// The `(x0, y0, side)` rectangle [`center_crop`] extracts.
fn center_crop_rect(image: &Image, ratio: CropRatio) -> (usize, usize, usize) {
    let short = image.width().min(image.height());
    let side = ((short as f64) * ratio.linear_fraction()).round().max(1.0) as usize;
    let side = side.min(short);
    let x0 = (image.width() - side) / 2;
    let y0 = (image.height() - side) / 2;
    (x0, y0, side)
}

/// Centre-crops an image according to a [`CropRatio`].
///
/// The crop is square with side `linear_fraction * min(width, height)` — the common
/// "center crop of the short side" convention — so the result is directly resizable to a
/// square inference resolution.
///
/// # Errors
/// Returns an error if the crop degenerates to zero pixels.
pub fn center_crop(image: &Image, ratio: CropRatio) -> Result<Image> {
    let (x0, y0, side) = center_crop_rect(image, ratio);
    crop(image, x0, y0, side, side)
}

/// Centre-crops to the given ratio and resizes the crop to `resolution × resolution`,
/// borrowing the input when both steps are no-ops.
///
/// Unlike the owned [`crop_and_resize`], this never copies pixels it does not have to:
/// an identity crop (square image, full ratio) skips the crop entirely, and a crop that
/// already has the target extent skips the resize — the planning hot loop calls this for
/// every scan prefix at every resolution, where the avoided clones add up.
///
/// # Errors
/// Propagates crop and resize errors.
pub fn crop_and_resize_cow(
    image: &Image,
    ratio: CropRatio,
    resolution: usize,
) -> Result<Cow<'_, Image>> {
    let (x0, y0, side) = center_crop_rect(image, ratio);
    if (side, side) == image.dimensions() {
        // Identity crop: resize straight from the input (borrowed if it already fits).
        return resize_cow(image, resolution, resolution, Filter::Bilinear);
    }
    let cropped = crop(image, x0, y0, side, side)?;
    if cropped.dimensions() == (resolution, resolution) {
        return Ok(Cow::Owned(cropped));
    }
    Ok(Cow::Owned(resize(&cropped, resolution, resolution, Filter::Bilinear)?))
}

/// Centre-crops to the given ratio and resizes the crop to `resolution × resolution`,
/// the standard preprocessing applied before backbone inference. See
/// [`crop_and_resize_cow`] for the allocation-avoiding variant.
///
/// # Errors
/// Propagates crop and resize errors.
pub fn crop_and_resize(image: &Image, ratio: CropRatio, resolution: usize) -> Result<Image> {
    Ok(crop_and_resize_cow(image, ratio, resolution)?.into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(width: usize, height: usize) -> Image {
        Image::from_fn(width, height, |x, y| {
            [x as f32 / width as f32, y as f32 / height as f32, 0.5]
        })
        .unwrap()
    }

    #[test]
    fn resize_identity_is_noop() {
        let img = gradient(16, 12);
        let out = resize(&img, 16, 12, Filter::Bilinear).unwrap();
        assert_eq!(img, out);
    }

    #[test]
    fn resize_rejects_zero_targets() {
        let img = gradient(8, 8);
        assert!(resize(&img, 0, 8, Filter::Bilinear).is_err());
        assert!(resize(&img, 8, 0, Filter::Nearest).is_err());
    }

    #[test]
    fn bilinear_preserves_constant_images() {
        let img = Image::filled(17, 9, [0.3, 0.6, 0.9]).unwrap();
        for (w, h) in [(8, 8), (33, 21), (1, 1), (224, 224)] {
            let out = resize(&img, w, h, Filter::Bilinear).unwrap();
            for y in 0..h {
                for x in 0..w {
                    let p = out.pixel(x, y);
                    assert!((p[0] - 0.3).abs() < 1e-5);
                    assert!((p[1] - 0.6).abs() < 1e-5);
                    assert!((p[2] - 0.9).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn downscale_then_upscale_approximates_smooth_image() {
        // A smooth gradient survives a 2x round trip with small error.
        let img = gradient(64, 64);
        let small = resize(&img, 32, 32, Filter::Bilinear).unwrap();
        let back = resize(&small, 64, 64, Filter::Bilinear).unwrap();
        assert!(img.mean_abs_diff(&back).unwrap() < 0.02);
    }

    #[test]
    fn nearest_only_copies_existing_samples() {
        let img = Image::from_fn(4, 4, |x, y| [((x + y) % 2) as f32, 0.0, 0.0]).unwrap();
        let out = resize(&img, 9, 9, Filter::Nearest).unwrap();
        for y in 0..9 {
            for x in 0..9 {
                let v = out.pixel(x, y)[0];
                assert!(v == 0.0 || v == 1.0);
            }
        }
    }

    #[test]
    fn crop_bounds_checking() {
        let img = gradient(10, 8);
        assert!(crop(&img, 0, 0, 10, 8).is_ok());
        assert!(crop(&img, 2, 2, 9, 2).is_err());
        assert!(crop(&img, 0, 0, 0, 4).is_err());
        let c = crop(&img, 3, 2, 4, 5).unwrap();
        assert_eq!(c.dimensions(), (4, 5));
        assert_eq!(c.pixel(0, 0), img.pixel(3, 2));
        assert_eq!(c.pixel(3, 4), img.pixel(6, 6));
    }

    #[test]
    fn crop_ratio_validation_and_labels() {
        assert!(CropRatio::new(0.0).is_err());
        assert!(CropRatio::new(1.2).is_err());
        assert!(CropRatio::new(-0.1).is_err());
        let r = CropRatio::new(0.25).unwrap();
        assert!((r.linear_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(r.label(), "25%");
        assert_eq!(CropRatio::full().label(), "100%");
        assert_eq!(CropRatio::default().area_fraction(), 1.0);
    }

    #[test]
    fn center_crop_sizes() {
        let img = gradient(100, 60);
        let full = center_crop(&img, CropRatio::full()).unwrap();
        assert_eq!(full.dimensions(), (60, 60));
        let quarter = center_crop(&img, CropRatio::new(0.25).unwrap()).unwrap();
        assert_eq!(quarter.dimensions(), (30, 30));
        // Centred: the centre pixel of the crop matches the centre of the original.
        let c = quarter.pixel(15, 15);
        let o = img.pixel(50, 45);
        assert!((c[0] - o[0]).abs() < 1e-6);
    }

    #[test]
    fn crop_and_resize_produces_square_resolution() {
        let img = gradient(300, 200);
        for res in [112usize, 224, 448] {
            let out = crop_and_resize(&img, CropRatio::new(0.56).unwrap(), res).unwrap();
            assert_eq!(out.dimensions(), (res, res));
        }
    }

    #[test]
    fn tiny_images_still_crop() {
        let img = gradient(2, 2);
        let out = center_crop(&img, CropRatio::new(0.05).unwrap()).unwrap();
        assert_eq!(out.dimensions(), (1, 1));
    }

    fn assert_images_bitwise_equal(a: &Image, b: &Image, context: &str) {
        assert_eq!(a.dimensions(), b.dimensions(), "{context}: dimensions");
        for (i, (x, y)) in a.as_planar().iter().zip(b.as_planar()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{context}: sample {i} ({x} vs {y})");
        }
    }

    #[test]
    fn separable_resize_matches_reference_bitwise() {
        // The two-pass plan-driven resize evaluates the same expressions in the same
        // order as the single-pass reference, so outputs must match bit for bit —
        // upscales, downscales, mixed aspect changes, both filters.
        let img = Image::from_fn(59, 43, |x, y| {
            let v = ((x * 31 + y * 17) % 23) as f32 / 23.0;
            [v, (x as f32 / 59.0 + v) * 0.5, 1.0 - y as f32 / 43.0]
        })
        .unwrap();
        for (tw, th) in [(112usize, 112usize), (17, 90), (90, 17), (224, 13), (1, 1), (59, 44)] {
            for filter in [Filter::Bilinear, Filter::Nearest] {
                let fast = resize(&img, tw, th, filter).unwrap();
                let slow = crate::reference::resize(&img, tw, th, filter).unwrap();
                assert_images_bitwise_equal(&fast, &slow, &format!("{tw}x{th} {filter:?}"));
            }
        }
        // Repeat a resize so the second run exercises the thread-local plan cache.
        let first = resize(&img, 112, 112, Filter::Bilinear).unwrap();
        let second = resize(&img, 112, 112, Filter::Bilinear).unwrap();
        assert_images_bitwise_equal(&first, &second, "plan cache reuse");
    }

    #[test]
    fn cow_paths_borrow_when_identity() {
        use std::borrow::Cow;
        let img = gradient(64, 64);
        // Same dimensions: borrowed, no clone.
        assert!(matches!(resize_cow(&img, 64, 64, Filter::Bilinear).unwrap(), Cow::Borrowed(_)));
        // Identity crop (square image, full ratio) with matching resolution: borrowed.
        assert!(matches!(
            crop_and_resize_cow(&img, CropRatio::full(), 64).unwrap(),
            Cow::Borrowed(_)
        ));
        // Identity crop but different resolution: owned resize of the original.
        let resized = crop_and_resize_cow(&img, CropRatio::full(), 32).unwrap();
        assert!(matches!(resized, Cow::Owned(_)));
        assert_eq!(resized.dimensions(), (32, 32));
        // Real crop whose extent already matches the resolution: owned crop, no resize.
        let rect = gradient(100, 60);
        let cropped = crop_and_resize_cow(&rect, CropRatio::new(0.25).unwrap(), 30).unwrap();
        assert_eq!(cropped.dimensions(), (30, 30));
        assert_images_bitwise_equal(
            &cropped,
            &center_crop(&rect, CropRatio::new(0.25).unwrap()).unwrap(),
            "crop-only path",
        );
        // The owned wrapper agrees with the reference composition everywhere.
        for res in [20usize, 30, 64] {
            let fast = crop_and_resize(&rect, CropRatio::new(0.56).unwrap(), res).unwrap();
            let slow = crate::reference::resize(
                &center_crop(&rect, CropRatio::new(0.56).unwrap()).unwrap(),
                res,
                res,
                Filter::Bilinear,
            )
            .unwrap();
            assert_images_bitwise_equal(&fast, &slow, &format!("crop_and_resize {res}"));
        }
        // Zero resolution still errors through every path.
        assert!(crop_and_resize_cow(&img, CropRatio::full(), 0).is_err());
        assert!(crop_and_resize_cow(&rect, CropRatio::new(0.25).unwrap(), 0).is_err());
    }
}
