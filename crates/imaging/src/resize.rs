//! Resizing and cropping.
//!
//! The paper's pipeline is built around two geometric operations: *center cropping* a
//! fraction of the source image (which changes the apparent scale of objects, Figure 3)
//! and *resizing* the crop to the inference resolution (which changes the level of detail
//! and the compute cost). Both are implemented here from scratch.

use serde::{Deserialize, Serialize};

use crate::error::{ImagingError, Result};
use crate::image::Image;

/// Interpolation filters supported by [`resize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Filter {
    /// Nearest-neighbour sampling (fast, blocky).
    Nearest,
    /// Bilinear interpolation (the default used throughout the workspace, matching common
    /// training pipelines).
    Bilinear,
}

/// Resizes an image to `target_width × target_height`.
///
/// # Errors
/// Returns [`ImagingError::InvalidResize`] when either target dimension is zero.
pub fn resize(
    image: &Image,
    target_width: usize,
    target_height: usize,
    filter: Filter,
) -> Result<Image> {
    if target_width == 0 || target_height == 0 {
        return Err(ImagingError::InvalidResize { width: target_width, height: target_height });
    }
    if (target_width, target_height) == image.dimensions() {
        return Ok(image.clone());
    }
    let mut out = Image::zeros(target_width, target_height)?;
    let (sw, sh) = (image.width() as f32, image.height() as f32);
    let x_ratio = sw / target_width as f32;
    let y_ratio = sh / target_height as f32;

    match filter {
        Filter::Nearest => {
            for y in 0..target_height {
                let sy = ((y as f32 + 0.5) * y_ratio).floor().clamp(0.0, sh - 1.0) as usize;
                for x in 0..target_width {
                    let sx = ((x as f32 + 0.5) * x_ratio).floor().clamp(0.0, sw - 1.0) as usize;
                    out.set_pixel(x, y, image.pixel(sx, sy));
                }
            }
        }
        Filter::Bilinear => {
            for y in 0..target_height {
                // Align sample centres (the "half-pixel centres" convention).
                let fy = ((y as f32 + 0.5) * y_ratio - 0.5).clamp(0.0, sh - 1.0);
                let y0 = fy.floor() as usize;
                let y1 = (y0 + 1).min(image.height() - 1);
                let wy = fy - y0 as f32;
                for x in 0..target_width {
                    let fx = ((x as f32 + 0.5) * x_ratio - 0.5).clamp(0.0, sw - 1.0);
                    let x0 = fx.floor() as usize;
                    let x1 = (x0 + 1).min(image.width() - 1);
                    let wx = fx - x0 as f32;
                    let p00 = image.pixel(x0, y0);
                    let p10 = image.pixel(x1, y0);
                    let p01 = image.pixel(x0, y1);
                    let p11 = image.pixel(x1, y1);
                    let mut rgb = [0.0f32; 3];
                    for (c, v) in rgb.iter_mut().enumerate() {
                        let top = p00[c] * (1.0 - wx) + p10[c] * wx;
                        let bottom = p01[c] * (1.0 - wx) + p11[c] * wx;
                        *v = top * (1.0 - wy) + bottom * wy;
                    }
                    out.set_pixel(x, y, rgb);
                }
            }
        }
    }
    Ok(out)
}

/// Resizes an image to a square `resolution × resolution`, the shape consumed by the
/// backbone models.
///
/// # Errors
/// Returns [`ImagingError::InvalidResize`] when `resolution` is zero.
pub fn resize_square(image: &Image, resolution: usize, filter: Filter) -> Result<Image> {
    resize(image, resolution, resolution, filter)
}

/// Extracts a rectangular region.
///
/// # Errors
/// Returns [`ImagingError::InvalidCrop`] when the region has zero extent or exceeds the
/// image bounds.
pub fn crop(image: &Image, x0: usize, y0: usize, width: usize, height: usize) -> Result<Image> {
    if width == 0 || height == 0 || x0 + width > image.width() || y0 + height > image.height() {
        return Err(ImagingError::InvalidCrop {
            width: image.width(),
            height: image.height(),
            crop_width: width,
            crop_height: height,
        });
    }
    Image::from_fn(width, height, |x, y| image.pixel(x0 + x, y0 + y))
}

/// A centre-crop policy expressed as the *fraction of image area* retained, following the
/// paper's 25 % / 56 % / 75 % / 100 % crop settings (§VII-b). The linear crop extent is the
/// square root of the area fraction, so `CropRatio::new(0.25)` keeps the central half of
/// each dimension.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CropRatio(f64);

impl CropRatio {
    /// The four crop settings evaluated by the paper.
    pub const PAPER_SET: [f64; 4] = [0.25, 0.56, 0.75, 1.0];

    /// Creates a crop ratio.
    ///
    /// # Errors
    /// Returns [`ImagingError::InvalidFraction`] unless `0 < area_fraction <= 1`.
    pub fn new(area_fraction: f64) -> Result<Self> {
        if !(area_fraction > 0.0 && area_fraction <= 1.0) {
            return Err(ImagingError::InvalidFraction { name: "crop ratio", value: area_fraction });
        }
        Ok(CropRatio(area_fraction))
    }

    /// The full-image (no-op) crop.
    pub const fn full() -> Self {
        CropRatio(1.0)
    }

    /// The retained area fraction.
    pub fn area_fraction(&self) -> f64 {
        self.0
    }

    /// The retained linear fraction (`sqrt(area)`).
    pub fn linear_fraction(&self) -> f64 {
        self.0.sqrt()
    }

    /// Percentage label used in figures ("25%", "56%", …).
    pub fn label(&self) -> String {
        format!("{:.0}%", self.0 * 100.0)
    }
}

impl Default for CropRatio {
    fn default() -> Self {
        CropRatio::full()
    }
}

/// Centre-crops an image according to a [`CropRatio`].
///
/// The crop is square with side `linear_fraction * min(width, height)` — the common
/// "center crop of the short side" convention — so the result is directly resizable to a
/// square inference resolution.
///
/// # Errors
/// Returns an error if the crop degenerates to zero pixels.
pub fn center_crop(image: &Image, ratio: CropRatio) -> Result<Image> {
    let short = image.width().min(image.height());
    let side = ((short as f64) * ratio.linear_fraction()).round().max(1.0) as usize;
    let side = side.min(short);
    let x0 = (image.width() - side) / 2;
    let y0 = (image.height() - side) / 2;
    crop(image, x0, y0, side, side)
}

/// Centre-crops to the given ratio and resizes the crop to `resolution × resolution`,
/// the standard preprocessing applied before backbone inference.
///
/// # Errors
/// Propagates crop and resize errors.
pub fn crop_and_resize(image: &Image, ratio: CropRatio, resolution: usize) -> Result<Image> {
    let cropped = center_crop(image, ratio)?;
    resize_square(&cropped, resolution, Filter::Bilinear)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(width: usize, height: usize) -> Image {
        Image::from_fn(width, height, |x, y| {
            [x as f32 / width as f32, y as f32 / height as f32, 0.5]
        })
        .unwrap()
    }

    #[test]
    fn resize_identity_is_noop() {
        let img = gradient(16, 12);
        let out = resize(&img, 16, 12, Filter::Bilinear).unwrap();
        assert_eq!(img, out);
    }

    #[test]
    fn resize_rejects_zero_targets() {
        let img = gradient(8, 8);
        assert!(resize(&img, 0, 8, Filter::Bilinear).is_err());
        assert!(resize(&img, 8, 0, Filter::Nearest).is_err());
    }

    #[test]
    fn bilinear_preserves_constant_images() {
        let img = Image::filled(17, 9, [0.3, 0.6, 0.9]).unwrap();
        for (w, h) in [(8, 8), (33, 21), (1, 1), (224, 224)] {
            let out = resize(&img, w, h, Filter::Bilinear).unwrap();
            for y in 0..h {
                for x in 0..w {
                    let p = out.pixel(x, y);
                    assert!((p[0] - 0.3).abs() < 1e-5);
                    assert!((p[1] - 0.6).abs() < 1e-5);
                    assert!((p[2] - 0.9).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn downscale_then_upscale_approximates_smooth_image() {
        // A smooth gradient survives a 2x round trip with small error.
        let img = gradient(64, 64);
        let small = resize(&img, 32, 32, Filter::Bilinear).unwrap();
        let back = resize(&small, 64, 64, Filter::Bilinear).unwrap();
        assert!(img.mean_abs_diff(&back).unwrap() < 0.02);
    }

    #[test]
    fn nearest_only_copies_existing_samples() {
        let img = Image::from_fn(4, 4, |x, y| [((x + y) % 2) as f32, 0.0, 0.0]).unwrap();
        let out = resize(&img, 9, 9, Filter::Nearest).unwrap();
        for y in 0..9 {
            for x in 0..9 {
                let v = out.pixel(x, y)[0];
                assert!(v == 0.0 || v == 1.0);
            }
        }
    }

    #[test]
    fn crop_bounds_checking() {
        let img = gradient(10, 8);
        assert!(crop(&img, 0, 0, 10, 8).is_ok());
        assert!(crop(&img, 2, 2, 9, 2).is_err());
        assert!(crop(&img, 0, 0, 0, 4).is_err());
        let c = crop(&img, 3, 2, 4, 5).unwrap();
        assert_eq!(c.dimensions(), (4, 5));
        assert_eq!(c.pixel(0, 0), img.pixel(3, 2));
        assert_eq!(c.pixel(3, 4), img.pixel(6, 6));
    }

    #[test]
    fn crop_ratio_validation_and_labels() {
        assert!(CropRatio::new(0.0).is_err());
        assert!(CropRatio::new(1.2).is_err());
        assert!(CropRatio::new(-0.1).is_err());
        let r = CropRatio::new(0.25).unwrap();
        assert!((r.linear_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(r.label(), "25%");
        assert_eq!(CropRatio::full().label(), "100%");
        assert_eq!(CropRatio::default().area_fraction(), 1.0);
    }

    #[test]
    fn center_crop_sizes() {
        let img = gradient(100, 60);
        let full = center_crop(&img, CropRatio::full()).unwrap();
        assert_eq!(full.dimensions(), (60, 60));
        let quarter = center_crop(&img, CropRatio::new(0.25).unwrap()).unwrap();
        assert_eq!(quarter.dimensions(), (30, 30));
        // Centred: the centre pixel of the crop matches the centre of the original.
        let c = quarter.pixel(15, 15);
        let o = img.pixel(50, 45);
        assert!((c[0] - o[0]).abs() < 1e-6);
    }

    #[test]
    fn crop_and_resize_produces_square_resolution() {
        let img = gradient(300, 200);
        for res in [112usize, 224, 448] {
            let out = crop_and_resize(&img, CropRatio::new(0.56).unwrap(), res).unwrap();
            assert_eq!(out.dimensions(), (res, res));
        }
    }

    #[test]
    fn tiny_images_still_crop() {
        let img = gradient(2, 2);
        let out = center_crop(&img, CropRatio::new(0.05).unwrap()).unwrap();
        assert_eq!(out.dimensions(), (1, 1));
    }
}
