//! Image quality metrics: PSNR and SSIM.
//!
//! The paper's storage-calibration stage (§V) uses SSIM of a degraded image against the
//! full-quality reference (both at the target inference resolution) as a cheap proxy for
//! "enough detail for the model", and binary-searches an SSIM threshold per resolution.
//! PSNR is included as a comparison metric for the ablation benchmarks.

use serde::{Deserialize, Serialize};

use crate::error::{ImagingError, Result};
use crate::image::Image;

/// Peak signal-to-noise ratio in decibels between two images of identical dimensions,
/// computed over all three channels with peak value 1.0.
///
/// Identical images return `f64::INFINITY`.
///
/// # Errors
/// Returns [`ImagingError::DimensionMismatch`] if the image dimensions differ.
pub fn psnr(reference: &Image, distorted: &Image) -> Result<f64> {
    if reference.dimensions() != distorted.dimensions() {
        return Err(ImagingError::DimensionMismatch {
            first: reference.dimensions(),
            second: distorted.dimensions(),
        });
    }
    let mse: f64 = reference
        .as_planar()
        .iter()
        .zip(distorted.as_planar())
        .map(|(&a, &b)| {
            let d = (a - b) as f64;
            d * d
        })
        .sum::<f64>()
        / reference.as_planar().len() as f64;
    if mse <= f64::EPSILON {
        return Ok(f64::INFINITY);
    }
    Ok(10.0 * (1.0 / mse).log10())
}

/// Configuration for the windowed SSIM computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SsimConfig {
    /// Square window extent in pixels.
    pub window: usize,
    /// Stride between window origins (larger strides trade accuracy for speed; the
    /// calibration harness uses 4).
    pub stride: usize,
    /// Stabilisation constant `C1 = (k1 * L)^2` with `L = 1`.
    pub k1: f64,
    /// Stabilisation constant `C2 = (k2 * L)^2` with `L = 1`.
    pub k2: f64,
}

impl Default for SsimConfig {
    fn default() -> Self {
        SsimConfig { window: 8, stride: 4, k1: 0.01, k2: 0.03 }
    }
}

impl SsimConfig {
    /// A dense (stride-1, 11-pixel window) configuration closer to the canonical SSIM
    /// definition; slower but slightly more faithful.
    pub fn dense() -> Self {
        SsimConfig { window: 11, stride: 1, ..Self::default() }
    }
}

/// Mean structural similarity between two images of identical dimensions, computed on the
/// luma plane over uniform windows.
///
/// The result lies in `[-1, 1]`; identical images score exactly `1.0`.
///
/// # Errors
/// Returns [`ImagingError::DimensionMismatch`] if the image dimensions differ, or
/// [`ImagingError::EmptyImage`] if the window or stride is zero.
pub fn ssim_with(reference: &Image, distorted: &Image, config: SsimConfig) -> Result<f64> {
    if reference.dimensions() != distorted.dimensions() {
        return Err(ImagingError::DimensionMismatch {
            first: reference.dimensions(),
            second: distorted.dimensions(),
        });
    }
    if config.window == 0 || config.stride == 0 {
        return Err(ImagingError::EmptyImage);
    }
    let (w, h) = reference.dimensions();
    let lx = reference.to_luma();
    let ly = distorted.to_luma();
    let win = config.window.min(w).min(h);
    let c1 = (config.k1 * 1.0_f64).powi(2);
    let c2 = (config.k2 * 1.0_f64).powi(2);

    let mut total = 0.0;
    let mut count = 0usize;
    let mut y0 = 0;
    while y0 + win <= h {
        let mut x0 = 0;
        while x0 + win <= w {
            let mut sum_x = 0.0f64;
            let mut sum_y = 0.0f64;
            let mut sum_xx = 0.0f64;
            let mut sum_yy = 0.0f64;
            let mut sum_xy = 0.0f64;
            for dy in 0..win {
                let row = (y0 + dy) * w + x0;
                for dx in 0..win {
                    let a = lx[row + dx] as f64;
                    let b = ly[row + dx] as f64;
                    sum_x += a;
                    sum_y += b;
                    sum_xx += a * a;
                    sum_yy += b * b;
                    sum_xy += a * b;
                }
            }
            let n = (win * win) as f64;
            let mu_x = sum_x / n;
            let mu_y = sum_y / n;
            let var_x = (sum_xx / n - mu_x * mu_x).max(0.0);
            let var_y = (sum_yy / n - mu_y * mu_y).max(0.0);
            let cov = sum_xy / n - mu_x * mu_y;
            let score = ((2.0 * mu_x * mu_y + c1) * (2.0 * cov + c2))
                / ((mu_x * mu_x + mu_y * mu_y + c1) * (var_x + var_y + c2));
            total += score;
            count += 1;
            x0 += config.stride;
        }
        y0 += config.stride;
    }
    if count == 0 {
        // Images smaller than the window: fall back to a single global window.
        let shrunk = SsimConfig { window: w.min(h), stride: 1, ..config };
        if shrunk.window == win {
            // Degenerate 0-sized dimension cannot happen (Image forbids it); return 1 for
            // safety.
            return Ok(1.0);
        }
        return ssim_with(reference, distorted, shrunk);
    }
    Ok((total / count as f64).clamp(-1.0, 1.0))
}

/// Mean SSIM with the default configuration. See [`ssim_with`].
///
/// # Errors
/// Returns [`ImagingError::DimensionMismatch`] if the image dimensions differ.
pub fn ssim(reference: &Image, distorted: &Image) -> Result<f64> {
    ssim_with(reference, distorted, SsimConfig::default())
}

/// Which quality metric to use for storage calibration (the paper uses SSIM; PSNR is kept
/// for the ablation study in the benchmark harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QualityMetric {
    /// Structural similarity in `[-1, 1]`.
    Ssim,
    /// Peak signal-to-noise ratio in dB, squashed to `[0, 1]` via `db / 50` for
    /// threshold-search compatibility.
    Psnr,
}

impl QualityMetric {
    /// Evaluates the metric, returning a value in a roughly `[0, 1]` range where larger is
    /// better.
    ///
    /// # Errors
    /// Returns an error if the image dimensions differ.
    pub fn evaluate(&self, reference: &Image, distorted: &Image) -> Result<f64> {
        match self {
            QualityMetric::Ssim => ssim(reference, distorted),
            QualityMetric::Psnr => {
                let db = psnr(reference, distorted)?;
                Ok((db / 50.0).clamp(0.0, 1.0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image(seed: u32) -> Image {
        Image::from_fn(48, 40, |x, y| {
            let v = ((x as f32 * 0.3 + seed as f32).sin() + (y as f32 * 0.2).cos()) * 0.25 + 0.5;
            [v, v * 0.8, 1.0 - v]
        })
        .unwrap()
    }

    fn add_noise(img: &Image, amplitude: f32) -> Image {
        let mut out = img.clone();
        for y in 0..img.height() {
            for x in 0..img.width() {
                let mut p = img.pixel(x, y);
                let n = (((x * 31 + y * 17) % 13) as f32 / 13.0 - 0.5) * amplitude;
                for v in &mut p {
                    *v = (*v + n).clamp(0.0, 1.0);
                }
                out.set_pixel(x, y, p);
            }
        }
        out
    }

    #[test]
    fn psnr_of_identical_images_is_infinite() {
        let img = test_image(0);
        assert!(psnr(&img, &img).unwrap().is_infinite());
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let img = test_image(1);
        let light = add_noise(&img, 0.05);
        let heavy = add_noise(&img, 0.4);
        let p_light = psnr(&img, &light).unwrap();
        let p_heavy = psnr(&img, &heavy).unwrap();
        assert!(p_light > p_heavy);
        assert!(p_light > 20.0);
    }

    #[test]
    fn psnr_requires_matching_dimensions() {
        let a = test_image(0);
        let b = Image::zeros(3, 3).unwrap();
        assert!(psnr(&a, &b).is_err());
        assert!(ssim(&a, &b).is_err());
    }

    #[test]
    fn ssim_identity_is_one() {
        let img = test_image(2);
        let s = ssim(&img, &img).unwrap();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ssim_orders_degradations() {
        let img = test_image(3);
        let light = add_noise(&img, 0.05);
        let heavy = add_noise(&img, 0.5);
        let s_light = ssim(&img, &light).unwrap();
        let s_heavy = ssim(&img, &heavy).unwrap();
        assert!(s_light > s_heavy, "{s_light} vs {s_heavy}");
        assert!(s_light > 0.8);
        assert!(s_heavy < 0.9);
    }

    #[test]
    fn ssim_bounds() {
        let img = test_image(4);
        let inverted = Image::from_fn(img.width(), img.height(), |x, y| {
            let p = img.pixel(x, y);
            [1.0 - p[0], 1.0 - p[1], 1.0 - p[2]]
        })
        .unwrap();
        let s = ssim(&img, &inverted).unwrap();
        assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn ssim_handles_images_smaller_than_window() {
        let a = Image::filled(4, 4, [0.5; 3]).unwrap();
        let b = Image::filled(4, 4, [0.25; 3]).unwrap();
        let s =
            ssim_with(&a, &b, SsimConfig { window: 16, stride: 4, ..Default::default() }).unwrap();
        assert!((-1.0..=1.0).contains(&s));
        assert!(s < 1.0);
    }

    #[test]
    fn ssim_rejects_degenerate_config() {
        let img = test_image(5);
        assert!(ssim_with(&img, &img, SsimConfig { window: 0, ..Default::default() }).is_err());
        assert!(ssim_with(&img, &img, SsimConfig { stride: 0, ..Default::default() }).is_err());
    }

    #[test]
    fn dense_config_close_to_default() {
        let img = test_image(6);
        let noisy = add_noise(&img, 0.1);
        let fast = ssim(&img, &noisy).unwrap();
        let dense = ssim_with(&img, &noisy, SsimConfig::dense()).unwrap();
        assert!((fast - dense).abs() < 0.08, "fast {fast} vs dense {dense}");
    }

    #[test]
    fn quality_metric_enum_dispatch() {
        let img = test_image(7);
        let noisy = add_noise(&img, 0.2);
        let s = QualityMetric::Ssim.evaluate(&img, &noisy).unwrap();
        let p = QualityMetric::Psnr.evaluate(&img, &noisy).unwrap();
        assert!((0.0..=1.0).contains(&s));
        assert!((0.0..=1.0).contains(&p));
        let perfect = QualityMetric::Psnr.evaluate(&img, &img).unwrap();
        assert_eq!(perfect, 1.0);
    }
}
