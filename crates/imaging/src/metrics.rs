//! Image quality metrics: PSNR and SSIM.
//!
//! The paper's storage-calibration stage (§V) uses SSIM of a degraded image against the
//! full-quality reference (both at the target inference resolution) as a cheap proxy for
//! "enough detail for the model", and binary-searches an SSIM threshold per resolution.
//! PSNR is included as a comparison metric for the ablation benchmarks.

use serde::{Deserialize, Serialize};

use crate::error::{ImagingError, Result};
use crate::image::Image;

/// Peak signal-to-noise ratio in decibels between two images of identical dimensions,
/// computed over all three channels with peak value 1.0.
///
/// Identical images return `f64::INFINITY`.
///
/// # Errors
/// Returns [`ImagingError::DimensionMismatch`] if the image dimensions differ.
pub fn psnr(reference: &Image, distorted: &Image) -> Result<f64> {
    if reference.dimensions() != distorted.dimensions() {
        return Err(ImagingError::DimensionMismatch {
            first: reference.dimensions(),
            second: distorted.dimensions(),
        });
    }
    let mse: f64 = reference
        .as_planar()
        .iter()
        .zip(distorted.as_planar())
        .map(|(&a, &b)| {
            let d = (a - b) as f64;
            d * d
        })
        .sum::<f64>()
        / reference.as_planar().len() as f64;
    if mse <= f64::EPSILON {
        return Ok(f64::INFINITY);
    }
    Ok(10.0 * (1.0 / mse).log10())
}

/// Configuration for the windowed SSIM computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SsimConfig {
    /// Square window extent in pixels.
    pub window: usize,
    /// Stride between window origins (larger strides trade accuracy for speed; the
    /// calibration harness uses 4).
    pub stride: usize,
    /// Stabilisation constant `C1 = (k1 * L)^2` with `L = 1`.
    pub k1: f64,
    /// Stabilisation constant `C2 = (k2 * L)^2` with `L = 1`.
    pub k2: f64,
}

impl Default for SsimConfig {
    fn default() -> Self {
        SsimConfig { window: 8, stride: 4, k1: 0.01, k2: 0.03 }
    }
}

impl SsimConfig {
    /// A dense (stride-1, 11-pixel window) configuration closer to the canonical SSIM
    /// definition; slower but slightly more faithful.
    pub fn dense() -> Self {
        SsimConfig { window: 11, stride: 1, ..Self::default() }
    }
}

/// Sliding integral state behind the O(1)-per-window statistics: running sums of
/// reference luma, distorted luma, their squares, and the cross-product, interleaved as
/// `[sum_x, sum_y, sum_xx, sum_yy, sum_xy]` entries.
///
/// `cols[x]` holds the five sums of column `x` over the current window-row band
/// `[y0, y0 + win)`; stepping `y0` adds the entering rows and subtracts the leaving ones,
/// so every image row is touched exactly twice regardless of how densely windows
/// overlap, and the whole state (a few `width`-long arrays) stays cache-resident — no
/// image-sized table is ever materialized. For each window row, [`begin_row`]
/// (SsimIntegrals::begin_row) turns the column sums into horizontal prefix sums and a
/// window statistic becomes two prefix lookups per column band.
///
/// Two properties keep the agreement with the reference implementation at the ~1e-13
/// floor (documented as ≤ 1e-12, pinned by tests): the column sums have magnitude
/// ≤ `win` (the add/subtract chain over the image height cannot amplify rounding
/// beyond ulps of that small magnitude), and the prefix sums restart every `win` columns
/// (a window then spans at most two bands), bounding them by `win²` instead of the
/// full-image sum a classic summed-area table reaches.
struct SsimIntegrals {
    /// Effective window extent; also the column-band width of the prefix sums.
    win: usize,
    /// Per-column running sums over the current row band.
    cols: Vec<[f64; 5]>,
    /// Banded horizontal prefix sums of `cols`, one zero entry per band.
    prefix: Vec<[f64; 5]>,
    /// Starting index of each column band inside `prefix`.
    band_offsets: Vec<usize>,
    /// Next source row to be added into `cols`.
    row_add: usize,
    /// Next source row to be subtracted out of `cols`.
    row_sub: usize,
}

/// The banded-prefix layout shared by [`SsimIntegrals`] and [`SsimReference`]:
/// per-band starting indices plus the total prefix length (each band holds its
/// column count plus one leading zero entry).
fn band_layout(w: usize, win: usize) -> (Vec<usize>, usize) {
    let num_bands = w.div_ceil(win);
    let mut band_offsets = Vec::with_capacity(num_bands);
    let mut len = 0usize;
    for c in 0..num_bands {
        band_offsets.push(len);
        len += win.min(w - c * win) + 1;
    }
    (band_offsets, len)
}

impl SsimIntegrals {
    fn new(w: usize, win: usize) -> Self {
        let (band_offsets, len) = band_layout(w, win);
        SsimIntegrals {
            win,
            cols: vec![[0.0; 5]; w],
            prefix: vec![[0.0; 5]; len],
            band_offsets,
            row_add: 0,
            row_sub: 0,
        }
    }

    /// Folds one source row into the column sums with the given sign.
    fn apply_row(&mut self, lx_row: &[f32], ly_row: &[f32], add: bool) {
        for ((col, &a), &v) in self.cols.iter_mut().zip(lx_row).zip(ly_row) {
            let (a, v) = (a as f64, v as f64);
            let terms = [a, v, a * a, v * v, a * v];
            for k in 0..5 {
                if add {
                    col[k] += terms[k];
                } else {
                    col[k] -= terms[k];
                }
            }
        }
    }

    /// Slides the column sums to cover rows `[y0, y0 + win)` and rebuilds the banded
    /// prefix sums for that window row.
    fn begin_row(&mut self, lx: &[f32], ly: &[f32], w: usize, y0: usize) {
        while self.row_add < y0 + self.win {
            let y = self.row_add;
            self.apply_row(&lx[y * w..(y + 1) * w], &ly[y * w..(y + 1) * w], true);
            self.row_add += 1;
        }
        while self.row_sub < y0 {
            let y = self.row_sub;
            self.apply_row(&lx[y * w..(y + 1) * w], &ly[y * w..(y + 1) * w], false);
            self.row_sub += 1;
        }
        for (c, &base) in self.band_offsets.iter().enumerate() {
            let x_start = c * self.win;
            let width = self.win.min(w - x_start);
            self.prefix[base] = [0.0; 5];
            for i in 0..width {
                let col = self.cols[x_start + i];
                let prev = self.prefix[base + i];
                let dst = &mut self.prefix[base + i + 1];
                for k in 0..5 {
                    dst[k] = prev[k] + col[k];
                }
            }
        }
    }

    /// The five sums over the window `[x0, x0 + win)` of the current row — at most two
    /// prefix-band segments.
    #[inline]
    fn window(&self, x0: usize) -> [f64; 5] {
        let x1 = x0 + self.win;
        let b0 = x0 / self.win;
        let b1 = (x1 - 1) / self.win;
        let mut acc = [0.0f64; 5];
        let mut segment = |band: usize, c0: usize, c1: usize| {
            let lo = &self.prefix[self.band_offsets[band] + c0];
            let hi = &self.prefix[self.band_offsets[band] + c1];
            for k in 0..5 {
                acc[k] += hi[k] - lo[k];
            }
        };
        if b0 == b1 {
            segment(b0, x0 - b0 * self.win, x1 - b0 * self.win);
        } else {
            let split = b1 * self.win;
            segment(b0, x0 - b0 * self.win, split - b0 * self.win);
            segment(b1, 0, x1 - split);
        }
        acc
    }
}

/// Mean structural similarity between two images of identical dimensions, computed on the
/// luma plane over uniform windows.
///
/// The result lies in `[-1, 1]`; identical images score exactly `1.0`.
///
/// Window statistics come from sliding integral sums (running sums of luma, luma², and
/// the cross-product — see [`SsimIntegrals`]), making each window O(1) instead of
/// O(window²). Relative to the reference implementation
/// ([`crate::reference::ssim_with`]), only the association order of the five window sums
/// changes (summed-area differences instead of a fresh row-major accumulation per
/// window); every other operation is identical, so scores agree to ≈1e-13 and the parity
/// tests pin the difference at ≤ 1e-12.
///
/// # Errors
/// Returns [`ImagingError::DimensionMismatch`] if the image dimensions differ, or
/// [`ImagingError::EmptyImage`] if the window or stride is zero.
pub fn ssim_with(reference: &Image, distorted: &Image, config: SsimConfig) -> Result<f64> {
    if reference.dimensions() != distorted.dimensions() {
        return Err(ImagingError::DimensionMismatch {
            first: reference.dimensions(),
            second: distorted.dimensions(),
        });
    }
    if config.window == 0 || config.stride == 0 {
        return Err(ImagingError::EmptyImage);
    }
    let (w, h) = reference.dimensions();
    let lx = reference.to_luma();
    let ly = distorted.to_luma();
    let win = config.window.min(w).min(h);
    let c1 = (config.k1 * 1.0_f64).powi(2);
    let c2 = (config.k2 * 1.0_f64).powi(2);

    let mut t = SsimIntegrals::new(w, win);
    let mut total = 0.0;
    let mut count = 0usize;
    let mut y0 = 0;
    while y0 + win <= h {
        t.begin_row(&lx, &ly, w, y0);
        let mut x0 = 0;
        while x0 + win <= w {
            let [sum_x, sum_y, sum_xx, sum_yy, sum_xy] = t.window(x0);
            let n = (win * win) as f64;
            let mu_x = sum_x / n;
            let mu_y = sum_y / n;
            let var_x = (sum_xx / n - mu_x * mu_x).max(0.0);
            let var_y = (sum_yy / n - mu_y * mu_y).max(0.0);
            let cov = sum_xy / n - mu_x * mu_y;
            let score = ((2.0 * mu_x * mu_y + c1) * (2.0 * cov + c2))
                / ((mu_x * mu_x + mu_y * mu_y + c1) * (var_x + var_y + c2));
            total += score;
            count += 1;
            x0 += config.stride;
        }
        y0 += config.stride;
    }
    if count == 0 {
        // Images smaller than the window: fall back to a single global window.
        let shrunk = SsimConfig { window: w.min(h), stride: 1, ..config };
        if shrunk.window == win {
            // Degenerate 0-sized dimension cannot happen (Image forbids it); return 1 for
            // safety.
            return Ok(1.0);
        }
        return ssim_with(reference, distorted, shrunk);
    }
    Ok((total / count as f64).clamp(-1.0, 1.0))
}

/// Mean SSIM with the default configuration. See [`ssim_with`].
///
/// # Errors
/// Returns [`ImagingError::DimensionMismatch`] if the image dimensions differ.
pub fn ssim(reference: &Image, distorted: &Image) -> Result<f64> {
    ssim_with(reference, distorted, SsimConfig::default())
}

/// Persistent per-reference SSIM state: everything [`ssim_with`] derives from the
/// *reference* image alone, precomputed once and reused across many distorted
/// candidates.
///
/// Of the five sliding window sums, two (`Σx`, `Σx²`) plus the reference luma
/// plane depend only on the reference. Scoring the same reference against a
/// sequence of candidates — exactly what the progressive-scan planners do, which
/// score every scan prefix of a frame against one ground-truth resize — rebuilds
/// that state from scratch on every call. A `SsimReference` instead stores the
/// banded prefix sums of `[Σx, Σx²]` for every window row at construction, so
/// [`score`](Self::score) only slides the three distorted-dependent sums
/// (`Σy`, `Σy²`, `Σxy`) and skips the reference luma conversion entirely —
/// roughly the 60 % of the integral work (plus one full-image luma pass and its
/// allocation) that `ssim_with` repays per call.
///
/// **Parity contract:** every retained arithmetic operation is identical to
/// [`ssim_with`] — each of the five sums accumulates independently there, so
/// splitting them across construction/score changes no operation order — and the
/// parity tests pin `score` to be **bitwise identical** to `ssim_with`.
///
/// # Examples
/// ```
/// use rescnn_imaging::{ssim, Image, SsimConfig, SsimReference};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let reference = Image::from_fn(32, 24, |x, y| [(x as f32) / 32.0, 0.5, (y as f32) / 24.0])?;
/// let candidate = Image::filled(32, 24, [0.4, 0.5, 0.6])?;
/// let state = SsimReference::new(&reference, SsimConfig::default())?;
/// assert_eq!(state.score(&candidate)?, ssim(&reference, &candidate)?);
/// # Ok(())
/// # }
/// ```
pub struct SsimReference {
    width: usize,
    height: usize,
    win: usize,
    stride: usize,
    c1: f64,
    c2: f64,
    /// Reference luma plane (consumed by the `Σxy` cross sums during scoring).
    lx: Vec<f32>,
    /// `[Σx, Σx²]` banded prefix sums, one block of `prefix_len` entries per
    /// window row (`y0 = row_index * stride`).
    ref_prefix: Vec<[f64; 2]>,
    band_offsets: Vec<usize>,
    prefix_len: usize,
}

impl SsimReference {
    /// Precomputes the reference-only SSIM state for `reference` under `config`.
    ///
    /// # Errors
    /// Returns [`ImagingError::EmptyImage`] if the window or stride is zero.
    pub fn new(reference: &Image, config: SsimConfig) -> Result<Self> {
        if config.window == 0 || config.stride == 0 {
            return Err(ImagingError::EmptyImage);
        }
        let (w, h) = reference.dimensions();
        let lx = reference.to_luma();
        let win = config.window.min(w).min(h);
        let (band_offsets, prefix_len) = band_layout(w, win);

        // Slide the reference column sums down the image exactly like
        // `SsimIntegrals`, keeping only the x components, and snapshot the banded
        // prefixes of every window row.
        let mut cols = vec![[0.0f64; 2]; w];
        let mut row_add = 0usize;
        let mut row_sub = 0usize;
        let mut ref_prefix = Vec::new();
        let mut y0 = 0;
        while y0 + win <= h {
            while row_add < y0 + win {
                for (col, &a) in cols.iter_mut().zip(&lx[row_add * w..(row_add + 1) * w]) {
                    let a = a as f64;
                    col[0] += a;
                    col[1] += a * a;
                }
                row_add += 1;
            }
            while row_sub < y0 {
                for (col, &a) in cols.iter_mut().zip(&lx[row_sub * w..(row_sub + 1) * w]) {
                    let a = a as f64;
                    col[0] -= a;
                    col[1] -= a * a;
                }
                row_sub += 1;
            }
            let base = ref_prefix.len();
            ref_prefix.resize(base + prefix_len, [0.0; 2]);
            for (c, &offset) in band_offsets.iter().enumerate() {
                let x_start = c * win;
                let width = win.min(w - x_start);
                ref_prefix[base + offset] = [0.0; 2];
                for i in 0..width {
                    let col = cols[x_start + i];
                    let prev = ref_prefix[base + offset + i];
                    ref_prefix[base + offset + i + 1] = [prev[0] + col[0], prev[1] + col[1]];
                }
            }
            y0 += config.stride;
        }

        Ok(SsimReference {
            width: w,
            height: h,
            win,
            stride: config.stride,
            c1: (config.k1 * 1.0_f64).powi(2),
            c2: (config.k2 * 1.0_f64).powi(2),
            lx,
            ref_prefix,
            band_offsets,
            prefix_len,
        })
    }

    /// Dimensions of the reference image this state was built from.
    pub fn dimensions(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Sums a banded-prefix window `[x0, x0 + win)`: at most two band segments.
    #[inline]
    fn window_sums<const K: usize>(&self, prefix: &[[f64; K]], x0: usize) -> [f64; K] {
        let x1 = x0 + self.win;
        let b0 = x0 / self.win;
        let b1 = (x1 - 1) / self.win;
        let mut acc = [0.0f64; K];
        let mut segment = |band: usize, c0: usize, c1: usize| {
            let lo = &prefix[self.band_offsets[band] + c0];
            let hi = &prefix[self.band_offsets[band] + c1];
            for k in 0..K {
                acc[k] += hi[k] - lo[k];
            }
        };
        if b0 == b1 {
            segment(b0, x0 - b0 * self.win, x1 - b0 * self.win);
        } else {
            let split = b1 * self.win;
            segment(b0, x0 - b0 * self.win, split - b0 * self.win);
            segment(b1, 0, x1 - split);
        }
        acc
    }

    /// Mean SSIM of `distorted` against the stored reference — bitwise identical
    /// to `ssim_with(reference, distorted, config)` for the construction-time
    /// reference and configuration.
    ///
    /// # Errors
    /// Returns [`ImagingError::DimensionMismatch`] if `distorted` does not match
    /// the reference dimensions.
    pub fn score(&self, distorted: &Image) -> Result<f64> {
        if distorted.dimensions() != (self.width, self.height) {
            return Err(ImagingError::DimensionMismatch {
                first: (self.width, self.height),
                second: distorted.dimensions(),
            });
        }
        let (w, h) = (self.width, self.height);
        let win = self.win;
        let ly = distorted.to_luma();

        let mut cols = vec![[0.0f64; 3]; w];
        let mut prefix = vec![[0.0f64; 3]; self.prefix_len];
        let mut row_add = 0usize;
        let mut row_sub = 0usize;
        let mut total = 0.0;
        let mut count = 0usize;
        let mut row_index = 0usize;
        let mut y0 = 0;
        while y0 + win <= h {
            // Slide the distorted-dependent column sums (Σy, Σy², Σxy).
            let apply = |cols: &mut Vec<[f64; 3]>, y: usize, add: bool| {
                let lx_row = &self.lx[y * w..(y + 1) * w];
                let ly_row = &ly[y * w..(y + 1) * w];
                for ((col, &a), &v) in cols.iter_mut().zip(lx_row).zip(ly_row) {
                    let (a, v) = (a as f64, v as f64);
                    let terms = [v, v * v, a * v];
                    for k in 0..3 {
                        if add {
                            col[k] += terms[k];
                        } else {
                            col[k] -= terms[k];
                        }
                    }
                }
            };
            while row_add < y0 + win {
                apply(&mut cols, row_add, true);
                row_add += 1;
            }
            while row_sub < y0 {
                apply(&mut cols, row_sub, false);
                row_sub += 1;
            }
            for (c, &offset) in self.band_offsets.iter().enumerate() {
                let x_start = c * win;
                let width = win.min(w - x_start);
                prefix[offset] = [0.0; 3];
                for i in 0..width {
                    let col = cols[x_start + i];
                    let prev = prefix[offset + i];
                    let dst = &mut prefix[offset + i + 1];
                    for k in 0..3 {
                        dst[k] = prev[k] + col[k];
                    }
                }
            }

            let ref_row =
                &self.ref_prefix[row_index * self.prefix_len..(row_index + 1) * self.prefix_len];
            let mut x0 = 0;
            while x0 + win <= w {
                let [sum_x, sum_xx] = self.window_sums(ref_row, x0);
                let [sum_y, sum_yy, sum_xy] = self.window_sums(&prefix, x0);
                let n = (win * win) as f64;
                let mu_x = sum_x / n;
                let mu_y = sum_y / n;
                let var_x = (sum_xx / n - mu_x * mu_x).max(0.0);
                let var_y = (sum_yy / n - mu_y * mu_y).max(0.0);
                let cov = sum_xy / n - mu_x * mu_y;
                let score = ((2.0 * mu_x * mu_y + self.c1) * (2.0 * cov + self.c2))
                    / ((mu_x * mu_x + mu_y * mu_y + self.c1) * (var_x + var_y + self.c2));
                total += score;
                count += 1;
                x0 += self.stride;
            }
            row_index += 1;
            y0 += self.stride;
        }
        if count == 0 {
            // Unreachable in practice: `win ≤ min(w, h)` guarantees at least one
            // window position, matching `ssim_with`'s degenerate fallback result.
            return Ok(1.0);
        }
        Ok((total / count as f64).clamp(-1.0, 1.0))
    }
}

/// Which quality metric to use for storage calibration (the paper uses SSIM; PSNR is kept
/// for the ablation study in the benchmark harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QualityMetric {
    /// Structural similarity in `[-1, 1]`.
    Ssim,
    /// Peak signal-to-noise ratio in dB, squashed to `[0, 1]` via `db / 50` for
    /// threshold-search compatibility.
    Psnr,
}

impl QualityMetric {
    /// Evaluates the metric, returning a value in a roughly `[0, 1]` range where larger is
    /// better.
    ///
    /// # Errors
    /// Returns an error if the image dimensions differ.
    pub fn evaluate(&self, reference: &Image, distorted: &Image) -> Result<f64> {
        match self {
            QualityMetric::Ssim => ssim(reference, distorted),
            QualityMetric::Psnr => {
                let db = psnr(reference, distorted)?;
                Ok((db / 50.0).clamp(0.0, 1.0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image(seed: u32) -> Image {
        Image::from_fn(48, 40, |x, y| {
            let v = ((x as f32 * 0.3 + seed as f32).sin() + (y as f32 * 0.2).cos()) * 0.25 + 0.5;
            [v, v * 0.8, 1.0 - v]
        })
        .unwrap()
    }

    fn add_noise(img: &Image, amplitude: f32) -> Image {
        let mut out = img.clone();
        for y in 0..img.height() {
            for x in 0..img.width() {
                let mut p = img.pixel(x, y);
                let n = (((x * 31 + y * 17) % 13) as f32 / 13.0 - 0.5) * amplitude;
                for v in &mut p {
                    *v = (*v + n).clamp(0.0, 1.0);
                }
                out.set_pixel(x, y, p);
            }
        }
        out
    }

    #[test]
    fn psnr_of_identical_images_is_infinite() {
        let img = test_image(0);
        assert!(psnr(&img, &img).unwrap().is_infinite());
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let img = test_image(1);
        let light = add_noise(&img, 0.05);
        let heavy = add_noise(&img, 0.4);
        let p_light = psnr(&img, &light).unwrap();
        let p_heavy = psnr(&img, &heavy).unwrap();
        assert!(p_light > p_heavy);
        assert!(p_light > 20.0);
    }

    #[test]
    fn psnr_requires_matching_dimensions() {
        let a = test_image(0);
        let b = Image::zeros(3, 3).unwrap();
        assert!(psnr(&a, &b).is_err());
        assert!(ssim(&a, &b).is_err());
    }

    #[test]
    fn ssim_identity_is_one() {
        let img = test_image(2);
        let s = ssim(&img, &img).unwrap();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ssim_orders_degradations() {
        let img = test_image(3);
        let light = add_noise(&img, 0.05);
        let heavy = add_noise(&img, 0.5);
        let s_light = ssim(&img, &light).unwrap();
        let s_heavy = ssim(&img, &heavy).unwrap();
        assert!(s_light > s_heavy, "{s_light} vs {s_heavy}");
        assert!(s_light > 0.8);
        assert!(s_heavy < 0.9);
    }

    #[test]
    fn ssim_bounds() {
        let img = test_image(4);
        let inverted = Image::from_fn(img.width(), img.height(), |x, y| {
            let p = img.pixel(x, y);
            [1.0 - p[0], 1.0 - p[1], 1.0 - p[2]]
        })
        .unwrap();
        let s = ssim(&img, &inverted).unwrap();
        assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn ssim_handles_images_smaller_than_window() {
        let a = Image::filled(4, 4, [0.5; 3]).unwrap();
        let b = Image::filled(4, 4, [0.25; 3]).unwrap();
        let s =
            ssim_with(&a, &b, SsimConfig { window: 16, stride: 4, ..Default::default() }).unwrap();
        assert!((-1.0..=1.0).contains(&s));
        assert!(s < 1.0);
    }

    #[test]
    fn ssim_rejects_degenerate_config() {
        let img = test_image(5);
        assert!(ssim_with(&img, &img, SsimConfig { window: 0, ..Default::default() }).is_err());
        assert!(ssim_with(&img, &img, SsimConfig { stride: 0, ..Default::default() }).is_err());
    }

    #[test]
    fn dense_config_close_to_default() {
        let img = test_image(6);
        let noisy = add_noise(&img, 0.1);
        let fast = ssim(&img, &noisy).unwrap();
        let dense = ssim_with(&img, &noisy, SsimConfig::dense()).unwrap();
        assert!((fast - dense).abs() < 0.08, "fast {fast} vs dense {dense}");
    }

    #[test]
    fn integral_ssim_matches_reference_within_1e12() {
        // The integral-image rewrite only changes the association order of the five
        // window sums; everything else is bit-identical arithmetic. The documented
        // contract is agreement with the pre-rewrite implementation to ≤ 1e-12, across
        // image sizes (larger images stress the summed-area cancellation the most),
        // window/stride shapes, and the smaller-than-window fallback.
        use crate::synth::{render_scene, SceneSpec};
        let configs = [
            SsimConfig::default(),
            SsimConfig::dense(),
            SsimConfig { window: 16, stride: 3, ..Default::default() },
            SsimConfig { window: 64, stride: 1, ..Default::default() },
        ];
        for (w, h, seed) in [(48usize, 40usize, 0u64), (224, 224, 5), (331, 257, 9), (472, 405, 2)]
        {
            let a =
                render_scene(&SceneSpec::new(w, h, 3).with_seed(seed).with_detail(0.8)).unwrap();
            let b = render_scene(&SceneSpec::new(w, h, 7).with_seed(seed + 1)).unwrap();
            for config in configs {
                let fast = ssim_with(&a, &b, config).unwrap();
                let slow = crate::reference::ssim_with(&a, &b, config).unwrap();
                assert!(
                    (fast - slow).abs() <= 1e-12,
                    "{w}x{h} {config:?}: {fast} vs {slow} (diff {})",
                    (fast - slow).abs()
                );
            }
        }
        // Smaller-than-window fallback recursion agrees too.
        let a = Image::filled(4, 4, [0.5; 3]).unwrap();
        let b = Image::filled(4, 4, [0.25; 3]).unwrap();
        let config = SsimConfig { window: 16, stride: 4, ..Default::default() };
        let fast = ssim_with(&a, &b, config).unwrap();
        let slow = crate::reference::ssim_with(&a, &b, config).unwrap();
        assert!((fast - slow).abs() <= 1e-12);
    }

    #[test]
    fn ssim_reference_state_matches_ssim_with_bitwise() {
        // The persistent per-reference state splits the five window sums into a
        // reference part (precomputed once) and a distorted part (per score),
        // changing no operation order — so scores must be *bitwise* identical to
        // ssim_with, across sizes, configs, and many candidates per reference.
        use crate::synth::{render_scene, SceneSpec};
        let configs = [
            SsimConfig::default(),
            SsimConfig::dense(),
            SsimConfig { window: 16, stride: 3, ..Default::default() },
            SsimConfig { window: 64, stride: 1, ..Default::default() },
        ];
        for (w, h, seed) in [(48usize, 40usize, 0u64), (224, 224, 5), (331, 257, 9)] {
            let reference =
                render_scene(&SceneSpec::new(w, h, 3).with_seed(seed).with_detail(0.8)).unwrap();
            for config in configs {
                let state = SsimReference::new(&reference, config).unwrap();
                assert_eq!(state.dimensions(), (w, h));
                // One state scores a whole sequence of candidates — the planner's
                // scan-prefix pattern.
                for candidate_seed in 0..4u64 {
                    let candidate =
                        render_scene(&SceneSpec::new(w, h, 5).with_seed(seed + candidate_seed))
                            .unwrap();
                    let fast = state.score(&candidate).unwrap();
                    let slow = ssim_with(&reference, &candidate, config).unwrap();
                    assert_eq!(
                        fast.to_bits(),
                        slow.to_bits(),
                        "{w}x{h} {config:?} candidate {candidate_seed}: {fast} vs {slow}"
                    );
                }
            }
        }
        // Identity and smaller-than-window cases agree too.
        let tiny_a = Image::filled(4, 4, [0.5; 3]).unwrap();
        let tiny_b = Image::filled(4, 4, [0.25; 3]).unwrap();
        let config = SsimConfig { window: 16, stride: 4, ..Default::default() };
        let state = SsimReference::new(&tiny_a, config).unwrap();
        assert_eq!(
            state.score(&tiny_b).unwrap().to_bits(),
            ssim_with(&tiny_a, &tiny_b, config).unwrap().to_bits()
        );
        assert_eq!(state.score(&tiny_a).unwrap(), 1.0);
    }

    #[test]
    fn ssim_reference_state_rejects_bad_inputs() {
        let img = test_image(8);
        assert!(SsimReference::new(&img, SsimConfig { window: 0, ..Default::default() }).is_err());
        assert!(SsimReference::new(&img, SsimConfig { stride: 0, ..Default::default() }).is_err());
        let state = SsimReference::new(&img, SsimConfig::default()).unwrap();
        let other = Image::zeros(3, 3).unwrap();
        assert!(state.score(&other).is_err());
    }

    #[test]
    fn quality_metric_enum_dispatch() {
        let img = test_image(7);
        let noisy = add_noise(&img, 0.2);
        let s = QualityMetric::Ssim.evaluate(&img, &noisy).unwrap();
        let p = QualityMetric::Psnr.evaluate(&img, &noisy).unwrap();
        assert!((0.0..=1.0).contains(&s));
        assert!((0.0..=1.0).contains(&p));
        let perfect = QualityMetric::Psnr.evaluate(&img, &img).unwrap();
        assert_eq!(perfect, 1.0);
    }
}
