//! Workspace-local, API-compatible subset of `criterion`.
//!
//! The build environment has no access to crates.io, so the workspace vendors a
//! small wall-clock benchmark harness exposing the criterion surface the `bench`
//! crate uses: [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Results print as `name  time: [mean ± spread]` lines.
//!
//! Environment knobs:
//! * `RESCNN_BENCH_MS` — target measurement time per benchmark in milliseconds
//!   (default 300).
//!
//! Command-line arguments (mirroring the criterion conventions CI relies on):
//! * positional arguments are substring **filters** — a benchmark runs only when
//!   its full `group/function/parameter` name contains at least one of them;
//! * `--test` runs each selected benchmark's routine **once** without timing
//!   (the smoke mode CI uses to catch bench rot without timing flakiness);
//! * other `--flags` (e.g. the `--bench` cargo passes to harness-less bench
//!   binaries) are accepted and ignored.

use std::fmt::{self, Display};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Parsed command-line configuration shared by every group in the process.
struct Cli {
    /// Substring filters; empty means "run everything".
    filters: Vec<String>,
    /// When set, run each routine once instead of timing it.
    test_mode: bool,
}

fn cli() -> &'static Cli {
    static CLI: OnceLock<Cli> = OnceLock::new();
    CLI.get_or_init(|| {
        let mut filters = Vec::new();
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                test_mode = true;
            } else if !arg.starts_with("--") {
                filters.push(arg);
            }
        }
        Cli { filters, test_mode }
    })
}

fn selected(name: &str) -> bool {
    let cli = cli();
    cli.filters.is_empty() || cli.filters.iter().any(|f| name.contains(f))
}

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_id.into(), parameter) }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    measurement: Duration,
    /// Run the routine once without timing (`--test` mode).
    test_mode: bool,
    /// (mean seconds per iteration, spread) recorded by the last `iter` call.
    result: Option<(f64, f64)>,
}

impl Bencher {
    /// Measures the mean wall-clock time of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up and batch-size calibration: grow until one batch takes >= ~2 ms.
        let mut batch = 1u64;
        let batch_time = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || batch >= 1 << 20 {
                break elapsed;
            }
            batch *= 2;
        };
        // Measurement: repeat batches until the time budget is spent.
        let budget = self.measurement;
        let mut samples: Vec<f64> = vec![batch_time.as_secs_f64() / batch as f64];
        let measure_start = Instant::now();
        while measure_start.elapsed() < budget {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() / batch as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(0.0f64, f64::max);
        self.result = Some((mean, (max - min) / 2.0));
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.2} s", seconds)
    }
}

fn measurement_budget() -> Duration {
    let ms = std::env::var("RESCNN_BENCH_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(300u64);
    Duration::from_millis(ms.max(10))
}

fn run_one(name: &str, measurement: Duration, f: impl FnOnce(&mut Bencher)) {
    if !selected(name) {
        return;
    }
    let test_mode = cli().test_mode;
    let mut bencher = Bencher { measurement, test_mode, result: None };
    f(&mut bencher);
    if test_mode {
        println!("{name:<50} (test: 1 iteration, ok)");
        return;
    }
    match bencher.result {
        Some((mean, spread)) => {
            println!("{name:<50} time: [{} ± {}]", format_time(mean), format_time(spread))
        }
        None => println!("{name:<50} (no measurement)"),
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Compatibility no-op (the vendored harness sizes batches by wall-clock time).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time budget per benchmark.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement = duration;
        self
    }

    /// Runs a benchmark with an auxiliary input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.measurement, |b| f(b, input));
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.measurement, |b| f(b));
        self
    }

    /// Finishes the group (prints a trailing newline for readability).
    pub fn finish(self) {
        println!();
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup { name, measurement: measurement_budget(), _criterion: self }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, measurement_budget(), |b| f(b));
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("RESCNN_BENCH_MS", "15");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.bench_with_input(BenchmarkId::new("sum", 64), &64usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("f", 224).to_string(), "f/224");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
