//! Workspace-local subset of `serde_json`: pretty-printing of the
//! [`serde::json::Value`] tree produced by the vendored `serde` stub.

use std::fmt;

use serde::json::Value;
use serde::Serialize;

/// Serialization error. The vendored data model is infallible, so this is only ever
/// constructed for non-finite floats (which JSON cannot represent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render(value: &Value, out: &mut String, indent: usize, pretty: bool) -> Result<(), Error> {
    let pad = |out: &mut String, level: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..level {
                out.push_str("  ");
            }
        }
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error(format!("non-finite float {x} is not representable")));
            }
            // Match serde_json: floats always render with a decimal point or exponent.
            let s = format!("{x}");
            out.push_str(&s);
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                out.push_str(".0");
            }
        }
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                render(item, out, indent + 1, pretty)?;
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                escape_into(out, key);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                render(item, out, indent + 1, pretty)?;
            }
            pad(out, indent);
            out.push('}');
        }
    }
    Ok(())
}

/// Serializes a value to a compact JSON string.
///
/// # Errors
/// Returns an error if the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json(), &mut out, 0, false)?;
    Ok(out)
}

/// Serializes a value to an indented JSON string.
///
/// # Errors
/// Returns an error if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json(), &mut out, 0, true)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_arrays_and_objects() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Array(vec![Value::Float(1.5), Value::Bool(false)])),
        ]);
        let mut compact = String::new();
        render(&v, &mut compact, 0, false).unwrap();
        assert_eq!(compact, r#"{"a":1,"b":[1.5,false]}"#);
        let pretty = {
            let mut s = String::new();
            render(&v, &mut s, 0, true).unwrap();
            s
        };
        assert!(pretty.contains("\n  \"a\": 1"));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string("a\"b\n").unwrap(), r#""a\"b\n""#);
    }
}
