//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! workspace-local serde subset.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are unavailable;
//! the input item is parsed directly from the [`proc_macro::TokenStream`]. Supported
//! shapes cover everything this workspace derives on: non-generic structs with named
//! fields, tuple structs, and enums with unit / tuple / struct variants. No
//! `#[serde(...)]` attributes are interpreted.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What kind of item the derive is attached to.
enum ItemKind {
    Struct,
    Enum,
}

/// One enum variant (or, for structs, the single pseudo-variant).
struct Variant {
    name: String,
    /// Named fields (`{ a: T }`), if any.
    named: Vec<String>,
    /// Number of unnamed fields (`(T, U)`), if any.
    unnamed: usize,
    /// True when the variant has no payload at all.
    unit: bool,
}

struct Item {
    kind: ItemKind,
    name: String,
    variants: Vec<Variant>,
}

/// Skips outer attributes (`#[...]`, including doc comments) in a token iterator.
fn skip_attributes(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    while let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() != '#' {
            break;
        }
        tokens.next();
        // The bracket group of the attribute.
        if let Some(TokenTree::Group(_)) = tokens.peek() {
            tokens.next();
        }
    }
}

/// Extracts the field names of a named-field brace group.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = group.into_iter().peekable();
    loop {
        skip_attributes(&mut tokens);
        // Optional visibility.
        match tokens.peek() {
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => {}
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        fields.push(name);
        // Skip `:` and the type, up to the next top-level comma. Angle brackets do not
        // form token groups, so nesting is tracked manually.
        let mut angle_depth = 0i32;
        for tok in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Counts the top-level comma-separated entries of a tuple field group.
fn count_unnamed_fields(group: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_any = false;
    let mut angle_depth = 0i32;
    for tok in group {
        saw_any = true;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    if saw_any {
        // `(T, U)` has one comma for two fields; a trailing comma over-counts by one but
        // none of the workspace types use one.
        count + 1
    } else {
        0
    }
}

fn parse_enum_variants(group: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = group.into_iter().peekable();
    loop {
        skip_attributes(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        let mut variant = Variant { name, named: Vec::new(), unnamed: 0, unit: true };
        match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                variant.named = parse_named_fields(g.stream());
                variant.unit = false;
                tokens.next();
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                variant.unnamed = count_unnamed_fields(g.stream());
                variant.unit = variant.unnamed == 0;
                tokens.next();
            }
            _ => {}
        }
        variants.push(variant);
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        for tok in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    loop {
        skip_attributes(&mut tokens);
        match tokens.next() {
            Some(TokenTree::Ident(id)) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" {
                    let name = match tokens.next() {
                        Some(TokenTree::Ident(n)) => n.to_string(),
                        other => panic!("expected item name after `{word}`, found {other:?}"),
                    };
                    if word == "enum" {
                        let body = loop {
                            match tokens.next() {
                                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                                    break g.stream();
                                }
                                Some(_) => continue,
                                None => panic!("enum `{name}` has no body"),
                            }
                        };
                        return Item {
                            kind: ItemKind::Enum,
                            name,
                            variants: parse_enum_variants(body),
                        };
                    }
                    // Struct: the next group is either named fields `{..}` or tuple `(..)`.
                    let mut variant =
                        Variant { name: name.clone(), named: Vec::new(), unnamed: 0, unit: true };
                    for tok in tokens.by_ref() {
                        match tok {
                            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                                variant.named = parse_named_fields(g.stream());
                                variant.unit = false;
                                break;
                            }
                            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                                variant.unnamed = count_unnamed_fields(g.stream());
                                variant.unit = variant.unnamed == 0;
                                break;
                            }
                            TokenTree::Punct(p) if p.as_char() == ';' => break,
                            _ => continue,
                        }
                    }
                    return Item { kind: ItemKind::Struct, name, variants: vec![variant] };
                }
                // `pub`, `pub(crate)`, etc. — keep scanning.
            }
            Some(_) => continue,
            None => panic!("derive input contained no struct or enum"),
        }
    }
}

/// Emits the body expression serializing a set of named fields reachable as `{prefix}{f}`.
fn named_fields_expr(fields: &[String], prefix: &str) -> String {
    let mut out = String::from("::serde::json::Value::Object(vec![");
    for f in fields {
        out.push_str(&format!("(\"{f}\".to_string(), ::serde::Serialize::to_json(&{prefix}{f})),"));
    }
    out.push_str("])");
    out
}

fn unnamed_fields_expr(count: usize, prefix: &str) -> String {
    if count == 1 {
        return format!("::serde::Serialize::to_json(&{prefix}0)");
    }
    let mut out = String::from("::serde::json::Value::Array(vec![");
    for i in 0..count {
        out.push_str(&format!("::serde::Serialize::to_json(&{prefix}{i}),"));
    }
    out.push_str("])");
    out
}

/// Derives the workspace-local `serde::Serialize` (lowering to a JSON value tree).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match item.kind {
        ItemKind::Struct => {
            let v = &item.variants[0];
            if v.unit {
                "::serde::json::Value::Null".to_string()
            } else if !v.named.is_empty() {
                named_fields_expr(&v.named, "self.")
            } else {
                unnamed_fields_expr(v.unnamed, "self.")
            }
        }
        ItemKind::Enum => {
            let mut arms = String::new();
            for v in &item.variants {
                let vname = &v.name;
                if v.unit {
                    arms.push_str(&format!(
                        "{name}::{vname} => ::serde::json::Value::String(\"{vname}\".to_string()),"
                    ));
                } else if !v.named.is_empty() {
                    let bindings = v.named.join(", ");
                    let inner = named_fields_expr(&v.named, "");
                    arms.push_str(&format!(
                        "{name}::{vname} {{ {bindings} }} => ::serde::json::Value::Object(vec![(\"{vname}\".to_string(), {inner})]),"
                    ));
                } else {
                    let bindings: Vec<String> = (0..v.unnamed).map(|i| format!("f{i}")).collect();
                    let inner = if v.unnamed == 1 {
                        "::serde::Serialize::to_json(f0)".to_string()
                    } else {
                        let mut s = String::from("::serde::json::Value::Array(vec![");
                        for b in &bindings {
                            s.push_str(&format!("::serde::Serialize::to_json({b}),"));
                        }
                        s.push_str("])");
                        s
                    };
                    arms.push_str(&format!(
                        "{name}::{vname}({}) => ::serde::json::Value::Object(vec![(\"{vname}\".to_string(), {inner})]),",
                        bindings.join(", ")
                    ));
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_json(&self) -> ::serde::json::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

/// Derives the workspace-local marker `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl ::serde::Deserialize for {} {{}}", item.name)
        .parse()
        .expect("generated Deserialize impl must parse")
}
