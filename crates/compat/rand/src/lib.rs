//! Workspace-local, API-compatible subset of `rand` 0.8.
//!
//! The build environment has no access to crates.io, so the workspace vendors the
//! slice of the rand API it uses: [`rngs::StdRng`] + [`SeedableRng`],
//! [`Rng::gen_range`] over primitive ranges, [`distributions::Uniform`], and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — high quality and deterministic per seed, though the numeric streams
//! intentionally do **not** match upstream rand (nothing in the workspace depends on
//! upstream's exact values, only on per-seed determinism).

use std::ops::{Range, RangeInclusive};

/// Byte-level random number generation.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng.next_u64(), span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
    )*};
}

impl_sample_range_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let value = self.start + (self.end - self.start) * (unit_f64(rng.next_u64()) as $t);
                // Rounding (e.g. unit_f64 -> f32) can land exactly on the excluded
                // upper bound; step back inside to keep the half-open contract.
                if value >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    value
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * (unit_f64(rng.next_u64()) as $t)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Maps a u64 uniformly onto `[0, span)` (multiply-shift reduction).
fn reduce(x: u64, span: u64) -> u64 {
    ((u128::from(x) * u128::from(span)) >> 64) as u64
}

/// Maps a u64 onto `[0, 1)` with 53 bits of precision.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience methods for generators, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distribution sampling (the `rand::distributions` module subset).
pub mod distributions {
    use super::{RngCore, SampleRange};

    /// Types that produce values of `T` when sampled.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a closed or half-open interval.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<T> {
        low: T,
        high: T,
        inclusive: bool,
    }

    impl<T: Copy + PartialOrd> Uniform<T> {
        /// Uniform over `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new requires low < high");
            Uniform { low, high, inclusive: false }
        }

        /// Uniform over `[low, high]`.
        pub fn new_inclusive(low: T, high: T) -> Self {
            assert!(low <= high, "Uniform::new_inclusive requires low <= high");
            Uniform { low, high, inclusive: true }
        }
    }

    macro_rules! impl_uniform_via_range {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Uniform<$t> {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    if self.inclusive {
                        (self.low..=self.high).sample_one(rng)
                    } else {
                        (self.low..self.high).sample_one(rng)
                    }
                }
            }
        )*};
    }

    impl_uniform_via_range!(u8, u16, u32, u64, usize, f32, f64);
}

/// Slice utilities (the `rand::seq` module subset).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(5usize..9);
            assert!((5..9).contains(&x));
            let y: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&y));
            let z = rng.gen_range(10u8..=12);
            assert!((10..=12).contains(&z));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_distribution_samples_in_range() {
        use super::distributions::{Distribution, Uniform};
        let mut rng = StdRng::seed_from_u64(2);
        let dist = Uniform::new_inclusive(-2.0f32, 2.0f32);
        for _ in 0..100 {
            let x = dist.sample(&mut rng);
            assert!((-2.0..=2.0).contains(&x));
        }
    }
}
