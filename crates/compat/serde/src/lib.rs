//! Workspace-local, API-compatible subset of `serde`.
//!
//! The build environment has no access to crates.io, so the workspace vendors the
//! narrow slice of the serde API it actually uses: `Serialize`/`Deserialize` derive
//! macros plus enough of a data model for `serde_json::to_string_pretty`. The
//! [`Serialize`] trait here lowers a value to an owned [`json::Value`] tree, which
//! the companion `serde_json` stub renders.

pub use serde_derive::{Deserialize, Serialize};

/// Types that can be lowered to a JSON value tree.
pub trait Serialize {
    /// Converts `self` into an owned JSON value.
    fn to_json(&self) -> json::Value;
}

/// Marker trait mirroring `serde::Deserialize`.
///
/// Nothing in the workspace deserializes at runtime; the derive exists so that
/// `#[derive(Deserialize)]` attributes in downstream crates keep compiling.
pub trait Deserialize {}

/// The JSON data model used by [`Serialize`].
pub mod json {
    /// An owned JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Unsigned integer.
        UInt(u64),
        /// Signed integer.
        Int(i64),
        /// Floating-point number.
        Float(f64),
        /// String.
        String(String),
        /// Array.
        Array(Vec<Value>),
        /// Object with insertion-ordered keys.
        Object(Vec<(String, Value)>),
    }
}

use json::Value;

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_json(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_string(), v.to_json())).collect())
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_json(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_string(), v.to_json())).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}

macro_rules! impl_deserialize_marker {
    ($($t:ty),*) => {$(impl Deserialize for $t {})*};
}
impl_deserialize_marker!(
    u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, String, char
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_values() {
        assert_eq!(3usize.to_json(), Value::UInt(3));
        assert_eq!((-2i32).to_json(), Value::Int(-2));
        assert_eq!(true.to_json(), Value::Bool(true));
        assert_eq!("x".to_json(), Value::String("x".into()));
        assert_eq!(None::<u8>.to_json(), Value::Null);
        assert_eq!(vec![1u8, 2].to_json(), Value::Array(vec![Value::UInt(1), Value::UInt(2)]));
    }
}
