//! Workspace-local, API-compatible subset of `proptest`.
//!
//! The build environment has no access to crates.io, so the workspace vendors the
//! proptest surface its property tests use: the [`proptest!`] macro, range / `Just` /
//! tuple / [`collection::vec`] strategies, [`prop_oneof!`], and the `prop_assert*` /
//! [`prop_assume!`] macros. Unlike upstream there is **no shrinking**: a failing case
//! panics with the values that produced it (cases are deterministic per test name, so
//! failures reproduce exactly).

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Test-case plumbing used by the [`crate::proptest!`] macro expansion.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Controls how many accepted cases each property runs.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Creates a configuration running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is re-drawn.
        Reject,
        /// `prop_assert*!` failed; the whole property fails.
        Fail(String),
    }

    /// Deterministic generator used to draw test cases.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds the generator from a test name, so each property has a stable but
        /// distinct case sequence.
        pub fn deterministic(name: &str) -> Self {
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(hash))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::*;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy that always yields a clone of a fixed value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Boxes a strategy, pinning its value type (used by [`crate::prop_oneof!`] so that
    /// inference resolves eagerly instead of through an `as` cast).
    pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(strategy)
    }

    /// Uniform choice between boxed strategies (built by [`crate::prop_oneof!`]).
    pub struct OneOf<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        /// Creates a union strategy. Panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! requires at least one option");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_strategy_for_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_strategy_for_ranges!(u8, u16, u32, u64, usize, f32, f64);

    macro_rules! impl_strategy_for_tuples {
        ($(($($name:ident . $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_strategy_for_tuples! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "vec size range must be non-empty");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing vectors of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::strategy::{Just, OneOf, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Rejects the current test case unless the condition holds (the case is re-drawn).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

/// Fails the property if the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the property unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(, $($fmt:tt)*)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Fails the property if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(, $($fmt:tt)*)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($strategy),)+])
    };
}

/// Defines property tests: each `fn` runs its body for many generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($config) $($rest)*);
    };
    (@expand ($config:expr) $(#[test] fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(64);
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "property {} rejected too many cases ({} attempts for {} accepted)",
                        stringify!($name), attempts, accepted
                    );
                    $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed on case {}: {}", stringify!($name), accepted, msg);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn composite() -> impl Strategy<Value = (usize, f64)> {
        (1usize..5, 0.0f64..1.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn tuples_and_vecs((a, b) in composite(), v in crate::collection::vec(0u8..10, 1..6)) {
            prop_assert!((1..5).contains(&a));
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_and_assume(k in prop_oneof![Just(1usize), Just(3usize), Just(5usize)], n in 0usize..10) {
            prop_assume!(n > 0);
            prop_assert!(k == 1 || k == 3 || k == 5);
            prop_assert_ne!(n, 0);
            prop_assert_eq!(k % 2, 1);
        }
    }
}
