//! Decoder robustness under corrupt input: every truncated or bit-flipped
//! stream must decode to `Ok` or a typed [`CodecError`] — never a panic, and
//! never an out-of-bounds access. Serving-layer fault isolation
//! (`rescnn-core`'s schedulers) relies on this contract to turn a bad stream
//! into a per-request error record.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rescnn_imaging::{render_scene, SceneSpec};
use rescnn_projpeg::{ProgressiveImage, ScanPlan};

/// Deterministic splitmix64, so the fuzz corpus is identical on every run and
/// every host.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn encoded_fixture(seed: u64, quality: u8) -> ProgressiveImage {
    let image = render_scene(
        &SceneSpec::new(64, 48, 7).with_detail(0.7).with_object_scale(0.6).with_seed(seed),
    )
    .unwrap();
    ProgressiveImage::encode(&image, quality, ScanPlan::standard()).unwrap()
}

/// Exercises every decode surface of a (possibly corrupt) stream and asserts
/// none of them panics. Returns how many surfaces decoded cleanly.
fn decode_never_panics(stream: &ProgressiveImage, context: &str) -> usize {
    let mut clean = 0usize;
    // From-scratch decode of every prefix.
    for scans in 0..=stream.num_scans() {
        let outcome = catch_unwind(AssertUnwindSafe(|| stream.decode(scans)));
        match outcome {
            Ok(Ok(_)) => clean += 1,
            Ok(Err(_)) => {}
            Err(_) => panic!("{context}: decode({scans}) panicked"),
        }
    }
    // Incremental walk through every scan.
    let walked = catch_unwind(AssertUnwindSafe(|| {
        let mut decoder = match stream.progressive_decoder() {
            Ok(decoder) => decoder,
            Err(_) => return 0usize,
        };
        let mut applied = 0usize;
        for _ in 0..stream.num_scans() {
            match decoder.advance() {
                Ok(_) => applied += 1,
                Err(_) => break,
            }
        }
        applied
    }));
    match walked {
        Ok(applied) => clean + applied,
        Err(_) => panic!("{context}: incremental decode panicked"),
    }
}

#[test]
fn truncated_streams_error_or_decode_but_never_panic() {
    let mut rng = SplitMix64(0x7e57_0001);
    for quality in [40u8, 85, 95] {
        let encoded = encoded_fixture(11, quality);
        for case in 0..40 {
            let scan = rng.below(encoded.num_scans() as u64) as usize;
            let keep = rng.below(64) as usize;
            let corrupt = encoded.with_truncated_scan(scan, keep);
            decode_never_panics(&corrupt, &format!("q{quality} case{case} trunc s{scan} k{keep}"));
        }
    }
}

#[test]
fn bit_flipped_streams_error_or_decode_but_never_panic() {
    let mut rng = SplitMix64(0x7e57_0002);
    for quality in [40u8, 85, 95] {
        let encoded = encoded_fixture(23, quality);
        for case in 0..60 {
            let scan = rng.below(encoded.num_scans() as u64) as usize;
            let byte = rng.below(4096) as usize;
            let bit = rng.below(8) as u8;
            let corrupt = encoded.with_bit_flip(scan, byte, bit);
            decode_never_panics(
                &corrupt,
                &format!("q{quality} case{case} flip s{scan} b{byte}.{bit}"),
            );
        }
    }
}

#[test]
fn compound_corruption_never_panics() {
    // Truncation *and* bit flips stacked on the same stream, including a
    // stream truncated to zero bytes in its first scan.
    let mut rng = SplitMix64(0x7e57_0003);
    let encoded = encoded_fixture(31, 85);
    for case in 0..40 {
        let mut corrupt = encoded.with_truncated_scan(
            rng.below(encoded.num_scans() as u64) as usize,
            rng.below(32) as usize,
        );
        for _ in 0..3 {
            corrupt = corrupt.with_bit_flip(
                rng.below(encoded.num_scans() as u64) as usize,
                rng.below(2048) as usize,
                rng.below(8) as u8,
            );
        }
        decode_never_panics(&corrupt, &format!("compound case{case}"));
    }
    let empty_first = encoded.with_truncated_scan(0, 0);
    decode_never_panics(&empty_first, "first scan truncated to nothing");
}

#[test]
fn pristine_streams_still_decode_fully() {
    // The harness itself must count a healthy stream as fully clean — guards
    // against the fuzzers passing vacuously.
    let encoded = encoded_fixture(47, 85);
    let clean = decode_never_panics(&encoded, "pristine");
    assert_eq!(clean, 2 * encoded.num_scans() + 1, "all prefixes and the full walk decode");
}

#[test]
fn corruption_injectors_are_deterministic_and_bounded() {
    let encoded = encoded_fixture(53, 85);
    let a = encoded.with_bit_flip(1, 17, 3);
    let b = encoded.with_bit_flip(1, 17, 3);
    assert_eq!(a.scan_bytes(), b.scan_bytes(), "injection must be deterministic");
    // Out-of-range indices clamp (modulo) instead of panicking.
    let wrapped = encoded.with_bit_flip(usize::MAX, usize::MAX, 255);
    let truncated = encoded.with_truncated_scan(usize::MAX, usize::MAX);
    assert_eq!(truncated.scan_bytes(), encoded.scan_bytes(), "over-long keep is a no-op");
    drop(wrapped);
}
