//! The incremental decoder's contract: after `k` scans, [`ProgressiveDecoder::frame`] is
//! bitwise identical to from-scratch [`ProgressiveImage::decode`]`(k)` — for every prefix
//! of every scan plan, every quality, and awkward (non-multiple-of-8, tiny) dimensions.

use rescnn_imaging::{render_scene, Image, SceneSpec};
use rescnn_projpeg::{CodecError, ProgressiveImage, ScanBand, ScanPlan};

/// Asserts bit-level equality (plain `==` on `Image` compares `f32`s, which would let
/// `-0.0 == +0.0` slip through).
fn assert_frames_bitwise_equal(incremental: &Image, scratch: &Image, context: &str) {
    assert_eq!(incremental.dimensions(), scratch.dimensions(), "{context}: dimensions");
    for (i, (a, b)) in incremental.as_planar().iter().zip(scratch.as_planar()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{context}: sample {i} differs ({a} vs {b})");
    }
}

fn check_all_prefixes(image: &Image, quality: u8, plan: ScanPlan, context: &str) {
    let encoded = ProgressiveImage::encode(image, quality, plan).unwrap();
    let mut decoder = encoded.progressive_decoder().unwrap();
    assert_frames_bitwise_equal(
        decoder.frame(),
        &encoded.decode(0).unwrap(),
        &format!("{context}, 0 scans"),
    );
    for scans in 1..=encoded.num_scans() {
        decoder.advance().unwrap();
        assert_eq!(decoder.scans_applied(), scans);
        assert_frames_bitwise_equal(
            decoder.frame(),
            &encoded.decode(scans).unwrap(),
            &format!("{context}, {scans} scans"),
        );
    }
    assert_eq!(decoder.remaining_scans(), 0);
}

fn scene(width: usize, height: usize, detail: f64, seed: u64) -> Image {
    render_scene(
        &SceneSpec::new(width, height, 11)
            .with_detail(detail)
            .with_object_scale(0.6)
            .with_seed(seed),
    )
    .unwrap()
}

#[test]
fn standard_plan_matches_for_every_prefix() {
    for (quality, detail) in [(40u8, 0.2), (85, 0.6), (95, 0.9)] {
        let img = scene(72, 56, detail, 3);
        check_all_prefixes(&img, quality, ScanPlan::standard(), &format!("q{quality}"));
    }
}

#[test]
fn custom_plans_match_for_every_prefix() {
    let plans = [
        ScanPlan::new(vec![ScanBand::new(0, 0), ScanBand::new(1, 63)]).unwrap(),
        ScanPlan::new(vec![
            ScanBand::new(0, 0),
            ScanBand::new(1, 2),
            ScanBand::new(3, 9),
            ScanBand::new(10, 35),
            ScanBand::new(36, 62),
            ScanBand::new(63, 63),
        ])
        .unwrap(),
    ];
    let img = scene(64, 64, 0.7, 9);
    for (i, plan) in plans.into_iter().enumerate() {
        check_all_prefixes(&img, 80, plan, &format!("plan {i}"));
    }
}

#[test]
fn awkward_dimensions_match_for_every_prefix() {
    for (w, h) in [(37usize, 29usize), (8, 8), (9, 17), (120, 41)] {
        let img = scene(w, h, 0.5, 7);
        check_all_prefixes(&img, 88, ScanPlan::standard(), &format!("{w}x{h}"));
    }
}

#[test]
fn advance_to_matches_and_rejects_rewind() {
    let img = scene(48, 40, 0.5, 5);
    let encoded = ProgressiveImage::encode(&img, 85, ScanPlan::standard()).unwrap();
    let mut decoder = encoded.progressive_decoder().unwrap();
    decoder.advance_to(3).unwrap();
    assert_frames_bitwise_equal(decoder.frame(), &encoded.decode(3).unwrap(), "advance_to(3)");
    // No-op re-request is fine; rewinding and overshooting are errors.
    decoder.advance_to(3).unwrap();
    assert!(matches!(
        decoder.advance_to(1),
        Err(CodecError::CannotRewind { applied: 3, requested: 1 })
    ));
    assert!(matches!(
        decoder.advance_to(9),
        Err(CodecError::ScanOutOfRange { requested: 9, available: 5 })
    ));
    let frame = decoder.advance_to(5).unwrap().clone();
    assert_frames_bitwise_equal(&frame, &encoded.decode(5).unwrap(), "advance_to(5)");
    assert!(matches!(decoder.advance(), Err(CodecError::ScanOutOfRange { .. })));
    assert_frames_bitwise_equal(&decoder.into_frame(), &frame, "into_frame");
}

#[test]
fn decoder_accessors_and_debug() {
    let img = scene(40, 32, 0.4, 2);
    let encoded = ProgressiveImage::encode(&img, 75, ScanPlan::standard()).unwrap();
    let mut decoder = encoded.progressive_decoder().unwrap();
    assert_eq!(decoder.scans_applied(), 0);
    assert_eq!(decoder.remaining_scans(), 5);
    assert!(std::ptr::eq(decoder.image(), &encoded));
    decoder.advance().unwrap();
    let debug = format!("{decoder:?}");
    assert!(debug.contains("scans_applied: 1"), "{debug}");
}
