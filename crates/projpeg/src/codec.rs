//! The progressive encoder/decoder.
//!
//! The codec follows the structure of progressive JPEG with spectral selection
//! (Figure 2 of the paper): each image is stored as a sequence of *scans*, where scan `i`
//! carries one contiguous band of zig-zag-ordered DCT coefficients for all blocks of all
//! three components. Reading a prefix of the scans yields a coarse but complete image;
//! every additional scan refines high-frequency detail. The per-scan byte sizes produced
//! here are real (Huffman-entropy-coded bits plus headers), so bytes-read vs. quality
//! trade-offs measured downstream are genuine.

use serde::{Deserialize, Serialize};

use rescnn_imaging::Image;

use crate::bits::{BitReader, BitWriter};
use crate::color::{rgb_to_ycbcr, ycbcr_to_rgb};
use crate::dct::{forward_dct, inverse_dct, BLOCK, BLOCK_AREA, ZIGZAG};
use crate::error::{CodecError, Result};
use crate::huffman::HuffmanCode;
use crate::quant::QuantTable;

/// Number of colour components (Y, Cb, Cr).
const COMPONENTS: usize = 3;
/// End-of-band symbol.
const EOB: u8 = 0x00;
/// Zero-run-length symbol (16 zeros).
const ZRL: u8 = 0xF0;

/// An inclusive band of zig-zag coefficient indices carried by one scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScanBand {
    /// First zig-zag index (0 = DC).
    pub start: usize,
    /// Last zig-zag index (inclusive, at most 63).
    pub end: usize,
}

impl ScanBand {
    /// Creates a band.
    pub const fn new(start: usize, end: usize) -> Self {
        ScanBand { start, end }
    }

    /// Number of coefficients in the band.
    pub const fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Whether the band is the DC-only band.
    pub const fn is_dc(&self) -> bool {
        self.start == 0
    }

    /// Returns `false`; bands always carry at least one coefficient.
    pub const fn is_empty(&self) -> bool {
        false
    }
}

/// The ordered set of spectral-selection bands for an encoded image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanPlan {
    bands: Vec<ScanBand>,
}

impl ScanPlan {
    /// The five-scan plan used throughout the paper's figures: DC first, then four AC bands
    /// of increasing frequency.
    pub fn standard() -> Self {
        ScanPlan {
            bands: vec![
                ScanBand::new(0, 0),
                ScanBand::new(1, 5),
                ScanBand::new(6, 14),
                ScanBand::new(15, 27),
                ScanBand::new(28, 63),
            ],
        }
    }

    /// Builds a custom plan.
    ///
    /// # Errors
    /// Returns [`CodecError::InvalidScanPlan`] unless the bands are non-empty, start with a
    /// DC-only band, are contiguous, and cover exactly the coefficients `0..=63`.
    pub fn new(bands: Vec<ScanBand>) -> Result<Self> {
        if bands.is_empty() {
            return Err(CodecError::InvalidScanPlan { reason: "no bands".into() });
        }
        if bands[0] != ScanBand::new(0, 0) {
            return Err(CodecError::InvalidScanPlan {
                reason: "first band must be the DC-only band [0, 0]".into(),
            });
        }
        let mut next = 1usize;
        for band in &bands[1..] {
            if band.start != next || band.end < band.start || band.end >= BLOCK_AREA {
                return Err(CodecError::InvalidScanPlan {
                    reason: format!(
                        "band [{}, {}] is not contiguous with previous coverage ending at {}",
                        band.start,
                        band.end,
                        next - 1
                    ),
                });
            }
            next = band.end + 1;
        }
        if next != BLOCK_AREA {
            return Err(CodecError::InvalidScanPlan {
                reason: format!("bands cover coefficients 0..{} but must reach 63", next - 1),
            });
        }
        Ok(ScanPlan { bands })
    }

    /// The bands in scan order.
    pub fn bands(&self) -> &[ScanBand] {
        &self.bands
    }

    /// Number of scans.
    pub fn len(&self) -> usize {
        self.bands.len()
    }

    /// Whether the plan has no scans (never true for a validated plan).
    pub fn is_empty(&self) -> bool {
        self.bands.is_empty()
    }
}

impl Default for ScanPlan {
    fn default() -> Self {
        ScanPlan::standard()
    }
}

/// One entropy-coded scan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedScan {
    /// The coefficient band this scan carries.
    pub band: ScanBand,
    /// Serialized Huffman table (compact DHT layout) followed by the coded bitstream.
    pub data: Vec<u8>,
}

impl EncodedScan {
    /// Total stored size of the scan in bytes (table + bitstream + a fixed 8-byte scan
    /// header accounting for band markers and length fields).
    pub fn byte_size(&self) -> u64 {
        self.data.len() as u64 + 8
    }
}

/// Number of colour components, visible to the incremental decoder.
pub(crate) const NUM_COMPONENTS: usize = COMPONENTS;

/// Quantized coefficient planes for the three components of an image.
pub(crate) struct CoefficientPlanes {
    /// Per component: blocks in raster order, each block raster-order quantized levels.
    pub(crate) blocks: [Vec<[i16; BLOCK_AREA]>; COMPONENTS],
    pub(crate) blocks_x: usize,
    pub(crate) blocks_y: usize,
}

impl CoefficientPlanes {
    /// All-zero planes for a `blocks_x × blocks_y` block grid — the coefficient state of
    /// an image of which no scan has been read yet.
    pub(crate) fn zeroed(blocks_x: usize, blocks_y: usize) -> Self {
        let empty = vec![[0i16; BLOCK_AREA]; blocks_x * blocks_y];
        CoefficientPlanes { blocks: [empty.clone(), empty.clone(), empty], blocks_x, blocks_y }
    }
}

/// A progressively encoded image.
///
/// # Examples
/// ```
/// use rescnn_imaging::{render_scene, SceneSpec};
/// use rescnn_projpeg::{ProgressiveImage, ScanPlan};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let image = render_scene(&SceneSpec::new(64, 48, 7))?;
/// let encoded = ProgressiveImage::encode(&image, 85, ScanPlan::standard())?;
/// let coarse = encoded.decode(1)?;          // DC only
/// let full = encoded.decode(encoded.num_scans())?;
/// assert_eq!(coarse.dimensions(), (64, 48));
/// assert!(encoded.cumulative_bytes(1) < encoded.total_bytes());
/// # drop(full);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProgressiveImage {
    width: usize,
    height: usize,
    quality: u8,
    plan: ScanPlan,
    scans: Vec<EncodedScan>,
}

impl ProgressiveImage {
    /// Encodes an image at the given JPEG-style quality factor with the given scan plan.
    ///
    /// # Errors
    /// Returns an error for invalid quality factors or scan plans.
    pub fn encode(image: &Image, quality: u8, plan: ScanPlan) -> Result<Self> {
        let planes = quantize_image(image, quality)?;
        let mut scans = Vec::with_capacity(plan.len());
        for band in plan.bands() {
            scans.push(encode_scan(&planes, *band));
        }
        Ok(ProgressiveImage { width: image.width(), height: image.height(), quality, plan, scans })
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Quality factor the image was encoded at.
    pub fn quality(&self) -> u8 {
        self.quality
    }

    /// Number of scans available.
    pub fn num_scans(&self) -> usize {
        self.scans.len()
    }

    /// The scan plan.
    pub fn plan(&self) -> &ScanPlan {
        &self.plan
    }

    /// Per-scan stored sizes in bytes.
    pub fn scan_bytes(&self) -> Vec<u64> {
        self.scans.iter().map(EncodedScan::byte_size).collect()
    }

    /// Total stored size in bytes when reading the first `num_scans` scans (plus a fixed
    /// 64-byte file header covering dimensions, quality, and quantization tables).
    ///
    /// Reading zero scans still costs the header.
    pub fn cumulative_bytes(&self, num_scans: usize) -> u64 {
        let scans = num_scans.min(self.scans.len());
        64 + self.scans[..scans].iter().map(EncodedScan::byte_size).sum::<u64>()
    }

    /// Total stored size in bytes of the fully encoded image.
    pub fn total_bytes(&self) -> u64 {
        self.cumulative_bytes(self.scans.len())
    }

    /// Fraction of the full file read when consuming the first `num_scans` scans.
    pub fn read_fraction(&self, num_scans: usize) -> f64 {
        self.cumulative_bytes(num_scans) as f64 / self.total_bytes() as f64
    }

    /// Decodes the image using only the first `num_scans` scans (missing coefficients are
    /// treated as zero, exactly like an interrupted progressive JPEG download).
    ///
    /// # Errors
    /// Returns [`CodecError::ScanOutOfRange`] if more scans are requested than encoded,
    /// or a stream error if the data is corrupt.
    pub fn decode(&self, num_scans: usize) -> Result<Image> {
        if num_scans > self.scans.len() {
            return Err(CodecError::ScanOutOfRange {
                requested: num_scans,
                available: self.scans.len(),
            });
        }
        let blocks_x = self.width.div_ceil(BLOCK);
        let blocks_y = self.height.div_ceil(BLOCK);
        let mut planes = CoefficientPlanes::zeroed(blocks_x, blocks_y);
        for (index, scan) in self.scans[..num_scans].iter().enumerate() {
            decode_scan(scan, index, &mut planes, None)?;
        }
        reconstruct_image(&planes, self.width, self.height, self.quality)
    }

    /// The encoded scans, for the incremental decoder.
    pub(crate) fn scans(&self) -> &[EncodedScan] {
        &self.scans
    }

    /// Returns a copy of this image with one bit flipped in one scan's stored
    /// data — a deterministic corrupt-stream injector for robustness tests and
    /// the fault-injection load harness. `scan` and `byte` are reduced modulo
    /// the scan count / scan length, so any `(scan, byte, bit)` triple (e.g.
    /// drawn from a seeded PRNG) is a valid injection; an image with no scans
    /// or an empty scan is returned unchanged.
    ///
    /// Decoding the result must never panic: every outcome is either a decoded
    /// image (the flip landed somewhere the entropy coder tolerates) or a
    /// [`CodecError`](crate::CodecError) stream error. `tests/decoder_robustness.rs`
    /// pins this.
    #[must_use]
    pub fn with_bit_flip(&self, scan: usize, byte: usize, bit: u8) -> Self {
        let mut corrupted = self.clone();
        if corrupted.scans.is_empty() {
            return corrupted;
        }
        let scan = scan % corrupted.scans.len();
        let data = &mut corrupted.scans[scan].data;
        if data.is_empty() {
            return corrupted;
        }
        let byte = byte % data.len();
        data[byte] ^= 1 << (bit % 8);
        corrupted
    }

    /// Returns a copy of this image with one scan's stored data truncated to
    /// `keep_bytes` bytes — a deterministic truncated-stream injector (an
    /// interrupted read mid-scan, as opposed to the well-formed scan-prefix
    /// truncation [`decode`](Self::decode) models). `scan` is reduced modulo
    /// the scan count; `keep_bytes` beyond the scan's length keeps everything.
    #[must_use]
    pub fn with_truncated_scan(&self, scan: usize, keep_bytes: usize) -> Self {
        let mut corrupted = self.clone();
        if corrupted.scans.is_empty() {
            return corrupted;
        }
        let scan = scan % corrupted.scans.len();
        let data = &mut corrupted.scans[scan].data;
        data.truncate(keep_bytes.min(data.len()));
        corrupted
    }
}

/// Converts an image into quantized DCT coefficient planes.
fn quantize_image(image: &Image, quality: u8) -> Result<CoefficientPlanes> {
    let luma_table = QuantTable::luma(quality)?;
    let chroma_table = QuantTable::chroma(quality)?;
    let (w, h) = image.dimensions();
    let blocks_x = w.div_ceil(BLOCK);
    let blocks_y = h.div_ceil(BLOCK);

    // Component planes in [-128, 127] range.
    let mut comp = vec![vec![0.0f32; blocks_x * BLOCK * blocks_y * BLOCK]; COMPONENTS];
    let padded_w = blocks_x * BLOCK;
    for y in 0..blocks_y * BLOCK {
        let sy = y.min(h - 1);
        for x in 0..padded_w {
            let sx = x.min(w - 1);
            let ycbcr = rgb_to_ycbcr(image.pixel(sx, sy));
            for c in 0..COMPONENTS {
                comp[c][y * padded_w + x] = ycbcr[c] * 255.0 - 128.0;
            }
        }
    }

    let mut blocks: [Vec<[i16; BLOCK_AREA]>; COMPONENTS] = [Vec::new(), Vec::new(), Vec::new()];
    for (c, plane) in comp.iter().enumerate() {
        let table = if c == 0 { &luma_table } else { &chroma_table };
        let mut out = Vec::with_capacity(blocks_x * blocks_y);
        for by in 0..blocks_y {
            for bx in 0..blocks_x {
                let mut block = [0.0f32; BLOCK_AREA];
                for dy in 0..BLOCK {
                    for dx in 0..BLOCK {
                        block[dy * BLOCK + dx] =
                            plane[(by * BLOCK + dy) * padded_w + bx * BLOCK + dx];
                    }
                }
                let coeffs = forward_dct(&block);
                out.push(table.quantize(&coeffs));
            }
        }
        blocks[c] = out;
    }
    Ok(CoefficientPlanes { blocks, blocks_x, blocks_y })
}

/// Magnitude category (number of amplitude bits) of a coefficient value.
fn magnitude_category(value: i32) -> u8 {
    let mut v = value.unsigned_abs();
    let mut bits = 0u8;
    while v > 0 {
        bits += 1;
        v >>= 1;
    }
    bits
}

/// JPEG-style amplitude encoding: positive values as-is, negative values in one's
/// complement of the magnitude bits.
fn encode_amplitude(value: i32, bits: u8) -> u32 {
    if value >= 0 {
        value as u32
    } else {
        (value + (1 << bits) - 1) as u32
    }
}

fn decode_amplitude(raw: u32, bits: u8) -> i32 {
    if bits == 0 {
        return 0;
    }
    let half = 1u32 << (bits - 1);
    if raw >= half {
        raw as i32
    } else {
        raw as i32 - (1 << bits) + 1
    }
}

/// Collects the (symbol, amplitude) pairs for one scan. DC bands use differential coding;
/// AC bands use (run, size) run-length coding with EOB/ZRL symbols.
fn scan_symbols(planes: &CoefficientPlanes, band: ScanBand) -> Vec<(u8, u32, u8)> {
    let mut symbols = Vec::new();
    for (c, blocks) in planes.blocks.iter().enumerate() {
        if band.is_dc() {
            let mut prev = 0i32;
            for block in blocks {
                let dc = i32::from(block[0]);
                let diff = dc - prev;
                prev = dc;
                let bits = magnitude_category(diff);
                symbols.push((bits, encode_amplitude(diff, bits), bits));
            }
        } else {
            for block in blocks {
                let mut run = 0u32;
                for zz in band.start..=band.end {
                    let value = i32::from(block[ZIGZAG[zz]]);
                    if value == 0 {
                        run += 1;
                        continue;
                    }
                    while run >= 16 {
                        symbols.push((ZRL, 0, 0));
                        run -= 16;
                    }
                    let bits = magnitude_category(value);
                    let symbol = ((run as u8) << 4) | bits;
                    symbols.push((symbol, encode_amplitude(value, bits), bits));
                    run = 0;
                }
                if run > 0 {
                    symbols.push((EOB, 0, 0));
                }
            }
        }
        let _ = c;
    }
    symbols
}

fn encode_scan(planes: &CoefficientPlanes, band: ScanBand) -> EncodedScan {
    let symbols = scan_symbols(planes, band);
    let mut freqs = [0u64; 256];
    for &(sym, _, _) in &symbols {
        freqs[sym as usize] += 1;
    }
    let code = HuffmanCode::from_frequencies(&freqs);
    let mut data = Vec::new();
    code.write_table(&mut data);
    let mut writer = BitWriter::new();
    for &(sym, amplitude, bits) in &symbols {
        code.encode(sym, &mut writer);
        if bits > 0 {
            writer.write_bits(amplitude, bits);
        }
    }
    data.extend_from_slice(&writer.finish());
    EncodedScan { band, data }
}

/// Applies one entropy-coded scan to the coefficient planes.
///
/// When `dirty` is provided (one flag per block-grid position, shared across components),
/// every block whose stored coefficients actually *changed* is flagged — the incremental
/// decoder re-runs the IDCT for exactly those blocks. A write that stores the value
/// already present (e.g. a zero DC difference on a still-zero block) is not a change, so
/// unflagged blocks are guaranteed to reconstruct to bit-identical pixels.
pub(crate) fn decode_scan(
    scan: &EncodedScan,
    scan_index: usize,
    planes: &mut CoefficientPlanes,
    mut dirty: Option<&mut [bool]>,
) -> Result<()> {
    let (code, consumed) = HuffmanCode::read_table(&scan.data)
        .ok_or(CodecError::CorruptStream { scan: scan_index })?;
    let mut reader = BitReader::new(&scan.data[consumed..]);
    let band = scan.band;
    let blocks_per_component = planes.blocks_x * planes.blocks_y;

    for c in 0..COMPONENTS {
        if band.is_dc() {
            let mut prev = 0i32;
            for b in 0..blocks_per_component {
                let bits = code
                    .decode(&mut reader)
                    .ok_or(CodecError::TruncatedStream { scan: scan_index })?;
                // Coefficients are i16, so a valid DC difference fits 17
                // magnitude bits; anything larger is a corrupt symbol (and
                // would overflow the amplitude decoder's shifts).
                if bits > 17 {
                    return Err(CodecError::CorruptStream { scan: scan_index });
                }
                let raw = if bits > 0 {
                    reader
                        .read_bits(bits)
                        .ok_or(CodecError::TruncatedStream { scan: scan_index })?
                } else {
                    0
                };
                let diff = decode_amplitude(raw, bits);
                let dc = prev + diff;
                prev = dc;
                let level = dc as i16;
                if let Some(flags) = dirty.as_deref_mut() {
                    if planes.blocks[c][b][0] != level {
                        flags[b] = true;
                    }
                }
                planes.blocks[c][b][0] = level;
            }
        } else {
            for b in 0..blocks_per_component {
                let mut zz = band.start;
                while zz <= band.end {
                    let symbol = code
                        .decode(&mut reader)
                        .ok_or(CodecError::TruncatedStream { scan: scan_index })?;
                    if symbol == EOB {
                        break;
                    }
                    if symbol == ZRL {
                        zz += 16;
                        continue;
                    }
                    let run = (symbol >> 4) as usize;
                    let bits = symbol & 0x0F;
                    zz += run;
                    if zz > band.end {
                        return Err(CodecError::CorruptStream { scan: scan_index });
                    }
                    let raw = reader
                        .read_bits(bits)
                        .ok_or(CodecError::TruncatedStream { scan: scan_index })?;
                    let level = decode_amplitude(raw, bits) as i16;
                    if let Some(flags) = dirty.as_deref_mut() {
                        if planes.blocks[c][b][ZIGZAG[zz]] != level {
                            flags[b] = true;
                        }
                    }
                    planes.blocks[c][b][ZIGZAG[zz]] = level;
                    zz += 1;
                }
            }
        }
    }
    Ok(())
}

/// Dequantizes and inverse-transforms one block, writing its 8×8 spatial samples into the
/// padded component plane. Shared by the from-scratch reconstruction and the incremental
/// decoder so both produce bit-identical spatial planes from identical coefficients.
pub(crate) fn reconstruct_block(
    levels: &[i16; BLOCK_AREA],
    table: &QuantTable,
    plane: &mut [f32],
    padded_w: usize,
    bx: usize,
    by: usize,
) {
    let coeffs = table.dequantize(levels);
    let spatial = inverse_dct(&coeffs);
    for dy in 0..BLOCK {
        for dx in 0..BLOCK {
            plane[(by * BLOCK + dy) * padded_w + bx * BLOCK + dx] = spatial[dy * BLOCK + dx];
        }
    }
}

/// Converts the YCbCr samples of the padded component planes at linear index `idx` into an
/// RGB pixel. Shared by both reconstruction paths (same caveat as [`reconstruct_block`]).
#[inline]
pub(crate) fn pixel_from_planes(comp: &[Vec<f32>], idx: usize) -> [f32; 3] {
    let ycbcr = [
        (comp[0][idx] + 128.0) / 255.0,
        (comp[1][idx] + 128.0) / 255.0,
        (comp[2][idx] + 128.0) / 255.0,
    ];
    ycbcr_to_rgb(ycbcr)
}

fn reconstruct_image(
    planes: &CoefficientPlanes,
    width: usize,
    height: usize,
    quality: u8,
) -> Result<Image> {
    let luma_table = QuantTable::luma(quality)?;
    let chroma_table = QuantTable::chroma(quality)?;
    let padded_w = planes.blocks_x * BLOCK;
    let padded_h = planes.blocks_y * BLOCK;
    let mut comp = vec![vec![0.0f32; padded_w * padded_h]; COMPONENTS];

    for (c, plane) in comp.iter_mut().enumerate() {
        let table = if c == 0 { &luma_table } else { &chroma_table };
        for by in 0..planes.blocks_y {
            for bx in 0..planes.blocks_x {
                let levels = &planes.blocks[c][by * planes.blocks_x + bx];
                reconstruct_block(levels, table, plane, padded_w, bx, by);
            }
        }
    }

    let img = Image::from_fn(width, height, |x, y| pixel_from_planes(&comp, y * padded_w + x))?;
    Ok(img)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescnn_imaging::{psnr, render_scene, ssim, SceneSpec};

    fn test_image(detail: f64) -> Image {
        render_scene(
            &SceneSpec::new(72, 56, 11).with_detail(detail).with_object_scale(0.6).with_seed(3),
        )
        .unwrap()
    }

    #[test]
    fn scan_plan_validation() {
        assert!(ScanPlan::new(vec![]).is_err());
        assert!(ScanPlan::new(vec![ScanBand::new(0, 5)]).is_err());
        assert!(ScanPlan::new(vec![ScanBand::new(0, 0), ScanBand::new(2, 63)]).is_err());
        assert!(ScanPlan::new(vec![ScanBand::new(0, 0), ScanBand::new(1, 62)]).is_err());
        assert!(ScanPlan::new(vec![ScanBand::new(0, 0), ScanBand::new(1, 63)]).is_ok());
        let std_plan = ScanPlan::standard();
        assert_eq!(std_plan.len(), 5);
        assert!(!std_plan.is_empty());
        assert!(ScanPlan::new(std_plan.bands().to_vec()).is_ok());
    }

    #[test]
    fn band_accessors() {
        let band = ScanBand::new(6, 14);
        assert_eq!(band.len(), 9);
        assert!(!band.is_dc());
        assert!(!band.is_empty());
        assert!(ScanBand::new(0, 0).is_dc());
    }

    #[test]
    fn full_decode_is_faithful_at_high_quality() {
        let img = test_image(0.4);
        let encoded = ProgressiveImage::encode(&img, 92, ScanPlan::standard()).unwrap();
        let decoded = encoded.decode(encoded.num_scans()).unwrap();
        assert_eq!(decoded.dimensions(), img.dimensions());
        let quality = psnr(&img, &decoded).unwrap();
        assert!(quality > 28.0, "PSNR {quality} too low for q=92");
        assert!(ssim(&img, &decoded).unwrap() > 0.9);
    }

    #[test]
    fn progressive_scans_monotonically_improve_quality() {
        let img = test_image(0.8);
        let encoded = ProgressiveImage::encode(&img, 85, ScanPlan::standard()).unwrap();
        let mut prev_ssim = -1.0;
        for scans in 1..=encoded.num_scans() {
            let decoded = encoded.decode(scans).unwrap();
            let s = ssim(&img, &decoded).unwrap();
            assert!(s >= prev_ssim - 0.02, "quality regressed at scan {scans}: {s} < {prev_ssim}");
            prev_ssim = s;
        }
        assert!(prev_ssim > 0.85);
    }

    #[test]
    fn byte_counts_are_cumulative_and_monotone() {
        let img = test_image(0.6);
        let encoded = ProgressiveImage::encode(&img, 80, ScanPlan::standard()).unwrap();
        let per_scan = encoded.scan_bytes();
        assert_eq!(per_scan.len(), 5);
        assert!(per_scan.iter().all(|&b| b > 0));
        let mut prev = 0;
        for k in 0..=encoded.num_scans() {
            let cum = encoded.cumulative_bytes(k);
            assert!(cum >= prev);
            prev = cum;
        }
        assert_eq!(encoded.total_bytes(), encoded.cumulative_bytes(5));
        assert!(encoded.read_fraction(1) < 1.0);
        assert!((encoded.read_fraction(5) - 1.0).abs() < 1e-12);
        // Requesting more scans than available saturates.
        assert_eq!(encoded.cumulative_bytes(99), encoded.total_bytes());
    }

    #[test]
    fn lower_quality_means_fewer_bytes() {
        let img = test_image(0.7);
        let high = ProgressiveImage::encode(&img, 95, ScanPlan::standard()).unwrap();
        let low = ProgressiveImage::encode(&img, 40, ScanPlan::standard()).unwrap();
        assert!(low.total_bytes() < high.total_bytes());
    }

    #[test]
    fn compression_beats_raw_storage() {
        let img = test_image(0.3);
        let encoded = ProgressiveImage::encode(&img, 75, ScanPlan::standard()).unwrap();
        assert!(encoded.total_bytes() < img.raw_byte_size());
    }

    #[test]
    fn decode_scan_out_of_range_is_rejected() {
        let img = test_image(0.5);
        let encoded = ProgressiveImage::encode(&img, 75, ScanPlan::standard()).unwrap();
        assert!(matches!(
            encoded.decode(6),
            Err(CodecError::ScanOutOfRange { requested: 6, available: 5 })
        ));
        assert_eq!(encoded.quality(), 75);
        assert_eq!(encoded.width(), 72);
        assert_eq!(encoded.height(), 56);
        assert_eq!(encoded.plan().len(), 5);
    }

    #[test]
    fn zero_scans_decodes_to_flat_image() {
        let img = test_image(0.5);
        let encoded = ProgressiveImage::encode(&img, 75, ScanPlan::standard()).unwrap();
        let flat = encoded.decode(0).unwrap();
        assert_eq!(flat.dimensions(), img.dimensions());
        // With no coefficients everything decodes to mid-grey after the +128 shift.
        let p = flat.pixel(10, 10);
        assert!((p[0] - p[1]).abs() < 0.05);
    }

    #[test]
    fn truncated_scan_data_is_detected() {
        let img = test_image(0.5);
        let mut encoded = ProgressiveImage::encode(&img, 75, ScanPlan::standard()).unwrap();
        // Truncate the last scan's bitstream hard (keep the table header plus a sliver).
        let scan = &mut encoded.scans[4];
        let keep = (scan.data.len() / 4).max(40);
        scan.data.truncate(keep);
        match encoded.decode(5) {
            Err(CodecError::TruncatedStream { .. }) | Err(CodecError::CorruptStream { .. }) => {}
            other => panic!("expected stream error, got {other:?}"),
        }
        // Earlier scans still decode fine.
        assert!(encoded.decode(3).is_ok());
    }

    #[test]
    fn invalid_quality_is_rejected() {
        let img = test_image(0.5);
        assert!(ProgressiveImage::encode(&img, 0, ScanPlan::standard()).is_err());
        assert!(ProgressiveImage::encode(&img, 101, ScanPlan::standard()).is_err());
    }

    #[test]
    fn non_multiple_of_eight_dimensions_round_trip() {
        let img = render_scene(&SceneSpec::new(37, 29, 5)).unwrap();
        let encoded = ProgressiveImage::encode(&img, 85, ScanPlan::standard()).unwrap();
        let decoded = encoded.decode(5).unwrap();
        assert_eq!(decoded.dimensions(), (37, 29));
        assert!(psnr(&img, &decoded).unwrap() > 24.0);
    }

    #[test]
    fn amplitude_coding_round_trips() {
        for v in [-1000, -255, -128, -1, 0, 1, 2, 31, 255, 1000] {
            let bits = magnitude_category(v);
            let enc = encode_amplitude(v, bits);
            assert_eq!(decode_amplitude(enc, bits), v, "value {v}");
        }
        assert_eq!(magnitude_category(0), 0);
        assert_eq!(magnitude_category(1), 1);
        assert_eq!(magnitude_category(-1), 1);
        assert_eq!(magnitude_category(255), 8);
    }

    #[test]
    fn custom_two_scan_plan_works() {
        let plan = ScanPlan::new(vec![ScanBand::new(0, 0), ScanBand::new(1, 63)]).unwrap();
        let img = test_image(0.5);
        let encoded = ProgressiveImage::encode(&img, 80, plan).unwrap();
        assert_eq!(encoded.num_scans(), 2);
        let full = encoded.decode(2).unwrap();
        assert!(ssim(&img, &full).unwrap() > 0.85);
    }
}
