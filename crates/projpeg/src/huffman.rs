//! Canonical Huffman coding for the entropy stage of the progressive codec.
//!
//! Each scan builds its own code from the symbol histogram of that scan (a "two-pass"
//! encoder), stores the 256-entry code-length table in the scan header, and then emits the
//! coded symbol stream. This mirrors the optimized-Huffman mode of libjpeg and makes the
//! per-scan byte counts honest: they reflect the actual entropy of each spectral band.

use crate::bits::{BitReader, BitWriter};

/// Maximum code length permitted (same limit as JPEG).
const MAX_CODE_LEN: u8 = 16;

/// A canonical Huffman code over byte-valued symbols.
#[derive(Debug, Clone)]
pub struct HuffmanCode {
    /// Code length per symbol (0 = symbol absent).
    lengths: [u8; 256],
    /// Code value per symbol (valid when length > 0).
    codes: [u16; 256],
}

impl HuffmanCode {
    /// Builds a length-limited canonical code from symbol frequencies.
    ///
    /// Symbols with zero frequency get no code. If only one distinct symbol occurs it is
    /// assigned a one-bit code. Package-merge would be optimal; we use the simpler
    /// "sort by frequency, assign by Shannon length, then rebalance" approach which is
    /// close to optimal for the skewed distributions produced by DCT coefficients.
    pub fn from_frequencies(freqs: &[u64; 256]) -> Self {
        let mut lengths = [0u8; 256];
        let total: u64 = freqs.iter().sum();
        if total == 0 {
            return HuffmanCode { lengths, codes: [0; 256] };
        }
        let present: Vec<usize> = (0..256).filter(|&s| freqs[s] > 0).collect();
        if present.len() == 1 {
            lengths[present[0]] = 1;
            return Self::assign_codes(lengths);
        }

        // Initial lengths from the Shannon bound, clamped to [1, MAX_CODE_LEN].
        for &s in &present {
            let p = freqs[s] as f64 / total as f64;
            let ideal = (-p.log2()).ceil().max(1.0);
            lengths[s] = ideal.min(MAX_CODE_LEN as f64) as u8;
        }
        Self::rebalance(&mut lengths, &present, freqs);
        Self::assign_codes(lengths)
    }

    /// Adjusts lengths until the Kraft inequality is satisfied with equality-or-less, so a
    /// prefix code of those lengths exists.
    fn rebalance(lengths: &mut [u8; 256], present: &[usize], freqs: &[u64; 256]) {
        // Kraft sum in units of 2^-MAX_CODE_LEN.
        let unit = |len: u8| 1u64 << (MAX_CODE_LEN - len);
        let kraft = |lengths: &[u8; 256], present: &[usize]| -> u64 {
            present.iter().map(|&s| unit(lengths[s])).sum()
        };
        let budget = 1u64 << MAX_CODE_LEN;

        // If over budget, lengthen the least frequent symbols first.
        let mut order: Vec<usize> = present.to_vec();
        order.sort_by_key(|&s| freqs[s]);
        let mut guard = 0;
        while kraft(lengths, present) > budget && guard < 1_000_000 {
            guard += 1;
            let mut changed = false;
            for &s in &order {
                if lengths[s] < MAX_CODE_LEN {
                    lengths[s] += 1;
                    changed = true;
                    if kraft(lengths, present) <= budget {
                        break;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // If under budget, shorten the most frequent symbols (improves efficiency but is
        // not required for correctness).
        let mut guard = 0;
        loop {
            guard += 1;
            if guard > 10_000 {
                break;
            }
            let mut improved = false;
            for &s in order.iter().rev() {
                if lengths[s] > 1 {
                    let gain = unit(lengths[s] - 1) - unit(lengths[s]);
                    if kraft(lengths, present) + gain <= budget {
                        lengths[s] -= 1;
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
    }

    /// Assigns canonical code values given per-symbol lengths.
    fn assign_codes(lengths: [u8; 256]) -> Self {
        let mut codes = [0u16; 256];
        // Canonical order: by (length, symbol).
        let mut symbols: Vec<usize> = (0..256).filter(|&s| lengths[s] > 0).collect();
        symbols.sort_by_key(|&s| (lengths[s], s));
        let mut code = 0u32;
        let mut prev_len = 0u8;
        for &s in &symbols {
            let len = lengths[s];
            code <<= len - prev_len;
            codes[s] = code as u16;
            code += 1;
            prev_len = len;
        }
        HuffmanCode { lengths, codes }
    }

    /// Reconstructs a code from a stored length table (as written by [`Self::write_table`]).
    pub fn from_lengths(lengths: [u8; 256]) -> Self {
        Self::assign_codes(lengths)
    }

    /// Per-symbol code lengths.
    pub fn lengths(&self) -> &[u8; 256] {
        &self.lengths
    }

    /// Encodes one symbol into the writer.
    ///
    /// # Panics
    /// Panics if the symbol has no code (zero frequency at build time).
    pub fn encode(&self, symbol: u8, writer: &mut BitWriter) {
        let len = self.lengths[symbol as usize];
        assert!(len > 0, "symbol {symbol} has no code");
        writer.write_bits(u32::from(self.codes[symbol as usize]), len);
    }

    /// Decodes one symbol from the reader, or `None` on end of stream / unknown code.
    pub fn decode(&self, reader: &mut BitReader<'_>) -> Option<u8> {
        let mut code = 0u32;
        for len in 1..=MAX_CODE_LEN {
            code = (code << 1) | u32::from(reader.read_bit()?);
            // Linear scan is acceptable: tables are small and decode speed is not the
            // bottleneck of the experiments.
            for s in 0..256usize {
                if self.lengths[s] == len && u32::from(self.codes[s]) == code {
                    return Some(s as u8);
                }
            }
        }
        None
    }

    /// Serializes the table in the compact JPEG `DHT` layout: 16 bytes holding the number
    /// of codes of each length (1–16) followed by the symbols in canonical order.
    pub fn write_table(&self, out: &mut Vec<u8>) {
        let mut counts = [0u8; MAX_CODE_LEN as usize];
        let mut symbols: Vec<usize> = (0..256).filter(|&s| self.lengths[s] > 0).collect();
        symbols.sort_by_key(|&s| (self.lengths[s], s));
        for &s in &symbols {
            counts[self.lengths[s] as usize - 1] += 1;
        }
        out.extend_from_slice(&counts);
        out.extend(symbols.iter().map(|&s| s as u8));
    }

    /// Reads a table previously written by [`Self::write_table`], returning the code and
    /// the number of bytes consumed.
    pub fn read_table(bytes: &[u8]) -> Option<(Self, usize)> {
        if bytes.len() < MAX_CODE_LEN as usize {
            return None;
        }
        let counts = &bytes[..MAX_CODE_LEN as usize];
        let total: usize = counts.iter().map(|&c| c as usize).sum();
        let needed = MAX_CODE_LEN as usize + total;
        if bytes.len() < needed {
            return None;
        }
        let mut lengths = [0u8; 256];
        let mut idx = MAX_CODE_LEN as usize;
        for (len_minus_one, &count) in counts.iter().enumerate() {
            for _ in 0..count {
                lengths[bytes[idx] as usize] = len_minus_one as u8 + 1;
                idx += 1;
            }
        }
        Some((Self::from_lengths(lengths), needed))
    }

    /// Total coded size in bits for a symbol histogram (excluding the table header).
    pub fn coded_bits(&self, freqs: &[u64; 256]) -> u64 {
        freqs.iter().enumerate().map(|(s, &f)| f * u64::from(self.lengths[s])).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(symbols: &[u8]) -> [u64; 256] {
        let mut freqs = [0u64; 256];
        for &s in symbols {
            freqs[s as usize] += 1;
        }
        freqs
    }

    fn round_trip(symbols: &[u8]) {
        let freqs = histogram(symbols);
        let code = HuffmanCode::from_frequencies(&freqs);
        let mut writer = BitWriter::new();
        for &s in symbols {
            code.encode(s, &mut writer);
        }
        let bytes = writer.finish();
        let mut reader = BitReader::new(&bytes);
        for &s in symbols {
            assert_eq!(code.decode(&mut reader), Some(s));
        }
    }

    #[test]
    fn round_trip_skewed_distribution() {
        let mut symbols = vec![0u8; 400];
        symbols.extend(vec![1u8; 100]);
        symbols.extend(vec![7u8; 30]);
        symbols.extend(vec![200u8; 3]);
        symbols.extend((0..50u8).collect::<Vec<_>>());
        round_trip(&symbols);
    }

    #[test]
    fn round_trip_single_symbol() {
        round_trip(&[42u8; 64]);
    }

    #[test]
    fn round_trip_uniform_all_symbols() {
        let symbols: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        round_trip(&symbols);
    }

    #[test]
    fn empty_histogram_has_no_codes() {
        let code = HuffmanCode::from_frequencies(&[0; 256]);
        assert!(code.lengths().iter().all(|&l| l == 0));
    }

    #[test]
    fn skewed_code_is_shorter_than_fixed_width() {
        let mut symbols = vec![0u8; 1000];
        symbols.extend(vec![1u8; 10]);
        symbols.extend(vec![2u8; 5]);
        let freqs = histogram(&symbols);
        let code = HuffmanCode::from_frequencies(&freqs);
        let bits = code.coded_bits(&freqs);
        // Fixed 8-bit coding would take 8 * 1015 bits; entropy coding must beat 2 bits/symbol.
        assert!(bits < 2 * 1015, "coded bits {bits}");
    }

    #[test]
    fn prefix_property_holds() {
        let mut symbols: Vec<u8> = Vec::new();
        for s in 0..40u8 {
            symbols.extend(std::iter::repeat_n(s, 1 + (s as usize % 9) * 11));
        }
        let code = HuffmanCode::from_frequencies(&histogram(&symbols));
        // No code may be a prefix of another.
        for a in 0..256usize {
            if code.lengths[a] == 0 {
                continue;
            }
            for b in 0..256usize {
                if a == b || code.lengths[b] == 0 || code.lengths[a] > code.lengths[b] {
                    continue;
                }
                let shift = code.lengths[b] - code.lengths[a];
                assert!((code.codes[b] >> shift) != code.codes[a], "code {a} is a prefix of {b}");
            }
        }
    }

    #[test]
    fn table_round_trip() {
        let freqs = histogram(&[1, 1, 1, 2, 2, 3, 9, 9, 9, 9]);
        let code = HuffmanCode::from_frequencies(&freqs);
        let mut table = Vec::new();
        code.write_table(&mut table);
        // 16 count bytes + one byte per distinct symbol (4 distinct symbols here).
        assert_eq!(table.len(), 16 + 4);
        let (decoded, consumed) = HuffmanCode::read_table(&table).unwrap();
        assert_eq!(consumed, table.len());
        assert_eq!(decoded.lengths(), code.lengths());
        assert!(HuffmanCode::read_table(&table[..10]).is_none());
        assert!(HuffmanCode::read_table(&table[..17]).is_none());
    }

    #[test]
    fn decode_rejects_garbage() {
        let freqs = histogram(&[5, 5, 6]);
        let code = HuffmanCode::from_frequencies(&freqs);
        // A stream of bits that cannot all resolve to symbols eventually returns None.
        let garbage = vec![0xAA; 1];
        let mut reader = BitReader::new(&garbage);
        let mut decoded = 0;
        while code.decode(&mut reader).is_some() {
            decoded += 1;
            assert!(decoded < 64, "decode must terminate");
        }
    }
}
