//! 8×8 forward and inverse discrete cosine transforms and the zig-zag ordering.

/// Block extent of the transform (8×8, as in JPEG).
pub const BLOCK: usize = 8;
/// Number of coefficients per block.
pub const BLOCK_AREA: usize = BLOCK * BLOCK;

/// Zig-zag ordering mapping scan position → raster position within an 8×8 block.
pub const ZIGZAG: [usize; BLOCK_AREA] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

fn basis(k: usize, n: usize) -> f32 {
    // cos((2n+1) k π / 16)
    (((2 * n + 1) * k) as f32 * std::f32::consts::PI / 16.0).cos()
}

fn alpha(k: usize) -> f32 {
    if k == 0 {
        (1.0_f32 / 8.0).sqrt()
    } else {
        (2.0_f32 / 8.0).sqrt()
    }
}

/// Forward 8×8 DCT-II of a raster-order block (values typically centred around zero).
///
/// The output is in raster order; use [`ZIGZAG`] to reorder for spectral-selection scans.
pub fn forward_dct(block: &[f32; BLOCK_AREA]) -> [f32; BLOCK_AREA] {
    let mut out = [0.0f32; BLOCK_AREA];
    // Separable: rows then columns.
    let mut tmp = [0.0f32; BLOCK_AREA];
    for y in 0..BLOCK {
        for u in 0..BLOCK {
            let mut acc = 0.0;
            for x in 0..BLOCK {
                acc += block[y * BLOCK + x] * basis(u, x);
            }
            tmp[y * BLOCK + u] = acc * alpha(u);
        }
    }
    for u in 0..BLOCK {
        for v in 0..BLOCK {
            let mut acc = 0.0;
            for y in 0..BLOCK {
                acc += tmp[y * BLOCK + u] * basis(v, y);
            }
            out[v * BLOCK + u] = acc * alpha(v);
        }
    }
    out
}

/// Inverse 8×8 DCT (DCT-III), the exact inverse of [`forward_dct`].
pub fn inverse_dct(coeffs: &[f32; BLOCK_AREA]) -> [f32; BLOCK_AREA] {
    let mut out = [0.0f32; BLOCK_AREA];
    let mut tmp = [0.0f32; BLOCK_AREA];
    for u in 0..BLOCK {
        for y in 0..BLOCK {
            let mut acc = 0.0;
            for v in 0..BLOCK {
                acc += alpha(v) * coeffs[v * BLOCK + u] * basis(v, y);
            }
            tmp[y * BLOCK + u] = acc;
        }
    }
    for y in 0..BLOCK {
        for x in 0..BLOCK {
            let mut acc = 0.0;
            for u in 0..BLOCK {
                acc += alpha(u) * tmp[y * BLOCK + u] * basis(u, x);
            }
            out[y * BLOCK + x] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; BLOCK_AREA];
        for &i in &ZIGZAG {
            assert!(i < BLOCK_AREA);
            assert!(!seen[i], "duplicate zig-zag entry {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // First entries follow the JPEG spec.
        assert_eq!(&ZIGZAG[..6], &[0, 1, 8, 16, 9, 2]);
        assert_eq!(ZIGZAG[63], 63);
    }

    #[test]
    fn constant_block_concentrates_in_dc() {
        let block = [12.5f32; BLOCK_AREA];
        let coeffs = forward_dct(&block);
        assert!((coeffs[0] - 12.5 * 8.0).abs() < 1e-3);
        for (i, &c) in coeffs.iter().enumerate().skip(1) {
            assert!(c.abs() < 1e-3, "AC coefficient {i} = {c}");
        }
    }

    #[test]
    fn forward_inverse_round_trip() {
        let mut block = [0.0f32; BLOCK_AREA];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i as f32 * 1.7).sin() * 100.0) + (i as f32) - 32.0;
        }
        let coeffs = forward_dct(&block);
        let back = inverse_dct(&coeffs);
        for (a, b) in block.iter().zip(&back) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn transform_is_orthonormal() {
        // Parseval: energy preserved.
        let mut block = [0.0f32; BLOCK_AREA];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i * 37 % 23) as f32) - 11.0;
        }
        let coeffs = forward_dct(&block);
        let e_spatial: f32 = block.iter().map(|v| v * v).sum();
        let e_freq: f32 = coeffs.iter().map(|v| v * v).sum();
        assert!((e_spatial - e_freq).abs() / e_spatial < 1e-4);
    }

    #[test]
    fn high_frequency_pattern_concentrates_in_high_coeffs() {
        // Checkerboard: energy in the highest-frequency coefficient.
        let mut block = [0.0f32; BLOCK_AREA];
        for y in 0..BLOCK {
            for x in 0..BLOCK {
                block[y * BLOCK + x] = if (x + y) % 2 == 0 { 100.0 } else { -100.0 };
            }
        }
        let coeffs = forward_dct(&block);
        let max_idx = coeffs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap()
            .0;
        assert_eq!(max_idx, 63, "checkerboard must peak at the (7,7) coefficient");
    }
}
