//! 8×8 forward and inverse discrete cosine transforms and the zig-zag ordering.

/// Block extent of the transform (8×8, as in JPEG).
pub const BLOCK: usize = 8;
/// Number of coefficients per block.
pub const BLOCK_AREA: usize = BLOCK * BLOCK;

/// Zig-zag ordering mapping scan position → raster position within an 8×8 block.
pub const ZIGZAG: [usize; BLOCK_AREA] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

fn basis(k: usize, n: usize) -> f32 {
    // cos((2n+1) k π / 16)
    (((2 * n + 1) * k) as f32 * std::f32::consts::PI / 16.0).cos()
}

fn alpha(k: usize) -> f32 {
    if k == 0 {
        (1.0_f32 / 8.0).sqrt()
    } else {
        (2.0_f32 / 8.0).sqrt()
    }
}

/// Precomputed transform constants. Values are produced by the exact same `basis`/`alpha`
/// expressions the transforms previously evaluated inline, so table lookups return
/// bit-identical `f32`s and the rewritten loops below reproduce the original results
/// bitwise — only the transcendental calls are gone.
struct DctTables {
    /// `basis[k * BLOCK + n] = cos((2n+1) k π / 16)`.
    basis: [f32; BLOCK_AREA],
    /// `basis_t[n * BLOCK + k]`: the transpose, for passes whose contiguous lane is `k`.
    basis_t: [f32; BLOCK_AREA],
    /// `alpha[k]`: the DCT normalization factors.
    alpha: [f32; BLOCK],
}

fn tables() -> &'static DctTables {
    static TABLES: std::sync::OnceLock<DctTables> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t =
            DctTables { basis: [0.0; BLOCK_AREA], basis_t: [0.0; BLOCK_AREA], alpha: [0.0; BLOCK] };
        for k in 0..BLOCK {
            t.alpha[k] = alpha(k);
            for n in 0..BLOCK {
                t.basis[k * BLOCK + n] = basis(k, n);
                t.basis_t[n * BLOCK + k] = basis(k, n);
            }
        }
        t
    })
}

/// Forward 8×8 DCT-II of a raster-order block (values typically centred around zero).
///
/// The output is in raster order; use [`ZIGZAG`] to reorder for spectral-selection scans.
///
/// Both passes keep one 8-wide accumulator array whose lanes are independent output
/// coefficients, so the inner loops auto-vectorize; each lane's accumulation order (and
/// hence its rounding) is identical to the original scalar triple loop.
pub fn forward_dct(block: &[f32; BLOCK_AREA]) -> [f32; BLOCK_AREA] {
    let t = tables();
    let mut out = [0.0f32; BLOCK_AREA];
    // Separable: rows then columns.
    let mut tmp = [0.0f32; BLOCK_AREA];
    for y in 0..BLOCK {
        // Lanes: acc[u] accumulates over x, exactly as the scalar loop did per (y, u).
        let mut acc = [0.0f32; BLOCK];
        for x in 0..BLOCK {
            let sample = block[y * BLOCK + x];
            let col = &t.basis_t[x * BLOCK..(x + 1) * BLOCK];
            for u in 0..BLOCK {
                acc[u] += sample * col[u];
            }
        }
        for u in 0..BLOCK {
            tmp[y * BLOCK + u] = acc[u] * t.alpha[u];
        }
    }
    for v in 0..BLOCK {
        // Lanes: acc[u] accumulates over y.
        let mut acc = [0.0f32; BLOCK];
        for y in 0..BLOCK {
            let b = t.basis[v * BLOCK + y];
            let row = &tmp[y * BLOCK..(y + 1) * BLOCK];
            for u in 0..BLOCK {
                acc[u] += row[u] * b;
            }
        }
        for u in 0..BLOCK {
            out[v * BLOCK + u] = acc[u] * t.alpha[v];
        }
    }
    out
}

/// Inverse 8×8 DCT (DCT-III), the exact inverse of [`forward_dct`].
///
/// Table-driven and lane-parallel like [`forward_dct`], with per-output accumulation
/// order (and rounding) identical to the original scalar implementation.
pub fn inverse_dct(coeffs: &[f32; BLOCK_AREA]) -> [f32; BLOCK_AREA] {
    let t = tables();
    let mut out = [0.0f32; BLOCK_AREA];
    let mut tmp = [0.0f32; BLOCK_AREA];
    for y in 0..BLOCK {
        // Lanes: acc[u] accumulates over v; `(alpha * coeff) * basis` preserves the
        // original left-to-right product order.
        let mut acc = [0.0f32; BLOCK];
        for v in 0..BLOCK {
            let a = t.alpha[v];
            let b = t.basis[v * BLOCK + y];
            let row = &coeffs[v * BLOCK..(v + 1) * BLOCK];
            for u in 0..BLOCK {
                acc[u] += a * row[u] * b;
            }
        }
        tmp[y * BLOCK..(y + 1) * BLOCK].copy_from_slice(&acc);
    }
    for y in 0..BLOCK {
        // Lanes: acc[x] accumulates over u.
        let mut acc = [0.0f32; BLOCK];
        for u in 0..BLOCK {
            let s = t.alpha[u] * tmp[y * BLOCK + u];
            let row = &t.basis[u * BLOCK..(u + 1) * BLOCK];
            for x in 0..BLOCK {
                acc[x] += s * row[x];
            }
        }
        out[y * BLOCK..(y + 1) * BLOCK].copy_from_slice(&acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; BLOCK_AREA];
        for &i in &ZIGZAG {
            assert!(i < BLOCK_AREA);
            assert!(!seen[i], "duplicate zig-zag entry {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // First entries follow the JPEG spec.
        assert_eq!(&ZIGZAG[..6], &[0, 1, 8, 16, 9, 2]);
        assert_eq!(ZIGZAG[63], 63);
    }

    #[test]
    fn constant_block_concentrates_in_dc() {
        let block = [12.5f32; BLOCK_AREA];
        let coeffs = forward_dct(&block);
        assert!((coeffs[0] - 12.5 * 8.0).abs() < 1e-3);
        for (i, &c) in coeffs.iter().enumerate().skip(1) {
            assert!(c.abs() < 1e-3, "AC coefficient {i} = {c}");
        }
    }

    #[test]
    fn forward_inverse_round_trip() {
        let mut block = [0.0f32; BLOCK_AREA];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i as f32 * 1.7).sin() * 100.0) + (i as f32) - 32.0;
        }
        let coeffs = forward_dct(&block);
        let back = inverse_dct(&coeffs);
        for (a, b) in block.iter().zip(&back) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn transform_is_orthonormal() {
        // Parseval: energy preserved.
        let mut block = [0.0f32; BLOCK_AREA];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i * 37 % 23) as f32) - 11.0;
        }
        let coeffs = forward_dct(&block);
        let e_spatial: f32 = block.iter().map(|v| v * v).sum();
        let e_freq: f32 = coeffs.iter().map(|v| v * v).sum();
        assert!((e_spatial - e_freq).abs() / e_spatial < 1e-4);
    }

    #[test]
    fn table_driven_transforms_match_inline_formulas_bitwise() {
        // The pre-table scalar implementations, kept verbatim as the rounding reference:
        // the lane-parallel rewrites must reproduce every output bit exactly.
        fn forward_scalar(block: &[f32; BLOCK_AREA]) -> [f32; BLOCK_AREA] {
            let mut out = [0.0f32; BLOCK_AREA];
            let mut tmp = [0.0f32; BLOCK_AREA];
            for y in 0..BLOCK {
                for u in 0..BLOCK {
                    let mut acc = 0.0;
                    for x in 0..BLOCK {
                        acc += block[y * BLOCK + x] * basis(u, x);
                    }
                    tmp[y * BLOCK + u] = acc * alpha(u);
                }
            }
            for u in 0..BLOCK {
                for v in 0..BLOCK {
                    let mut acc = 0.0;
                    for y in 0..BLOCK {
                        acc += tmp[y * BLOCK + u] * basis(v, y);
                    }
                    out[v * BLOCK + u] = acc * alpha(v);
                }
            }
            out
        }
        fn inverse_scalar(coeffs: &[f32; BLOCK_AREA]) -> [f32; BLOCK_AREA] {
            let mut out = [0.0f32; BLOCK_AREA];
            let mut tmp = [0.0f32; BLOCK_AREA];
            for u in 0..BLOCK {
                for y in 0..BLOCK {
                    let mut acc = 0.0;
                    for v in 0..BLOCK {
                        acc += alpha(v) * coeffs[v * BLOCK + u] * basis(v, y);
                    }
                    tmp[y * BLOCK + u] = acc;
                }
            }
            for y in 0..BLOCK {
                for x in 0..BLOCK {
                    let mut acc = 0.0;
                    for u in 0..BLOCK {
                        acc += alpha(u) * tmp[y * BLOCK + u] * basis(u, x);
                    }
                    out[y * BLOCK + x] = acc;
                }
            }
            out
        }

        for seed in 0u32..8 {
            let mut block = [0.0f32; BLOCK_AREA];
            for (i, v) in block.iter_mut().enumerate() {
                *v = (((i as u32).wrapping_mul(2654435761).wrapping_add(seed * 40503) >> 16) & 0xFF)
                    as f32
                    - 128.0;
            }
            let fast = forward_dct(&block);
            let slow = forward_scalar(&block);
            for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "forward coefficient {i} differs");
            }
            let fast = inverse_dct(&slow);
            let slow = inverse_scalar(&slow.clone());
            for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "inverse sample {i} differs");
            }
        }
    }

    #[test]
    fn high_frequency_pattern_concentrates_in_high_coeffs() {
        // Checkerboard: energy in the highest-frequency coefficient.
        let mut block = [0.0f32; BLOCK_AREA];
        for y in 0..BLOCK {
            for x in 0..BLOCK {
                block[y * BLOCK + x] = if (x + y) % 2 == 0 { 100.0 } else { -100.0 };
            }
        }
        let coeffs = forward_dct(&block);
        let max_idx = coeffs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap()
            .0;
        assert_eq!(max_idx, 63, "checkerboard must peak at the (7,7) coefficient");
    }
}
