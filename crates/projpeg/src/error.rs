//! Error types for the progressive codec.

use std::error::Error;
use std::fmt;

/// Error raised while encoding or decoding progressive images.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The requested quality factor is outside `1..=100`.
    InvalidQuality {
        /// Requested quality.
        quality: u8,
    },
    /// A scan plan is empty, overlapping, or does not cover the coefficient range.
    InvalidScanPlan {
        /// Explanation of the defect.
        reason: String,
    },
    /// The encoded stream ended before the expected number of symbols was read.
    TruncatedStream {
        /// Scan index in which the truncation was detected.
        scan: usize,
    },
    /// The encoded stream contains a symbol that the Huffman table cannot resolve.
    CorruptStream {
        /// Scan index in which the corruption was detected.
        scan: usize,
    },
    /// The requested number of scans exceeds what the encoded image contains.
    ScanOutOfRange {
        /// Requested scan count.
        requested: usize,
        /// Available scan count.
        available: usize,
    },
    /// An incremental decoder was asked to move backwards (scans can only accumulate).
    CannotRewind {
        /// Scans already applied.
        applied: usize,
        /// Requested (smaller) scan count.
        requested: usize,
    },
    /// The image could not be constructed (propagated from the imaging crate).
    Imaging(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::InvalidQuality { quality } => {
                write!(f, "quality factor {quality} must lie in 1..=100")
            }
            CodecError::InvalidScanPlan { reason } => write!(f, "invalid scan plan: {reason}"),
            CodecError::TruncatedStream { scan } => {
                write!(f, "encoded stream truncated in scan {scan}")
            }
            CodecError::CorruptStream { scan } => {
                write!(f, "encoded stream corrupt in scan {scan}")
            }
            CodecError::ScanOutOfRange { requested, available } => {
                write!(f, "requested {requested} scans but only {available} are encoded")
            }
            CodecError::CannotRewind { applied, requested } => {
                write!(
                    f,
                    "progressive decoder already applied {applied} scans and cannot rewind to \
                     {requested}"
                )
            }
            CodecError::Imaging(msg) => write!(f, "imaging error: {msg}"),
        }
    }
}

impl Error for CodecError {}

impl From<rescnn_imaging::ImagingError> for CodecError {
    fn from(err: rescnn_imaging::ImagingError) -> Self {
        CodecError::Imaging(err.to_string())
    }
}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CodecError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CodecError::InvalidQuality { quality: 0 }.to_string().contains("1..=100"));
        assert!(CodecError::InvalidScanPlan { reason: "gap".into() }.to_string().contains("gap"));
        assert!(CodecError::TruncatedStream { scan: 2 }.to_string().contains("scan 2"));
        assert!(CodecError::CorruptStream { scan: 1 }.to_string().contains("corrupt"));
        assert!(CodecError::ScanOutOfRange { requested: 9, available: 5 }
            .to_string()
            .contains('9'));
        let img_err = rescnn_imaging::ImagingError::EmptyImage;
        let converted: CodecError = img_err.into();
        assert!(converted.to_string().contains("imaging"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CodecError>();
    }
}
