//! Quantization tables and quality scaling (Annex K of the JPEG standard).

use crate::dct::BLOCK_AREA;
use crate::error::{CodecError, Result};

/// Base luminance quantization table (JPEG Annex K, raster order).
pub const BASE_LUMA: [u16; BLOCK_AREA] = [
    16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55, 14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62, 18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81, 104, 113,
    92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
];

/// Base chrominance quantization table (JPEG Annex K, raster order).
pub const BASE_CHROMA: [u16; BLOCK_AREA] = [
    17, 18, 24, 47, 99, 99, 99, 99, 18, 21, 26, 66, 99, 99, 99, 99, 24, 26, 56, 99, 99, 99, 99, 99,
    47, 66, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
];

/// A scaled quantization table for one component class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantTable {
    values: [u16; BLOCK_AREA],
}

impl QuantTable {
    /// Builds a quality-scaled table using the libjpeg scaling convention.
    ///
    /// # Errors
    /// Returns [`CodecError::InvalidQuality`] unless `1 <= quality <= 100`.
    pub fn scaled(base: &[u16; BLOCK_AREA], quality: u8) -> Result<Self> {
        if quality == 0 || quality > 100 {
            return Err(CodecError::InvalidQuality { quality });
        }
        let scale: u32 =
            if quality < 50 { 5000 / u32::from(quality) } else { 200 - 2 * u32::from(quality) };
        let mut values = [0u16; BLOCK_AREA];
        for (v, &b) in values.iter_mut().zip(base.iter()) {
            let scaled = (u32::from(b) * scale + 50) / 100;
            *v = scaled.clamp(1, 255) as u16;
        }
        Ok(QuantTable { values })
    }

    /// Quality-scaled luminance table.
    ///
    /// # Errors
    /// Returns [`CodecError::InvalidQuality`] for out-of-range quality factors.
    pub fn luma(quality: u8) -> Result<Self> {
        Self::scaled(&BASE_LUMA, quality)
    }

    /// Quality-scaled chrominance table.
    ///
    /// # Errors
    /// Returns [`CodecError::InvalidQuality`] for out-of-range quality factors.
    pub fn chroma(quality: u8) -> Result<Self> {
        Self::scaled(&BASE_CHROMA, quality)
    }

    /// The step size for coefficient `index` (raster order).
    #[inline]
    pub fn step(&self, index: usize) -> f32 {
        f32::from(self.values[index])
    }

    /// Quantizes a raster-order coefficient block to integers.
    pub fn quantize(&self, coeffs: &[f32; BLOCK_AREA]) -> [i16; BLOCK_AREA] {
        let mut out = [0i16; BLOCK_AREA];
        for i in 0..BLOCK_AREA {
            out[i] = (coeffs[i] / self.step(i)).round().clamp(-32768.0, 32767.0) as i16;
        }
        out
    }

    /// Dequantizes integer levels back to coefficient magnitudes.
    pub fn dequantize(&self, levels: &[i16; BLOCK_AREA]) -> [f32; BLOCK_AREA] {
        let mut out = [0.0f32; BLOCK_AREA];
        for i in 0..BLOCK_AREA {
            out[i] = f32::from(levels[i]) * self.step(i);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_bounds_are_enforced() {
        assert!(QuantTable::luma(0).is_err());
        assert!(QuantTable::luma(101).is_err());
        assert!(QuantTable::luma(1).is_ok());
        assert!(QuantTable::chroma(100).is_ok());
    }

    #[test]
    fn higher_quality_means_smaller_steps() {
        let q30 = QuantTable::luma(30).unwrap();
        let q90 = QuantTable::luma(90).unwrap();
        let sum30: u32 = (0..BLOCK_AREA).map(|i| q30.step(i) as u32).sum();
        let sum90: u32 = (0..BLOCK_AREA).map(|i| q90.step(i) as u32).sum();
        assert!(sum90 < sum30);
        // Quality 50 reproduces the base table exactly.
        let q50 = QuantTable::luma(50).unwrap();
        for (i, &base) in BASE_LUMA.iter().enumerate() {
            assert_eq!(q50.step(i) as u16, base);
        }
    }

    #[test]
    fn steps_never_hit_zero() {
        let q100 = QuantTable::luma(100).unwrap();
        for i in 0..BLOCK_AREA {
            assert!(q100.step(i) >= 1.0);
        }
    }

    #[test]
    fn quantize_dequantize_bounds_error_by_step() {
        let table = QuantTable::luma(75).unwrap();
        let mut coeffs = [0.0f32; BLOCK_AREA];
        for (i, c) in coeffs.iter_mut().enumerate() {
            *c = ((i as f32) - 30.0) * 7.3;
        }
        let levels = table.quantize(&coeffs);
        let back = table.dequantize(&levels);
        for i in 0..BLOCK_AREA {
            assert!((coeffs[i] - back[i]).abs() <= table.step(i) / 2.0 + 1e-3);
        }
    }

    #[test]
    fn chroma_is_coarser_than_luma_at_high_frequencies() {
        let luma = QuantTable::luma(50).unwrap();
        let chroma = QuantTable::chroma(50).unwrap();
        assert!(chroma.step(63) >= luma.step(63));
    }
}
