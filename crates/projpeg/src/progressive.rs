//! Incremental progressive decoding.
//!
//! [`ProgressiveImage::decode`] rebuilds the image from scratch for every requested scan
//! prefix, which makes walking the quality/read curve of an image — the hot loop of the
//! paper's §V storage-calibration stage — O(S²) in the number of scans. The
//! [`ProgressiveDecoder`] here holds the accumulated coefficient planes, the padded
//! spatial component planes, and the current decoded frame, and applies one scan at a
//! time: entropy-decode the scan, merge its band into the coefficient planes, re-run the
//! inverse DCT for exactly the blocks the scan changed, and refresh only those blocks'
//! pixels. Walking all S prefixes becomes O(S) total decode work, and late scans (which
//! mostly extend zero runs) refresh only a fraction of the blocks.
//!
//! # The incremental-refresh invariant
//!
//! After `k` calls to [`advance`](ProgressiveDecoder::advance), [`frame`]
//! (ProgressiveDecoder::frame) is **bitwise identical** to `image.decode(k)`. This holds
//! structurally rather than by parallel maintenance of two code paths:
//!
//! * both paths funnel scans through the same `decode_scan`, so the coefficient planes
//!   after `k` scans are identical;
//! * a block is flagged dirty exactly when a scan *changed* one of its stored
//!   coefficients (in any component), and the spatial samples of a block are a pure
//!   function of its coefficients (`reconstruct_block`), so skipping clean blocks cannot
//!   change their samples;
//! * a pixel is a pure function of the three component planes at its position
//!   (`pixel_from_planes`), and the component block grids coincide (no chroma
//!   subsampling), so refreshing the pixels of dirty blocks only — with the dirty mask
//!   shared across components — reaches every pixel that could have changed.
//!
//! The zero-scan starting state needs no transform at all: the inverse DCT of an all-zero
//! block is exactly `+0.0` everywhere, so freshly zeroed component planes already equal
//! the reconstruction of zeroed coefficients, and the initial frame is the same mid-grey
//! image `decode(0)` produces.
//!
//! `crates/projpeg/tests/incremental_parity.rs` pins the invariant for every prefix of
//! several scan plans; `CalibrationCurves::sample_curves` in `rescnn-core` is the primary
//! consumer.
//!
//! # Examples
//! ```
//! use rescnn_imaging::{render_scene, SceneSpec};
//! use rescnn_projpeg::{ProgressiveImage, ScanPlan};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let image = render_scene(&SceneSpec::new(64, 48, 7))?;
//! let encoded = ProgressiveImage::encode(&image, 85, ScanPlan::standard())?;
//! let mut decoder = encoded.progressive_decoder()?;
//! for scans in 1..=encoded.num_scans() {
//!     let frame = decoder.advance()?;
//!     assert_eq!(frame, &encoded.decode(scans)?);
//! }
//! # Ok(())
//! # }
//! ```

use rescnn_imaging::Image;

use crate::codec::{
    decode_scan, pixel_from_planes, reconstruct_block, CoefficientPlanes, ProgressiveImage,
    NUM_COMPONENTS,
};
use crate::dct::BLOCK;
use crate::error::{CodecError, Result};
use crate::quant::QuantTable;

/// An incremental decoder over a [`ProgressiveImage`]: applies scans one at a time,
/// re-running the inverse DCT only for blocks each scan actually refreshed.
///
/// See the [module docs](self) for the invariant tying [`frame`](Self::frame) to
/// [`ProgressiveImage::decode`]. The decoder only moves forward; decoding a smaller
/// prefix requires a fresh decoder. If [`advance`](Self::advance) returns a stream
/// error, the decoder's state is unspecified and it must be discarded.
pub struct ProgressiveDecoder<'a> {
    image: &'a ProgressiveImage,
    planes: CoefficientPlanes,
    /// Padded spatial planes (YCbCr), kept in sync with `planes` block by block.
    comp: Vec<Vec<f32>>,
    /// Per-block-grid-position change flags for the scan being applied (scratch).
    dirty: Vec<bool>,
    frame: Image,
    scans_applied: usize,
    luma_table: QuantTable,
    chroma_table: QuantTable,
}

impl ProgressiveImage {
    /// Starts incremental decoding of this image. The decoder begins at zero scans
    /// applied, i.e. [`frame`](ProgressiveDecoder::frame) equals `self.decode(0)`.
    ///
    /// # Errors
    /// Returns an error if the stored quality factor is invalid (cannot happen for
    /// images built by [`ProgressiveImage::encode`]).
    pub fn progressive_decoder(&self) -> Result<ProgressiveDecoder<'_>> {
        ProgressiveDecoder::new(self)
    }
}

impl<'a> ProgressiveDecoder<'a> {
    /// Creates a decoder positioned before the first scan of `image`.
    ///
    /// # Errors
    /// Returns an error if the stored quality factor is invalid.
    pub fn new(image: &'a ProgressiveImage) -> Result<Self> {
        let luma_table = QuantTable::luma(image.quality())?;
        let chroma_table = QuantTable::chroma(image.quality())?;
        let blocks_x = image.width().div_ceil(BLOCK);
        let blocks_y = image.height().div_ceil(BLOCK);
        let padded_w = blocks_x * BLOCK;
        let padded_h = blocks_y * BLOCK;
        let planes = CoefficientPlanes::zeroed(blocks_x, blocks_y);
        // Zeroed spatial planes equal the inverse DCT of zeroed coefficients exactly
        // (every accumulator stays +0.0), so no transform is needed here.
        let comp = vec![vec![0.0f32; padded_w * padded_h]; NUM_COMPONENTS];
        let frame = Image::from_fn(image.width(), image.height(), |x, y| {
            pixel_from_planes(&comp, y * padded_w + x)
        })?;
        Ok(ProgressiveDecoder {
            image,
            planes,
            comp,
            dirty: vec![false; blocks_x * blocks_y],
            frame,
            scans_applied: 0,
            luma_table,
            chroma_table,
        })
    }

    /// The image being decoded.
    pub fn image(&self) -> &'a ProgressiveImage {
        self.image
    }

    /// Number of scans applied so far.
    pub fn scans_applied(&self) -> usize {
        self.scans_applied
    }

    /// Number of scans not yet applied.
    pub fn remaining_scans(&self) -> usize {
        self.image.num_scans() - self.scans_applied
    }

    /// The decoded frame for the current prefix — bitwise identical to
    /// `image.decode(self.scans_applied())`.
    pub fn frame(&self) -> &Image {
        &self.frame
    }

    /// Consumes the decoder, returning the current frame without a copy.
    pub fn into_frame(self) -> Image {
        self.frame
    }

    /// Applies the next scan and returns the refreshed frame.
    ///
    /// # Errors
    /// Returns [`CodecError::ScanOutOfRange`] when every scan has already been applied,
    /// or a stream error if the scan data is corrupt (after which the decoder must be
    /// discarded).
    pub fn advance(&mut self) -> Result<&Image> {
        let index = self.scans_applied;
        let scan = self.image.scans().get(index).ok_or(CodecError::ScanOutOfRange {
            requested: index + 1,
            available: self.image.num_scans(),
        })?;
        self.dirty.fill(false);
        decode_scan(scan, index, &mut self.planes, Some(&mut self.dirty))?;

        let blocks_x = self.planes.blocks_x;
        let padded_w = blocks_x * BLOCK;
        let (width, height) = (self.image.width(), self.image.height());
        for (b, _) in self.dirty.iter().enumerate().filter(|(_, &flag)| flag) {
            let (bx, by) = (b % blocks_x, b / blocks_x);
            for (c, plane) in self.comp.iter_mut().enumerate() {
                let table = if c == 0 { &self.luma_table } else { &self.chroma_table };
                reconstruct_block(&self.planes.blocks[c][b], table, plane, padded_w, bx, by);
            }
            // Refresh the block's visible pixels (edge blocks may extend past the image).
            for y in by * BLOCK..((by + 1) * BLOCK).min(height) {
                for x in bx * BLOCK..((bx + 1) * BLOCK).min(width) {
                    self.frame.set_pixel(x, y, pixel_from_planes(&self.comp, y * padded_w + x));
                }
            }
        }
        self.scans_applied += 1;
        Ok(&self.frame)
    }

    /// Advances until `scans` scans have been applied and returns the frame. A no-op when
    /// already positioned there.
    ///
    /// # Errors
    /// Returns [`CodecError::CannotRewind`] if `scans` is smaller than the number already
    /// applied, [`CodecError::ScanOutOfRange`] if it exceeds the encoded scan count, or a
    /// stream error for corrupt data.
    pub fn advance_to(&mut self, scans: usize) -> Result<&Image> {
        if scans < self.scans_applied {
            return Err(CodecError::CannotRewind { applied: self.scans_applied, requested: scans });
        }
        if scans > self.image.num_scans() {
            return Err(CodecError::ScanOutOfRange {
                requested: scans,
                available: self.image.num_scans(),
            });
        }
        while self.scans_applied < scans {
            self.advance()?;
        }
        Ok(&self.frame)
    }
}

impl std::fmt::Debug for ProgressiveDecoder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressiveDecoder")
            .field("dimensions", &(self.image.width(), self.image.height()))
            .field("scans_applied", &self.scans_applied)
            .field("remaining_scans", &self.remaining_scans())
            .finish()
    }
}
