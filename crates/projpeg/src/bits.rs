//! Bit-granular writer and reader used by the entropy coder.

/// Accumulates bits most-significant-first into a byte vector.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits currently buffered in `acc` (0..8).
    acc: u8,
    acc_len: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the `count` least-significant bits of `value`, most significant first.
    ///
    /// # Panics
    /// Panics if `count > 32`.
    pub fn write_bits(&mut self, value: u32, count: u8) {
        assert!(count <= 32, "cannot write more than 32 bits at once");
        for i in (0..count).rev() {
            let bit = ((value >> i) & 1) as u8;
            self.acc = (self.acc << 1) | bit;
            self.acc_len += 1;
            if self.acc_len == 8 {
                self.bytes.push(self.acc);
                self.acc = 0;
                self.acc_len = 0;
            }
        }
    }

    /// Number of complete bytes plus any partial byte written so far.
    pub fn byte_len(&self) -> usize {
        self.bytes.len() + usize::from(self.acc_len > 0)
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 + self.acc_len as usize
    }

    /// Finishes the stream, padding the final partial byte with ones (JPEG convention),
    /// and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        if self.acc_len > 0 {
            let pad = 8 - self.acc_len;
            self.acc = (self.acc << pad) | ((1u16 << pad) - 1) as u8;
            self.bytes.push(self.acc);
        }
        self.bytes
    }
}

/// Reads bits most-significant-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    bit: u8,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0, bit: 0 }
    }

    /// Reads a single bit, or `None` at end of stream.
    #[inline]
    pub fn read_bit(&mut self) -> Option<u8> {
        if self.pos >= self.bytes.len() {
            return None;
        }
        let byte = self.bytes[self.pos];
        let bit = (byte >> (7 - self.bit)) & 1;
        self.bit += 1;
        if self.bit == 8 {
            self.bit = 0;
            self.pos += 1;
        }
        Some(bit)
    }

    /// Reads `count` bits into the low bits of a `u32`, or `None` if the stream ends first.
    pub fn read_bits(&mut self, count: u8) -> Option<u32> {
        let mut out = 0u32;
        for _ in 0..count {
            out = (out << 1) | u32::from(self.read_bit()?);
        }
        Some(out)
    }

    /// Number of bits remaining in the stream.
    pub fn remaining_bits(&self) -> usize {
        if self.pos >= self.bytes.len() {
            0
        } else {
            (self.bytes.len() - self.pos) * 8 - self.bit as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_various_widths() {
        let mut w = BitWriter::new();
        let values: Vec<(u32, u8)> =
            vec![(1, 1), (0, 1), (5, 3), (255, 8), (1023, 10), (0, 4), (0x1234, 16), (7, 3)];
        for &(v, n) in &values {
            w.write_bits(v, n);
        }
        let total_bits: usize = values.iter().map(|&(_, n)| n as usize).sum();
        assert_eq!(w.bit_len(), total_bits);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &values {
            assert_eq!(r.read_bits(n), Some(v), "width {n}");
        }
    }

    #[test]
    fn byte_len_counts_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.byte_len(), 0);
        w.write_bits(1, 1);
        assert_eq!(w.byte_len(), 1);
        w.write_bits(0xFF, 8);
        assert_eq!(w.byte_len(), 2);
        assert_eq!(w.finish().len(), 2);
    }

    #[test]
    fn reader_detects_end_of_stream() {
        let bytes = vec![0b1010_0000];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.remaining_bits(), 8);
        assert_eq!(r.read_bits(4), Some(0b1010));
        assert_eq!(r.remaining_bits(), 4);
        assert_eq!(r.read_bits(4), Some(0));
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(1), None);
        assert_eq!(r.remaining_bits(), 0);
    }

    #[test]
    fn padding_is_ones() {
        let mut w = BitWriter::new();
        w.write_bits(0, 3);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b0001_1111]);
    }

    #[test]
    #[should_panic(expected = "32 bits")]
    fn oversized_write_panics() {
        BitWriter::new().write_bits(0, 33);
    }
}
