//! # rescnn-projpeg
//!
//! A from-scratch progressive DCT image codec with spectral-selection scans, standing in
//! for progressive JPEG in the paper's storage pipeline (Figure 2 / Figure 4). Images are
//! stored as a sequence of scans; reading a byte prefix (a number of scans) yields a
//! coarse-to-fine reconstruction, and the per-scan byte sizes are real entropy-coded sizes,
//! so the bytes-read vs. quality (SSIM) trade-off measured by the storage-calibration
//! experiments is genuine.
//!
//! # Examples
//! ```
//! use rescnn_imaging::{render_scene, ssim, SceneSpec};
//! use rescnn_projpeg::{ProgressiveImage, ScanPlan};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let image = render_scene(&SceneSpec::new(96, 64, 3))?;
//! let encoded = ProgressiveImage::encode(&image, 85, ScanPlan::standard())?;
//! let preview = encoded.decode(2)?;
//! let full = encoded.decode(encoded.num_scans())?;
//! assert!(ssim(&image, &full)? >= ssim(&image, &preview)? - 0.02);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod bits;
mod codec;
mod color;
mod dct;
mod error;
mod huffman;
mod progressive;
mod quant;

pub use bits::{BitReader, BitWriter};
pub use codec::{EncodedScan, ProgressiveImage, ScanBand, ScanPlan};
pub use color::{rgb_to_ycbcr, ycbcr_to_rgb};
pub use dct::{forward_dct, inverse_dct, BLOCK, BLOCK_AREA, ZIGZAG};
pub use error::{CodecError, Result};
pub use huffman::HuffmanCode;
pub use progressive::ProgressiveDecoder;
pub use quant::{QuantTable, BASE_CHROMA, BASE_LUMA};

/// Commonly used items, intended for glob import.
pub mod prelude {
    pub use crate::{CodecError, ProgressiveDecoder, ProgressiveImage, ScanBand, ScanPlan};
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rescnn_imaging::{render_scene, ssim, SceneSpec};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn encode_decode_never_panics_and_improves(seed in 0u64..500, quality in 30u8..=98,
                                                    detail in 0.0f64..1.0) {
            let spec = SceneSpec::new(40, 40, (seed % 37) as usize)
                .with_seed(seed)
                .with_detail(detail);
            let img = render_scene(&spec).unwrap();
            let encoded = ProgressiveImage::encode(&img, quality, ScanPlan::standard()).unwrap();
            let coarse = encoded.decode(1).unwrap();
            let fine = encoded.decode(encoded.num_scans()).unwrap();
            let s_coarse = ssim(&img, &coarse).unwrap();
            let s_fine = ssim(&img, &fine).unwrap();
            prop_assert!(s_fine >= s_coarse - 0.05, "fine {} vs coarse {}", s_fine, s_coarse);
            prop_assert!(encoded.total_bytes() > 64);
        }

        #[test]
        fn cumulative_bytes_monotone(seed in 0u64..100, quality in 20u8..=95) {
            let img = render_scene(&SceneSpec::new(33, 47, 8).with_seed(seed)).unwrap();
            let encoded = ProgressiveImage::encode(&img, quality, ScanPlan::standard()).unwrap();
            let mut prev = 0;
            for k in 0..=encoded.num_scans() {
                let cum = encoded.cumulative_bytes(k);
                prop_assert!(cum >= prev);
                prev = cum;
            }
        }

        #[test]
        fn dct_round_trip_arbitrary_blocks(values in proptest::collection::vec(-200.0f32..200.0, 64)) {
            let mut block = [0.0f32; 64];
            block.copy_from_slice(&values);
            let back = inverse_dct(&forward_dct(&block));
            for (a, b) in block.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-2);
            }
        }
    }
}
