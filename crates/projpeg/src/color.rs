//! RGB ⇄ YCbCr conversion (BT.601 full-range, as used by JPEG).

/// Converts an RGB pixel in `[0, 1]` to YCbCr in `[0, 1]` (chroma centred at 0.5).
#[inline]
pub fn rgb_to_ycbcr(rgb: [f32; 3]) -> [f32; 3] {
    let [r, g, b] = rgb;
    let y = 0.299 * r + 0.587 * g + 0.114 * b;
    let cb = -0.168_736 * r - 0.331_264 * g + 0.5 * b + 0.5;
    let cr = 0.5 * r - 0.418_688 * g - 0.081_312 * b + 0.5;
    [y, cb, cr]
}

/// Converts a YCbCr pixel in `[0, 1]` back to RGB in `[0, 1]` (clamped).
#[inline]
pub fn ycbcr_to_rgb(ycbcr: [f32; 3]) -> [f32; 3] {
    let [y, cb, cr] = ycbcr;
    let cb = cb - 0.5;
    let cr = cr - 0.5;
    let r = y + 1.402 * cr;
    let g = y - 0.344_136 * cb - 0.714_136 * cr;
    let b = y + 1.772 * cb;
    [r.clamp(0.0, 1.0), g.clamp(0.0, 1.0), b.clamp(0.0, 1.0)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primaries_round_trip() {
        for rgb in [
            [0.0, 0.0, 0.0],
            [1.0, 1.0, 1.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [0.25, 0.5, 0.75],
            [0.9, 0.1, 0.4],
        ] {
            let back = ycbcr_to_rgb(rgb_to_ycbcr(rgb));
            for (a, b) in rgb.iter().zip(&back) {
                assert!((a - b).abs() < 2e-3, "{rgb:?} -> {back:?}");
            }
        }
    }

    #[test]
    fn grey_has_neutral_chroma() {
        let [y, cb, cr] = rgb_to_ycbcr([0.42, 0.42, 0.42]);
        assert!((y - 0.42).abs() < 1e-5);
        assert!((cb - 0.5).abs() < 1e-5);
        assert!((cr - 0.5).abs() < 1e-5);
    }

    #[test]
    fn luma_matches_image_luma_weights() {
        let [y, _, _] = rgb_to_ycbcr([1.0, 0.0, 0.0]);
        assert!((y - 0.299).abs() < 1e-6);
    }

    #[test]
    fn output_is_clamped() {
        let rgb = ycbcr_to_rgb([1.0, 1.0, 1.0]);
        assert!(rgb.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
