//! Per-call engine configuration, replacing mutation of process-global state.
//!
//! Historically, bounding kernel parallelism or pinning a convolution algorithm
//! meant calling [`set_num_threads`](crate::set_num_threads) /
//! [`force_conv_algo`](crate::force_conv_algo), which mutate process-wide state:
//! two pipelines configured differently would race, with the last constructor
//! winning for both. An [`EngineContext`] instead carries the overrides as a value
//! and installs them only for the dynamic extent of a [`scope`](EngineContext::scope)
//! call on the current thread. The engine consults the innermost scope first
//! ([`num_threads`](crate::num_threads) and the dispatch layer in
//! [`conv`](crate::conv2d_dispatch)), so concurrent callers with different budgets
//! are fully isolated.

use std::cell::Cell;

use crate::conv::ConvAlgo;

/// Scoped engine configuration: worker-thread budget and algorithm override.
///
/// Unset fields inherit from the enclosing scope (or, at the outermost level, the
/// process-wide configuration). Contexts are plain values — build one per pipeline
/// or per request and [`scope`](EngineContext::scope) every kernel-bearing call.
///
/// # Examples
/// ```
/// use rescnn_tensor::{num_threads, EngineContext};
///
/// let outside = num_threads();
/// let inside = EngineContext::new().with_threads(2).scope(num_threads);
/// assert_eq!(inside, 2);
/// assert_eq!(num_threads(), outside, "the override ends with the scope");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineContext {
    /// Worker-thread budget for kernels in this scope (`None` inherits).
    pub threads: Option<usize>,
    /// Convolution algorithm pinned for this scope (`None` inherits). Takes
    /// precedence over the process-wide [`force_conv_algo`](crate::force_conv_algo)
    /// override; shapes the algorithm cannot execute still fall back as usual.
    pub algo: Option<ConvAlgo>,
}

thread_local! {
    static CURRENT: Cell<EngineContext> =
        const { Cell::new(EngineContext { threads: None, algo: None }) };
}

impl EngineContext {
    /// A context with no overrides (inherits everything).
    pub fn new() -> Self {
        EngineContext::default()
    }

    /// Bounds kernel parallelism within the scope (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Pins the convolution algorithm within the scope.
    pub fn with_algo(mut self, algo: ConvAlgo) -> Self {
        self.algo = Some(algo);
        self
    }

    /// The context in effect on the current thread (all-`None` outside any scope).
    pub fn current() -> Self {
        CURRENT.with(|cell| cell.get())
    }

    /// Runs `f` with this context installed on the current thread, restoring the
    /// previous context afterwards (also on panic). Nested scopes layer: fields
    /// left `None` inherit the enclosing scope's values.
    pub fn scope<R>(self, f: impl FnOnce() -> R) -> R {
        let previous = Self::current();
        let merged = EngineContext {
            threads: self.threads.or(previous.threads),
            algo: self.algo.or(previous.algo),
        };
        let _restore = ScopeGuard { previous };
        CURRENT.with(|cell| cell.set(merged));
        f()
    }
}

/// Restores the enclosing context when a scope unwinds or returns.
struct ScopeGuard {
    previous: EngineContext,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let previous = self.previous;
        CURRENT.with(|cell| cell.set(previous));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num_threads;

    #[test]
    fn scope_overrides_and_restores_threads() {
        let _guard = crate::test_sync::global_state_lock();
        let outside = num_threads();
        let seen = EngineContext::new().with_threads(2).scope(num_threads);
        assert_eq!(seen, 2);
        assert_eq!(num_threads(), outside);
    }

    #[test]
    fn nested_scopes_layer_and_unwind() {
        let _guard = crate::test_sync::global_state_lock();
        EngineContext::new().with_threads(3).with_algo(ConvAlgo::Direct).scope(|| {
            assert_eq!(num_threads(), 3);
            EngineContext::new().with_threads(5).scope(|| {
                // Inner scope overrides threads but inherits the algorithm.
                assert_eq!(num_threads(), 5);
                assert_eq!(EngineContext::current().algo, Some(ConvAlgo::Direct));
            });
            assert_eq!(num_threads(), 3);
        });
        assert_eq!(EngineContext::current(), EngineContext::new());
    }

    #[test]
    fn scope_restores_after_panic() {
        let _guard = crate::test_sync::global_state_lock();
        let result = std::panic::catch_unwind(|| {
            EngineContext::new().with_threads(7).scope(|| panic!("kernel exploded"))
        });
        assert!(result.is_err());
        assert_eq!(EngineContext::current(), EngineContext::new());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(EngineContext::new().with_threads(0).threads, Some(1));
    }

    #[test]
    fn contexts_are_isolated_per_thread() {
        let _guard = crate::test_sync::global_state_lock();
        EngineContext::new().with_threads(2).scope(|| {
            let other = std::thread::spawn(EngineContext::current).join().unwrap();
            assert_eq!(other, EngineContext::new(), "scopes must not leak across threads");
            assert_eq!(num_threads(), 2);
        });
    }
}
