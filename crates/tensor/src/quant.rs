//! Int8-quantized convolution arm ([`ConvAlgo::Int8`](crate::ConvAlgo::Int8)).
//!
//! The second numeric regime of the engine: weights are quantized **per output
//! channel** to symmetric i8 at prepack time ([`QuantizedConv::prepare`]) and
//! activations **per tensor** to asymmetric u8 at call time (from a
//! calibration-recorded range, or a dynamic min/max scan when none is
//! recorded). The convolution then runs as a u8×i8 integer GEMM over the same
//! packed-panel/stripe structure as the f32 engine — quantized im2col packs
//! directly into byte panels from the [`scratch`] byte pool — with i32
//! accumulation and a fused dequantize + [`ConvEpilogue`] (bias, residual,
//! activation) writeback.
//!
//! # Accumulation layout
//!
//! The shared dimension is processed in **quads** of four consecutive k
//! indices, matching the `vpdpbusd`/`vpmaddubsw` dot-product granularity:
//!
//! * **A (weights, i8)** — tile `t` covers output channels `[t*MR, t*MR+MR)`;
//!   quad `q`, row `r` packs weight bytes `k = 4q..4q+4` into one little-endian
//!   `i32` at `panels[t*quads*MR + q*MR + r]`, broadcast whole into the
//!   microkernel's dword lanes.
//! * **B (activations, u8)** — panel `p` covers `NR` output pixels; quad `q`,
//!   pixel `j` occupies bytes `p*quads*NR*4 + q*NR*4 + j*4 ..+4`, so one vector
//!   load reads the same quad for 16 (zmm) or 8 (ymm) pixels. Padding positions
//!   and quad tails are pre-filled with the activation **zero-point** (the
//!   exact encoding of `0.0`); weight quad tails are zero bytes, so either side
//!   of the tail contributes exactly nothing.
//!
//! # Exactness across kernel tiers
//!
//! Weight quantization clamps to `±`[`INT8_WEIGHT_QMAX`]` = 63`, so any
//! adjacent pair of u8×i8 products sums to at most `2·255·63 = 32130 <
//! i16::MAX`: the `vpmaddubsw` i16-widening step in the AVX-512BW/AVX2
//! fallbacks can never saturate, and the VNNI, maddubs, and portable kernels
//! all compute the **identical i32 accumulator**. The f32 dequant writeback
//! runs in one fixed per-element order, and output rows are partitioned
//! disjointly across worker threads — results are bitwise identical across
//! kernel tiers *and* across `RESCNN_THREADS`, the same contract as the f32
//! engine. The cost of the clamp is one bit of weight precision (6.0 bits vs
//! 7), folded into the accuracy numbers the calibration gate measures.
//!
//! # Accuracy gate
//!
//! Quantization is an approximation, so [`ConvAlgo::Int8`](crate::ConvAlgo)
//! is **never** a heuristic default: dispatch reaches it only through an
//! installed calibration table or an explicit override. Sweeps admit a shape
//! only when [`int8_unit_error`] — a pure function of the shape, mirroring
//! [`winograd_f4_unit_error`](crate::winograd_f4_unit_error) — stays within
//! [`INT8_TOLERANCE`], and the serving layer adds an end-to-end top-1/SSIM
//! budget on top (see `rescnn-core`'s precision gate).

use crate::conv::{
    stripe_height, valid_out_range, validate_bias, validate_into, validate_weight, ConvEpilogue,
};
use crate::engine::{FusedActivation, MC, MR, NR, PARALLEL_MIN_MACS};
use crate::error::{Result, TensorError};
use crate::shape::{Conv2dParams, Shape};
use crate::tensor::Tensor;
use crate::{parallel, scratch};

/// Symmetric clamp magnitude for quantized weights. `63` (not `127`) so the
/// i16-widening kernel tiers are exact — see the module docs — making every
/// microkernel bitwise interchangeable.
pub const INT8_WEIGHT_QMAX: i32 = 63;

/// Elementwise agreement bound for [`conv2d_int8`] against `Im2colPacked` at
/// unit-scale activations and half-scale weights ([`int8_unit_error`]'s
/// operating point), pinned by the characterization suite in
/// `tests/int8_parity.rs` across the serving-ladder layer shapes. Quantization
/// error grows with `sqrt(k)` (k = `ic·kernel²`), so this bound is set from
/// the deepest ResNet-50 stage shapes; typical output magnitudes at the same
/// operating point are ~`0.3·sqrt(k)`, keeping the relative error in the
/// low percent range. Calibration only admits `Int8` for a shape when the
/// probe stays within this bound.
pub const INT8_TOLERANCE: f32 = 0.5;

/// Per-tensor asymmetric u8 quantization parameters for activations:
/// `q(x) = clamp(zp + round(x / scale), 0, 255)`, `x̂ = scale · (q − zp)`.
/// `0.0` always encodes exactly to `zp`, so convolution zero padding is
/// representable for any activation range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActQuant {
    /// Step between adjacent representable activation values.
    pub scale: f32,
    /// The u8 code of `0.0`.
    pub zero_point: u8,
}

impl ActQuant {
    /// Derives quantization parameters from an observed (or calibrated)
    /// activation range. The range is widened to include `0.0` so the
    /// zero-point is exact; degenerate (empty or non-finite) ranges fall back
    /// to a unit scale.
    pub fn from_range(lo: f32, hi: f32) -> ActQuant {
        let lo = lo.min(0.0);
        let hi = hi.max(0.0);
        let span = hi - lo;
        if !span.is_finite() || span <= 0.0 {
            return ActQuant { scale: 1.0, zero_point: 0 };
        }
        let scale = span / 255.0;
        let zero_point = (-lo / scale).round().clamp(0.0, 255.0) as u8;
        ActQuant { scale, zero_point }
    }

    /// Quantizes one activation value.
    #[inline]
    pub fn quantize(self, x: f32) -> u8 {
        (self.zero_point as f32 + (x / self.scale).round()).clamp(0.0, 255.0) as u8
    }
}

/// The sequential min/max scan used for dynamic (uncalibrated) activation
/// ranges. Pure elementwise reduction, so the result is independent of thread
/// count by construction.
pub fn tensor_range(t: &Tensor) -> (f32, f32) {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &x in t.as_slice() {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    if lo > hi {
        (0.0, 0.0)
    } else {
        (lo, hi)
    }
}

/// Convolution weights quantized and packed once into the int8 microkernel's
/// quad-panel layout (see the module docs), with the per-output-channel
/// dequantization scales and quantized-weight row sums (for the activation
/// zero-point correction) folded out at prepare time.
#[derive(Debug, Clone)]
pub struct QuantizedConv {
    /// Packed weight quads: `tiles × quads × MR` little-endian i32s, each
    /// holding 4 consecutive i8 weight bytes of one output channel.
    panels: Vec<i32>,
    /// Per-output-channel symmetric dequant scale (`max|w| / INT8_WEIGHT_QMAX`).
    scales: Vec<f32>,
    /// Per-output-channel sum of quantized weights: the zero-point correction
    /// `acc − zp·wsum` recovers `Σ wq·(q − zp)` from `Σ wq·q`.
    wsum: Vec<i32>,
    /// Shared dimension (`in_channels · kernel²`).
    rows: usize,
    /// Quad count (`rows.div_ceil(4)`).
    quads: usize,
    out_channels: usize,
}

impl QuantizedConv {
    /// Quantizes dense (groups == 1) convolution weights per output channel and
    /// packs them into quad panels.
    ///
    /// # Errors
    /// Returns an error if the layer is grouped or the weight shape is
    /// inconsistent with the parameters.
    pub fn prepare(weight: &Tensor, params: &Conv2dParams) -> Result<Self> {
        if params.groups != 1 {
            return Err(TensorError::ShapeMismatch {
                left: vec![params.groups],
                right: vec![1],
                op: "int8 conv requires groups=1",
            });
        }
        validate_weight(params, weight)?;
        let oc = params.out_channels;
        let rows = params.in_channels * params.kernel * params.kernel;
        // i32 accumulator headroom: |acc| ≤ 255·63·rows must stay below 2³¹.
        assert!(rows <= 130_000, "int8 arm requires ic·k² ≤ 130000 for exact i32 accumulation");
        let quads = rows.div_ceil(4);
        let wdata = weight.as_slice();
        let mut scales = Vec::with_capacity(oc);
        let mut wsum = Vec::with_capacity(oc);
        let tiles = oc.div_ceil(MR);
        let mut panels = vec![0i32; tiles * quads * MR];
        let mut qrow = vec![0i8; quads * 4];
        for c in 0..oc {
            let wrow = &wdata[c * rows..(c + 1) * rows];
            let max_abs = wrow.iter().fold(0.0f32, |m, &w| m.max(w.abs()));
            let scale = if max_abs > 0.0 { max_abs / INT8_WEIGHT_QMAX as f32 } else { 1.0 };
            let mut sum = 0i32;
            qrow.iter_mut().for_each(|q| *q = 0);
            for (q, &w) in qrow.iter_mut().zip(wrow) {
                let v =
                    (w / scale).round().clamp(-(INT8_WEIGHT_QMAX as f32), INT8_WEIGHT_QMAX as f32)
                        as i32;
                sum += v;
                *q = v as i8;
            }
            scales.push(scale);
            wsum.push(sum);
            let (tile, r) = (c / MR, c % MR);
            for q in 0..quads {
                let bytes = [
                    qrow[q * 4] as u8,
                    qrow[q * 4 + 1] as u8,
                    qrow[q * 4 + 2] as u8,
                    qrow[q * 4 + 3] as u8,
                ];
                panels[tile * quads * MR + q * MR + r] = i32::from_le_bytes(bytes);
            }
        }
        Ok(QuantizedConv { panels, scales, wsum, rows, quads, out_channels: oc })
    }

    /// Shared dimension the panels were packed for.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Output channels covered.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Per-output-channel dequantization scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Bytes resident in the packed panels and per-channel tables.
    pub fn resident_bytes(&self) -> usize {
        self.panels.len() * 4 + self.scales.len() * 4 + self.wsum.len() * 4
    }
}

/// The int8 microkernel: accumulates `quads` u8×i8 quad dot products into an
/// exact `MR × NR` i32 tile. Statically dispatches to AVX-512 VNNI
/// (`vpdpbusd`), AVX-512BW / AVX2 `vpmaddubsw`+`vpmaddwd` i16-widening, or a
/// portable scalar loop — all bitwise identical (see the module docs).
#[inline]
fn int8_microkernel(quads: usize, apanel: &[i32], bpanel: &[u8]) -> [[i32; NR]; MR] {
    #[cfg(all(target_arch = "x86_64", target_feature = "avx512vnni"))]
    {
        int8_microkernel_vnni(quads, apanel, bpanel)
    }
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx512f",
        target_feature = "avx512bw",
        not(target_feature = "avx512vnni")
    ))]
    {
        int8_microkernel_avx512bw(quads, apanel, bpanel)
    }
    #[cfg(all(target_arch = "x86_64", target_feature = "avx2", not(target_feature = "avx512f")))]
    {
        int8_microkernel_avx2(quads, apanel, bpanel)
    }
    #[cfg(not(any(
        all(target_arch = "x86_64", target_feature = "avx512vnni"),
        all(
            target_arch = "x86_64",
            target_feature = "avx512f",
            target_feature = "avx512bw",
            not(target_feature = "avx512vnni")
        ),
        all(target_arch = "x86_64", target_feature = "avx2", not(target_feature = "avx512f"))
    )))]
    {
        int8_microkernel_portable(quads, apanel, bpanel)
    }
}

/// AVX-512 VNNI microkernel: 12 × `__m512i` i32 accumulators (6 rows × 32
/// pixels), two B loads and six A dword broadcasts per quad — one `vpdpbusd`
/// retires 4 MACs per lane, 64 per instruction.
///
/// Safety: only compiled when AVX-512 VNNI is statically enabled; the `unsafe`
/// block covers raw-pointer panel reads whose bounds are asserted on entry.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512vnni"))]
#[inline]
fn int8_microkernel_vnni(quads: usize, apanel: &[i32], bpanel: &[u8]) -> [[i32; NR]; MR] {
    use core::arch::x86_64::{
        __m512i, _mm512_dpbusd_epi32, _mm512_loadu_si512, _mm512_set1_epi32, _mm512_setzero_si512,
        _mm512_storeu_si512,
    };
    assert!(apanel.len() >= quads * MR && bpanel.len() >= quads * NR * 4);
    unsafe {
        let mut acc: [[__m512i; 2]; MR] = [[_mm512_setzero_si512(); 2]; MR];
        let mut ap = apanel.as_ptr();
        let mut bp = bpanel.as_ptr();
        for _ in 0..quads {
            let b_lo = _mm512_loadu_si512(bp as *const __m512i);
            let b_hi = _mm512_loadu_si512(bp.add(64) as *const __m512i);
            macro_rules! dp_row {
                ($r:literal) => {
                    let w = _mm512_set1_epi32(*ap.add($r));
                    acc[$r][0] = _mm512_dpbusd_epi32(acc[$r][0], b_lo, w);
                    acc[$r][1] = _mm512_dpbusd_epi32(acc[$r][1], b_hi, w);
                };
            }
            dp_row!(0);
            dp_row!(1);
            dp_row!(2);
            dp_row!(3);
            dp_row!(4);
            dp_row!(5);
            ap = ap.add(MR);
            bp = bp.add(NR * 4);
        }
        let mut out = [[0i32; NR]; MR];
        for r in 0..MR {
            _mm512_storeu_si512(out[r].as_mut_ptr() as *mut __m512i, acc[r][0]);
            _mm512_storeu_si512(out[r].as_mut_ptr().add(16) as *mut __m512i, acc[r][1]);
        }
        out
    }
}

/// AVX-512BW fallback (VNNI absent): `vpmaddubsw` widens u8×i8 pairs to i16,
/// `vpmaddwd` against ones reduces pairs to per-pixel i32 quad dots. Exact
/// because `INT8_WEIGHT_QMAX` bounds pair sums below i16 saturation.
///
/// Safety: only compiled when AVX-512BW is statically enabled; the `unsafe`
/// block covers raw-pointer panel reads whose bounds are asserted on entry.
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx512f",
    target_feature = "avx512bw",
    not(target_feature = "avx512vnni")
))]
#[inline]
fn int8_microkernel_avx512bw(quads: usize, apanel: &[i32], bpanel: &[u8]) -> [[i32; NR]; MR] {
    use core::arch::x86_64::{
        __m512i, _mm512_add_epi32, _mm512_loadu_si512, _mm512_madd_epi16, _mm512_maddubs_epi16,
        _mm512_set1_epi16, _mm512_set1_epi32, _mm512_setzero_si512, _mm512_storeu_si512,
    };
    assert!(apanel.len() >= quads * MR && bpanel.len() >= quads * NR * 4);
    unsafe {
        let ones = _mm512_set1_epi16(1);
        let mut acc: [[__m512i; 2]; MR] = [[_mm512_setzero_si512(); 2]; MR];
        let mut ap = apanel.as_ptr();
        let mut bp = bpanel.as_ptr();
        for _ in 0..quads {
            let b_lo = _mm512_loadu_si512(bp as *const __m512i);
            let b_hi = _mm512_loadu_si512(bp.add(64) as *const __m512i);
            macro_rules! dp_row {
                ($r:literal) => {
                    let w = _mm512_set1_epi32(*ap.add($r));
                    let p_lo = _mm512_madd_epi16(_mm512_maddubs_epi16(b_lo, w), ones);
                    let p_hi = _mm512_madd_epi16(_mm512_maddubs_epi16(b_hi, w), ones);
                    acc[$r][0] = _mm512_add_epi32(acc[$r][0], p_lo);
                    acc[$r][1] = _mm512_add_epi32(acc[$r][1], p_hi);
                };
            }
            dp_row!(0);
            dp_row!(1);
            dp_row!(2);
            dp_row!(3);
            dp_row!(4);
            dp_row!(5);
            ap = ap.add(MR);
            bp = bp.add(NR * 4);
        }
        let mut out = [[0i32; NR]; MR];
        for r in 0..MR {
            _mm512_storeu_si512(out[r].as_mut_ptr() as *mut __m512i, acc[r][0]);
            _mm512_storeu_si512(out[r].as_mut_ptr().add(16) as *mut __m512i, acc[r][1]);
        }
        out
    }
}

/// AVX2 fallback (`NR = 16` on non-AVX-512 builds): the same
/// `vpmaddubsw`+`vpmaddwd` i16-widening reduction over 256-bit vectors.
///
/// Safety: only compiled when AVX2 is statically enabled; the `unsafe` block
/// covers raw-pointer panel reads whose bounds are asserted on entry.
#[cfg(all(target_arch = "x86_64", target_feature = "avx2", not(target_feature = "avx512f")))]
#[inline]
fn int8_microkernel_avx2(quads: usize, apanel: &[i32], bpanel: &[u8]) -> [[i32; NR]; MR] {
    use core::arch::x86_64::{
        __m256i, _mm256_add_epi32, _mm256_loadu_si256, _mm256_madd_epi16, _mm256_maddubs_epi16,
        _mm256_set1_epi16, _mm256_set1_epi32, _mm256_setzero_si256, _mm256_storeu_si256,
    };
    assert!(apanel.len() >= quads * MR && bpanel.len() >= quads * NR * 4);
    unsafe {
        let ones = _mm256_set1_epi16(1);
        let mut acc: [[__m256i; 2]; MR] = [[_mm256_setzero_si256(); 2]; MR];
        let mut ap = apanel.as_ptr();
        let mut bp = bpanel.as_ptr();
        for _ in 0..quads {
            let b_lo = _mm256_loadu_si256(bp as *const __m256i);
            let b_hi = _mm256_loadu_si256(bp.add(32) as *const __m256i);
            macro_rules! dp_row {
                ($r:literal) => {
                    let w = _mm256_set1_epi32(*ap.add($r));
                    let p_lo = _mm256_madd_epi16(_mm256_maddubs_epi16(b_lo, w), ones);
                    let p_hi = _mm256_madd_epi16(_mm256_maddubs_epi16(b_hi, w), ones);
                    acc[$r][0] = _mm256_add_epi32(acc[$r][0], p_lo);
                    acc[$r][1] = _mm256_add_epi32(acc[$r][1], p_hi);
                };
            }
            dp_row!(0);
            dp_row!(1);
            dp_row!(2);
            dp_row!(3);
            dp_row!(4);
            dp_row!(5);
            ap = ap.add(MR);
            bp = bp.add(NR * 4);
        }
        let mut out = [[0i32; NR]; MR];
        for r in 0..MR {
            _mm256_storeu_si256(out[r].as_mut_ptr() as *mut __m256i, acc[r][0]);
            _mm256_storeu_si256(out[r].as_mut_ptr().add(8) as *mut __m256i, acc[r][1]);
        }
        out
    }
}

/// Portable scalar kernel: widens to i32 directly. Also the reference
/// implementation the SIMD tiers are pinned against in `tests/int8_parity.rs`.
#[allow(dead_code)]
fn int8_microkernel_portable(quads: usize, apanel: &[i32], bpanel: &[u8]) -> [[i32; NR]; MR] {
    let mut acc = [[0i32; NR]; MR];
    for (avals, bvals) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR * 4)).take(quads) {
        for r in 0..MR {
            let w = avals[r].to_le_bytes();
            let w = [w[0] as i8 as i32, w[1] as i8 as i32, w[2] as i8 as i32, w[3] as i8 as i32];
            for j in 0..NR {
                let b = &bvals[j * 4..j * 4 + 4];
                acc[r][j] += b[0] as i32 * w[0]
                    + b[1] as i32 * w[1]
                    + b[2] as i32 * w[2]
                    + b[3] as i32 * w[3];
            }
        }
    }
    acc
}

/// Test-only access to the portable kernel so the parity suite can pin the
/// SIMD tiers against it at full `ConvAlgo` distance.
#[doc(hidden)]
pub fn int8_microkernel_reference(quads: usize, apanel: &[i32], bpanel: &[u8]) -> [[i32; NR]; MR] {
    int8_microkernel_portable(quads, apanel, bpanel)
}

/// Test-only access to whichever kernel tier this build dispatches to.
#[doc(hidden)]
pub fn int8_microkernel_dispatch(quads: usize, apanel: &[i32], bpanel: &[u8]) -> [[i32; NR]; MR] {
    int8_microkernel(quads, apanel, bpanel)
}

/// Quantizes one batch image into a u8 plane buffer — a single pointwise,
/// auto-vectorizable pass. The im2col pack then only *moves bytes*, so each
/// input element is rounded once instead of `kernel²` times.
fn quantize_batch(input: &Tensor, batch: usize, aq: ActQuant, dst: &mut [u8]) {
    let ishape = input.shape();
    let chw = ishape.c * ishape.h * ishape.w;
    let src = &input.as_slice()[batch * chw..(batch + 1) * chw];
    let inv_scale = 1.0 / aq.scale;
    let zp = aq.zero_point as f32;
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = (zp + (x * inv_scale).round()).clamp(0.0, 255.0) as u8;
    }
}

/// Packs a quantized im2col stripe (output rows `[oh0, oh1)`) from the
/// pre-quantized plane buffer into the int8 engine's quad-panel byte layout.
/// `dst` must arrive filled with the activation zero-point — padding positions
/// are never written, and the zero-point is exactly the quantized encoding of
/// the padding value `0.0`.
#[allow(clippy::too_many_arguments)]
fn int8_pack_stripe(
    qinput: &[u8],
    ishape: Shape,
    params: &Conv2dParams,
    oshape: Shape,
    oh0: usize,
    oh1: usize,
    dst: &mut [u8],
) {
    let k = params.kernel;
    let stride = params.stride;
    let pad = params.padding;
    let quads = (params.in_channels * k * k).div_ceil(4);
    let panel_stride = quads * NR * 4;

    for ic in 0..params.in_channels {
        let plane = &qinput[ic * ishape.h * ishape.w..(ic + 1) * ishape.h * ishape.w];
        for kh in 0..k {
            let (oh_lo, oh_hi) = valid_out_range(ishape.h, oshape.h, kh, stride, pad);
            for kw in 0..k {
                let row = (ic * k + kh) * k + kw;
                let (quad, byte) = (row / 4, row % 4);
                let (ow_lo, ow_hi) = valid_out_range(ishape.w, oshape.w, kw, stride, pad);
                if ow_lo >= ow_hi {
                    continue;
                }
                for oh in oh_lo.max(oh0)..oh_hi.min(oh1) {
                    let ih = oh * stride + kh - pad;
                    let src_row = &plane[ih * ishape.w..(ih + 1) * ishape.w];
                    let j0 = (oh - oh0) * oshape.w + ow_lo;
                    let mut within = j0 % NR;
                    let mut index = (j0 / NR) * panel_stride + quad * NR * 4 + within * 4 + byte;
                    let mut iw = ow_lo * stride + kw - pad;
                    for _ in ow_lo..ow_hi {
                        dst[index] = src_row[iw];
                        iw += stride;
                        within += 1;
                        index += 4;
                        if within == NR {
                            within = 0;
                            index += panel_stride - NR * 4;
                        }
                    }
                }
            }
        }
    }
}

/// Writes one dequantized output row: `y = act((acc − zp·wsum)·scale + bias
/// [+ residual])`, monomorphized per activation so the inner loop is
/// branch-free. The identical helper runs in fused and reference compositions,
/// so both are bitwise equal.
#[inline]
fn int8_write_row(
    out_row: &mut [f32],
    acc_row: &[i32],
    corr: i32,
    scale: f32,
    base: f32,
    skip_row: Option<&[f32]>,
    activation: FusedActivation,
) {
    match activation {
        FusedActivation::None => {
            int8_write_row_with(out_row, acc_row, corr, scale, base, skip_row, |y| y)
        }
        FusedActivation::Relu => {
            int8_write_row_with(out_row, acc_row, corr, scale, base, skip_row, |y| y.max(0.0))
        }
        FusedActivation::Relu6 => {
            int8_write_row_with(out_row, acc_row, corr, scale, base, skip_row, |y| {
                y.clamp(0.0, 6.0)
            })
        }
    }
}

#[inline]
fn int8_write_row_with(
    out_row: &mut [f32],
    acc_row: &[i32],
    corr: i32,
    scale: f32,
    base: f32,
    skip_row: Option<&[f32]>,
    act: impl Fn(f32) -> f32,
) {
    match skip_row {
        Some(skip) => {
            for ((o, &v), &s) in out_row.iter_mut().zip(acc_row).zip(skip) {
                *o = act(((v - corr) as f32).mul_add(scale, base) + s);
            }
        }
        None => {
            for (o, &v) in out_row.iter_mut().zip(acc_row) {
                *o = act(((v - corr) as f32).mul_add(scale, base));
            }
        }
    }
}

/// Runs the quantized GEMM for one stripe: output channels are split into
/// `MR`-aligned row chunks on the worker pool; each chunk walks B panels ×
/// A tiles, calling the microkernel over the full quad depth and fusing the
/// dequant + epilogue into the writeback. Each output element is produced by
/// exactly one task in one fixed order — bitwise identical for every thread
/// count.
#[allow(clippy::too_many_arguments)]
fn parallel_int8_gemm(
    qconv: &QuantizedConv,
    aq: ActQuant,
    bpack: &[u8],
    cols: usize,
    region: &mut [f32],
    row_stride: usize,
    col_offset: usize,
    bias: Option<&[f32]>,
    residual: Option<&[f32]>,
    activation: FusedActivation,
    parallel: bool,
) {
    let m = qconv.out_channels;
    let quads = qconv.quads;
    let threads = parallel::num_threads();
    let rows_per_chunk = if !parallel || m >= threads * MC { MC } else { MR };
    let chunk_len = rows_per_chunk * row_stride;
    let macs = (m as u64) * (qconv.rows as u64) * (cols as u64);
    let want_parallel = parallel && macs >= PARALLEL_MIN_MACS;
    let col_panels = cols.div_ceil(NR);
    parallel::for_each_chunk(region, chunk_len, want_parallel, |chunk_index, chunk| {
        let row0 = chunk_index * rows_per_chunk;
        let rows = rows_per_chunk.min(m - row0);
        let tiles = rows.div_ceil(MR);
        let skip_chunk = residual.map(|s| &s[chunk_index * chunk_len..][..chunk.len()]);
        for panel in 0..col_panels {
            let j0 = panel * NR;
            let width = NR.min(cols - j0);
            let bslice = &bpack[panel * quads * NR * 4..(panel + 1) * quads * NR * 4];
            for tile in 0..tiles {
                let t = row0 / MR + tile;
                let atile = &qconv.panels[t * quads * MR..(t + 1) * quads * MR];
                let acc = int8_microkernel(quads, atile, bslice);
                let tile_rows = MR.min(rows - tile * MR);
                for (r, acc_row) in acc.iter().enumerate().take(tile_rows) {
                    let oc = row0 + tile * MR + r;
                    let start = (tile * MR + r) * row_stride + col_offset + j0;
                    let out_row = &mut chunk[start..start + width];
                    let skip_row = skip_chunk.map(|s| &s[start..start + width]);
                    int8_write_row(
                        out_row,
                        &acc_row[..width],
                        aq.zero_point as i32 * qconv.wsum[oc],
                        qconv.scales[oc] * aq.scale,
                        bias.map_or(0.0, |b| b[oc]),
                        skip_row,
                        activation,
                    );
                }
            }
        }
    });
}

/// Core of the int8 path; every element of `out` is overwritten. `range` is
/// the calibration-recorded activation range; `None` falls back to a dynamic
/// min/max scan of `input`.
pub(crate) fn int8_packed_into(
    input: &Tensor,
    qconv: &QuantizedConv,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    epilogue: ConvEpilogue<'_>,
    range: Option<(f32, f32)>,
    out: &mut Tensor,
) -> Result<()> {
    validate_bias(params, bias)?;
    let ishape = input.shape();
    let oshape = validate_into(params, input, &epilogue, out)?;
    debug_assert_eq!(qconv.rows, params.in_channels * params.kernel * params.kernel);
    debug_assert_eq!(qconv.out_channels, params.out_channels);

    let (lo, hi) = range.unwrap_or_else(|| tensor_range(input));
    let aq = ActQuant::from_range(lo, hi);

    let rows = qconv.rows;
    let plane = oshape.h * oshape.w;
    let region_len = params.out_channels * plane;
    let stripe_oh = stripe_height(rows, oshape);
    let parallel = params.macs(ishape).unwrap_or(0) >= PARALLEL_MIN_MACS;

    let residual = epilogue.residual.map(Tensor::as_slice);
    let out_data = out.as_mut_slice();
    let mut qinput = scratch::take_bytes(ishape.c * ishape.h * ishape.w);
    for n in 0..ishape.n {
        quantize_batch(input, n, aq, &mut qinput);
        let region_start = n * region_len;
        let region = &mut out_data[region_start..region_start + region_len];
        let skip = residual.map(|s| &s[region_start..region_start + region_len]);
        let mut oh0 = 0;
        while oh0 < oshape.h {
            let oh1 = (oh0 + stripe_oh).min(oshape.h);
            let stripe_cols = (oh1 - oh0) * oshape.w;
            let mut bpack = scratch::take_bytes(stripe_cols.div_ceil(NR) * qconv.quads * NR * 4);
            bpack.fill(aq.zero_point);
            int8_pack_stripe(&qinput, ishape, params, oshape, oh0, oh1, &mut bpack);
            parallel_int8_gemm(
                qconv,
                aq,
                &bpack,
                stripe_cols,
                region,
                plane,
                oh0 * oshape.w,
                bias,
                skip,
                epilogue.activation,
                parallel,
            );
            scratch::give_bytes(bpack);
            oh0 = oh1;
        }
    }
    scratch::give_bytes(qinput);
    Ok(())
}

/// Int8-quantized convolution with on-the-fly weight quantization and a
/// dynamic activation range — the unprepared entry point sweeps and
/// `conv2d_with_algo` use. Production forwards go through
/// [`PreparedLayer`](crate::PreparedLayer), which quantizes weights once and
/// uses the calibration-recorded activation range.
///
/// # Errors
/// Returns an error if the layer is grouped or the parameters, weight shape,
/// or bias length are inconsistent with the input shape.
pub fn conv2d_int8(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
) -> Result<Tensor> {
    let qconv = QuantizedConv::prepare(weight, params)?;
    let mut out = Tensor::zeros(params.output_shape(input.shape())?);
    int8_packed_into(input, &qconv, bias, params, ConvEpilogue::default(), None, &mut out)?;
    Ok(out)
}

/// Shape-pure accuracy probe for the int8 arm: the maximum elementwise
/// difference against [`conv2d_im2col_packed`](crate::conv2d_im2col_packed) on
/// a deterministic unit-scale input and half-scale weights — the same
/// operating point (and the same seeding scheme) as
/// [`winograd_f4_unit_error`](crate::winograd_f4_unit_error), so the
/// calibration gate is reproducible across hosts and thread counts.
///
/// # Errors
/// Returns an error if the parameters are grouped or the input shape does not
/// match them.
pub fn int8_unit_error(params: &Conv2dParams, input: Shape) -> Result<f32> {
    let seed = (params.in_channels * 31 + params.out_channels * 7 + input.h * 3 + input.w) as u64;
    let x = Tensor::random_uniform(input, 1.0, seed);
    let weight = Tensor::random_uniform(
        Shape::new(params.out_channels, params.in_channels, params.kernel, params.kernel),
        0.5,
        seed ^ 0x5a,
    );
    let reference = crate::conv::conv2d_im2col_packed(&x, &weight, None, params)?;
    let quantized = conv2d_int8(&x, &weight, None, params)?;
    reference.max_abs_diff(&quantized)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv2d_im2col_packed;

    #[test]
    fn act_quant_round_trips_zero_exactly() {
        for (lo, hi) in [(-1.5f32, 2.0f32), (0.0, 6.0), (-3.0, 0.0), (0.0, 0.0)] {
            let aq = ActQuant::from_range(lo, hi);
            assert_eq!(aq.quantize(0.0), aq.zero_point, "range ({lo},{hi})");
        }
    }

    #[test]
    fn act_quant_error_bounded_by_half_step() {
        let aq = ActQuant::from_range(-2.0, 2.0);
        for i in 0..1000 {
            let x = -2.0 + 4.0 * (i as f32) / 999.0;
            let q = aq.quantize(x);
            let back = aq.scale * (q as f32 - aq.zero_point as f32);
            assert!((back - x).abs() <= aq.scale * 0.5 + 1e-6, "x={x} back={back}");
        }
    }

    #[test]
    fn weight_quantization_respects_qmax() {
        let params = Conv2dParams::new(3, 5, 3, 1, 1);
        let weight = Tensor::random_uniform(Shape::new(5, 3, 3, 3), 0.5, 11);
        let q = QuantizedConv::prepare(&weight, &params).unwrap();
        for &packed in &q.panels {
            for b in packed.to_le_bytes() {
                assert!((b as i8 as i32).abs() <= INT8_WEIGHT_QMAX);
            }
        }
        assert_eq!(q.out_channels(), 5);
        assert_eq!(q.rows(), 27);
        assert!(q.resident_bytes() > 0);
    }

    #[test]
    fn int8_conv_tracks_reference_within_tolerance() {
        for (ic, oc, k, s, p, hw) in [
            (3usize, 8usize, 3usize, 1usize, 1usize, 12usize),
            (8, 4, 1, 1, 0, 9),
            (4, 6, 3, 2, 1, 11),
        ] {
            let params = Conv2dParams::new(ic, oc, k, s, p);
            let input = Tensor::random_uniform(Shape::chw(ic, hw, hw), 1.0, (ic + hw) as u64);
            let weight = Tensor::random_uniform(Shape::new(oc, ic, k, k), 0.5, (oc + k) as u64);
            let bias: Vec<f32> = (0..oc).map(|i| 0.05 * i as f32).collect();
            let reference = conv2d_im2col_packed(&input, &weight, Some(&bias), &params).unwrap();
            let quantized = conv2d_int8(&input, &weight, Some(&bias), &params).unwrap();
            let diff = reference.max_abs_diff(&quantized).unwrap();
            assert!(diff < INT8_TOLERANCE, "({ic},{oc},{k},{s},{p},{hw}): diff {diff}");
        }
    }

    #[test]
    fn unit_error_probe_is_shape_pure() {
        let params = Conv2dParams::new(4, 8, 3, 1, 1);
        let shape = Shape::chw(4, 14, 14);
        let a = int8_unit_error(&params, shape).unwrap();
        let b = int8_unit_error(&params, shape).unwrap();
        assert_eq!(a.to_bits(), b.to_bits(), "probe must be deterministic");
        assert!(a < INT8_TOLERANCE);
    }
}
