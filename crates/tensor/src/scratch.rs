//! Thread-local scratch-buffer arena.
//!
//! The packed convolution engine needs per-call working memory (packed A/B panels,
//! im2col stripes). Allocating it per layer is what made the seed path
//! allocation-bound, so buffers are recycled through a small thread-local pool:
//! [`take`] hands out a zeroed buffer (reusing a retired allocation when one is big
//! enough) and [`give`] retires it again. In steady state a network forward pass
//! performs zero heap allocations for packing or im2col.
//!
//! Arenas are thread-local, so the property depends on thread lifetime: with the
//! persistent worker pool in [`parallel`](crate::parallel), worker threads — and
//! therefore their arenas — survive across dispatches, and the zero-allocation
//! property holds on workers too (verified via [`heap_allocations`] by the pool
//! lifecycle tests). The old spawn-per-call dispatch re-allocated every arena on
//! every parallel kernel.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of heap allocations performed by [`take`] (pool misses).
/// Steady-state kernels must not move this — the pool-lifecycle tests use it to
/// verify that worker-side arenas persist across dispatches.
static HEAP_ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Total heap allocations [`take`] has performed process-wide since start-up.
///
/// In steady state (after a warm-up pass has populated every participating
/// thread's arena) this counter must stop advancing: that is the engine's
/// zero-allocation property, which the persistent worker pool extends to worker
/// threads.
pub fn heap_allocations() -> u64 {
    HEAP_ALLOCATIONS.load(Ordering::Relaxed)
}

/// Advances the shared allocation counter on behalf of another recycling pool
/// (the activation arena in [`arena`](crate::arena)), so one counter pins the
/// whole engine's zero-allocation steady state.
pub(crate) fn record_external_allocation() {
    HEAP_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
}

/// Retired buffers are only reused for requests at least this fraction of their
/// capacity, so one huge early request cannot pin memory for tiny later ones.
const MIN_UTILIZATION: f32 = 0.25;

/// Maximum number of retired buffers kept per thread.
const POOL_SLOTS: usize = 8;

thread_local! {
    static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Takes a zero-filled buffer of exactly `len` elements from the thread-local pool,
/// allocating only if no retired buffer is large enough.
pub fn take(len: usize) -> Vec<f32> {
    take_impl(len, true)
}

/// Takes a buffer of exactly `len` elements **without** zeroing reused memory:
/// contents are unspecified (stale values from earlier kernels, or zeros on a
/// fresh allocation).
///
/// For buffers whose every consumed element is overwritten before being read —
/// fully-written packed panels, GEMM outputs in overwrite mode — the [`take`]
/// memset is pure waste that scales with the feature-map size; this variant
/// skips it. Callers must not use it for buffers with *semantic* zero padding
/// (e.g. im2col destinations, where unwritten positions represent the
/// convolution's zero padding). Packed-panel tail lanes that stale values can
/// reach are harmless: the microkernel computes garbage in those lanes and the
/// writeback discards them.
pub fn take_uninit(len: usize) -> Vec<f32> {
    take_impl(len, false)
}

fn take_impl(len: usize, zero: bool) -> Vec<f32> {
    let reused = POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        let position = pool.iter().position(|buffer| {
            buffer.capacity() >= len && (len as f32) >= (buffer.capacity() as f32) * MIN_UTILIZATION
        });
        position.map(|index| pool.swap_remove(index))
    });
    match reused {
        Some(mut buffer) => {
            if zero {
                buffer.clear();
                buffer.resize(len, 0.0);
            } else {
                // Truncate-then-resize initializes only the region beyond the
                // buffer's previous length; the stale prefix stays as-is.
                if buffer.len() > len {
                    buffer.truncate(len);
                }
                if buffer.len() < len {
                    buffer.resize(len, 0.0);
                }
            }
            buffer
        }
        None => {
            HEAP_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            vec![0.0; len]
        }
    }
}

thread_local! {
    /// Byte-buffer pool for the int8 engine's quantized im2col panels — separate
    /// from the f32 pool (a `Vec<f32>` cannot be reinterpreted as `Vec<u8>`
    /// without an allocation-contract violation) but sharing the same
    /// [`HEAP_ALLOCATIONS`] counter, so one counter pins the whole engine's
    /// zero-allocation steady state across both numeric regimes.
    static BYTE_POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// Takes a byte buffer of exactly `len` elements from the thread-local byte
/// pool, allocating only on a pool miss. Contents are **unspecified** (stale
/// bytes from earlier kernels, or zeros on a fresh allocation): the quantized
/// im2col packer fills its panels with the activation zero-point before
/// writing, so a zeroing pass here would be pure waste.
pub fn take_bytes(len: usize) -> Vec<u8> {
    let reused = BYTE_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        let position = pool.iter().position(|buffer| {
            buffer.capacity() >= len && (len as f32) >= (buffer.capacity() as f32) * MIN_UTILIZATION
        });
        position.map(|index| pool.swap_remove(index))
    });
    match reused {
        Some(mut buffer) => {
            buffer.resize(len, 0);
            buffer
        }
        None => {
            HEAP_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            vec![0u8; len]
        }
    }
}

/// Returns a buffer obtained from [`take_bytes`] to the byte pool for reuse.
pub fn give_bytes(buffer: Vec<u8>) {
    if buffer.capacity() == 0 {
        return;
    }
    BYTE_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < POOL_SLOTS {
            pool.push(buffer);
        } else if let Some(smallest) =
            pool.iter().enumerate().min_by_key(|(_, b)| b.capacity()).map(|(i, _)| i)
        {
            if pool[smallest].capacity() < buffer.capacity() {
                pool[smallest] = buffer;
            }
        }
    });
}

/// Returns a buffer obtained from [`take`] to the pool for reuse.
pub fn give(buffer: Vec<f32>) {
    if buffer.capacity() == 0 {
        return;
    }
    POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < POOL_SLOTS {
            pool.push(buffer);
        } else if let Some(smallest) =
            pool.iter().enumerate().min_by_key(|(_, b)| b.capacity()).map(|(i, _)| i)
        {
            if pool[smallest].capacity() < buffer.capacity() {
                pool[smallest] = buffer;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_zeroed_and_reused() {
        let mut buffer = take(256);
        assert!(buffer.iter().all(|&x| x == 0.0));
        buffer[0] = 7.0;
        let ptr = buffer.as_ptr();
        give(buffer);
        let again = take(200);
        assert!(again.iter().all(|&x| x == 0.0), "reused buffer must be re-zeroed");
        assert_eq!(again.as_ptr(), ptr, "pool should reuse the retired allocation");
        give(again);
    }

    #[test]
    fn oversized_buffers_are_not_wasted_on_tiny_requests() {
        give(vec![0.0; 1 << 20]);
        let tiny = take(16);
        assert!(tiny.capacity() < 1 << 20, "tiny request must not consume the huge buffer");
        give(tiny);
    }
}
