//! Error types for tensor operations.

use std::error::Error;
use std::fmt;

/// Error raised by tensor construction and kernel execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the provided buffer.
    LengthMismatch {
        /// Number of elements the shape requires.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two shapes that must be identical (or broadcastable) are not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
        /// The operation that was attempted.
        op: &'static str,
    },
    /// A convolution/pooling configuration produces an empty or negative output extent.
    InvalidWindow {
        /// Input spatial extent.
        input: usize,
        /// Kernel extent.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        padding: usize,
    },
    /// A dimension that must be non-zero was zero.
    ZeroDimension {
        /// Human-readable name of the offending dimension.
        name: &'static str,
    },
    /// Channel counts incompatible with the grouping configuration.
    InvalidGrouping {
        /// Input channel count.
        in_channels: usize,
        /// Output channel count.
        out_channels: usize,
        /// Number of groups.
        groups: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "buffer length {actual} does not match shape volume {expected}")
            }
            TensorError::ShapeMismatch { left, right, op } => {
                write!(f, "shape mismatch in {op}: {left:?} vs {right:?}")
            }
            TensorError::InvalidWindow { input, kernel, stride, padding } => write!(
                f,
                "invalid window: input {input}, kernel {kernel}, stride {stride}, padding {padding}"
            ),
            TensorError::ZeroDimension { name } => {
                write!(f, "dimension `{name}` must be non-zero")
            }
            TensorError::InvalidGrouping { in_channels, out_channels, groups } => write!(
                f,
                "channels ({in_channels} in, {out_channels} out) not divisible by {groups} groups"
            ),
        }
    }
}

impl Error for TensorError {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TensorError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::LengthMismatch { expected: 12, actual: 10 };
        assert!(err.to_string().contains("12"));
        assert!(err.to_string().contains("10"));

        let err = TensorError::ShapeMismatch { left: vec![1, 2], right: vec![2, 1], op: "add" };
        assert!(err.to_string().contains("add"));

        let err = TensorError::InvalidWindow { input: 1, kernel: 3, stride: 1, padding: 0 };
        assert!(err.to_string().contains("kernel 3"));

        let err = TensorError::ZeroDimension { name: "channels" };
        assert!(err.to_string().contains("channels"));

        let err = TensorError::InvalidGrouping { in_channels: 3, out_channels: 8, groups: 2 };
        assert!(err.to_string().contains("2 groups"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
