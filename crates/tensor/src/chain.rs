//! Cache-resident layer chaining: executes a stride-1 conv→conv pair tile-wise,
//! so the intermediate feature map never round-trips through memory.
//!
//! At high resolution the feature maps between the convolutions of a
//! basic/bottleneck block are tens of MiB — far beyond LLC — so even with fused
//! epilogues every block pays two full DRAM round-trips per intermediate
//! tensor. This module chains a Winograd **producer** (3×3 stride-1, F(2×2) or
//! F(4×4)) into a **consumer** (the block's following 1×1 pointwise conv, or
//! its second 3×3 Winograd conv): the producer writes each chunk of output
//! rows into a small ring **band** buffer, and the consumer's input stage reads
//! the band while those rows are still cache-resident. Only the band (a few
//! hundred KiB) and the final output touch memory.
//!
//! # Ring bands and halos
//!
//! The band holds `band_rows` rows per channel; logical row `r` lives at slot
//! `r % band_rows` ([`WinogradPass`](crate::winograd) addresses rows
//! modularly). A pointwise consumer needs no halo — it consumes each producer
//! band exactly — so `band_rows` is one producer chunk of rows. A Winograd
//! consumer's input transform reads `α − 1` rows beyond each output tile row
//! (its halo), and consumer chunks trail the producer, so the band keeps one
//! producer chunk plus one consumer chunk plus the halo alive
//! (`Rp + Rc + α_c` rows, capped at the full intermediate height).
//!
//! # Determinism and parity
//!
//! Chained execution is **bitwise identical** to the unchained pair: the
//! producer runs its exact shape-pure chunk decomposition (only destination
//! addresses change), the consumer GEMMs compute each output element with a
//! column-independent accumulation order, and a Winograd consumer reads the
//! same staged values through the ring. The chain itself runs the chunks
//! serially — its win is cache locality, not parallelism — so
//! [`ChainMode::Auto`] engages it only when the engine is single-threaded;
//! parity across `RESCNN_THREADS` settings is preserved either way because
//! chained and unchained results are bitwise equal.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::conv::{ConvAlgo, ConvEpilogue, PreparedLayer};
use crate::engine::{self, FusedActivation, NR};
use crate::error::{Result, TensorError};
use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::winograd::{
    chunk_tile_rows, chunk_tile_rows_f4, OutPtr, WinogradPass, ALPHA, ALPHA_F4, TILE, TILE_F4,
};
use crate::{parallel, scratch};

/// When the chain executor may engage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChainMode {
    /// Engage when the engine runs single-threaded (the regime where the
    /// serial tile-wise schedule is a pure win). The decision is re-evaluated
    /// against the effective thread count at plan time, so
    /// [`Network::arena_plan`](../../rescnn_models/nn/struct.Network.html) and
    /// the forward pass always agree.
    #[default]
    Auto,
    /// Never chain.
    Off,
    /// Always chain eligible pairs, regardless of threading.
    Force,
}

/// Encoded [`ChainMode`] (`0` Auto, `1` Off, `2` Force).
static CHAIN_MODE: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide [`ChainMode`].
pub fn set_chain_mode(mode: ChainMode) {
    let encoded = match mode {
        ChainMode::Auto => 0,
        ChainMode::Off => 1,
        ChainMode::Force => 2,
    };
    CHAIN_MODE.store(encoded, Ordering::Relaxed);
}

/// The process-wide [`ChainMode`].
pub fn chain_mode() -> ChainMode {
    match CHAIN_MODE.load(Ordering::Relaxed) {
        1 => ChainMode::Off,
        2 => ChainMode::Force,
        _ => ChainMode::Auto,
    }
}

/// Whether chaining engages right now: a pure function of the [`ChainMode`]
/// and the effective engine thread count, consulted identically by the arena
/// planner and the forward pass so plans always match execution.
pub fn chain_enabled() -> bool {
    match chain_mode() {
        ChainMode::Off => false,
        ChainMode::Force => true,
        ChainMode::Auto => parallel::num_threads() == 1,
    }
}

/// The consumer side of a chained pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainConsumer {
    /// 1×1 stride-1 pad-0 dense conv consumed band-by-band as packed GEMMs.
    Pointwise,
    /// 3×3 stride-1 pad-1 Winograd conv (F(2×2) or F(4×4)) whose input
    /// transform reads the ring band.
    Winograd(ConvAlgo),
}

/// An executable chain: which algorithms run on each side and how large the
/// intermediate ring band must be. Built by [`chain_plan`]; the planner uses
/// `band_elems` to reserve the band in the activation arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainPlan {
    /// Producer algorithm ([`ConvAlgo::Winograd`] or [`ConvAlgo::WinogradF4`]).
    pub producer_algo: ConvAlgo,
    /// Consumer execution kind.
    pub consumer: ChainConsumer,
    /// Ring rows per channel of the intermediate band.
    pub band_rows: usize,
    /// Intermediate (producer output) shape at batch 1.
    pub mid: Shape,
    /// Total band buffer elements (`mid.c × band_rows × mid.w`).
    pub band_elems: usize,
}

/// Producer chunk extent in output rows for the given algorithm and
/// intermediate shape — the producer's exact shape-pure chunk decomposition,
/// restated so the planner can size the band.
fn producer_chunk_rows(algo: ConvAlgo, in_ch: usize, mid: Shape) -> usize {
    match algo {
        ConvAlgo::WinogradF4 => {
            let tiles_h = mid.h.div_ceil(TILE_F4);
            let tiles_w = mid.w.div_ceil(TILE_F4);
            chunk_tile_rows_f4(in_ch, tiles_w, tiles_h) * TILE_F4
        }
        _ => {
            let tiles_h = mid.h.div_ceil(TILE);
            let tiles_w = mid.w.div_ceil(TILE);
            chunk_tile_rows(in_ch, tiles_w, tiles_h) * TILE
        }
    }
}

/// Plans a chained execution of `producer` → `consumer` for the given input
/// shape, or `None` when chaining is disabled ([`chain_enabled`]) or the pair
/// is not eligible. Eligible pairs are a Winograd-dispatched producer followed
/// by either a dense 1×1 stride-1 pad-0 conv dispatched to its GEMM fast path
/// or a Winograd-dispatched 3×3 stride-1 pad-1 conv.
pub fn chain_plan(
    producer: &PreparedLayer,
    consumer: &PreparedLayer,
    input: Shape,
) -> Option<ChainPlan> {
    if !chain_enabled() {
        return None;
    }
    let p_params = producer.params();
    let producer_algo = crate::conv::planned_conv_algo(p_params, input);
    if !matches!(producer_algo, ConvAlgo::Winograd | ConvAlgo::WinogradF4) {
        return None;
    }
    let mid = p_params.output_shape(input).ok()?;
    let mid1 = Shape::chw(mid.c, mid.h, mid.w);
    let c_params = consumer.params();
    if c_params.in_channels != mid.c {
        return None;
    }
    let consumer_algo = crate::conv::planned_conv_algo(c_params, mid1);
    let kind = if c_params.kernel == 1
        && c_params.stride == 1
        && c_params.padding == 0
        && c_params.groups == 1
        && consumer_algo == ConvAlgo::Gemm1x1
        && consumer.dense_gemm_lhs().is_some()
    {
        ChainConsumer::Pointwise
    } else if c_params.kernel == 3
        && c_params.stride == 1
        && c_params.padding == 1
        && c_params.groups == 1
        && matches!(consumer_algo, ConvAlgo::Winograd | ConvAlgo::WinogradF4)
    {
        ChainConsumer::Winograd(consumer_algo)
    } else {
        return None;
    };
    let rp = producer_chunk_rows(producer_algo, p_params.in_channels, mid1);
    let band_rows = match kind {
        // Each producer band is consumed whole before the next one lands, so
        // the ring is exactly one producer chunk (bands then always start at
        // slot 0, keeping the packed-GEMM reads contiguous).
        ChainConsumer::Pointwise => rp.min(mid.h),
        // Consumer chunks trail the producer by up to one chunk plus the
        // input-transform halo; `α_c` rows of margin cover the worst case for
        // either transform size.
        ChainConsumer::Winograd(algo) => {
            let rc = producer_chunk_rows(algo, mid.c, mid1);
            (rp + rc + ALPHA_F4).min(mid.h)
        }
    };
    Some(ChainPlan {
        producer_algo,
        consumer: kind,
        band_rows,
        mid: mid1,
        band_elems: mid.c * band_rows * mid.w,
    })
}

/// Executes a planned conv→conv chain: `out = act_c(consumer(act_p(producer(
/// input) + bias_p)) + bias_c + residual)`, with the intermediate activation
/// living only in the ring band. Bitwise identical to running the two fused
/// convolutions back to back (see the [module docs](self)).
///
/// `band` is the caller-provided ring buffer (arena-recycled; stale contents
/// are fine) holding at least [`ChainPlan::band_elems`] elements.
///
/// # Errors
/// Returns an error if the input/band/output/residual shapes are inconsistent
/// with the plan or either layer rejects its parameters.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_chain_fused_into(
    input: &Tensor,
    producer: &PreparedLayer,
    consumer: &PreparedLayer,
    producer_activation: FusedActivation,
    epilogue: ConvEpilogue<'_>,
    band: &mut Tensor,
    out: &mut Tensor,
    plan: &ChainPlan,
) -> Result<()> {
    let ishape = input.shape();
    let p_params = producer.params();
    let c_params = consumer.params();
    let mid = p_params.output_shape(ishape)?;
    if (mid.c, mid.h, mid.w) != (plan.mid.c, plan.mid.h, plan.mid.w) {
        return Err(TensorError::ShapeMismatch {
            left: mid.as_array().to_vec(),
            right: plan.mid.as_array().to_vec(),
            op: "chain intermediate shape",
        });
    }
    let mid1 = plan.mid;
    let oshape = c_params.output_shape(mid)?;
    if out.shape() != oshape {
        return Err(TensorError::ShapeMismatch {
            left: out.shape().as_array().to_vec(),
            right: oshape.as_array().to_vec(),
            op: "chain output buffer",
        });
    }
    if let Some(skip) = epilogue.residual {
        if skip.shape() != oshape {
            return Err(TensorError::ShapeMismatch {
                left: skip.shape().as_array().to_vec(),
                right: oshape.as_array().to_vec(),
                op: "chain residual",
            });
        }
    }
    if band.shape().volume() < plan.band_elems {
        return Err(TensorError::ShapeMismatch {
            left: vec![band.shape().volume()],
            right: vec![plan.band_elems],
            op: "chain band buffer",
        });
    }

    // Filter banks built up front so chain startup never races lazily into the
    // timed region.
    let p_f4 = plan.producer_algo == ConvAlgo::WinogradF4;
    let p_filter =
        if p_f4 { producer.winograd_filter_f4()? } else { producer.winograd_filter()? };
    let c_winograd = match plan.consumer {
        ChainConsumer::Winograd(algo) => Some((
            algo == ConvAlgo::WinogradF4,
            if algo == ConvAlgo::WinogradF4 {
                consumer.winograd_filter_f4()?
            } else {
                consumer.winograd_filter()?
            },
        )),
        ChainConsumer::Pointwise => None,
    };

    let (mid_ch, mid_h, mid_w) = (mid1.c, mid1.h, mid1.w);
    let band_rows = plan.band_rows;
    let (p_tile, p_rows_per_chunk) = if p_f4 {
        let tiles_h = mid_h.div_ceil(TILE_F4);
        let tiles_w = mid_w.div_ceil(TILE_F4);
        (TILE_F4, chunk_tile_rows_f4(p_params.in_channels, tiles_w, tiles_h))
    } else {
        let tiles_h = mid_h.div_ceil(TILE);
        let tiles_w = mid_w.div_ceil(TILE);
        (TILE, chunk_tile_rows(p_params.in_channels, tiles_w, tiles_h))
    };
    let p_tiles_h = mid_h.div_ceil(p_tile);
    let p_n_chunks = p_tiles_h.div_ceil(p_rows_per_chunk);

    let (oh, ow) = (oshape.h, oshape.w);
    let in_plane = p_params.in_channels * ishape.h * ishape.w;
    let out_plane = c_params.out_channels * oh * ow;
    let residual = epilogue.residual.map(Tensor::as_slice);
    let in_all = input.as_slice();
    let out_base = out.as_mut_slice().as_mut_ptr();
    let band_len = mid_ch * band_rows * mid_w;
    let band_data = band.as_mut_slice();

    for n in 0..ishape.n {
        let band_ptr = band_data.as_mut_ptr();
        let p_pass = WinogradPass {
            u: p_filter.u(),
            point_seg: p_filter.point_seg(),
            in_ch: p_params.in_channels,
            out_ch: mid_ch,
            pad: p_params.padding,
            in_data: &in_all[n * in_plane..(n + 1) * in_plane],
            in_rows: ishape.h,
            ih: ishape.h,
            iw: ishape.w,
            // Safety: the band is exclusively owned by this call and the
            // chain runs serially.
            out: OutPtr(band_ptr),
            out_rows: band_rows,
            oh: mid_h,
            ow: mid_w,
            tiles_w: mid_w.div_ceil(p_tile),
            bias: producer.bias(),
            residual: None,
            activation: producer_activation,
        };

        // Consumer state: either the trailing Winograd pass or the pointwise
        // GEMM closure's stripe bookkeeping.
        let sample_residual = residual.map(|s| &s[n * out_plane..(n + 1) * out_plane]);
        match c_winograd {
            Some((c_f4, c_filter)) => {
                let c_tile = if c_f4 { TILE_F4 } else { TILE };
                let c_tiles_h = oh.div_ceil(c_tile);
                let c_tiles_w = ow.div_ceil(c_tile);
                let c_rows_per_chunk = if c_f4 {
                    chunk_tile_rows_f4(mid_ch, c_tiles_w, c_tiles_h)
                } else {
                    chunk_tile_rows(mid_ch, c_tiles_w, c_tiles_h)
                };
                let c_alpha = if c_f4 { ALPHA_F4 } else { ALPHA };
                let mut next_tr = 0usize;
                for chunk in 0..p_n_chunks {
                    let tr0 = chunk * p_rows_per_chunk;
                    let tr1 = (tr0 + p_rows_per_chunk).min(p_tiles_h);
                    p_pass.run_chunk_f2_or_f4(p_f4, tr0, tr1);
                    let produced = (tr1 * p_tile).min(mid_h);
                    // Drain every consumer chunk whose band reads (output tile
                    // rows `[next_tr, c_tr1)` touch input rows up to
                    // `(c_tr1−1)·tile + α − 1 − pad`) are fully produced.
                    while next_tr < c_tiles_h {
                        let c_tr1 = (next_tr + c_rows_per_chunk).min(c_tiles_h);
                        let last_needed = (c_tr1 - 1) * c_tile + c_alpha - 1 - c_params.padding;
                        if last_needed >= produced && produced != mid_h {
                            break;
                        }
                        // The consumer pass is rebuilt per drained chunk so its
                        // shared band view is re-derived from the raw pointer
                        // after the producer's latest writes.
                        let c_pass = WinogradPass {
                            u: c_filter.u(),
                            point_seg: c_filter.point_seg(),
                            in_ch: mid_ch,
                            out_ch: c_params.out_channels,
                            pad: c_params.padding,
                            in_data: unsafe { std::slice::from_raw_parts(band_ptr, band_len) },
                            in_rows: band_rows,
                            ih: mid_h,
                            iw: mid_w,
                            // Safety: consumer chunks own disjoint output rows
                            // and run serially behind the producer.
                            out: OutPtr(unsafe { out_base.add(n * out_plane) }),
                            out_rows: oh,
                            oh,
                            ow,
                            tiles_w: c_tiles_w,
                            bias: consumer.bias(),
                            residual: sample_residual,
                            activation: epilogue.activation,
                        };
                        c_pass.run_chunk_f2_or_f4(c_f4, next_tr, c_tr1);
                        next_tr = c_tr1;
                    }
                }
                debug_assert_eq!(next_tr, c_tiles_h, "chain must drain every consumer chunk");
            }
            None => {
                let lhs = consumer.dense_gemm_lhs().expect("planned pointwise consumer");
                let hw = oh * ow;
                let stripe_cols_max =
                    (engine::MAX_B_PANEL_ELEMS / mid_ch.max(1)).div_ceil(NR).max(1) * NR;
                // Safety: the pointwise consumer reads the band only after the
                // producer's serial chunk finished writing it.
                let out_region = unsafe {
                    std::slice::from_raw_parts_mut(out_base.add(n * out_plane), out_plane)
                };
                for chunk in 0..p_n_chunks {
                    let tr0 = chunk * p_rows_per_chunk;
                    let tr1 = (tr0 + p_rows_per_chunk).min(p_tiles_h);
                    p_pass.run_chunk_f2_or_f4(p_f4, tr0, tr1);
                    let row0 = tr0 * p_tile;
                    let row1 = (tr1 * p_tile).min(mid_h);
                    // The band holds exactly one producer chunk, so these rows
                    // sit at ring slots `[0, row1 − row0)` — one contiguous
                    // column range of the `mid_ch × (band_rows · mid_w)` view.
                    debug_assert_eq!(row0 % band_rows, 0);
                    let band_view = unsafe { std::slice::from_raw_parts(band_ptr, band_len) };
                    let band_cols = band_rows * mid_w;
                    let total = (row1 - row0) * mid_w;
                    let mut j0 = 0;
                    while j0 < total {
                        let width = stripe_cols_max.min(total - j0);
                        let mut bpack = scratch::take_uninit(width.div_ceil(NR) * mid_ch * NR);
                        engine::pack_b(band_view, mid_ch, band_cols, j0, width, &mut bpack);
                        engine::parallel_packed_gemm(
                            lhs,
                            c_params.out_channels,
                            mid_ch,
                            &bpack,
                            width,
                            out_region,
                            hw,
                            row0 * ow + j0,
                            engine::Epilogue {
                                bias: consumer.bias(),
                                residual: sample_residual,
                                activation: epilogue.activation,
                            },
                            false,
                            false,
                        );
                        scratch::give(bpack);
                        j0 += width;
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::ConvEpilogue;
    use crate::shape::Conv2dParams;

    fn layer(ic: usize, oc: usize, k: usize, pad: usize, seed: u64) -> PreparedLayer {
        let weight = Tensor::random_uniform(Shape::new(oc, ic, k, k), 0.5, seed);
        let bias: Vec<f32> = (0..oc).map(|i| 0.01 * i as f32).collect();
        PreparedLayer::new(weight, Some(bias), Conv2dParams::new(ic, oc, k, 1, pad)).unwrap()
    }

    fn run_pair_unchained(
        input: &Tensor,
        producer: &PreparedLayer,
        consumer: &PreparedLayer,
        p_algo: ConvAlgo,
        c_algo: ConvAlgo,
    ) -> Tensor {
        let mid_shape = producer.params().output_shape(input.shape()).unwrap();
        let mut mid = Tensor::zeros(mid_shape);
        producer
            .forward_with_algo_into(
                input,
                p_algo,
                ConvEpilogue::activation(FusedActivation::Relu),
                &mut mid,
            )
            .unwrap();
        let mut out = Tensor::zeros(consumer.params().output_shape(mid_shape).unwrap());
        consumer
            .forward_with_algo_into(
                &mid,
                c_algo,
                ConvEpilogue::activation(FusedActivation::Relu),
                &mut out,
            )
            .unwrap();
        out
    }

    fn run_pair_chained(
        input: &Tensor,
        producer: &PreparedLayer,
        consumer: &PreparedLayer,
    ) -> (Tensor, ChainPlan) {
        let plan = chain_plan(producer, consumer, input.shape()).expect("pair must be eligible");
        let mid = producer.params().output_shape(input.shape()).unwrap();
        let mut band = Tensor::zeros(Shape::chw(mid.c, plan.band_rows, mid.w));
        let oshape = consumer.params().output_shape(mid).unwrap();
        let mut out = Tensor::zeros(oshape);
        conv2d_chain_fused_into(
            input,
            producer,
            consumer,
            FusedActivation::Relu,
            ConvEpilogue::activation(FusedActivation::Relu),
            &mut band,
            &mut out,
            &plan,
        )
        .unwrap();
        (out, plan)
    }

    #[test]
    fn chained_winograd_to_pointwise_is_bitwise_identical() {
        let _guard = crate::test_sync::global_state_lock();
        set_chain_mode(ChainMode::Force);
        let producer = layer(6, 8, 3, 1, 11);
        let consumer = layer(8, 10, 1, 0, 12);
        let input = Tensor::random_uniform(Shape::chw(6, 17, 13), 1.0, 13);
        let ctx = crate::context::EngineContext::new().with_algo(ConvAlgo::Winograd);
        let (chained, plan) = ctx.scope(|| run_pair_chained(&input, &producer, &consumer));
        assert_eq!(plan.consumer, ChainConsumer::Pointwise);
        let reference =
            run_pair_unchained(&input, &producer, &consumer, ConvAlgo::Winograd, ConvAlgo::Gemm1x1);
        assert_eq!(reference.as_slice().len(), chained.as_slice().len());
        for (i, (&a, &b)) in reference.as_slice().iter().zip(chained.as_slice()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "element {i}: {a} vs {b}");
        }
        set_chain_mode(ChainMode::Auto);
    }

    #[test]
    fn chained_winograd_to_winograd_is_bitwise_identical() {
        let _guard = crate::test_sync::global_state_lock();
        set_chain_mode(ChainMode::Force);
        let producer = layer(5, 7, 3, 1, 21);
        let consumer = layer(7, 6, 3, 1, 22);
        let input = Tensor::random_uniform(Shape::chw(5, 19, 15), 1.0, 23);
        let ctx = crate::context::EngineContext::new().with_algo(ConvAlgo::WinogradF4);
        let (chained, plan) = ctx.scope(|| run_pair_chained(&input, &producer, &consumer));
        assert_eq!(plan.consumer, ChainConsumer::Winograd(ConvAlgo::WinogradF4));
        assert_eq!(plan.producer_algo, ConvAlgo::WinogradF4);
        let reference = run_pair_unchained(
            &input,
            &producer,
            &consumer,
            ConvAlgo::WinogradF4,
            ConvAlgo::WinogradF4,
        );
        for (&a, &b) in reference.as_slice().iter().zip(chained.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        set_chain_mode(ChainMode::Auto);
    }

    #[test]
    fn chain_plan_rejects_ineligible_pairs_and_off_mode() {
        let _guard = crate::test_sync::global_state_lock();
        set_chain_mode(ChainMode::Force);
        let producer = layer(4, 6, 3, 1, 31);
        let pointwise = layer(6, 8, 1, 0, 32);
        let strided = PreparedLayer::new(
            Tensor::random_uniform(Shape::new(8, 6, 3, 3), 0.5, 33),
            None,
            Conv2dParams::new(6, 8, 3, 2, 1),
        )
        .unwrap();
        let shape = Shape::chw(4, 16, 16);
        let ctx = crate::context::EngineContext::new().with_algo(ConvAlgo::Winograd);
        ctx.scope(|| {
            assert!(chain_plan(&producer, &pointwise, shape).is_some());
            // Strided consumer: not chainable.
            assert!(chain_plan(&producer, &strided, shape).is_none());
            // Channel mismatch between the pair.
            let wrong = layer(5, 8, 1, 0, 34);
            assert!(chain_plan(&producer, &wrong, shape).is_none());
        });
        // Producer not Winograd-dispatched: no chain.
        let im2col = crate::context::EngineContext::new().with_algo(ConvAlgo::Im2colPacked);
        im2col.scope(|| assert!(chain_plan(&producer, &pointwise, shape).is_none()));
        set_chain_mode(ChainMode::Off);
        ctx.scope(|| assert!(chain_plan(&producer, &pointwise, shape).is_none()));
        set_chain_mode(ChainMode::Auto);
    }
}
