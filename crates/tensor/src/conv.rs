//! 2-D convolution kernels.
//!
//! Three executable implementations are provided:
//!
//! * [`conv2d_direct`] — a reference seven-loop implementation, used to validate the others.
//! * [`conv2d_im2col`] — lowers the convolution to a GEMM via [`im2col`]; the default path.
//! * [`conv2d_tiled`] — an output-tiled implementation parameterized by [`ConvTiling`], used
//!   by the benchmark harness to demonstrate (with real wall-clock measurements) that the
//!   best tiling depends on the input resolution, the mechanism behind the paper's §VI.
//!
//! Weights are stored as `O × I/g × K × K` tensors (encoded in the NCHW [`Shape`] as
//! `n = O`, `c = I/g`, `h = w = K`).

use serde::{Deserialize, Serialize};

use crate::error::{Result, TensorError};
use crate::gemm::{gemm_blocked, GemmBlocking, MatDims};
use crate::shape::{Conv2dParams, Shape};
use crate::tensor::Tensor;

/// Validates that a weight tensor matches the convolution parameters.
fn validate_weight(params: &Conv2dParams, weight: &Tensor) -> Result<()> {
    params.validate()?;
    let ws = weight.shape();
    let expected = Shape::new(
        params.out_channels,
        params.in_channels / params.groups,
        params.kernel,
        params.kernel,
    );
    if ws != expected {
        return Err(TensorError::ShapeMismatch {
            left: ws.as_array().to_vec(),
            right: expected.as_array().to_vec(),
            op: "conv2d weight",
        });
    }
    Ok(())
}

fn validate_bias(params: &Conv2dParams, bias: Option<&[f32]>) -> Result<()> {
    if let Some(b) = bias {
        if b.len() != params.out_channels {
            return Err(TensorError::LengthMismatch {
                expected: params.out_channels,
                actual: b.len(),
            });
        }
    }
    Ok(())
}

/// Reference direct convolution.
///
/// # Errors
/// Returns an error if the parameters, weight shape, or bias length are inconsistent with
/// the input shape.
pub fn conv2d_direct(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
) -> Result<Tensor> {
    validate_weight(params, weight)?;
    validate_bias(params, bias)?;
    let ishape = input.shape();
    let oshape = params.output_shape(ishape)?;
    let mut out = Tensor::zeros(oshape);

    let k = params.kernel;
    let stride = params.stride;
    let pad = params.padding as isize;
    let in_per_group = params.in_channels / params.groups;
    let out_per_group = params.out_channels / params.groups;

    for n in 0..ishape.n {
        for oc in 0..params.out_channels {
            let group = oc / out_per_group;
            let base = bias.map_or(0.0, |b| b[oc]);
            for oh in 0..oshape.h {
                for ow in 0..oshape.w {
                    let mut acc = base;
                    for icg in 0..in_per_group {
                        let ic = group * in_per_group + icg;
                        for kh in 0..k {
                            let ih = (oh * stride + kh) as isize - pad;
                            if ih < 0 || ih >= ishape.h as isize {
                                continue;
                            }
                            for kw in 0..k {
                                let iw = (ow * stride + kw) as isize - pad;
                                if iw < 0 || iw >= ishape.w as isize {
                                    continue;
                                }
                                acc += input.get(n, ic, ih as usize, iw as usize)
                                    * weight.get(oc, icg, kh, kw);
                            }
                        }
                    }
                    out.set(n, oc, oh, ow, acc);
                }
            }
        }
    }
    Ok(out)
}

/// Lowers one image (batch element) and channel group of the input into a column matrix of
/// shape `(in_per_group * k * k) × (out_h * out_w)`, row-major.
///
/// # Errors
/// Returns an error if the parameters are inconsistent with the input shape.
pub fn im2col(
    input: &Tensor,
    params: &Conv2dParams,
    batch: usize,
    group: usize,
) -> Result<Vec<f32>> {
    let ishape = input.shape();
    let oshape = params.output_shape(ishape)?;
    let k = params.kernel;
    let in_per_group = params.in_channels / params.groups;
    let cols = oshape.h * oshape.w;
    let rows = in_per_group * k * k;
    let mut out = vec![0.0_f32; rows * cols];
    let pad = params.padding as isize;

    for icg in 0..in_per_group {
        let ic = group * in_per_group + icg;
        let plane = input.plane(batch, ic);
        for kh in 0..k {
            for kw in 0..k {
                let row = (icg * k + kh) * k + kw;
                let dst = &mut out[row * cols..(row + 1) * cols];
                let mut col = 0;
                for oh in 0..oshape.h {
                    let ih = (oh * params.stride + kh) as isize - pad;
                    if ih < 0 || ih >= ishape.h as isize {
                        col += oshape.w;
                        continue;
                    }
                    let src_row = &plane[ih as usize * ishape.w..(ih as usize + 1) * ishape.w];
                    for ow in 0..oshape.w {
                        let iw = (ow * params.stride + kw) as isize - pad;
                        if iw >= 0 && iw < ishape.w as isize {
                            dst[col] = src_row[iw as usize];
                        }
                        col += 1;
                    }
                }
            }
        }
    }
    Ok(out)
}

/// im2col + GEMM convolution. This is the default execution path used by the model zoo.
///
/// # Errors
/// Returns an error if the parameters, weight shape, or bias length are inconsistent with
/// the input shape.
pub fn conv2d_im2col(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
) -> Result<Tensor> {
    validate_weight(params, weight)?;
    validate_bias(params, bias)?;
    let ishape = input.shape();
    let oshape = params.output_shape(ishape)?;
    let mut out = Tensor::zeros(oshape);

    let k = params.kernel;
    let in_per_group = params.in_channels / params.groups;
    let out_per_group = params.out_channels / params.groups;
    let cols = oshape.h * oshape.w;
    let rows = in_per_group * k * k;
    let dims = MatDims::new(out_per_group, cols, rows);

    for n in 0..ishape.n {
        for g in 0..params.groups {
            let col_matrix = im2col(input, params, n, g)?;
            // Weight slice for this group, already contiguous: rows of length `rows`.
            let wstart = g * out_per_group * rows;
            let wslice = &weight.as_slice()[wstart..wstart + out_per_group * rows];
            let mut gemm_out = vec![0.0_f32; out_per_group * cols];
            gemm_blocked(dims, GemmBlocking::default(), wslice, &col_matrix, &mut gemm_out);
            for ocg in 0..out_per_group {
                let oc = g * out_per_group + ocg;
                let base = bias.map_or(0.0, |b| b[oc]);
                let dst = out.plane_mut(n, oc);
                let src = &gemm_out[ocg * cols..(ocg + 1) * cols];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = s + base;
                }
            }
        }
    }
    Ok(out)
}

/// Loop tiling configuration for [`conv2d_tiled`].
///
/// The tiled implementation iterates output channels in blocks of `oc_tile` and output rows
/// in blocks of `oh_tile`, keeping the corresponding weight slice and input rows hot in
/// cache. Different resolutions favour different tile shapes — the effect the paper's
/// autotuning exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvTiling {
    /// Output-channel block size.
    pub oc_tile: usize,
    /// Output-row block size.
    pub oh_tile: usize,
    /// Output-column block size.
    pub ow_tile: usize,
}

impl Default for ConvTiling {
    fn default() -> Self {
        ConvTiling { oc_tile: 16, oh_tile: 8, ow_tile: 64 }
    }
}

impl ConvTiling {
    /// Creates a tiling configuration, clamping zero extents to one.
    pub fn new(oc_tile: usize, oh_tile: usize, ow_tile: usize) -> Self {
        ConvTiling { oc_tile: oc_tile.max(1), oh_tile: oh_tile.max(1), ow_tile: ow_tile.max(1) }
    }
}

/// Output-tiled direct convolution (dense groups only; grouped inputs fall back to the
/// reference path).
///
/// # Errors
/// Returns an error if the parameters, weight shape, or bias length are inconsistent with
/// the input shape.
pub fn conv2d_tiled(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    tiling: ConvTiling,
) -> Result<Tensor> {
    if params.groups != 1 {
        return conv2d_direct(input, weight, bias, params);
    }
    validate_weight(params, weight)?;
    validate_bias(params, bias)?;
    let ishape = input.shape();
    let oshape = params.output_shape(ishape)?;
    let mut out = Tensor::zeros(oshape);
    let k = params.kernel;
    let stride = params.stride;
    let pad = params.padding as isize;
    let wdata = weight.as_slice();
    let ksq = k * k;
    let wrow = params.in_channels * ksq;

    for n in 0..ishape.n {
        let mut oc0 = 0;
        while oc0 < params.out_channels {
            let oc1 = (oc0 + tiling.oc_tile).min(params.out_channels);
            let mut oh0 = 0;
            while oh0 < oshape.h {
                let oh1 = (oh0 + tiling.oh_tile).min(oshape.h);
                let mut ow0 = 0;
                while ow0 < oshape.w {
                    let ow1 = (ow0 + tiling.ow_tile).min(oshape.w);
                    for oc in oc0..oc1 {
                        let base = bias.map_or(0.0, |b| b[oc]);
                        let wslice = &wdata[oc * wrow..(oc + 1) * wrow];
                        for oh in oh0..oh1 {
                            for ow in ow0..ow1 {
                                let mut acc = base;
                                for ic in 0..params.in_channels {
                                    let plane = input.plane(n, ic);
                                    let wk = &wslice[ic * ksq..(ic + 1) * ksq];
                                    for kh in 0..k {
                                        let ih = (oh * stride + kh) as isize - pad;
                                        if ih < 0 || ih >= ishape.h as isize {
                                            continue;
                                        }
                                        let irow = &plane
                                            [ih as usize * ishape.w..(ih as usize + 1) * ishape.w];
                                        let wkr = &wk[kh * k..(kh + 1) * k];
                                        for kw in 0..k {
                                            let iw = (ow * stride + kw) as isize - pad;
                                            if iw >= 0 && iw < ishape.w as isize {
                                                acc += irow[iw as usize] * wkr[kw];
                                            }
                                        }
                                    }
                                }
                                out.set(n, oc, oh, ow, acc);
                            }
                        }
                    }
                    ow0 = ow1;
                }
                oh0 = oh1;
            }
            oc0 = oc1;
        }
    }
    Ok(out)
}

/// Default convolution entry point (im2col + blocked GEMM).
///
/// # Errors
/// Returns an error if the parameters, weight shape, or bias length are inconsistent with
/// the input shape.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
) -> Result<Tensor> {
    conv2d_im2col(input, weight, bias, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_input(shape: Shape, seed: u64) -> Tensor {
        Tensor::random_uniform(shape, 1.0, seed)
    }

    fn sample_weight(params: &Conv2dParams, seed: u64) -> Tensor {
        let shape = Shape::new(
            params.out_channels,
            params.in_channels / params.groups,
            params.kernel,
            params.kernel,
        );
        Tensor::random_uniform(shape, 0.5, seed)
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        let diff = a.max_abs_diff(b).unwrap();
        assert!(diff < tol, "tensors differ by {diff}");
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1x1 convolution with identity weights is a channel-wise copy.
        let params = Conv2dParams::new(3, 3, 1, 1, 0);
        let input = sample_input(Shape::chw(3, 9, 9), 1);
        let weight = Tensor::from_fn(Shape::new(3, 3, 1, 1), |o, i, _, _| {
            if o == i {
                1.0
            } else {
                0.0
            }
        });
        let out = conv2d_direct(&input, &weight, None, &params).unwrap();
        assert_close(&out, &input, 1e-6);
    }

    #[test]
    fn bias_is_added() {
        let params = Conv2dParams::new(1, 2, 1, 1, 0);
        let input = Tensor::ones(Shape::chw(1, 2, 2));
        let weight = Tensor::zeros(Shape::new(2, 1, 1, 1));
        let out = conv2d_direct(&input, &weight, Some(&[3.0, -1.0]), &params).unwrap();
        assert_eq!(out.plane(0, 0), &[3.0; 4]);
        assert_eq!(out.plane(0, 1), &[-1.0; 4]);
    }

    #[test]
    fn im2col_matches_direct_dense() {
        for (k, stride, pad, h) in [(3, 1, 1, 11), (3, 2, 1, 13), (1, 1, 0, 9), (7, 2, 3, 17), (5, 1, 2, 10)] {
            let params = Conv2dParams::new(4, 6, k, stride, pad);
            let input = sample_input(Shape::new(2, 4, h, h), 42 + k as u64);
            let weight = sample_weight(&params, 7 + k as u64);
            let bias: Vec<f32> = (0..6).map(|i| i as f32 * 0.1).collect();
            let direct = conv2d_direct(&input, &weight, Some(&bias), &params).unwrap();
            let lowered = conv2d_im2col(&input, &weight, Some(&bias), &params).unwrap();
            assert_close(&direct, &lowered, 1e-3);
        }
    }

    #[test]
    fn im2col_matches_direct_grouped_and_depthwise() {
        let params = Conv2dParams::new(8, 8, 3, 1, 1).with_groups(4);
        let input = sample_input(Shape::chw(8, 10, 10), 5);
        let weight = sample_weight(&params, 6);
        let direct = conv2d_direct(&input, &weight, None, &params).unwrap();
        let lowered = conv2d_im2col(&input, &weight, None, &params).unwrap();
        assert_close(&direct, &lowered, 1e-3);

        let dw = Conv2dParams::depthwise(6, 3, 2, 1);
        let input = sample_input(Shape::chw(6, 15, 15), 9);
        let weight = sample_weight(&dw, 10);
        let direct = conv2d_direct(&input, &weight, None, &dw).unwrap();
        let lowered = conv2d_im2col(&input, &weight, None, &dw).unwrap();
        assert_close(&direct, &lowered, 1e-3);
    }

    #[test]
    fn tiled_matches_direct_for_various_tilings() {
        let params = Conv2dParams::new(3, 5, 3, 1, 1);
        let input = sample_input(Shape::chw(3, 12, 12), 3);
        let weight = sample_weight(&params, 4);
        let bias = vec![0.5; 5];
        let direct = conv2d_direct(&input, &weight, Some(&bias), &params).unwrap();
        for tiling in [
            ConvTiling::default(),
            ConvTiling::new(1, 1, 1),
            ConvTiling::new(2, 5, 3),
            ConvTiling::new(100, 100, 100),
            ConvTiling::new(0, 0, 0),
        ] {
            let tiled = conv2d_tiled(&input, &weight, Some(&bias), &params, tiling).unwrap();
            assert_close(&direct, &tiled, 1e-4);
        }
    }

    #[test]
    fn tiled_falls_back_for_grouped() {
        let params = Conv2dParams::depthwise(4, 3, 1, 1);
        let input = sample_input(Shape::chw(4, 8, 8), 11);
        let weight = sample_weight(&params, 12);
        let direct = conv2d_direct(&input, &weight, None, &params).unwrap();
        let tiled =
            conv2d_tiled(&input, &weight, None, &params, ConvTiling::default()).unwrap();
        assert_close(&direct, &tiled, 1e-5);
    }

    #[test]
    fn weight_shape_is_validated() {
        let params = Conv2dParams::new(3, 4, 3, 1, 1);
        let input = sample_input(Shape::chw(3, 8, 8), 1);
        let bad_weight = Tensor::zeros(Shape::new(4, 3, 5, 5));
        assert!(conv2d_direct(&input, &bad_weight, None, &params).is_err());
        assert!(conv2d_im2col(&input, &bad_weight, None, &params).is_err());
        let good_weight = sample_weight(&params, 2);
        assert!(conv2d_direct(&input, &good_weight, Some(&[0.0; 3]), &params).is_err());
    }

    #[test]
    fn strided_output_shape() {
        let params = Conv2dParams::new(3, 8, 3, 2, 1);
        let input = sample_input(Shape::chw(3, 224, 224), 0);
        let out = conv2d_im2col(&input, &sample_weight(&params, 1), None, &params).unwrap();
        assert_eq!(out.shape(), Shape::new(1, 8, 112, 112));
    }
}
