//! 2-D convolution kernels and the resolution-aware dispatch layer.
//!
//! Executable implementations, from slowest to fastest:
//!
//! * [`conv2d_direct`] — a reference seven-loop implementation, used to validate the others.
//! * [`conv2d_tiled`] — an output-tiled direct implementation parameterized by
//!   [`ConvTiling`], used by the benchmark harness to demonstrate (with real wall-clock
//!   measurements) that the best tiling depends on the input resolution, the mechanism
//!   behind the paper's §VI.
//! * [`conv2d_im2col`] — the seed's allocation-heavy im2col + blocked-GEMM lowering, kept
//!   as the measured baseline the engine is compared against.
//! * The **packed engine** ([`conv2d_with_algo`]) — packed, multi-threaded kernels built
//!   on [`engine`](crate::engine): a direct-GEMM fast path for 1×1 stride-1 convolutions
//!   ([`ConvAlgo::Gemm1x1`]), a dedicated shift-and-accumulate depthwise kernel
//!   ([`ConvAlgo::Depthwise`]), a Winograd F(2×2, 3×3) arm for stride-1 dense 3×3
//!   layers ([`ConvAlgo::Winograd`], implemented in [`winograd`](crate::winograd)),
//!   and a packing-aware im2col for everything else ([`ConvAlgo::Im2colPacked`]).
//!
//! The Winograd arm trades multiplies for transforms: ~2.25× fewer MACs than im2col +
//! GEMM on the shapes it supports, bitwise deterministic across thread counts, but —
//! because it legitimately reassociates the arithmetic — only *tolerance*-equal to the
//! other paths. Its contract, pinned by `tests/winograd_parity.rs`, is elementwise
//! agreement with [`ConvAlgo::Im2colPacked`] within `1e-4` at unit-scale activations.
//!
//! [`conv2d`] — the entry point the model zoo uses — routes through [`select_algo`],
//! and [`conv2d_dispatch`] additionally reports which algorithm ran so autotuners and
//! benchmarks can sweep algorithm × tiling per resolution. [`force_conv_algo`] pins the
//! choice globally (benchmarks use it to time the legacy path through a whole network).
//!
//! Default selection is **measurement-aware**: an [`AlgoCalibration`] table — built by
//! `rescnn-hwsim`'s measured tuner from wall-clock sweeps and installed process-wide
//! via [`install_algo_calibration`] — maps exact layer shapes to their measured-fastest
//! algorithm, and [`select_algo`] consults it before falling back to the static
//! heuristics. Scoped ([`EngineContext::with_algo`](crate::EngineContext::with_algo))
//! and global ([`force_conv_algo`]) overrides take precedence over calibration.
//!
//! Weights are stored as `O × I/g × K × K` tensors (encoded in the NCHW [`Shape`] as
//! `n = O`, `c = I/g`, `h = w = K`).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use serde::{Deserialize, Serialize};

use crate::engine::{self, FusedActivation, NR};
use crate::error::{Result, TensorError};
use crate::gemm::{gemm_blocked, GemmBlocking, MatDims};
use crate::shape::{Conv2dParams, Shape};
use crate::tensor::Tensor;
use crate::winograd::{conv2d_winograd_fused_into, WinogradFilter};
use crate::{parallel, scratch};

/// Validates that a weight tensor matches the convolution parameters.
pub(crate) fn validate_weight(params: &Conv2dParams, weight: &Tensor) -> Result<()> {
    params.validate()?;
    let ws = weight.shape();
    let expected = Shape::new(
        params.out_channels,
        params.in_channels / params.groups,
        params.kernel,
        params.kernel,
    );
    if ws != expected {
        return Err(TensorError::ShapeMismatch {
            left: ws.as_array().to_vec(),
            right: expected.as_array().to_vec(),
            op: "conv2d weight",
        });
    }
    Ok(())
}

pub(crate) fn validate_bias(params: &Conv2dParams, bias: Option<&[f32]>) -> Result<()> {
    if let Some(b) = bias {
        if b.len() != params.out_channels {
            return Err(TensorError::LengthMismatch {
                expected: params.out_channels,
                actual: b.len(),
            });
        }
    }
    Ok(())
}

/// Reference direct convolution.
///
/// # Errors
/// Returns an error if the parameters, weight shape, or bias length are inconsistent with
/// the input shape.
pub fn conv2d_direct(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
) -> Result<Tensor> {
    validate_weight(params, weight)?;
    validate_bias(params, bias)?;
    let ishape = input.shape();
    let oshape = params.output_shape(ishape)?;
    let mut out = Tensor::zeros(oshape);

    let k = params.kernel;
    let stride = params.stride;
    let pad = params.padding as isize;
    let in_per_group = params.in_channels / params.groups;
    let out_per_group = params.out_channels / params.groups;

    for n in 0..ishape.n {
        for oc in 0..params.out_channels {
            let group = oc / out_per_group;
            let base = bias.map_or(0.0, |b| b[oc]);
            for oh in 0..oshape.h {
                for ow in 0..oshape.w {
                    let mut acc = base;
                    for icg in 0..in_per_group {
                        let ic = group * in_per_group + icg;
                        for kh in 0..k {
                            let ih = (oh * stride + kh) as isize - pad;
                            if ih < 0 || ih >= ishape.h as isize {
                                continue;
                            }
                            for kw in 0..k {
                                let iw = (ow * stride + kw) as isize - pad;
                                if iw < 0 || iw >= ishape.w as isize {
                                    continue;
                                }
                                acc += input.get(n, ic, ih as usize, iw as usize)
                                    * weight.get(oc, icg, kh, kw);
                            }
                        }
                    }
                    out.set(n, oc, oh, ow, acc);
                }
            }
        }
    }
    Ok(out)
}

/// Lowers one image (batch element) and channel group of the input into a column matrix of
/// shape `(in_per_group * k * k) × (out_h * out_w)`, row-major.
///
/// This is the seed's materializing lowering, kept for the baseline path; the engine
/// uses the packing-aware stripe variant internally instead.
///
/// # Errors
/// Returns an error if the parameters are inconsistent with the input shape.
pub fn im2col(
    input: &Tensor,
    params: &Conv2dParams,
    batch: usize,
    group: usize,
) -> Result<Vec<f32>> {
    let ishape = input.shape();
    let oshape = params.output_shape(ishape)?;
    let k = params.kernel;
    let in_per_group = params.in_channels / params.groups;
    let cols = oshape.h * oshape.w;
    let rows = in_per_group * k * k;
    let mut out = vec![0.0_f32; rows * cols];
    let pad = params.padding as isize;

    for icg in 0..in_per_group {
        let ic = group * in_per_group + icg;
        let plane = input.plane(batch, ic);
        for kh in 0..k {
            for kw in 0..k {
                let row = (icg * k + kh) * k + kw;
                let dst = &mut out[row * cols..(row + 1) * cols];
                let mut col = 0;
                for oh in 0..oshape.h {
                    let ih = (oh * params.stride + kh) as isize - pad;
                    if ih < 0 || ih >= ishape.h as isize {
                        col += oshape.w;
                        continue;
                    }
                    let src_row = &plane[ih as usize * ishape.w..(ih as usize + 1) * ishape.w];
                    for ow in 0..oshape.w {
                        let iw = (ow * params.stride + kw) as isize - pad;
                        if iw >= 0 && iw < ishape.w as isize {
                            dst[col] = src_row[iw as usize];
                        }
                        col += 1;
                    }
                }
            }
        }
    }
    Ok(out)
}

/// im2col + blocked GEMM convolution: the seed's default execution path, preserved as
/// the baseline that the packed engine's speedups are measured against.
///
/// # Errors
/// Returns an error if the parameters, weight shape, or bias length are inconsistent with
/// the input shape.
pub fn conv2d_im2col(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
) -> Result<Tensor> {
    validate_weight(params, weight)?;
    validate_bias(params, bias)?;
    let ishape = input.shape();
    let oshape = params.output_shape(ishape)?;
    let mut out = Tensor::zeros(oshape);

    let k = params.kernel;
    let in_per_group = params.in_channels / params.groups;
    let out_per_group = params.out_channels / params.groups;
    let cols = oshape.h * oshape.w;
    let rows = in_per_group * k * k;
    let dims = MatDims::new(out_per_group, cols, rows);

    for n in 0..ishape.n {
        for g in 0..params.groups {
            let col_matrix = im2col(input, params, n, g)?;
            // Weight slice for this group, already contiguous: rows of length `rows`.
            let wstart = g * out_per_group * rows;
            let wslice = &weight.as_slice()[wstart..wstart + out_per_group * rows];
            let mut gemm_out = vec![0.0_f32; out_per_group * cols];
            gemm_blocked(dims, GemmBlocking::default(), wslice, &col_matrix, &mut gemm_out);
            for ocg in 0..out_per_group {
                let oc = g * out_per_group + ocg;
                let base = bias.map_or(0.0, |b| b[oc]);
                let dst = out.plane_mut(n, oc);
                let src = &gemm_out[ocg * cols..(ocg + 1) * cols];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = s + base;
                }
            }
        }
    }
    Ok(out)
}

/// Loop tiling configuration for [`conv2d_tiled`].
///
/// The tiled implementation iterates output channels in blocks of `oc_tile` and output rows
/// in blocks of `oh_tile`, keeping the corresponding weight slice and input rows hot in
/// cache. Different resolutions favour different tile shapes — the effect the paper's
/// autotuning exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvTiling {
    /// Output-channel block size.
    pub oc_tile: usize,
    /// Output-row block size.
    pub oh_tile: usize,
    /// Output-column block size.
    pub ow_tile: usize,
}

impl Default for ConvTiling {
    fn default() -> Self {
        ConvTiling { oc_tile: 16, oh_tile: 8, ow_tile: 64 }
    }
}

impl ConvTiling {
    /// Creates a tiling configuration, clamping zero extents to one.
    pub fn new(oc_tile: usize, oh_tile: usize, ow_tile: usize) -> Self {
        ConvTiling { oc_tile: oc_tile.max(1), oh_tile: oh_tile.max(1), ow_tile: ow_tile.max(1) }
    }
}

/// Output-tiled direct convolution (dense groups only; grouped inputs fall back to the
/// reference path).
///
/// # Errors
/// Returns an error if the parameters, weight shape, or bias length are inconsistent with
/// the input shape.
pub fn conv2d_tiled(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    tiling: ConvTiling,
) -> Result<Tensor> {
    if params.groups != 1 {
        return conv2d_direct(input, weight, bias, params);
    }
    validate_weight(params, weight)?;
    validate_bias(params, bias)?;
    let ishape = input.shape();
    let oshape = params.output_shape(ishape)?;
    let mut out = Tensor::zeros(oshape);
    let k = params.kernel;
    let stride = params.stride;
    let pad = params.padding as isize;
    let wdata = weight.as_slice();
    let ksq = k * k;
    let wrow = params.in_channels * ksq;

    for n in 0..ishape.n {
        let mut oc0 = 0;
        while oc0 < params.out_channels {
            let oc1 = (oc0 + tiling.oc_tile).min(params.out_channels);
            let mut oh0 = 0;
            while oh0 < oshape.h {
                let oh1 = (oh0 + tiling.oh_tile).min(oshape.h);
                let mut ow0 = 0;
                while ow0 < oshape.w {
                    let ow1 = (ow0 + tiling.ow_tile).min(oshape.w);
                    for oc in oc0..oc1 {
                        let base = bias.map_or(0.0, |b| b[oc]);
                        let wslice = &wdata[oc * wrow..(oc + 1) * wrow];
                        for oh in oh0..oh1 {
                            for ow in ow0..ow1 {
                                let mut acc = base;
                                for ic in 0..params.in_channels {
                                    let plane = input.plane(n, ic);
                                    let wk = &wslice[ic * ksq..(ic + 1) * ksq];
                                    for kh in 0..k {
                                        let ih = (oh * stride + kh) as isize - pad;
                                        if ih < 0 || ih >= ishape.h as isize {
                                            continue;
                                        }
                                        let irow = &plane
                                            [ih as usize * ishape.w..(ih as usize + 1) * ishape.w];
                                        let wkr = &wk[kh * k..(kh + 1) * k];
                                        for (kw, &wv) in wkr.iter().enumerate() {
                                            let iw = (ow * stride + kw) as isize - pad;
                                            if iw >= 0 && iw < ishape.w as isize {
                                                acc += irow[iw as usize] * wv;
                                            }
                                        }
                                    }
                                }
                                out.set(n, oc, oh, ow, acc);
                            }
                        }
                    }
                    ow0 = ow1;
                }
                oh0 = oh1;
            }
            oc0 = oc1;
        }
    }
    Ok(out)
}

/// Identifies one executable convolution algorithm.
///
/// [`select_algo`] picks among the engine paths; the legacy paths stay addressable so
/// autotuners and benchmarks can sweep every implementation at every resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConvAlgo {
    /// Reference seven-loop kernel.
    Direct,
    /// Seed baseline: materializing im2col + cache-blocked GEMM, one allocation per call.
    Im2col,
    /// Engine: packing-aware im2col stripes + packed parallel GEMM.
    Im2colPacked,
    /// Engine: direct GEMM over the input planes for 1×1 stride-1 pad-0 convolutions
    /// (no im2col materialization at all).
    Gemm1x1,
    /// Engine: dedicated shift-and-accumulate depthwise kernel.
    Depthwise,
    /// Engine: Winograd F(2×2, 3×3) minimal-filtering convolution for stride-1 dense
    /// 3×3 layers (~2.25× fewer multiplies than im2col + GEMM). Bitwise deterministic
    /// across thread counts; agrees with [`ConvAlgo::Im2colPacked`] elementwise within
    /// `1e-4` at unit-scale activations (it reassociates arithmetic, so bitwise
    /// equality with the GEMM paths is not part of the contract). See
    /// [`winograd`](crate::winograd).
    Winograd,
    /// Engine: Winograd F(4×4, 3×3) — the α=6 minimal-filtering variant (~4× fewer
    /// multiplies than im2col + GEMM, ~1.78× fewer than F(2×2)). Same eligibility and
    /// determinism contract as [`ConvAlgo::Winograd`], but the larger transform
    /// stencils loosen the elementwise agreement with [`ConvAlgo::Im2colPacked`] to
    /// [`WINOGRAD_F4_TOLERANCE`](crate::winograd::WINOGRAD_F4_TOLERANCE) at unit
    /// scale — calibration sweeps gate it per shape on the measured unit error.
    WinogradF4,
    /// Engine: int8-quantized u8×i8 GEMM for dense (groups == 1) layers —
    /// per-output-channel symmetric weight scales folded at prepack time,
    /// per-tensor asymmetric activation quantization, i32 accumulation with a
    /// fused f32 dequant + epilogue writeback (VNNI / `vpmaddubsw` / portable
    /// kernel tiers, all bitwise interchangeable). Quantization is an
    /// *approximation*, so this arm is never a heuristic default: dispatch
    /// reaches it only through an installed calibration table (gated per shape
    /// on [`int8_unit_error`](crate::quant::int8_unit_error) against
    /// [`INT8_TOLERANCE`](crate::quant::INT8_TOLERANCE), plus the serving
    /// layer's end-to-end accuracy budget) or an explicit override. See
    /// [`quant`](crate::quant).
    Int8,
}

impl ConvAlgo {
    /// Every algorithm, in sweep order.
    pub const ALL: [ConvAlgo; 8] = [
        ConvAlgo::Direct,
        ConvAlgo::Im2col,
        ConvAlgo::Im2colPacked,
        ConvAlgo::Gemm1x1,
        ConvAlgo::Depthwise,
        ConvAlgo::Winograd,
        ConvAlgo::WinogradF4,
        ConvAlgo::Int8,
    ];

    /// Whether this algorithm can execute the given convolution shape.
    pub fn supports(self, params: &Conv2dParams) -> bool {
        match self {
            ConvAlgo::Direct | ConvAlgo::Im2col | ConvAlgo::Im2colPacked => true,
            ConvAlgo::Gemm1x1 => params.kernel == 1 && params.stride == 1 && params.padding == 0,
            ConvAlgo::Depthwise => {
                params.groups == params.in_channels && params.in_channels == params.out_channels
            }
            ConvAlgo::Winograd | ConvAlgo::WinogradF4 => {
                params.kernel == 3 && params.stride == 1 && params.groups == 1
            }
            ConvAlgo::Int8 => params.groups == 1,
        }
    }

    /// Parses the [`Display`](std::fmt::Display) name back into an algorithm —
    /// the inverse used by on-disk calibration tables.
    pub fn from_name(name: &str) -> Option<ConvAlgo> {
        ConvAlgo::ALL.iter().copied().find(|algo| algo.to_string() == name)
    }
}

impl std::fmt::Display for ConvAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ConvAlgo::Direct => "direct",
            ConvAlgo::Im2col => "im2col",
            ConvAlgo::Im2colPacked => "im2col_packed",
            ConvAlgo::Gemm1x1 => "gemm_1x1",
            ConvAlgo::Depthwise => "depthwise",
            ConvAlgo::Winograd => "winograd",
            ConvAlgo::WinogradF4 => "winograd_f4",
            ConvAlgo::Int8 => "int8_packed",
        };
        f.write_str(name)
    }
}

/// Identifies one convolution workload for calibrated dispatch: the convolution
/// parameters plus the input's spatial extent. The batch size is deliberately not
/// part of the key — per-element algorithm preference is a property of the layer
/// shape, and sweeps measure at batch 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvShapeKey {
    /// Convolution parameters of the layer.
    pub params: Conv2dParams,
    /// Input spatial height.
    pub height: usize,
    /// Input spatial width.
    pub width: usize,
}

impl ConvShapeKey {
    /// Builds the key for a convolution applied to `input`.
    pub fn new(params: Conv2dParams, input: Shape) -> Self {
        ConvShapeKey { params, height: input.h, width: input.w }
    }
}

/// A measurement-derived dispatch table: for each exact layer shape, the algorithm
/// that was measured fastest on this host.
///
/// Built by `rescnn-hwsim`'s calibrated cost model from `MeasuredTuner` sweeps
/// (and persistable to disk there, so serving starts warm), then installed
/// process-wide with [`install_algo_calibration`]. [`select_algo`] consults the
/// installed table before its static heuristics; scoped and global algorithm
/// overrides still win, and entries whose algorithm cannot execute the shape are
/// ignored defensively.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AlgoCalibration {
    choices: HashMap<ConvShapeKey, ConvAlgo>,
}

impl AlgoCalibration {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the preferred algorithm for one layer shape (replacing any earlier
    /// entry for the same shape).
    pub fn set(&mut self, key: ConvShapeKey, algo: ConvAlgo) {
        self.choices.insert(key, algo);
    }

    /// The calibrated algorithm for a layer shape, if one was recorded.
    pub fn get(&self, key: &ConvShapeKey) -> Option<ConvAlgo> {
        self.choices.get(key).copied()
    }

    /// Number of calibrated shapes.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// Iterates over every calibrated `(shape, algorithm)` pair (unspecified order;
    /// persistence layers sort by key fields for stable output).
    pub fn entries(&self) -> impl Iterator<Item = (&ConvShapeKey, ConvAlgo)> {
        self.choices.iter().map(|(key, &algo)| (key, algo))
    }
}

/// Fast-path flag: true while a calibration table is installed, so the dispatch
/// hot path skips the lock entirely in the (default) uncalibrated state.
static CALIBRATION_ACTIVE: AtomicBool = AtomicBool::new(false);

/// The installed calibration table (`None` by default).
static CALIBRATION: RwLock<Option<Arc<AlgoCalibration>>> = RwLock::new(None);

/// Bumped on every [`install_algo_calibration`] call, so caches derived from
/// the installed table (e.g. the serving layer's per-resolution-bucket tables)
/// can detect staleness without holding the lock.
static CALIBRATION_GENERATION: AtomicU64 = AtomicU64::new(0);

/// Monotonic generation of the installed calibration table: changes every time
/// [`install_algo_calibration`] runs. Derived caches compare generations to
/// decide whether their resolved tables are still current.
pub fn algo_calibration_generation() -> u64 {
    CALIBRATION_GENERATION.load(Ordering::Acquire)
}

thread_local! {
    /// A per-thread scoped calibration table consulted before the process-wide
    /// one — the batch scheduler resolves each resolution bucket's shapes once
    /// and installs the result here for the bucket's whole execution, so the
    /// hot path pays a thread-local read instead of an `RwLock` read per layer
    /// per request.
    static SCOPED_CALIBRATION: RefCell<Option<Arc<AlgoCalibration>>> = const { RefCell::new(None) };
}

/// Runs `f` with a calibration table installed for the current thread's dynamic
/// extent, consulted by [`select_algo`] before the process-wide table.
///
/// Intended for tables *derived from* the current dispatch state (e.g. one
/// [`planned_conv_algo`] resolution per shape of a serving bucket): installing
/// such a table changes no decisions, it only removes the per-call lock. Scoped
/// ([`EngineContext`](crate::EngineContext)) and global ([`force_conv_algo`])
/// algorithm overrides still take precedence.
pub fn with_algo_calibration_scope<R>(table: Arc<AlgoCalibration>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<AlgoCalibration>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let previous = self.0.take();
            SCOPED_CALIBRATION.with(|cell| *cell.borrow_mut() = previous);
        }
    }
    let previous = SCOPED_CALIBRATION.with(|cell| cell.borrow_mut().replace(table));
    let _restore = Restore(previous);
    f()
}

/// Installs (or, with `None`, removes) the process-wide dispatch calibration
/// table consulted by [`select_algo`]. Returns the previously installed table.
///
/// Calibration supplies *default choices* only — it never overrides an explicit
/// [`EngineContext`](crate::EngineContext) or [`force_conv_algo`] pin, and shapes
/// absent from the table fall back to the static heuristics — so installing one
/// is safe for every concurrent caller and is intentionally process-wide: a table
/// measured on this host is equally valid for every pipeline in the process.
pub fn install_algo_calibration(
    calibration: Option<AlgoCalibration>,
) -> Option<Arc<AlgoCalibration>> {
    let calibration = calibration.map(Arc::new);
    let mut slot = CALIBRATION.write().unwrap_or_else(|e| e.into_inner());
    // The fast-path flag is updated while holding the write lock, so it can
    // never disagree with the stored table under concurrent install/uninstall.
    CALIBRATION_ACTIVE.store(calibration.is_some(), Ordering::Release);
    CALIBRATION_GENERATION.fetch_add(1, Ordering::AcqRel);
    std::mem::replace(&mut *slot, calibration)
}

/// Merges `additions` into the process-wide calibration table in one step
/// under the table's write lock — new entries win on conflicting shapes,
/// everything else is preserved — so concurrent installers (a boot sweep
/// finishing while a pipeline warm-starts from disk) can never lose each
/// other's entries to a read-modify-write race. Returns the merged table size.
pub fn merge_algo_calibration(additions: &AlgoCalibration) -> usize {
    let mut slot = CALIBRATION.write().unwrap_or_else(|e| e.into_inner());
    let mut merged = slot.as_deref().cloned().unwrap_or_default();
    for (key, algo) in additions.entries() {
        merged.set(*key, algo);
    }
    let len = merged.len();
    CALIBRATION_ACTIVE.store(true, Ordering::Release);
    CALIBRATION_GENERATION.fetch_add(1, Ordering::AcqRel);
    *slot = Some(Arc::new(merged));
    len
}

/// The currently installed calibration table, if any.
pub fn installed_algo_calibration() -> Option<Arc<AlgoCalibration>> {
    if !CALIBRATION_ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    CALIBRATION.read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// The calibrated algorithm for `(params, input)` when a table is installed, the
/// entry exists, and its algorithm can actually execute the shape. A scoped
/// table ([`with_algo_calibration_scope`]) is consulted first; shapes it misses
/// fall through to the process-wide table.
fn calibrated_algo(params: &Conv2dParams, input: Shape) -> Option<ConvAlgo> {
    let key = ConvShapeKey::new(*params, input);
    let scoped =
        SCOPED_CALIBRATION.with(|cell| cell.borrow().as_ref().and_then(|table| table.get(&key)));
    if let Some(algo) = scoped {
        if algo.supports(params) {
            return Some(algo);
        }
    }
    let table = installed_algo_calibration()?;
    let algo = table.get(&key)?;
    algo.supports(params).then_some(algo)
}

/// Chooses the engine algorithm for a convolution shape.
///
/// Dispatch rules, in priority order:
/// 1. An installed [`AlgoCalibration`] entry for this exact shape — the algorithm
///    wall-clock sweeps measured fastest on this host — wins (when it can execute
///    the shape).
/// 2. 1×1 stride-1 pad-0 convolutions (the majority of ResNet-50 layers) skip im2col
///    entirely — the input planes already are the GEMM right-hand side.
/// 3. Depthwise convolutions (`groups == in == out`, the MobileNetV2 workhorse) run the
///    dedicated shift-and-accumulate kernel; lowering them to GEMM would spend
///    `k²`-fold more memory traffic for rank-1 matrix products.
/// 4. Everything else runs packing-aware im2col stripes + packed GEMM, with stripe
///    heights sized from the output resolution so packed panels stay cache-resident.
///    ([`ConvAlgo::Winograd`] is never a *heuristic* default: whether its transform
///    overhead pays off is shape- and host-dependent, which is exactly what the
///    calibration table measures.)
pub fn select_algo(params: &Conv2dParams, input: Shape) -> ConvAlgo {
    if let Some(algo) = calibrated_algo(params, input) {
        return algo;
    }
    if ConvAlgo::Gemm1x1.supports(params) {
        ConvAlgo::Gemm1x1
    } else if ConvAlgo::Depthwise.supports(params) {
        ConvAlgo::Depthwise
    } else {
        ConvAlgo::Im2colPacked
    }
}

/// `0` = no override; otherwise `ConvAlgo::ALL[value - 1]`.
static FORCED_ALGO: AtomicU8 = AtomicU8::new(0);

/// Globally overrides [`conv2d`]'s algorithm choice (`None` restores auto-dispatch).
///
/// Shapes the forced algorithm cannot execute fall back to [`select_algo`]. Benchmarks
/// use this to drive an entire network through the legacy path for before/after
/// comparisons.
pub fn force_conv_algo(algo: Option<ConvAlgo>) {
    let encoded = match algo {
        None => 0,
        Some(a) => 1 + ConvAlgo::ALL.iter().position(|x| *x == a).expect("algo in ALL") as u8,
    };
    FORCED_ALGO.store(encoded, Ordering::Relaxed);
}

fn forced_algo() -> Option<ConvAlgo> {
    // A thread-scoped context override is more specific than the process-wide
    // benchmark pin, so it wins.
    if let Some(algo) = crate::context::EngineContext::current().algo {
        return Some(algo);
    }
    match FORCED_ALGO.load(Ordering::Relaxed) {
        0 => None,
        encoded => Some(ConvAlgo::ALL[encoded as usize - 1]),
    }
}

/// Runs a convolution with an explicit algorithm. Shapes the algorithm does not
/// support fall back to [`ConvAlgo::Im2colPacked`] (which handles every shape), so
/// sweeps never have to special-case eligibility.
///
/// # Errors
/// Returns an error if the parameters, weight shape, or bias length are inconsistent
/// with the input shape.
pub fn conv2d_with_algo(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    algo: ConvAlgo,
) -> Result<Tensor> {
    let algo = if algo.supports(params) { algo } else { ConvAlgo::Im2colPacked };
    match algo {
        ConvAlgo::Direct => conv2d_direct(input, weight, bias, params),
        ConvAlgo::Im2col => conv2d_im2col(input, weight, bias, params),
        ConvAlgo::Im2colPacked => conv2d_im2col_packed(input, weight, bias, params),
        ConvAlgo::Gemm1x1 => conv2d_gemm_1x1(input, weight, bias, params),
        ConvAlgo::Depthwise => conv2d_depthwise(input, weight, bias, params),
        ConvAlgo::Winograd => crate::winograd::conv2d_winograd(input, weight, bias, params),
        ConvAlgo::WinogradF4 => crate::winograd::conv2d_winograd_f4(input, weight, bias, params),
        ConvAlgo::Int8 => crate::quant::conv2d_int8(input, weight, bias, params),
    }
}

/// The algorithm [`conv2d_dispatch`] would run for `(params, input)` right now:
/// the innermost override (scoped [`EngineContext`](crate::EngineContext), then
/// the process-wide [`force_conv_algo`] pin) when it supports the shape, else the
/// calibrated/heuristic [`select_algo`] choice.
///
/// Exposed so callers that keep per-algorithm cached state (e.g. the model zoo's
/// cached Winograd filter transforms) can see the decision without running the
/// convolution.
pub fn planned_conv_algo(params: &Conv2dParams, input: Shape) -> ConvAlgo {
    match forced_algo() {
        Some(forced) if forced.supports(params) => forced,
        _ => select_algo(params, input),
    }
}

/// Runs a convolution through the dispatch layer, reporting which algorithm executed.
///
/// # Errors
/// Returns an error if the parameters, weight shape, or bias length are inconsistent
/// with the input shape.
pub fn conv2d_dispatch(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
) -> Result<(Tensor, ConvAlgo)> {
    let algo = planned_conv_algo(params, input.shape());
    conv2d_with_algo(input, weight, bias, params, algo).map(|out| (out, algo))
}

/// Default convolution entry point: resolution-aware dispatch into the packed engine.
///
/// # Errors
/// Returns an error if the parameters, weight shape, or bias length are inconsistent with
/// the input shape.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
) -> Result<Tensor> {
    conv2d_dispatch(input, weight, bias, params).map(|(out, _)| out)
}

/// A convolution layer prepared once for the serving hot path: weights prepacked
/// into GEMM panel layout per channel group ([`engine::PreparedGemmA`]), the
/// bias captured, and — for Winograd-eligible layers — the transformed filter
/// bank cached (lazily, the first time dispatch actually picks
/// [`ConvAlgo::Winograd`]).
///
/// A `PreparedLayer` forward skips every per-call weight-packing pass and can
/// fuse the block tail ([`ConvEpilogue`]: residual add + activation) into the
/// kernel's output write. Both transformations are pure data movement /
/// reassociation-free, so prepared forwards are **bitwise identical** to the
/// unprepared `conv2d_with_algo` path per algorithm (pinned by
/// `tests/prepacked_parity.rs`).
///
/// The raw weights are retained for the fallback algorithms
/// ([`ConvAlgo::Direct`], [`ConvAlgo::Im2col`]) and the Winograd filter
/// transform, so memory cost is roughly 2× the weights for GEMM-dispatched
/// layers.
#[derive(Debug, Clone)]
pub struct PreparedLayer {
    params: Conv2dParams,
    weight: Tensor,
    bias: Option<Vec<f32>>,
    /// Per-group prepacked GEMM left operands (`out_per_group` rows over
    /// `in_per_group * k * k`), shared by the 1×1 and packed-im2col paths.
    gemm: Vec<engine::PreparedGemmA>,
    /// Lazily-built Winograd F(2×2) filter transform (eligible layers only).
    winograd: OnceLock<WinogradFilter>,
    /// Lazily-built Winograd F(4×4) filter transform (eligible layers only).
    winograd_f4: OnceLock<WinogradFilter>,
    /// Lazily-built int8-quantized weight panels (dense layers only), so
    /// deployments that never enable the int8 arm pay nothing for it.
    int8: OnceLock<crate::quant::QuantizedConv>,
    /// Calibration-recorded activation range for the int8 path; absent ranges
    /// fall back to a dynamic per-call min/max scan.
    int8_range: Option<(f32, f32)>,
}

impl PreparedLayer {
    /// Prepares a layer: validates the shapes and prepacks the per-group weight
    /// panels.
    ///
    /// # Errors
    /// Returns an error if the weight shape or bias length are inconsistent
    /// with the parameters.
    pub fn new(weight: Tensor, bias: Option<Vec<f32>>, params: Conv2dParams) -> Result<Self> {
        validate_weight(&params, &weight)?;
        validate_bias(&params, bias.as_deref())?;
        let k = params.kernel;
        let in_per_group = params.in_channels / params.groups;
        let out_per_group = params.out_channels / params.groups;
        let rows = in_per_group * k * k;
        let wdata = weight.as_slice();
        // Depthwise-dispatched layers never consume GEMM panels (their kernel
        // reads raw weights, and MR-padding 1-row groups would cost ~6× the
        // weight memory); an explicit GEMM-algo override on such a layer falls
        // back to on-the-fly packing instead.
        let gemm = if ConvAlgo::Depthwise.supports(&params) {
            Vec::new()
        } else {
            (0..params.groups)
                .map(|g| {
                    let wslice = &wdata[g * out_per_group * rows..(g + 1) * out_per_group * rows];
                    engine::PreparedGemmA::prepare(wslice, rows, out_per_group, rows)
                })
                .collect()
        };
        Ok(PreparedLayer {
            params,
            weight,
            bias,
            gemm,
            winograd: OnceLock::new(),
            winograd_f4: OnceLock::new(),
            int8: OnceLock::new(),
            int8_range: None,
        })
    }

    /// The layer's convolution parameters.
    pub fn params(&self) -> &Conv2dParams {
        &self.params
    }

    /// The raw (unpacked) weights.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The per-channel bias, if any.
    pub fn bias(&self) -> Option<&[f32]> {
        self.bias.as_deref()
    }

    /// The prepacked dense (single-group) GEMM left operand, if this layer
    /// carries packed panels. Used by the chain executor's pointwise consumer.
    pub(crate) fn dense_gemm_lhs(&self) -> Option<engine::GemmLhs<'_>> {
        if self.params.groups == 1 {
            self.gemm.first().map(engine::PreparedGemmA::as_lhs)
        } else {
            None
        }
    }

    /// The cached Winograd filter transform, building it on first use.
    ///
    /// # Errors
    /// Returns an error if the layer is not Winograd-eligible.
    pub fn winograd_filter(&self) -> Result<&WinogradFilter> {
        if !ConvAlgo::Winograd.supports(&self.params) {
            return Err(TensorError::ShapeMismatch {
                left: vec![self.params.kernel, self.params.stride, self.params.groups],
                right: vec![3, 1, 1],
                op: "winograd requires kernel=3 stride=1 groups=1",
            });
        }
        Ok(self.winograd.get_or_init(|| {
            WinogradFilter::prepare(&self.weight, &self.params).expect("eligibility checked above")
        }))
    }

    /// The cached Winograd F(4×4, 3×3) filter transform, building it on first
    /// use.
    ///
    /// # Errors
    /// Returns an error if the layer is not Winograd-eligible.
    pub fn winograd_filter_f4(&self) -> Result<&WinogradFilter> {
        if !ConvAlgo::WinogradF4.supports(&self.params) {
            return Err(TensorError::ShapeMismatch {
                left: vec![self.params.kernel, self.params.stride, self.params.groups],
                right: vec![3, 1, 1],
                op: "winograd_f4 requires kernel=3 stride=1 groups=1",
            });
        }
        Ok(self.winograd_f4.get_or_init(|| {
            WinogradFilter::prepare_f4(&self.weight, &self.params)
                .expect("eligibility checked above")
        }))
    }

    /// The cached int8-quantized weight panels, quantizing on first use.
    ///
    /// # Errors
    /// Returns an error if the layer is not int8-eligible (grouped).
    pub fn int8_weights(&self) -> Result<&crate::quant::QuantizedConv> {
        if !ConvAlgo::Int8.supports(&self.params) {
            return Err(TensorError::ShapeMismatch {
                left: vec![self.params.groups],
                right: vec![1],
                op: "int8 conv requires groups=1",
            });
        }
        Ok(self.int8.get_or_init(|| {
            crate::quant::QuantizedConv::prepare(&self.weight, &self.params)
                .expect("eligibility checked above")
        }))
    }

    /// Records the calibration-observed activation range consumed by the int8
    /// path (see `Network::calibrate_int8_ranges` in `rescnn-models`). Without
    /// it, int8 forwards derive the range from each input dynamically.
    pub fn set_int8_range(&mut self, lo: f32, hi: f32) {
        self.int8_range = Some((lo, hi));
    }

    /// The recorded int8 activation range, if calibration ran.
    pub fn int8_range(&self) -> Option<(f32, f32)> {
        self.int8_range
    }

    /// Bytes resident beyond the raw weights (packed panels + any cached
    /// Winograd banks or int8 panels).
    pub fn prepacked_bytes(&self) -> usize {
        self.gemm.iter().map(engine::PreparedGemmA::resident_bytes).sum::<usize>()
            + self.winograd.get().map_or(0, WinogradFilter::resident_bytes)
            + self.winograd_f4.get().map_or(0, WinogradFilter::resident_bytes)
            + self.int8.get().map_or(0, crate::quant::QuantizedConv::resident_bytes)
    }

    /// Runs the layer through dispatch with a fused epilogue, writing into a
    /// caller-provided output tensor (every element of which is overwritten —
    /// arena-recycled buffers with stale contents are fine). Returns the
    /// algorithm that executed.
    ///
    /// # Errors
    /// Returns an error if the input, output, or residual shapes are
    /// inconsistent with the layer.
    pub fn forward_fused_into(
        &self,
        input: &Tensor,
        epilogue: ConvEpilogue<'_>,
        out: &mut Tensor,
    ) -> Result<ConvAlgo> {
        let algo = planned_conv_algo(&self.params, input.shape());
        self.forward_with_algo_into(input, algo, epilogue, out)?;
        Ok(algo)
    }

    /// Runs the layer with an explicit algorithm (shapes the algorithm cannot
    /// execute fall back to [`ConvAlgo::Im2colPacked`], mirroring
    /// [`conv2d_with_algo`]), writing into `out` with the fused epilogue.
    ///
    /// The engine algorithms run fully prepacked and fused; the reference
    /// algorithms ([`ConvAlgo::Direct`], [`ConvAlgo::Im2col`]) execute their
    /// historical allocating path followed by separate epilogue passes —
    /// semantically (and bitwise) the same composition.
    ///
    /// # Errors
    /// Returns an error if the input, output, or residual shapes are
    /// inconsistent with the layer.
    pub fn forward_with_algo_into(
        &self,
        input: &Tensor,
        algo: ConvAlgo,
        epilogue: ConvEpilogue<'_>,
        out: &mut Tensor,
    ) -> Result<()> {
        let algo = if algo.supports(&self.params) { algo } else { ConvAlgo::Im2colPacked };
        let bias = self.bias.as_deref();
        // Layers whose default dispatch never hits a GEMM path carry no panels;
        // an explicit GEMM-algo override packs on the fly from the raw weights.
        let gemm_weights = if self.gemm.is_empty() {
            ConvWeights::Raw(self.weight.as_slice())
        } else {
            ConvWeights::Packed(&self.gemm)
        };
        match algo {
            ConvAlgo::Im2colPacked => {
                im2col_packed_into(input, gemm_weights, bias, &self.params, epilogue, out)
            }
            ConvAlgo::Gemm1x1 => {
                gemm_1x1_into(input, gemm_weights, bias, &self.params, epilogue, out)
            }
            ConvAlgo::Depthwise => {
                depthwise_into(input, self.weight.as_slice(), bias, &self.params, epilogue, out)
            }
            ConvAlgo::Winograd => {
                let filter = self.winograd_filter()?;
                conv2d_winograd_fused_into(
                    input,
                    filter,
                    bias,
                    &self.params,
                    epilogue.activation,
                    epilogue.residual,
                    out,
                )
            }
            ConvAlgo::WinogradF4 => {
                let filter = self.winograd_filter_f4()?;
                crate::winograd::conv2d_winograd_f4_fused_into(
                    input,
                    filter,
                    bias,
                    &self.params,
                    epilogue.activation,
                    epilogue.residual,
                    out,
                )
            }
            ConvAlgo::Int8 => {
                let qconv = self.int8_weights()?;
                crate::quant::int8_packed_into(
                    input,
                    qconv,
                    bias,
                    &self.params,
                    epilogue,
                    self.int8_range,
                    out,
                )
            }
            ConvAlgo::Direct | ConvAlgo::Im2col => {
                let oshape = validate_into(&self.params, input, &epilogue, out)?;
                let tmp = if algo == ConvAlgo::Direct {
                    conv2d_direct(input, &self.weight, bias, &self.params)?
                } else {
                    conv2d_im2col(input, &self.weight, bias, &self.params)?
                };
                debug_assert_eq!(tmp.shape(), oshape);
                out.as_mut_slice().copy_from_slice(tmp.as_slice());
                apply_epilogue_separately(out, &epilogue);
                Ok(())
            }
        }
    }

    /// Runs the layer through dispatch with a fused epilogue, allocating the
    /// output.
    ///
    /// # Errors
    /// See [`PreparedLayer::forward_fused_into`].
    pub fn forward_fused(&self, input: &Tensor, epilogue: ConvEpilogue<'_>) -> Result<Tensor> {
        let mut out = Tensor::zeros(self.params.output_shape(input.shape())?);
        self.forward_fused_into(input, epilogue, &mut out)?;
        Ok(out)
    }

    /// Plain prepared forward: dispatch, no fused tail.
    ///
    /// # Errors
    /// See [`PreparedLayer::forward_fused_into`].
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        self.forward_fused(input, ConvEpilogue::default())
    }
}

/// The unfused composition of a [`ConvEpilogue`]: separate residual-add and
/// activation passes over the finished convolution output. Used by the
/// reference algorithms; bitwise identical to the fused kernels' epilogues.
fn apply_epilogue_separately(out: &mut Tensor, epilogue: &ConvEpilogue<'_>) {
    match (epilogue.residual, epilogue.activation) {
        (None, FusedActivation::None) => {}
        (Some(skip), act) => {
            for (o, &s) in out.as_mut_slice().iter_mut().zip(skip.as_slice()) {
                *o = act.apply(*o + s);
            }
        }
        (None, act) => {
            for o in out.as_mut_slice().iter_mut() {
                *o = act.apply(*o);
            }
        }
    }
}

/// Valid output range `[lo, hi)` along one spatial axis for a fixed kernel offset:
/// the positions whose sampled input index lands inside `[0, input_extent)`.
pub(crate) fn valid_out_range(
    input_extent: usize,
    out_extent: usize,
    kernel_offset: usize,
    stride: usize,
    padding: usize,
) -> (usize, usize) {
    let lo = if kernel_offset >= padding { 0 } else { (padding - kernel_offset).div_ceil(stride) };
    let last_valid = input_extent - 1 + padding;
    if last_valid < kernel_offset {
        return (0, 0);
    }
    let hi = ((last_valid - kernel_offset) / stride + 1).min(out_extent);
    (lo.min(hi), hi)
}

/// Packs an im2col stripe (output rows `[oh0, oh1)`) directly into the engine's
/// `NR`-column panel layout, skipping the intermediate row-major column matrix
/// entirely. `dst` must arrive zeroed (padding positions are never written).
#[allow(clippy::too_many_arguments)]
fn im2col_pack_stripe(
    input: &Tensor,
    params: &Conv2dParams,
    batch: usize,
    group: usize,
    oshape: Shape,
    oh0: usize,
    oh1: usize,
    dst: &mut [f32],
) {
    let ishape = input.shape();
    let k = params.kernel;
    let stride = params.stride;
    let pad = params.padding;
    let in_per_group = params.in_channels / params.groups;
    let rows = in_per_group * k * k;
    let panel_stride = rows * NR;

    for icg in 0..in_per_group {
        let plane = input.plane(batch, group * in_per_group + icg);
        for kh in 0..k {
            let (oh_lo, oh_hi) = valid_out_range(ishape.h, oshape.h, kh, stride, pad);
            for kw in 0..k {
                let row = (icg * k + kh) * k + kw;
                let (ow_lo, ow_hi) = valid_out_range(ishape.w, oshape.w, kw, stride, pad);
                if ow_lo >= ow_hi {
                    continue;
                }
                for oh in oh_lo.max(oh0)..oh_hi.min(oh1) {
                    let ih = oh * stride + kh - pad;
                    let src_row = &plane[ih * ishape.w..(ih + 1) * ishape.w];
                    let j0 = (oh - oh0) * oshape.w + ow_lo;
                    let mut within = j0 % NR;
                    let mut index = (j0 / NR) * panel_stride + row * NR + within;
                    if stride == 1 {
                        // Contiguous source: copy in panel-aligned runs instead of
                        // scattering element by element.
                        let mut iw = ow_lo + kw - pad;
                        let mut remaining = ow_hi - ow_lo;
                        while remaining > 0 {
                            let run = (NR - within).min(remaining);
                            dst[index..index + run].copy_from_slice(&src_row[iw..iw + run]);
                            iw += run;
                            remaining -= run;
                            index += run + if within + run == NR { panel_stride - NR } else { 0 };
                            within = (within + run) % NR;
                        }
                    } else {
                        let mut iw = ow_lo * stride + kw - pad;
                        for _ in ow_lo..ow_hi {
                            dst[index] = src_row[iw];
                            iw += stride;
                            within += 1;
                            index += 1;
                            if within == NR {
                                within = 0;
                                index += panel_stride - NR;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Output-row stripe height keeping one packed im2col stripe within the engine's
/// scratch budget (resolution-aware: taller stripes at low resolution, shorter at
/// high resolution).
pub(crate) fn stripe_height(rows: usize, oshape: Shape) -> usize {
    (engine::MAX_B_PANEL_ELEMS / (rows * oshape.w).max(1)).clamp(1, oshape.h)
}

/// The weight operand of an engine GEMM convolution: raw row-major weights
/// (packed into panels per call) or per-group panels prepacked once by
/// [`PreparedLayer`].
#[derive(Debug, Clone, Copy)]
enum ConvWeights<'a> {
    Raw(&'a [f32]),
    Packed(&'a [engine::PreparedGemmA]),
}

impl<'a> ConvWeights<'a> {
    /// The GEMM left operand for one channel group (`rows_per_group` output
    /// rows over a shared dimension of `k`).
    fn group_lhs(&self, group: usize, rows_per_group: usize, k: usize) -> engine::GemmLhs<'a> {
        match *self {
            ConvWeights::Raw(data) => engine::GemmLhs::Rows {
                data: &data[group * rows_per_group * k..(group + 1) * rows_per_group * k],
                lda: k,
            },
            ConvWeights::Packed(groups) => groups[group].as_lhs(),
        }
    }
}

/// The fused tail of a convolution: an optional residual operand added to the
/// output and a pointwise activation, executed inside the kernel's output write
/// (GEMM epilogue, Winograd output transform, or the depthwise kernel's final
/// plane sweep) instead of separate passes over the feature map.
///
/// Fusion order matches the separate-pass composition (`act(conv + residual)`)
/// exactly, so fused and unfused execution are bitwise identical.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConvEpilogue<'a> {
    /// Activation applied to the final value.
    pub activation: FusedActivation,
    /// Residual operand (must match the output shape) added before the
    /// activation — the ResNet block tail.
    pub residual: Option<&'a Tensor>,
}

impl<'a> ConvEpilogue<'a> {
    /// An epilogue applying only an activation.
    pub fn activation(activation: FusedActivation) -> Self {
        ConvEpilogue { activation, residual: None }
    }

    /// Adds a residual operand.
    pub fn with_residual(mut self, residual: &'a Tensor) -> Self {
        self.residual = Some(residual);
        self
    }
}

/// Validates an `_into` call's output (and optional residual) tensor against the
/// convolution's output shape, returning that shape.
pub(crate) fn validate_into(
    params: &Conv2dParams,
    input: &Tensor,
    epilogue: &ConvEpilogue<'_>,
    out: &Tensor,
) -> Result<Shape> {
    let oshape = params.output_shape(input.shape())?;
    if out.shape() != oshape {
        return Err(TensorError::ShapeMismatch {
            left: out.shape().as_array().to_vec(),
            right: oshape.as_array().to_vec(),
            op: "conv output buffer",
        });
    }
    if let Some(residual) = epilogue.residual {
        if residual.shape() != oshape {
            return Err(TensorError::ShapeMismatch {
                left: residual.shape().as_array().to_vec(),
                right: oshape.as_array().to_vec(),
                op: "conv residual",
            });
        }
    }
    Ok(oshape)
}

/// Engine path for general convolutions: packing-aware im2col stripes + packed
/// parallel GEMM, with zero steady-state allocations (all working memory comes from
/// the thread-local scratch arena).
///
/// # Errors
/// Returns an error if the parameters, weight shape, or bias length are inconsistent
/// with the input shape.
pub fn conv2d_im2col_packed(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
) -> Result<Tensor> {
    validate_weight(params, weight)?;
    let mut out = Tensor::zeros(params.output_shape(input.shape())?);
    im2col_packed_into(
        input,
        ConvWeights::Raw(weight.as_slice()),
        bias,
        params,
        ConvEpilogue::default(),
        &mut out,
    )?;
    Ok(out)
}

/// Core of the packed-im2col path; every element of `out` is overwritten.
fn im2col_packed_into(
    input: &Tensor,
    weights: ConvWeights<'_>,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    epilogue: ConvEpilogue<'_>,
    out: &mut Tensor,
) -> Result<()> {
    validate_bias(params, bias)?;
    let ishape = input.shape();
    let oshape = validate_into(params, input, &epilogue, out)?;

    let k = params.kernel;
    let in_per_group = params.in_channels / params.groups;
    let out_per_group = params.out_channels / params.groups;
    let rows = in_per_group * k * k;
    let plane = oshape.h * oshape.w;
    let region_len = out_per_group * plane;
    let stripe_oh = stripe_height(rows, oshape);
    let parallel = params.macs(ishape).unwrap_or(0) >= engine::PARALLEL_MIN_MACS;

    let residual = epilogue.residual.map(Tensor::as_slice);
    let out_data = out.as_mut_slice();
    for n in 0..ishape.n {
        for g in 0..params.groups {
            let lhs = weights.group_lhs(g, out_per_group, rows);
            let group_bias = bias.map(|b| &b[g * out_per_group..(g + 1) * out_per_group]);
            let region_start = (n * params.groups + g) * region_len;
            let region = &mut out_data[region_start..region_start + region_len];
            let group_skip = residual.map(|s| &s[region_start..region_start + region_len]);
            let mut oh0 = 0;
            while oh0 < oshape.h {
                let oh1 = (oh0 + stripe_oh).min(oshape.h);
                let stripe_cols = (oh1 - oh0) * oshape.w;
                let mut bpack = scratch::take(stripe_cols.div_ceil(NR) * rows * NR);
                im2col_pack_stripe(input, params, n, g, oshape, oh0, oh1, &mut bpack);
                engine::parallel_packed_gemm(
                    lhs,
                    out_per_group,
                    rows,
                    &bpack,
                    stripe_cols,
                    region,
                    plane,
                    oh0 * oshape.w,
                    engine::Epilogue {
                        bias: group_bias,
                        residual: group_skip,
                        activation: epilogue.activation,
                    },
                    false,
                    parallel,
                );
                scratch::give(bpack);
                oh0 = oh1;
            }
        }
    }
    Ok(())
}

/// Engine fast path for 1×1 stride-1 pad-0 convolutions: the input planes of each
/// group already form the GEMM right-hand side, so the convolution is a single packed
/// GEMM per (batch, group) with no lowering step at all.
///
/// # Errors
/// Returns an error if the shape is not a 1×1 stride-1 pad-0 convolution, or if the
/// parameters, weight shape, or bias length are inconsistent with the input shape.
pub fn conv2d_gemm_1x1(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
) -> Result<Tensor> {
    validate_weight(params, weight)?;
    let mut out = Tensor::zeros(params.output_shape(input.shape())?);
    gemm_1x1_into(
        input,
        ConvWeights::Raw(weight.as_slice()),
        bias,
        params,
        ConvEpilogue::default(),
        &mut out,
    )?;
    Ok(out)
}

/// Core of the 1×1 fast path; every element of `out` is overwritten.
fn gemm_1x1_into(
    input: &Tensor,
    weights: ConvWeights<'_>,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    epilogue: ConvEpilogue<'_>,
    out: &mut Tensor,
) -> Result<()> {
    if !ConvAlgo::Gemm1x1.supports(params) {
        return Err(TensorError::ShapeMismatch {
            left: vec![params.kernel, params.stride, params.padding],
            right: vec![1, 1, 0],
            op: "conv2d_gemm_1x1 requires kernel=1 stride=1 padding=0",
        });
    }
    validate_bias(params, bias)?;
    let ishape = input.shape();
    validate_into(params, input, &epilogue, out)?;

    let hw = ishape.h * ishape.w;
    let in_per_group = params.in_channels / params.groups;
    let out_per_group = params.out_channels / params.groups;
    // Column stripes bound packed-B scratch for high-resolution feature maps.
    let stripe_cols_max =
        (engine::MAX_B_PANEL_ELEMS / in_per_group.max(1)).div_ceil(NR).max(1) * NR;
    let parallel = params.macs(ishape).unwrap_or(0) >= engine::PARALLEL_MIN_MACS;

    let residual = epilogue.residual.map(Tensor::as_slice);
    let in_data = input.as_slice();
    let out_data = out.as_mut_slice();
    for n in 0..ishape.n {
        for g in 0..params.groups {
            let lhs = weights.group_lhs(g, out_per_group, in_per_group);
            let group_bias = bias.map(|b| &b[g * out_per_group..(g + 1) * out_per_group]);
            let in_start = (n * params.groups + g) * in_per_group * hw;
            let in_region = &in_data[in_start..in_start + in_per_group * hw];
            let out_start = (n * params.groups + g) * out_per_group * hw;
            let region_len = out_per_group * hw;
            let out_region = &mut out_data[out_start..out_start + region_len];
            let group_skip = residual.map(|s| &s[out_start..out_start + region_len]);
            let mut j0 = 0;
            while j0 < hw {
                let width = stripe_cols_max.min(hw - j0);
                let mut bpack = scratch::take_uninit(width.div_ceil(NR) * in_per_group * NR);
                engine::pack_b(in_region, in_per_group, hw, j0, width, &mut bpack);
                engine::parallel_packed_gemm(
                    lhs,
                    out_per_group,
                    in_per_group,
                    &bpack,
                    width,
                    out_region,
                    hw,
                    j0,
                    engine::Epilogue {
                        bias: group_bias,
                        residual: group_skip,
                        activation: epilogue.activation,
                    },
                    false,
                    parallel,
                );
                scratch::give(bpack);
                j0 += width;
            }
        }
    }
    Ok(())
}

/// Engine kernel for depthwise convolutions (`groups == in_channels == out_channels`):
/// per-channel shift-and-accumulate over contiguous rows, vectorizable at stride 1,
/// parallel over output planes.
///
/// # Errors
/// Returns an error if the shape is not depthwise, or if the parameters, weight
/// shape, or bias length are inconsistent with the input shape.
pub fn conv2d_depthwise(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
) -> Result<Tensor> {
    validate_weight(params, weight)?;
    if !ConvAlgo::Depthwise.supports(params) {
        return Err(TensorError::InvalidGrouping {
            in_channels: params.in_channels,
            out_channels: params.out_channels,
            groups: params.groups,
        });
    }
    let mut out = Tensor::zeros(params.output_shape(input.shape())?);
    depthwise_into(input, weight.as_slice(), bias, params, ConvEpilogue::default(), &mut out)?;
    Ok(out)
}

/// Core of the depthwise kernel; every element of `out` is overwritten. The
/// epilogue (residual + activation) runs as a final sweep over each plane while
/// it is still cache-resident — one fused pass instead of separate full-tensor
/// sweeps after the convolution.
fn depthwise_into(
    input: &Tensor,
    wdata: &[f32],
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    epilogue: ConvEpilogue<'_>,
    out: &mut Tensor,
) -> Result<()> {
    if !ConvAlgo::Depthwise.supports(params) {
        return Err(TensorError::InvalidGrouping {
            in_channels: params.in_channels,
            out_channels: params.out_channels,
            groups: params.groups,
        });
    }
    validate_bias(params, bias)?;
    let ishape = input.shape();
    let oshape = validate_into(params, input, &epilogue, out)?;

    let k = params.kernel;
    let stride = params.stride;
    let pad = params.padding;
    let ksq = k * k;
    let channels = params.in_channels;
    let out_plane = oshape.h * oshape.w;
    let parallel = params.macs(ishape).unwrap_or(0) >= engine::PARALLEL_MIN_MACS;

    let residual = epilogue.residual.map(Tensor::as_slice);
    let activation = epilogue.activation;
    let in_data = input.as_slice();
    let in_plane = ishape.h * ishape.w;
    parallel::for_each_chunk(out.as_mut_slice(), out_plane, parallel, |plane_index, dst| {
        let n = plane_index / channels;
        let c = plane_index % channels;
        let src = &in_data[(n * channels + c) * in_plane..(n * channels + c + 1) * in_plane];
        let wk = &wdata[c * ksq..(c + 1) * ksq];
        dst.fill(bias.map_or(0.0, |b| b[c]));
        for kh in 0..k {
            let (oh_lo, oh_hi) = valid_out_range(ishape.h, oshape.h, kh, stride, pad);
            for kw in 0..k {
                let w = wk[kh * k + kw];
                let (ow_lo, ow_hi) = valid_out_range(ishape.w, oshape.w, kw, stride, pad);
                if ow_lo >= ow_hi {
                    continue;
                }
                for oh in oh_lo..oh_hi {
                    let ih = oh * stride + kh - pad;
                    let iw0 = ow_lo * stride + kw - pad;
                    let dst_row = &mut dst[oh * oshape.w + ow_lo..oh * oshape.w + ow_hi];
                    if stride == 1 {
                        let src_row = &src[ih * ishape.w + iw0..][..ow_hi - ow_lo];
                        for (d, &s) in dst_row.iter_mut().zip(src_row) {
                            *d += w * s;
                        }
                    } else {
                        let src_row = &src[ih * ishape.w..(ih + 1) * ishape.w];
                        let mut iw = iw0;
                        for d in dst_row.iter_mut() {
                            *d += w * src_row[iw];
                            iw += stride;
                        }
                    }
                }
            }
        }
        // Fused tail while the plane is still hot.
        match (residual, activation) {
            (None, FusedActivation::None) => {}
            (skip, act) => {
                let skip = skip.map(|s| &s[plane_index * out_plane..(plane_index + 1) * out_plane]);
                match skip {
                    Some(skip) => {
                        for (d, &s) in dst.iter_mut().zip(skip) {
                            *d = act.apply(*d + s);
                        }
                    }
                    None => {
                        for d in dst.iter_mut() {
                            *d = act.apply(*d);
                        }
                    }
                }
            }
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_input(shape: Shape, seed: u64) -> Tensor {
        Tensor::random_uniform(shape, 1.0, seed)
    }

    fn sample_weight(params: &Conv2dParams, seed: u64) -> Tensor {
        let shape = Shape::new(
            params.out_channels,
            params.in_channels / params.groups,
            params.kernel,
            params.kernel,
        );
        Tensor::random_uniform(shape, 0.5, seed)
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        let diff = a.max_abs_diff(b).unwrap();
        assert!(diff < tol, "tensors differ by {diff}");
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1x1 convolution with identity weights is a channel-wise copy.
        let params = Conv2dParams::new(3, 3, 1, 1, 0);
        let input = sample_input(Shape::chw(3, 9, 9), 1);
        let weight =
            Tensor::from_fn(Shape::new(3, 3, 1, 1), |o, i, _, _| if o == i { 1.0 } else { 0.0 });
        let out = conv2d_direct(&input, &weight, None, &params).unwrap();
        assert_close(&out, &input, 1e-6);
        let fast = conv2d_gemm_1x1(&input, &weight, None, &params).unwrap();
        assert_close(&fast, &input, 1e-6);
    }

    #[test]
    fn bias_is_added() {
        let params = Conv2dParams::new(1, 2, 1, 1, 0);
        let input = Tensor::ones(Shape::chw(1, 2, 2));
        let weight = Tensor::zeros(Shape::new(2, 1, 1, 1));
        let out = conv2d_direct(&input, &weight, Some(&[3.0, -1.0]), &params).unwrap();
        assert_eq!(out.plane(0, 0), &[3.0; 4]);
        assert_eq!(out.plane(0, 1), &[-1.0; 4]);
        let fast = conv2d_gemm_1x1(&input, &weight, Some(&[3.0, -1.0]), &params).unwrap();
        assert_eq!(fast.plane(0, 0), &[3.0; 4]);
        assert_eq!(fast.plane(0, 1), &[-1.0; 4]);
    }

    #[test]
    fn im2col_matches_direct_dense() {
        for (k, stride, pad, h) in
            [(3, 1, 1, 11), (3, 2, 1, 13), (1, 1, 0, 9), (7, 2, 3, 17), (5, 1, 2, 10)]
        {
            let params = Conv2dParams::new(4, 6, k, stride, pad);
            let input = sample_input(Shape::new(2, 4, h, h), 42 + k as u64);
            let weight = sample_weight(&params, 7 + k as u64);
            let bias: Vec<f32> = (0..6).map(|i| i as f32 * 0.1).collect();
            let direct = conv2d_direct(&input, &weight, Some(&bias), &params).unwrap();
            let lowered = conv2d_im2col(&input, &weight, Some(&bias), &params).unwrap();
            assert_close(&direct, &lowered, 1e-3);
            let packed = conv2d_im2col_packed(&input, &weight, Some(&bias), &params).unwrap();
            assert_close(&direct, &packed, 1e-3);
        }
    }

    #[test]
    fn im2col_matches_direct_grouped_and_depthwise() {
        let params = Conv2dParams::new(8, 8, 3, 1, 1).with_groups(4);
        let input = sample_input(Shape::chw(8, 10, 10), 5);
        let weight = sample_weight(&params, 6);
        let direct = conv2d_direct(&input, &weight, None, &params).unwrap();
        let lowered = conv2d_im2col(&input, &weight, None, &params).unwrap();
        assert_close(&direct, &lowered, 1e-3);
        let packed = conv2d_im2col_packed(&input, &weight, None, &params).unwrap();
        assert_close(&direct, &packed, 1e-3);

        let dw = Conv2dParams::depthwise(6, 3, 2, 1);
        let input = sample_input(Shape::chw(6, 15, 15), 9);
        let weight = sample_weight(&dw, 10);
        let direct = conv2d_direct(&input, &weight, None, &dw).unwrap();
        let lowered = conv2d_im2col(&input, &weight, None, &dw).unwrap();
        assert_close(&direct, &lowered, 1e-3);
        let dedicated = conv2d_depthwise(&input, &weight, None, &dw).unwrap();
        assert_close(&direct, &dedicated, 1e-3);
    }

    #[test]
    fn tiled_matches_direct_for_various_tilings() {
        let params = Conv2dParams::new(3, 5, 3, 1, 1);
        let input = sample_input(Shape::chw(3, 12, 12), 3);
        let weight = sample_weight(&params, 4);
        let bias = vec![0.5; 5];
        let direct = conv2d_direct(&input, &weight, Some(&bias), &params).unwrap();
        for tiling in [
            ConvTiling::default(),
            ConvTiling::new(1, 1, 1),
            ConvTiling::new(2, 5, 3),
            ConvTiling::new(100, 100, 100),
            ConvTiling::new(0, 0, 0),
        ] {
            let tiled = conv2d_tiled(&input, &weight, Some(&bias), &params, tiling).unwrap();
            assert_close(&direct, &tiled, 1e-4);
        }
    }

    #[test]
    fn tiled_falls_back_for_grouped() {
        let params = Conv2dParams::depthwise(4, 3, 1, 1);
        let input = sample_input(Shape::chw(4, 8, 8), 11);
        let weight = sample_weight(&params, 12);
        let direct = conv2d_direct(&input, &weight, None, &params).unwrap();
        let tiled = conv2d_tiled(&input, &weight, None, &params, ConvTiling::default()).unwrap();
        assert_close(&direct, &tiled, 1e-5);
    }

    #[test]
    fn weight_shape_is_validated() {
        let params = Conv2dParams::new(3, 4, 3, 1, 1);
        let input = sample_input(Shape::chw(3, 8, 8), 1);
        let bad_weight = Tensor::zeros(Shape::new(4, 3, 5, 5));
        assert!(conv2d_direct(&input, &bad_weight, None, &params).is_err());
        assert!(conv2d_im2col(&input, &bad_weight, None, &params).is_err());
        assert!(conv2d_im2col_packed(&input, &bad_weight, None, &params).is_err());
        let good_weight = sample_weight(&params, 2);
        assert!(conv2d_direct(&input, &good_weight, Some(&[0.0; 3]), &params).is_err());
        assert!(conv2d_im2col_packed(&input, &good_weight, Some(&[0.0; 3]), &params).is_err());
    }

    #[test]
    fn strided_output_shape() {
        let params = Conv2dParams::new(3, 8, 3, 2, 1);
        let input = sample_input(Shape::chw(3, 224, 224), 0);
        let out = conv2d(&input, &sample_weight(&params, 1), None, &params).unwrap();
        assert_eq!(out.shape(), Shape::new(1, 8, 112, 112));
    }

    #[test]
    fn dispatch_selects_the_documented_algorithms() {
        let _guard = crate::test_sync::global_state_lock();
        let shape = Shape::chw(16, 32, 32);
        assert_eq!(select_algo(&Conv2dParams::new(16, 32, 1, 1, 0), shape), ConvAlgo::Gemm1x1);
        assert_eq!(select_algo(&Conv2dParams::depthwise(16, 3, 1, 1), shape), ConvAlgo::Depthwise);
        assert_eq!(select_algo(&Conv2dParams::new(16, 32, 3, 1, 1), shape), ConvAlgo::Im2colPacked);
        // 1x1 stride-2 must not take the fast path (it subsamples).
        assert_eq!(select_algo(&Conv2dParams::new(16, 32, 1, 2, 0), shape), ConvAlgo::Im2colPacked);
    }

    #[test]
    fn dispatch_reports_and_matches_reference() {
        let _guard = crate::test_sync::global_state_lock();
        for params in [
            Conv2dParams::new(5, 7, 3, 1, 1),
            Conv2dParams::new(5, 7, 1, 1, 0),
            Conv2dParams::depthwise(6, 3, 1, 1),
        ] {
            let input = sample_input(Shape::chw(params.in_channels, 14, 14), 3);
            let weight = sample_weight(&params, 4);
            let (out, algo) = conv2d_dispatch(&input, &weight, None, &params).unwrap();
            assert_eq!(algo, select_algo(&params, input.shape()));
            let reference = conv2d_direct(&input, &weight, None, &params).unwrap();
            assert_close(&out, &reference, 1e-3);
        }
    }

    #[test]
    fn forced_algo_overrides_and_falls_back() {
        let _guard = crate::test_sync::global_state_lock();
        let params = Conv2dParams::new(4, 4, 3, 1, 1);
        let input = sample_input(Shape::chw(4, 10, 10), 1);
        let weight = sample_weight(&params, 2);
        force_conv_algo(Some(ConvAlgo::Direct));
        let (_, algo) = conv2d_dispatch(&input, &weight, None, &params).unwrap();
        assert_eq!(algo, ConvAlgo::Direct);
        // A forced algo that cannot run this shape falls back to auto-dispatch.
        force_conv_algo(Some(ConvAlgo::Gemm1x1));
        let (_, algo) = conv2d_dispatch(&input, &weight, None, &params).unwrap();
        assert_eq!(algo, ConvAlgo::Im2colPacked);
        force_conv_algo(None);
        let (_, algo) = conv2d_dispatch(&input, &weight, None, &params).unwrap();
        assert_eq!(algo, ConvAlgo::Im2colPacked);
    }

    #[test]
    fn algo_support_matrix() {
        let dense = Conv2dParams::new(8, 16, 3, 1, 1);
        let pointwise = Conv2dParams::new(8, 16, 1, 1, 0);
        let depthwise = Conv2dParams::depthwise(8, 3, 1, 1);
        assert!(ConvAlgo::Im2colPacked.supports(&dense));
        assert!(!ConvAlgo::Gemm1x1.supports(&dense));
        assert!(ConvAlgo::Gemm1x1.supports(&pointwise));
        assert!(ConvAlgo::Depthwise.supports(&depthwise));
        assert!(!ConvAlgo::Depthwise.supports(&dense));
        assert_eq!(ConvAlgo::Gemm1x1.to_string(), "gemm_1x1");
        // The Winograd arm covers stride-1 dense 3x3 layers only.
        assert!(ConvAlgo::Winograd.supports(&dense));
        assert!(!ConvAlgo::Winograd.supports(&pointwise));
        assert!(!ConvAlgo::Winograd.supports(&depthwise));
        assert!(!ConvAlgo::Winograd.supports(&Conv2dParams::new(8, 16, 3, 2, 1)));
        for algo in ConvAlgo::ALL {
            assert_eq!(ConvAlgo::from_name(&algo.to_string()), Some(algo));
        }
        assert_eq!(ConvAlgo::from_name("made_up"), None);
    }

    #[test]
    fn calibration_steers_default_dispatch_but_not_overrides() {
        let _guard = crate::test_sync::global_state_lock();
        let params = Conv2dParams::new(4, 4, 3, 1, 1);
        let input_shape = Shape::chw(4, 12, 12);
        let other_shape = Shape::chw(4, 20, 20);

        let mut table = AlgoCalibration::new();
        assert!(table.is_empty());
        table.set(ConvShapeKey::new(params, input_shape), ConvAlgo::Winograd);
        // An entry whose algorithm cannot execute its shape must be ignored.
        let pointwise = Conv2dParams::new(4, 4, 1, 1, 0);
        table.set(ConvShapeKey::new(pointwise, input_shape), ConvAlgo::Depthwise);
        assert_eq!(table.len(), 2);
        assert_eq!(table.entries().count(), 2);

        let previous = install_algo_calibration(Some(table));
        assert!(previous.is_none());
        assert!(installed_algo_calibration().is_some());

        // Calibrated shape: the measured choice becomes the default.
        assert_eq!(select_algo(&params, input_shape), ConvAlgo::Winograd);
        assert_eq!(planned_conv_algo(&params, input_shape), ConvAlgo::Winograd);
        let input = sample_input(input_shape, 1);
        let weight = sample_weight(&params, 2);
        let (out, algo) = conv2d_dispatch(&input, &weight, None, &params).unwrap();
        assert_eq!(algo, ConvAlgo::Winograd);
        let reference = conv2d_direct(&input, &weight, None, &params).unwrap();
        assert!(out.max_abs_diff(&reference).unwrap() < 1e-4);

        // Uncalibrated shape: heuristics still apply.
        assert_eq!(select_algo(&params, other_shape), ConvAlgo::Im2colPacked);
        // Unsupported calibrated entry: ignored, heuristics apply.
        assert_eq!(select_algo(&pointwise, input_shape), ConvAlgo::Gemm1x1);

        // Explicit overrides still beat calibration.
        force_conv_algo(Some(ConvAlgo::Direct));
        assert_eq!(planned_conv_algo(&params, input_shape), ConvAlgo::Direct);
        force_conv_algo(None);
        let scoped = crate::context::EngineContext::new()
            .with_algo(ConvAlgo::Im2colPacked)
            .scope(|| planned_conv_algo(&params, input_shape));
        assert_eq!(scoped, ConvAlgo::Im2colPacked);

        let removed = install_algo_calibration(None);
        assert_eq!(removed.map(|t| t.len()), Some(2));
        assert!(installed_algo_calibration().is_none());
        assert_eq!(select_algo(&params, input_shape), ConvAlgo::Im2colPacked);
    }

    #[test]
    fn calibration_scope_is_unwind_safe() {
        let _guard = crate::test_sync::global_state_lock();
        let params = Conv2dParams::new(4, 4, 3, 1, 1);
        let shape = Shape::chw(4, 12, 12);
        let key = ConvShapeKey::new(params, shape);
        let mut table = AlgoCalibration::new();
        table.set(key, ConvAlgo::Winograd);
        let inner = Arc::new(table);

        // A panic inside the scope must restore the previous scoped table (here:
        // none), exactly like a normal return — a serving request that dies
        // mid-bucket cannot leave its bucket's dispatch table installed on the
        // worker that ran it.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_algo_calibration_scope(Arc::clone(&inner), || {
                assert_eq!(select_algo(&params, shape), ConvAlgo::Winograd);
                panic!("request died inside the scope");
            })
        }));
        assert!(caught.is_err());
        assert_eq!(
            select_algo(&params, shape),
            ConvAlgo::Im2colPacked,
            "scoped table survived a panic"
        );

        // Nested scopes unwind layer by layer: the outer scope stays installed
        // after the inner one panics.
        let outer = Arc::new({
            let mut t = AlgoCalibration::new();
            t.set(key, ConvAlgo::Direct);
            t
        });
        with_algo_calibration_scope(Arc::clone(&outer), || {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                with_algo_calibration_scope(Arc::clone(&inner), || panic!("inner died"))
            }));
            assert!(caught.is_err());
            assert_eq!(select_algo(&params, shape), ConvAlgo::Direct, "outer scope lost");
        });
        assert_eq!(select_algo(&params, shape), ConvAlgo::Im2colPacked);
    }

    #[test]
    fn grouped_1x1_takes_fast_path_correctly() {
        let params = Conv2dParams::new(8, 12, 1, 1, 0).with_groups(4);
        let input = sample_input(Shape::new(2, 8, 9, 9), 13);
        let weight = sample_weight(&params, 14);
        let bias: Vec<f32> = (0..12).map(|i| 0.05 * i as f32).collect();
        let direct = conv2d_direct(&input, &weight, Some(&bias), &params).unwrap();
        let fast = conv2d_gemm_1x1(&input, &weight, Some(&bias), &params).unwrap();
        assert_close(&direct, &fast, 1e-3);
    }

    #[test]
    fn depthwise_strided_and_padded() {
        for (k, stride, pad, h) in [(3, 1, 1, 13), (3, 2, 1, 16), (5, 2, 2, 19), (3, 3, 0, 15)] {
            let params = Conv2dParams::depthwise(5, k, stride, pad);
            let input = sample_input(Shape::new(2, 5, h, h), 100 + k as u64);
            let weight = sample_weight(&params, 200 + stride as u64);
            let bias: Vec<f32> = (0..5).map(|i| i as f32 * 0.2).collect();
            let direct = conv2d_direct(&input, &weight, Some(&bias), &params).unwrap();
            let dedicated = conv2d_depthwise(&input, &weight, Some(&bias), &params).unwrap();
            assert_close(&direct, &dedicated, 1e-4);
        }
    }

    #[test]
    fn wrong_shape_for_specialized_kernels_errors() {
        let not_1x1 = Conv2dParams::new(4, 4, 3, 1, 1);
        let input = sample_input(Shape::chw(4, 8, 8), 1);
        let weight = sample_weight(&not_1x1, 2);
        assert!(conv2d_gemm_1x1(&input, &weight, None, &not_1x1).is_err());
        assert!(conv2d_depthwise(&input, &weight, None, &not_1x1).is_err());
    }
}
