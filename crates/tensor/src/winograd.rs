//! Winograd F(2×2, 3×3) convolution: the minimal-filtering algorithm of Lavin &
//! Gray, executing stride-1 3×3 convolutions with ~2.25× fewer multiplies than
//! im2col + GEMM.
//!
//! # Algorithm
//!
//! Each 2×2 output tile is computed from a 4×4 input tile through three linear
//! transforms:
//!
//! 1. **Filter transform** (once per layer): `U = G·g·Gᵀ`, lifting every 3×3
//!    kernel `g` to 16 transform points. [`WinogradFilter`] caches this so a
//!    forward pass pays only the input/output transforms and the GEMMs.
//! 2. **Input transform** (per tile): `V = Bᵀ·d·B` over the 4×4 input patch `d`
//!    (neighbouring patches overlap by two pixels; padding positions are zero).
//! 3. **Elementwise stage as GEMMs**: the per-point channel reduction
//!    `M(t) = U(t) · V(t)` is one `O×I × I×P` matrix product per transform point
//!    `t ∈ 0..16`, where `P` is the number of tiles — executed on the packed
//!    microkernel from [`engine`](crate::engine), with `V` written *directly* into
//!    packed-B panel layout by the input transform (no repack pass).
//! 4. **Output transform**: `Y = Aᵀ·M·A` folds the 16 points back into the 2×2
//!    output tile, with the per-channel bias and an optional [`FusedActivation`]
//!    applied in the same pass.
//!
//! # Execution
//!
//! Tiles are processed in chunks of whole tile rows sized from the engine's
//! scratch budget ([`engine::MAX_B_PANEL_ELEMS`]); chunks run on the persistent
//! worker pool ([`parallel::for_each_task`]). All working buffers (packed `V`,
//! the 16 `M` matrices) come from the thread-local [`scratch`](crate::scratch)
//! arena, so steady-state forward passes perform zero heap allocations here too.
//!
//! # Determinism and tolerance
//!
//! The chunk decomposition is a pure function of the output shape, every output
//! element is written by exactly one task, and each task uses one fixed
//! accumulation order (the engine's KC-blocked reduction per transform point,
//! then the fixed 16-term inverse transform) — results are therefore **bitwise
//! identical for every thread count**. Against [`ConvAlgo::Im2colPacked`]
//! (crate::ConvAlgo::Im2colPacked) the results are *not* bitwise equal: Winograd
//! legitimately reassociates the arithmetic, and the contract — pinned by
//! `tests/winograd_parity.rs` — is elementwise agreement within `1e-4` at
//! unit-scale activations.

use crate::engine::{self, Epilogue, GemmLhs, WriteMode, MR, NR};
use crate::error::{Result, TensorError};
use crate::shape::Conv2dParams;
use crate::tensor::Tensor;
use crate::{parallel, scratch};

pub use crate::engine::FusedActivation;

/// Transform points of F(2×2, 3×3): a 4×4 grid.
const POINTS: usize = 16;
/// Output tile extent.
pub(crate) const TILE: usize = 2;
/// Input tile extent (`TILE + kernel − 1`).
pub(crate) const ALPHA: usize = 4;

/// Transform points of F(4×4, 3×3): a 6×6 grid.
const POINTS_F4: usize = 36;
/// Output tile extent of F(4×4, 3×3).
pub(crate) const TILE_F4: usize = 4;
/// Input tile extent of F(4×4, 3×3) (`TILE_F4 + kernel − 1`).
pub(crate) const ALPHA_F4: usize = 6;

/// Elementwise agreement bound for F(4×4, 3×3) against `Im2colPacked` at
/// unit-scale activations and half-scale weights, pinned by the
/// characterization suite across the serving-ladder layer shapes. The α=6
/// transform's larger stencil coefficients (up to 8 in `Aᵀ`, 1/24 in `G`)
/// legitimately amplify rounding relative to F(2×2)'s `1e-4` contract;
/// calibration only admits `WinogradF4` for a shape when
/// [`winograd_f4_unit_error`] stays within this bound.
pub const WINOGRAD_F4_TOLERANCE: f32 = 2e-3;

/// The F(4×4, 3×3) filter-transform stencil `G·[g0,g1,g2]ᵀ` for one column,
/// with `G` the 6×3 matrix of Lavin & Gray:
/// `[[1/4,0,0],[−1/6,−1/6,−1/6],[−1/6,1/6,−1/6],[1/24,1/12,1/6],
/// [1/24,−1/12,1/6],[0,0,1]]`.
#[inline]
fn f4_filter_stencil(g0: f32, g1: f32, g2: f32) -> [f32; ALPHA_F4] {
    [
        0.25 * g0,
        -(g0 + g1 + g2) / 6.0,
        (g1 - g0 - g2) / 6.0,
        g0 / 24.0 + g1 / 12.0 + g2 / 6.0,
        g0 / 24.0 - g1 / 12.0 + g2 / 6.0,
        g2,
    ]
}

/// A 3×3 filter bank lifted to the 16 Winograd transform points: `U = G·g·Gᵀ`
/// per (output channel, input channel) pair.
///
/// The transform is resolution-independent, so models cache one
/// `WinogradFilter` per eligible convolution layer and reuse it at every input
/// size; per-forward cost is then input/output transforms plus GEMMs only.
/// Memory cost is `16/9 ≈ 1.78×` the original weights (rounded up to `MR`-row
/// tiles).
///
/// Layout: each point's `O × I` matrix is stored **prepacked** into the engine's
/// left-operand panel layout ([`engine::PreparedGemmA`]-style full-K `MR`-row
/// tiles), so the per-point GEMMs never repack the transformed weights — an
/// unprepacked Winograd pass used to re-pack the whole `U` bank once per tile
/// chunk, every forward.
#[derive(Debug, Clone)]
pub struct WinogradFilter {
    /// `[points]` segments of `tiles × in_channels × MR` packed panels.
    u: Vec<f32>,
    /// Elements per point segment.
    point_seg: usize,
    /// Transform points: [`POINTS`] for F(2×2), [`POINTS_F4`] for F(4×4).
    points: usize,
    out_channels: usize,
    in_channels: usize,
}

impl WinogradFilter {
    /// Computes the filter transform for a dense stride-1 3×3 convolution.
    ///
    /// # Errors
    /// Returns an error if the parameters are not Winograd-eligible
    /// (kernel 3, stride 1, dense groups) or the weight shape does not match.
    pub fn prepare(weight: &Tensor, params: &Conv2dParams) -> Result<Self> {
        if !crate::conv::ConvAlgo::Winograd.supports(params) {
            return Err(TensorError::ShapeMismatch {
                left: vec![params.kernel, params.stride, params.groups],
                right: vec![3, 1, 1],
                op: "winograd requires kernel=3 stride=1 groups=1",
            });
        }
        crate::conv::validate_weight(params, weight)?;
        let o = params.out_channels;
        let i = params.in_channels;
        // Packed destination: point t, tile oc/MR, element (r = oc % MR, p = ic)
        // at `t*seg + tile*(i*MR) + ic*MR + r` — written directly, no O×I
        // intermediate. Tail-tile padding rows stay zero.
        let tiles = o.div_ceil(MR);
        let point_seg = tiles * i * MR;
        let mut u = vec![0.0f32; POINTS * point_seg];
        let wdata = weight.as_slice();
        for oc in 0..o {
            let tile_base = (oc / MR) * (i * MR) + oc % MR;
            for ic in 0..i {
                let g = &wdata[(oc * i + ic) * 9..(oc * i + ic) * 9 + 9];
                // tmp = G·g, with G = [[1,0,0],[½,½,½],[½,−½,½],[0,0,1]].
                let mut tmp = [[0.0f32; 3]; ALPHA];
                for c in 0..3 {
                    let (g0, g1, g2) = (g[c], g[3 + c], g[6 + c]);
                    tmp[0][c] = g0;
                    tmp[1][c] = 0.5 * (g0 + g1 + g2);
                    tmp[2][c] = 0.5 * (g0 - g1 + g2);
                    tmp[3][c] = g2;
                }
                // U = tmp·Gᵀ, same stencil along the rows.
                for r in 0..ALPHA {
                    let (t0, t1, t2) = (tmp[r][0], tmp[r][1], tmp[r][2]);
                    let row = [t0, 0.5 * (t0 + t1 + t2), 0.5 * (t0 - t1 + t2), t2];
                    for (c, &value) in row.iter().enumerate() {
                        u[(r * ALPHA + c) * point_seg + tile_base + ic * MR] = value;
                    }
                }
            }
        }
        Ok(WinogradFilter { u, point_seg, points: POINTS, out_channels: o, in_channels: i })
    }

    /// Computes the F(4×4, 3×3) filter transform: `U = G·g·Gᵀ` with the 6×3
    /// `G` of [`f4_filter_stencil`], lifting every kernel to 36 transform
    /// points in the same prepacked panel layout as [`Self::prepare`]. Memory
    /// cost is `36/9 = 4×` the original weights (vs `1.78×` for F(2×2)), paid
    /// once per layer.
    ///
    /// # Errors
    /// Returns an error if the parameters are not Winograd-eligible
    /// (kernel 3, stride 1, dense groups) or the weight shape does not match.
    pub fn prepare_f4(weight: &Tensor, params: &Conv2dParams) -> Result<Self> {
        if !crate::conv::ConvAlgo::WinogradF4.supports(params) {
            return Err(TensorError::ShapeMismatch {
                left: vec![params.kernel, params.stride, params.groups],
                right: vec![3, 1, 1],
                op: "winograd_f4 requires kernel=3 stride=1 groups=1",
            });
        }
        crate::conv::validate_weight(params, weight)?;
        let o = params.out_channels;
        let i = params.in_channels;
        let tiles = o.div_ceil(MR);
        let point_seg = tiles * i * MR;
        let mut u = vec![0.0f32; POINTS_F4 * point_seg];
        let wdata = weight.as_slice();
        for oc in 0..o {
            let tile_base = (oc / MR) * (i * MR) + oc % MR;
            for ic in 0..i {
                let g = &wdata[(oc * i + ic) * 9..(oc * i + ic) * 9 + 9];
                // tmp = G·g: the 6-point stencil down each of the 3 columns.
                let mut tmp = [[0.0f32; 3]; ALPHA_F4];
                for c in 0..3 {
                    let col = f4_filter_stencil(g[c], g[3 + c], g[6 + c]);
                    for r in 0..ALPHA_F4 {
                        tmp[r][c] = col[r];
                    }
                }
                // U = tmp·Gᵀ: the same stencil along each row.
                for r in 0..ALPHA_F4 {
                    let row = f4_filter_stencil(tmp[r][0], tmp[r][1], tmp[r][2]);
                    for (c, &value) in row.iter().enumerate() {
                        u[(r * ALPHA_F4 + c) * point_seg + tile_base + ic * MR] = value;
                    }
                }
            }
        }
        Ok(WinogradFilter { u, point_seg, points: POINTS_F4, out_channels: o, in_channels: i })
    }

    /// Whether this bank holds the 36-point F(4×4, 3×3) transform (as opposed
    /// to the 16-point F(2×2, 3×3) one).
    pub fn is_f4(&self) -> bool {
        self.points == POINTS_F4
    }

    /// Output channels of the transformed filter bank.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Input channels of the transformed filter bank.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Bytes resident in the packed transform bank.
    pub fn resident_bytes(&self) -> usize {
        self.u.len() * std::mem::size_of::<f32>()
    }

    /// The packed per-point panel buffer (for the crate-internal chain
    /// executor, which drives [`WinogradPass`] directly).
    pub(crate) fn u(&self) -> &[f32] {
        &self.u
    }

    /// Elements per point segment of [`WinogradFilter::u`].
    pub(crate) fn point_seg(&self) -> usize {
        self.point_seg
    }
}

/// Interleaves two stencil-output lanes into one output row, adding the bias,
/// the optional residual row, and the fused activation:
/// `row[2t] = act(ya[t] + bias + skip[2t])`, `row[2t+1] = act(yb[t] + bias +
/// skip[2t+1])`, with the odd tail column (odd output widths) taking `ya` only.
#[inline]
fn emit_output_row(
    out_row: &mut [f32],
    ya: &[f32],
    yb: &[f32],
    bias: f32,
    skip: Option<&[f32]>,
    act: FusedActivation,
) {
    // Monomorphize per activation so the interleave loop body is branch-free.
    match act {
        FusedActivation::None => emit_interleaved(out_row, ya, yb, bias, skip, |y| y),
        FusedActivation::Relu => emit_interleaved(out_row, ya, yb, bias, skip, |y| y.max(0.0)),
        FusedActivation::Relu6 => {
            emit_interleaved(out_row, ya, yb, bias, skip, |y| y.clamp(0.0, 6.0))
        }
    }
}

#[inline]
fn emit_interleaved(
    out_row: &mut [f32],
    ya: &[f32],
    yb: &[f32],
    bias: f32,
    skip: Option<&[f32]>,
    act: impl Fn(f32) -> f32,
) {
    let full = out_row.len() / 2;
    match skip {
        Some(skip) => {
            let (pairs, tail) = out_row.split_at_mut(full * 2);
            let (skip_pairs, skip_tail) = skip.split_at(full * 2);
            for (((pair, s), &a), &b) in
                pairs.chunks_exact_mut(2).zip(skip_pairs.chunks_exact(2)).zip(ya).zip(yb)
            {
                pair[0] = act(a + bias + s[0]);
                pair[1] = act(b + bias + s[1]);
            }
            if let [last] = tail {
                *last = act(ya[full] + bias + skip_tail[0]);
            }
        }
        None => {
            let (pairs, tail) = out_row.split_at_mut(full * 2);
            for ((pair, &a), &b) in pairs.chunks_exact_mut(2).zip(ya).zip(yb) {
                pair[0] = act(a + bias);
                pair[1] = act(b + bias);
            }
            if let [last] = tail {
                *last = act(ya[full] + bias);
            }
        }
    }
}

/// [`emit_output_row`] for F(4×4, 3×3): interleaves the four stencil-output
/// lanes of `y` (`TILE_F4` slices of `tiles_w` each) into one output row,
/// adding the bias, the optional residual row, and the fused activation; a
/// partial tail tile (`ow % 4 ≠ 0`) takes its leading lanes only.
#[inline]
fn emit_output_row_f4(
    out_row: &mut [f32],
    y: &[f32],
    tiles_w: usize,
    bias: f32,
    skip: Option<&[f32]>,
    act: FusedActivation,
) {
    let lanes: [&[f32]; TILE_F4] = std::array::from_fn(|l| &y[l * tiles_w..(l + 1) * tiles_w]);
    match act {
        FusedActivation::None => emit_interleaved_f4(out_row, &lanes, bias, skip, |v| v),
        FusedActivation::Relu => emit_interleaved_f4(out_row, &lanes, bias, skip, |v| v.max(0.0)),
        FusedActivation::Relu6 => {
            emit_interleaved_f4(out_row, &lanes, bias, skip, |v| v.clamp(0.0, 6.0))
        }
    }
}

#[inline]
fn emit_interleaved_f4(
    out_row: &mut [f32],
    lanes: &[&[f32]; TILE_F4],
    bias: f32,
    skip: Option<&[f32]>,
    act: impl Fn(f32) -> f32,
) {
    let full = out_row.len() / TILE_F4;
    let (quads, tail) = out_row.split_at_mut(full * TILE_F4);
    match skip {
        Some(skip) => {
            let (skip_quads, skip_tail) = skip.split_at(full * TILE_F4);
            for (t, (quad, sq)) in
                quads.chunks_exact_mut(TILE_F4).zip(skip_quads.chunks_exact(TILE_F4)).enumerate()
            {
                for (l, (d, &s)) in quad.iter_mut().zip(sq).enumerate() {
                    *d = act(lanes[l][t] + bias + s);
                }
            }
            for (l, (d, &s)) in tail.iter_mut().zip(skip_tail).enumerate() {
                *d = act(lanes[l][full] + bias + s);
            }
        }
        None => {
            for (t, quad) in quads.chunks_exact_mut(TILE_F4).enumerate() {
                for (l, d) in quad.iter_mut().enumerate() {
                    *d = act(lanes[l][t] + bias);
                }
            }
            for (l, d) in tail.iter_mut().enumerate() {
                *d = act(lanes[l][full] + bias);
            }
        }
    }
}

/// A raw output pointer that may cross thread boundaries; the tile-row chunk
/// decomposition guarantees tasks write pairwise-disjoint elements.
pub(crate) struct OutPtr(pub(crate) *mut f32);

impl OutPtr {
    /// Accessor (rather than direct field use) so closures capture the wrapper,
    /// keeping them `Sync`.
    pub(crate) fn get(&self) -> *mut f32 {
        self.0
    }
}

unsafe impl Send for OutPtr {}
unsafe impl Sync for OutPtr {}

/// GEMM columns (tiles) one worker task aims to process per chunk. Swept
/// empirically across layer shapes (32–512 channels, 14–448 px): ~224 columns is
/// where the per-point GEMMs reach full throughput while the chunk's `V`/`M`
/// buffers are still small enough that the transform stages stay cache-resident
/// between the GEMM passes; larger chunks lose more to cache traffic than they
/// gain in GEMM efficiency, smaller ones drown in per-call overhead.
const TARGET_CHUNK_TILES: usize = 224;

/// Tile rows per worker task: whole tile rows approximating
/// [`TARGET_CHUNK_TILES`] GEMM columns, with the packed-`V` footprint capped at
/// twice the engine's B-panel budget for very deep layers. A pure function of
/// the layer shape (never of the thread count), which keeps the decomposition —
/// and therefore the results — identical for every worker configuration.
pub(crate) fn chunk_tile_rows(in_channels: usize, tiles_w: usize, tiles_h: usize) -> usize {
    let tiles_w = tiles_w.max(1);
    let rows_cap = (2 * engine::MAX_B_PANEL_ELEMS / (POINTS * in_channels * tiles_w)).max(1);
    (TARGET_CHUNK_TILES / tiles_w).clamp(1, rows_cap).min(tiles_h)
}

/// [`chunk_tile_rows`] for the 36-point F(4×4, 3×3) decomposition: same
/// target and packed-`V` cap, with the footprint scaled by `POINTS_F4`.
pub(crate) fn chunk_tile_rows_f4(in_channels: usize, tiles_w: usize, tiles_h: usize) -> usize {
    let tiles_w = tiles_w.max(1);
    let rows_cap = (2 * engine::MAX_B_PANEL_ELEMS / (POINTS_F4 * in_channels * tiles_w)).max(1);
    (TARGET_CHUNK_TILES / tiles_w).clamp(1, rows_cap).min(tiles_h)
}

/// Writes the four `z·B` stencil lanes of one `Bᵀ` row (transform points
/// `4r + 0..4`) for a full tile row into their packed-`V` segments, splitting at
/// `NR`-panel boundaries. One run walk feeds all four points, and the inner
/// loops are counted raw-pointer sweeps — bounds are asserted once up front —
/// so the per-run overhead stays small even when panel boundaries chop a tile
/// row into short runs. `even`/`odd` are the deinterleaved columns of `z` row
/// `r`: tile `t`'s four stencil inputs are `even[t], odd[t], even[t+1],
/// odd[t+1]`, and the four lanes are `v₀ = z₀−z₂`, `v₁ = z₁+z₂`, `v₂ = z₂−z₁`,
/// `v₃ = z₁−z₃` expressed over those arrays.
#[allow(clippy::too_many_arguments)]
fn scatter_stencil_rows(
    vpack: &mut [f32],
    vseg: usize,
    in_ch: usize,
    ic: usize,
    point_base: usize,
    j0: usize,
    tiles_w: usize,
    even: &[f32],
    odd: &[f32],
) {
    assert!(even.len() > tiles_w && odd.len() > tiles_w);
    let last_panel = (j0 + tiles_w - 1) / NR;
    assert!((point_base + 3) * vseg + last_panel * (in_ch * NR) + ic * NR + NR <= vpack.len());
    let base = vpack.as_mut_ptr();
    let (e, o) = (even.as_ptr(), odd.as_ptr());
    let mut tw = 0;
    while tw < tiles_w {
        let j = j0 + tw;
        let lane = j % NR;
        let run = (NR - lane).min(tiles_w - tw);
        let panel_off = (j / NR) * (in_ch * NR) + ic * NR + lane;
        // Safety: the assertions above bound every `dst.add(i)` for i < run and
        // every `e/o.add(tw + i + 1)`; the four destinations are disjoint
        // (distinct `vseg` segments).
        unsafe {
            let d0 = base.add(point_base * vseg + panel_off);
            let d1 = base.add((point_base + 1) * vseg + panel_off);
            let d2 = base.add((point_base + 2) * vseg + panel_off);
            let d3 = base.add((point_base + 3) * vseg + panel_off);
            for i in 0..run {
                let (e0, o0) = (*e.add(tw + i), *o.add(tw + i));
                let (e1, o1) = (*e.add(tw + i + 1), *o.add(tw + i + 1));
                *d0.add(i) = e0 - e1;
                *d1.add(i) = o0 + e1;
                *d2.add(i) = e1 - o0;
                *d3.add(i) = o0 - o1;
            }
        }
        tw += run;
    }
}

/// [`scatter_stencil_rows`] for F(4×4, 3×3): writes the six `z·B` stencil
/// lanes of one `Bᵀ` row (transform points `6r + 0..6`) into their packed-`V`
/// segments. Tiles advance by four staged columns, so tile `t`'s six stencil
/// inputs are `z[4t..4t+6]` read directly — no even/odd deinterleave — and the
/// lanes mirror the `Bᵀ` row stencils: `v₀ = 4x₀−5x₂+x₄`,
/// `v₁ = (x₃+x₄)−4(x₁+x₂)`, `v₂ = 4(x₁−x₂)+(x₄−x₃)`, `v₃ = (x₄−x₂)+2(x₃−x₁)`,
/// `v₄ = (x₄−x₂)−2(x₃−x₁)`, `v₅ = 4x₁−5x₃+x₅`.
#[allow(clippy::too_many_arguments)]
fn scatter_stencil_rows_f4(
    vpack: &mut [f32],
    vseg: usize,
    in_ch: usize,
    ic: usize,
    point_base: usize,
    j0: usize,
    tiles_w: usize,
    z: &[f32],
) {
    assert!(z.len() >= 4 * tiles_w + 2);
    let last_panel = (j0 + tiles_w - 1) / NR;
    assert!((point_base + 5) * vseg + last_panel * (in_ch * NR) + ic * NR + NR <= vpack.len());
    let base = vpack.as_mut_ptr();
    let zp = z.as_ptr();
    let mut tw = 0;
    while tw < tiles_w {
        let j = j0 + tw;
        let lane = j % NR;
        let run = (NR - lane).min(tiles_w - tw);
        let panel_off = (j / NR) * (in_ch * NR) + ic * NR + lane;
        // Safety: the assertions above bound every `dN.add(i)` for i < run and
        // every `zp.add(4·(tw+i) + 5)`; the six destinations are disjoint
        // (distinct `vseg` segments).
        unsafe {
            let d0 = base.add(point_base * vseg + panel_off);
            let d1 = base.add((point_base + 1) * vseg + panel_off);
            let d2 = base.add((point_base + 2) * vseg + panel_off);
            let d3 = base.add((point_base + 3) * vseg + panel_off);
            let d4 = base.add((point_base + 4) * vseg + panel_off);
            let d5 = base.add((point_base + 5) * vseg + panel_off);
            for i in 0..run {
                let s = zp.add(4 * (tw + i));
                let (x0, x1, x2) = (*s, *s.add(1), *s.add(2));
                let (x3, x4, x5) = (*s.add(3), *s.add(4), *s.add(5));
                let a42 = x4 - x2;
                let b31 = 2.0 * (x3 - x1);
                *d0.add(i) = 4.0 * x0 - 5.0 * x2 + x4;
                *d1.add(i) = (x3 + x4) - 4.0 * (x1 + x2);
                *d2.add(i) = 4.0 * (x1 - x2) + (x4 - x3);
                *d3.add(i) = a42 + b31;
                *d4.add(i) = a42 - b31;
                *d5.add(i) = 4.0 * x1 - 5.0 * x3 + x5;
            }
        }
        tw += run;
    }
}

/// Winograd F(2×2, 3×3) convolution against a pre-transformed filter bank, with
/// the bias and an optional activation fused into the output transform.
///
/// This is the path models use: the filter transform is paid once at layer
/// construction ([`WinogradFilter::prepare`]) and every forward pass runs only
/// transforms + GEMMs. See the [module docs](self) for the algorithm, the
/// determinism argument, and the numerical-tolerance contract.
///
/// # Errors
/// Returns an error if the parameters are not Winograd-eligible, the filter
/// bank's channel counts do not match them, or the bias length is inconsistent.
pub fn conv2d_winograd_prepared(
    input: &Tensor,
    filter: &WinogradFilter,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    activation: FusedActivation,
) -> Result<Tensor> {
    let oshape = params.output_shape(input.shape())?;
    let mut out = Tensor::zeros(oshape);
    conv2d_winograd_fused_into(input, filter, bias, params, activation, None, &mut out)?;
    Ok(out)
}

/// [`conv2d_winograd_prepared`] writing into a caller-provided output tensor
/// (every element of which is overwritten — arena-recycled buffers with stale
/// contents are fine), with an optional residual operand added before the
/// activation in the output transform: `out = act(conv(x) + bias + residual)`,
/// the fused form of a ResNet block tail. Fusion order matches the separate
/// `add_relu_in_place` pass exactly, so results are bitwise identical to
/// conv-then-separate-passes.
///
/// # Errors
/// Returns an error if the parameters are not Winograd-eligible, the filter
/// bank's channel counts do not match them, the bias length is inconsistent, or
/// the output/residual shapes do not match the convolution's output shape.
pub fn conv2d_winograd_fused_into(
    input: &Tensor,
    filter: &WinogradFilter,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    activation: FusedActivation,
    residual: Option<&Tensor>,
    out: &mut Tensor,
) -> Result<()> {
    winograd_fused_into_any(input, filter, bias, params, activation, residual, out, false)
}

/// Shared validated driver for both transform sizes: builds one
/// [`WinogradPass`] per sample over the full (unrung) input/output tensors and
/// fans its tile-row chunks out on the worker pool.
#[allow(clippy::too_many_arguments)]
fn winograd_fused_into_any(
    input: &Tensor,
    filter: &WinogradFilter,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    activation: FusedActivation,
    residual: Option<&Tensor>,
    out: &mut Tensor,
    f4: bool,
) -> Result<()> {
    let expected_points = if f4 { POINTS_F4 } else { POINTS };
    if filter.points != expected_points {
        return Err(TensorError::ShapeMismatch {
            left: vec![filter.points],
            right: vec![expected_points],
            op: "winograd filter transform points",
        });
    }
    if !crate::conv::ConvAlgo::Winograd.supports(params) {
        return Err(TensorError::ShapeMismatch {
            left: vec![params.kernel, params.stride, params.groups],
            right: vec![3, 1, 1],
            op: "winograd requires kernel=3 stride=1 groups=1",
        });
    }
    if filter.out_channels != params.out_channels || filter.in_channels != params.in_channels {
        return Err(TensorError::ShapeMismatch {
            left: vec![filter.out_channels, filter.in_channels],
            right: vec![params.out_channels, params.in_channels],
            op: "winograd filter channels",
        });
    }
    crate::conv::validate_bias(params, bias)?;
    let ishape = input.shape();
    let oshape = params.output_shape(ishape)?;
    if out.shape() != oshape {
        return Err(TensorError::ShapeMismatch {
            left: out.shape().as_array().to_vec(),
            right: oshape.as_array().to_vec(),
            op: "winograd output buffer",
        });
    }
    if let Some(skip) = residual {
        if skip.shape() != oshape {
            return Err(TensorError::ShapeMismatch {
                left: skip.shape().as_array().to_vec(),
                right: oshape.as_array().to_vec(),
                op: "winograd residual",
            });
        }
    }
    let residual = residual.map(Tensor::as_slice);

    let in_ch = params.in_channels;
    let out_ch = params.out_channels;
    let (oh, ow) = (oshape.h, oshape.w);
    let tile = if f4 { TILE_F4 } else { TILE };
    let tiles_h = oh.div_ceil(tile);
    let tiles_w = ow.div_ceil(tile);
    let rows_per_chunk = if f4 {
        chunk_tile_rows_f4(in_ch, tiles_w, tiles_h)
    } else {
        chunk_tile_rows(in_ch, tiles_w, tiles_h)
    };
    let n_chunks = tiles_h.div_ceil(rows_per_chunk);
    let parallel = params.macs(ishape).unwrap_or(0) >= engine::PARALLEL_MIN_MACS;

    let in_plane = in_ch * ishape.h * ishape.w;
    let out_plane = out_ch * oh * ow;
    let in_all = input.as_slice();
    let out_base = out.as_mut_slice().as_mut_ptr();
    for n in 0..ishape.n {
        let pass = WinogradPass {
            u: &filter.u,
            point_seg: filter.point_seg,
            in_ch,
            out_ch,
            pad: params.padding,
            in_data: &in_all[n * in_plane..(n + 1) * in_plane],
            in_rows: ishape.h,
            ih: ishape.h,
            iw: ishape.w,
            // Safety: per-sample base pointer; chunks own disjoint tile-row
            // ranges of it (see `OutPtr`).
            out: OutPtr(unsafe { out_base.add(n * out_plane) }),
            out_rows: oh,
            oh,
            ow,
            tiles_w,
            bias,
            residual: residual.map(|s| &s[n * out_plane..(n + 1) * out_plane]),
            activation,
        };
        parallel::for_each_task(n_chunks, parallel && n_chunks > 1, |chunk| {
            let tr0 = chunk * rows_per_chunk;
            let tr1 = (tr0 + rows_per_chunk).min(tiles_h);
            if f4 {
                pass.run_chunk_f4(tr0, tr1);
            } else {
                pass.run_chunk_f2(tr0, tr1);
            }
        });
    }
    Ok(())
}

/// One sample's Winograd execution context: the transform bank plus row views
/// of the input and output planes. Logical row `r` of a channel plane lives at
/// slot `r % in_rows` (respectively `r % out_rows`) — the identity mapping for
/// full tensors, a ring for the layer-chain executor's halo bands
/// ([`crate::chain`]). `run_chunk_f2`/`run_chunk_f4` execute one tile-row
/// chunk; chunk decomposition and threading belong to the caller, and chunks
/// write pairwise-disjoint output rows.
pub(crate) struct WinogradPass<'a> {
    /// Prepacked transform bank segments (`WinogradFilter::u`).
    pub(crate) u: &'a [f32],
    /// Elements per transform-point segment of `u`.
    pub(crate) point_seg: usize,
    pub(crate) in_ch: usize,
    pub(crate) out_ch: usize,
    pub(crate) pad: usize,
    /// Input view: `in_ch` planes of `in_rows × iw`.
    pub(crate) in_data: &'a [f32],
    /// Ring capacity of the input view (== logical height when unrung).
    pub(crate) in_rows: usize,
    /// Logical input height (padding bounds).
    pub(crate) ih: usize,
    pub(crate) iw: usize,
    /// Output view base: `out_ch` planes of `out_rows × ow`.
    pub(crate) out: OutPtr,
    /// Ring capacity of the output view (== `oh` when unrung).
    pub(crate) out_rows: usize,
    /// Logical output height.
    pub(crate) oh: usize,
    pub(crate) ow: usize,
    pub(crate) tiles_w: usize,
    pub(crate) bias: Option<&'a [f32]>,
    /// Full-plane residual indexed by logical row; requires an unrung output.
    pub(crate) residual: Option<&'a [f32]>,
    pub(crate) activation: FusedActivation,
}

impl WinogradPass<'_> {
    /// Dispatches to [`WinogradPass::run_chunk_f4`] or
    /// [`WinogradPass::run_chunk_f2`] — the chain executor drives both variants
    /// through one code path.
    pub(crate) fn run_chunk_f2_or_f4(&self, f4: bool, tr0: usize, tr1: usize) {
        if f4 {
            self.run_chunk_f4(tr0, tr1);
        } else {
            self.run_chunk_f2(tr0, tr1);
        }
    }

    /// Executes tile rows `[tr0, tr1)` of the F(2×2, 3×3) pipeline: input
    /// transform into packed-B segments, one GEMM per transform point, fused
    /// inverse transform into the output view.
    pub(crate) fn run_chunk_f2(&self, tr0: usize, tr1: usize) {
        debug_assert!(
            self.residual.is_none() || self.out_rows == self.oh,
            "residual fusion requires an unrung output view"
        );
        let (in_ch, out_ch, tiles_w) = (self.in_ch, self.out_ch, self.tiles_w);
        let (u, point_seg) = (self.u, self.point_seg);
        let (bias, residual, activation) = (self.bias, self.residual, self.activation);
        let pad = self.pad as isize;
        let pad_cols = self.pad;
        let ih_extent = self.ih as isize;
        let (oh, ow) = (self.oh, self.ow);
        let p = (tr1 - tr0) * tiles_w;
        let panels = p.div_ceil(NR);
        let vseg = panels * in_ch * NR;
        let mut vpack = scratch::take_uninit(POINTS * vseg);

        // --- Input transform: V = Bᵀ·d·B, written straight into the 16
        // packed-B segments (tile j is column j of every point's GEMM). The
        // per-tile 4×4 transform is restructured as whole-tile-row slice
        // arithmetic so every inner loop is a contiguous vectorizable sweep:
        // stage the four (zero-padded) input rows, combine them into the four
        // Bᵀ rows with even/odd columns split as they are produced, then each
        // transform point is a two-term stencil over those arrays. ---
        let wz = 2 * (tiles_w + 1);
        let half = tiles_w + 1;
        let mut stage = scratch::take_uninit(4 * wz + 8 * half);
        for ic in 0..in_ch {
            let plane =
                &self.in_data[ic * self.in_rows * self.iw..(ic + 1) * self.in_rows * self.iw];
            for tr in tr0..tr1 {
                let ih0 = (tr * TILE) as isize - pad;
                let (rbuf, eo) = stage.split_at_mut(4 * wz);
                // Padded input rows: rbuf[r][x] = input(ih0 + r, x − pad), 0 outside.
                for r in 0..ALPHA {
                    let row = &mut rbuf[r * wz..(r + 1) * wz];
                    let ih = ih0 + r as isize;
                    if ih < 0 || ih >= ih_extent {
                        row.fill(0.0);
                        continue;
                    }
                    let slot = ih as usize % self.in_rows;
                    let src = &plane[slot * self.iw..(slot + 1) * self.iw];
                    let x0 = pad_cols.min(wz);
                    let x1 = (pad_cols + self.iw).min(wz);
                    row[..x0].fill(0.0);
                    row[x0..x1].copy_from_slice(&src[..x1 - x0]);
                    row[x1..].fill(0.0);
                }
                // z = Bᵀ·d, with Bᵀ = [[1,0,−1,0],[0,1,1,0],[0,−1,1,0],[0,1,0,−1]]:
                // four elementwise row combinations, deinterleaved into even/odd
                // columns as they are produced so tile t's four stencil inputs
                // are `even[t], odd[t], even[t+1], odd[t+1]` — all unit-stride.
                {
                    let (r0, r123) = rbuf.split_at(wz);
                    let (r1, r23) = r123.split_at(wz);
                    let (r2, r3) = r23.split_at(wz);
                    let mut rows = eo.chunks_exact_mut(half);
                    let mut combine = |a: &[f32], b: &[f32], sum: bool| {
                        let even = rows.next().expect("eo holds 8 half-rows");
                        let odd = rows.next().expect("eo holds 8 half-rows");
                        let lanes = even.iter_mut().zip(odd.iter_mut());
                        for (((e, o), pa), pb) in
                            lanes.zip(a.chunks_exact(2)).zip(b.chunks_exact(2))
                        {
                            if sum {
                                *e = pa[0] + pb[0];
                                *o = pa[1] + pb[1];
                            } else {
                                *e = pa[0] - pb[0];
                                *o = pa[1] - pb[1];
                            }
                        }
                    };
                    combine(r0, r2, false); // z₀ = d₀ − d₂
                    combine(r1, r2, true); // z₁ = d₁ + d₂
                    combine(r2, r1, false); // z₂ = d₂ − d₁
                    combine(r1, r3, false); // z₃ = d₁ − d₃
                }
                // V = z·B per row: two-term stencils into the packed segments.
                let j0 = (tr - tr0) * tiles_w;
                for r in 0..ALPHA {
                    let even = &eo[2 * r * half..2 * r * half + half];
                    let odd = &eo[(2 * r + 1) * half..(2 * r + 1) * half + half];
                    scatter_stencil_rows(
                        &mut vpack,
                        vseg,
                        in_ch,
                        ic,
                        r * ALPHA,
                        j0,
                        tiles_w,
                        even,
                        odd,
                    );
                }
            }
        }
        scratch::give(stage);

        // --- Per-point channel reduction: M(t) = U(t) · V(t), one packed GEMM
        // per transform point (serial within the task; parallelism lives at the
        // chunk level). U arrives prepacked in the filter bank, so the GEMMs
        // consume it directly — no per-chunk repacking of the weights. ---
        let mut mbuf = scratch::take_uninit(POINTS * out_ch * p);
        for t in 0..POINTS {
            engine::packed_gemm_strided(
                GemmLhs::Packed { panels: &u[t * point_seg..(t + 1) * point_seg], k: in_ch },
                0,
                out_ch,
                in_ch,
                &vpack[t * vseg..(t + 1) * vseg],
                p,
                &mut mbuf[t * out_ch * p..(t + 1) * out_ch * p],
                p,
                0,
                WriteMode::Overwrite { epilogue: Epilogue::with_bias(None) },
            );
        }

        // --- Output transform: Y = Aᵀ·M·A + bias, activation fused, written
        // into this chunk's output rows of every channel plane. Like the input
        // transform, the per-tile 2×4 / 2×2 products are restructured as
        // whole-tile-row slice sweeps over the 16 contiguous `M` streams.
        // Safety: chunks own disjoint tile-row ranges, so all writes are
        // pairwise disjoint and in-bounds. ---
        let base_ptr = self.out.get();
        let mut obuf = scratch::take_uninit(12 * tiles_w);
        for c_out in 0..out_ch {
            let bias_v = bias.map_or(0.0, |b| b[c_out]);
            let plane_base = c_out * self.out_rows * ow;
            let mrows: [&[f32]; POINTS] = std::array::from_fn(|t| {
                &mbuf[t * out_ch * p + c_out * p..t * out_ch * p + (c_out + 1) * p]
            });
            for tr in tr0..tr1 {
                let jr = (tr - tr0) * tiles_w..(tr - tr0 + 1) * tiles_w;
                let (tt, y) = obuf.split_at_mut(8 * tiles_w);
                // tt = Aᵀ·M, with Aᵀ = [[1,1,1,0],[0,1,−1,−1]]: per transform
                // column c, two three-term elementwise combinations.
                for c in 0..ALPHA {
                    let s0 = &mrows[c][jr.clone()];
                    let s1 = &mrows[ALPHA + c][jr.clone()];
                    let s2 = &mrows[2 * ALPHA + c][jr.clone()];
                    let s3 = &mrows[3 * ALPHA + c][jr.clone()];
                    let dst = &mut tt[c * tiles_w..(c + 1) * tiles_w];
                    for (((d, &a), &b), &e) in dst.iter_mut().zip(s0).zip(s1).zip(s2) {
                        *d = a + b + e;
                    }
                    let dst = &mut tt[(ALPHA + c) * tiles_w..(ALPHA + c + 1) * tiles_w];
                    for (((d, &a), &b), &e) in dst.iter_mut().zip(s1).zip(s2).zip(s3) {
                        *d = a - b - e;
                    }
                }
                // Y = tt·A: fold the four columns into the 2×2 output lanes.
                for half_row in 0..TILE {
                    let t0 = &tt[(half_row * ALPHA) * tiles_w..(half_row * ALPHA + 1) * tiles_w];
                    let t1 =
                        &tt[(half_row * ALPHA + 1) * tiles_w..(half_row * ALPHA + 2) * tiles_w];
                    let t2 =
                        &tt[(half_row * ALPHA + 2) * tiles_w..(half_row * ALPHA + 3) * tiles_w];
                    let t3 =
                        &tt[(half_row * ALPHA + 3) * tiles_w..(half_row * ALPHA + 4) * tiles_w];
                    let (ya, yb) = y[2 * half_row * tiles_w..(2 * half_row + 2) * tiles_w]
                        .split_at_mut(tiles_w);
                    for (((d, &a), &b), &e) in ya.iter_mut().zip(t0).zip(t1).zip(t2) {
                        *d = a + b + e;
                    }
                    for (((d, &a), &b), &e) in yb.iter_mut().zip(t1).zip(t2).zip(t3) {
                        *d = a - b - e;
                    }
                }
                let oh0 = tr * TILE;
                for half_row in 0..TILE {
                    if oh0 + half_row >= oh {
                        break;
                    }
                    let row = oh0 + half_row;
                    let row_start = plane_base + (row % self.out_rows) * ow;
                    // Safety: rows [tr0*2, tr1*2) of every plane belong
                    // exclusively to this task (see above).
                    let out_row =
                        unsafe { std::slice::from_raw_parts_mut(base_ptr.add(row_start), ow) };
                    let ya = &y[2 * half_row * tiles_w..(2 * half_row + 1) * tiles_w];
                    let yb = &y[(2 * half_row + 1) * tiles_w..(2 * half_row + 2) * tiles_w];
                    let skip_row =
                        residual.map(|s| &s[(c_out * oh + row) * ow..(c_out * oh + row + 1) * ow]);
                    emit_output_row(out_row, ya, yb, bias_v, skip_row, activation);
                }
            }
        }
        scratch::give(obuf);
        scratch::give(mbuf);
        scratch::give(vpack);
    }

    /// Executes tile rows `[tr0, tr1)` of the F(4×4, 3×3) pipeline. Same
    /// structure as [`Self::run_chunk_f2`] with the α=6 transforms: `Bᵀ`/`Aᵀ`
    /// have six/four rows, tiles advance by four columns (no even/odd
    /// deinterleave — tile `t` reads staged columns `4t..4t+6` directly), and
    /// each tile row feeds 36 packed-B segments.
    pub(crate) fn run_chunk_f4(&self, tr0: usize, tr1: usize) {
        debug_assert!(
            self.residual.is_none() || self.out_rows == self.oh,
            "residual fusion requires an unrung output view"
        );
        let (in_ch, out_ch, tiles_w) = (self.in_ch, self.out_ch, self.tiles_w);
        let (u, point_seg) = (self.u, self.point_seg);
        let (bias, residual, activation) = (self.bias, self.residual, self.activation);
        let pad = self.pad as isize;
        let pad_cols = self.pad;
        let ih_extent = self.ih as isize;
        let (oh, ow) = (self.oh, self.ow);
        let p = (tr1 - tr0) * tiles_w;
        let panels = p.div_ceil(NR);
        let vseg = panels * in_ch * NR;
        let mut vpack = scratch::take_uninit(POINTS_F4 * vseg);

        // --- Input transform: V = Bᵀ·d·B into the 36 packed-B segments. Tile
        // t's column transform reads staged columns 4t..4t+6, so the staged
        // width covers 4·tiles_w + 2 columns. ---
        let wz = 4 * tiles_w + 2;
        let mut stage = scratch::take_uninit(2 * ALPHA_F4 * wz);
        for ic in 0..in_ch {
            let plane =
                &self.in_data[ic * self.in_rows * self.iw..(ic + 1) * self.in_rows * self.iw];
            for tr in tr0..tr1 {
                let ih0 = (tr * TILE_F4) as isize - pad;
                let (rbuf, zbuf) = stage.split_at_mut(ALPHA_F4 * wz);
                for r in 0..ALPHA_F4 {
                    let row = &mut rbuf[r * wz..(r + 1) * wz];
                    let ih = ih0 + r as isize;
                    if ih < 0 || ih >= ih_extent {
                        row.fill(0.0);
                        continue;
                    }
                    let slot = ih as usize % self.in_rows;
                    let src = &plane[slot * self.iw..(slot + 1) * self.iw];
                    let x0 = pad_cols.min(wz);
                    let x1 = (pad_cols + self.iw).min(wz);
                    row[..x0].fill(0.0);
                    row[x0..x1].copy_from_slice(&src[..x1 - x0]);
                    row[x1..].fill(0.0);
                }
                // z = Bᵀ·d, with Bᵀ = [[4,0,−5,0,1,0],[0,−4,−4,1,1,0],
                // [0,4,−4,−1,1,0],[0,−2,−1,2,1,0],[0,2,−1,−2,1,0],
                // [0,4,0,−5,0,1]]: six elementwise row combinations.
                for x in 0..wz {
                    let d0 = rbuf[x];
                    let d1 = rbuf[wz + x];
                    let d2 = rbuf[2 * wz + x];
                    let d3 = rbuf[3 * wz + x];
                    let d4 = rbuf[4 * wz + x];
                    let d5 = rbuf[5 * wz + x];
                    let a42 = d4 - d2;
                    let b31 = 2.0 * (d3 - d1);
                    zbuf[x] = 4.0 * d0 - 5.0 * d2 + d4;
                    zbuf[wz + x] = (d3 + d4) - 4.0 * (d1 + d2);
                    zbuf[2 * wz + x] = 4.0 * (d1 - d2) + (d4 - d3);
                    zbuf[3 * wz + x] = a42 + b31;
                    zbuf[4 * wz + x] = a42 - b31;
                    zbuf[5 * wz + x] = 4.0 * d1 - 5.0 * d3 + d5;
                }
                // V = z·B per row: the same six-lane stencil along the columns.
                let j0 = (tr - tr0) * tiles_w;
                for r in 0..ALPHA_F4 {
                    scatter_stencil_rows_f4(
                        &mut vpack,
                        vseg,
                        in_ch,
                        ic,
                        r * ALPHA_F4,
                        j0,
                        tiles_w,
                        &zbuf[r * wz..(r + 1) * wz],
                    );
                }
            }
        }
        scratch::give(stage);

        // --- Per-point channel reduction: M(t) = U(t)·V(t), one packed GEMM
        // per transform point against the prepacked bank. ---
        let mut mbuf = scratch::take_uninit(POINTS_F4 * out_ch * p);
        for t in 0..POINTS_F4 {
            engine::packed_gemm_strided(
                GemmLhs::Packed { panels: &u[t * point_seg..(t + 1) * point_seg], k: in_ch },
                0,
                out_ch,
                in_ch,
                &vpack[t * vseg..(t + 1) * vseg],
                p,
                &mut mbuf[t * out_ch * p..(t + 1) * out_ch * p],
                p,
                0,
                WriteMode::Overwrite { epilogue: Epilogue::with_bias(None) },
            );
        }

        // --- Output transform: Y = Aᵀ·M·A + bias, activation fused, with
        // Aᵀ = [[1,1,1,1,1,0],[0,1,−1,2,−2,0],[0,1,1,4,4,0],[0,1,−1,8,−8,1]].
        // Safety: chunks own disjoint tile-row ranges (see `OutPtr`). ---
        let base_ptr = self.out.get();
        let mut obuf = scratch::take_uninit(28 * tiles_w);
        for c_out in 0..out_ch {
            let bias_v = bias.map_or(0.0, |b| b[c_out]);
            let plane_base = c_out * self.out_rows * ow;
            let mrows: [&[f32]; POINTS_F4] = std::array::from_fn(|t| {
                &mbuf[t * out_ch * p + c_out * p..t * out_ch * p + (c_out + 1) * p]
            });
            for tr in tr0..tr1 {
                let jr = (tr - tr0) * tiles_w..(tr - tr0 + 1) * tiles_w;
                let (tt, y) = obuf.split_at_mut(24 * tiles_w);
                // tt = Aᵀ·M per transform column c: four stencil combinations
                // of the six row streams.
                for c in 0..ALPHA_F4 {
                    let s: [&[f32]; ALPHA_F4] =
                        std::array::from_fn(|r| &mrows[r * ALPHA_F4 + c][jr.clone()]);
                    for j in 0..tiles_w {
                        let p12 = s[1][j] + s[2][j];
                        let m12 = s[1][j] - s[2][j];
                        let p34 = s[3][j] + s[4][j];
                        let m34 = s[3][j] - s[4][j];
                        tt[c * tiles_w + j] = s[0][j] + p12 + p34;
                        tt[(ALPHA_F4 + c) * tiles_w + j] = m12 + 2.0 * m34;
                        tt[(2 * ALPHA_F4 + c) * tiles_w + j] = p12 + 4.0 * p34;
                        tt[(3 * ALPHA_F4 + c) * tiles_w + j] = m12 + 8.0 * m34 + s[5][j];
                    }
                }
                let oh0 = tr * TILE_F4;
                for q in 0..TILE_F4 {
                    if oh0 + q >= oh {
                        break;
                    }
                    // Y row q = tt_q·A: the same stencil along the six columns,
                    // producing the four interleave lanes.
                    let trow = &tt[q * ALPHA_F4 * tiles_w..(q + 1) * ALPHA_F4 * tiles_w];
                    for j in 0..tiles_w {
                        let t0 = trow[j];
                        let t1 = trow[tiles_w + j];
                        let t2 = trow[2 * tiles_w + j];
                        let t3 = trow[3 * tiles_w + j];
                        let t4 = trow[4 * tiles_w + j];
                        let t5 = trow[5 * tiles_w + j];
                        let p12 = t1 + t2;
                        let m12 = t1 - t2;
                        let p34 = t3 + t4;
                        let m34 = t3 - t4;
                        y[j] = t0 + p12 + p34;
                        y[tiles_w + j] = m12 + 2.0 * m34;
                        y[2 * tiles_w + j] = p12 + 4.0 * p34;
                        y[3 * tiles_w + j] = m12 + 8.0 * m34 + t5;
                    }
                    let row = oh0 + q;
                    let row_start = plane_base + (row % self.out_rows) * ow;
                    // Safety: rows [tr0*4, tr1*4) of every plane belong
                    // exclusively to this task (see above).
                    let out_row =
                        unsafe { std::slice::from_raw_parts_mut(base_ptr.add(row_start), ow) };
                    let skip_row =
                        residual.map(|s| &s[(c_out * oh + row) * ow..(c_out * oh + row + 1) * ow]);
                    emit_output_row_f4(out_row, y, tiles_w, bias_v, skip_row, activation);
                }
            }
        }
        scratch::give(obuf);
        scratch::give(mbuf);
        scratch::give(vpack);
    }
}

/// Winograd F(2×2, 3×3) convolution from raw weights: computes the filter
/// transform and runs [`conv2d_winograd_prepared`]. The transform costs
/// `O(O·I)` — negligible next to the convolution itself — but repeat callers
/// should cache a [`WinogradFilter`] instead.
///
/// # Errors
/// Returns an error if the parameters are not Winograd-eligible or the weight
/// shape / bias length are inconsistent with them.
pub fn conv2d_winograd(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
) -> Result<Tensor> {
    let filter = WinogradFilter::prepare(weight, params)?;
    conv2d_winograd_prepared(input, &filter, bias, params, FusedActivation::None)
}

/// Winograd F(4×4, 3×3) convolution against a pre-transformed filter bank
/// (see [`WinogradFilter::prepare_f4`]), bias and activation fused into the
/// output transform. The α=6 construction spends 36 multiplies per 16 outputs
/// — 2.25 per output vs F(2×2)'s 4 — so the per-point GEMM work drops ~1.78×
/// on top of F(2×2), at the cost of the looser numerical tolerance pinned by
/// [`WINOGRAD_F4_TOLERANCE`].
///
/// # Errors
/// Returns an error if the parameters are not Winograd-eligible, the filter
/// bank is not an F(4×4) bank or its channels do not match, or the bias length
/// is inconsistent.
pub fn conv2d_winograd_f4_prepared(
    input: &Tensor,
    filter: &WinogradFilter,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    activation: FusedActivation,
) -> Result<Tensor> {
    let oshape = params.output_shape(input.shape())?;
    let mut out = Tensor::zeros(oshape);
    conv2d_winograd_f4_fused_into(input, filter, bias, params, activation, None, &mut out)?;
    Ok(out)
}

/// [`conv2d_winograd_f4_prepared`] writing into a caller-provided output
/// tensor, with an optional residual operand added before the activation —
/// the F(4×4) counterpart of [`conv2d_winograd_fused_into`], with the same
/// fusion-order (bitwise) and determinism contracts.
///
/// # Errors
/// Returns an error if the parameters are not Winograd-eligible, the filter
/// bank is not an F(4×4) bank or its channels do not match, the bias length is
/// inconsistent, or the output/residual shapes do not match.
pub fn conv2d_winograd_f4_fused_into(
    input: &Tensor,
    filter: &WinogradFilter,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    activation: FusedActivation,
    residual: Option<&Tensor>,
    out: &mut Tensor,
) -> Result<()> {
    winograd_fused_into_any(input, filter, bias, params, activation, residual, out, true)
}

/// Winograd F(4×4, 3×3) convolution from raw weights: computes the filter
/// transform and runs [`conv2d_winograd_f4_prepared`]. Repeat callers should
/// cache the [`WinogradFilter`].
///
/// # Errors
/// Returns an error if the parameters are not Winograd-eligible or the weight
/// shape / bias length are inconsistent with them.
pub fn conv2d_winograd_f4(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
) -> Result<Tensor> {
    let filter = WinogradFilter::prepare_f4(weight, params)?;
    conv2d_winograd_f4_prepared(input, &filter, bias, params, FusedActivation::None)
}

/// Measures the F(4×4, 3×3) numerical error for one layer shape: the maximum
/// elementwise difference against [`ConvAlgo::Im2colPacked`]
/// (crate::ConvAlgo::Im2colPacked) on a deterministic unit-scale input and
/// half-scale weights — the same operating point the parity suites pin. A pure
/// function of the shape (the probe data is seeded from it), so the
/// calibration gate ([`MeasuredSweepConfig::f4_tolerance`]
/// (../hwsim/struct.MeasuredSweepConfig.html)) is reproducible across hosts
/// and thread counts.
///
/// # Errors
/// Returns an error if the parameters are not Winograd-eligible or the input
/// shape does not match them.
pub fn winograd_f4_unit_error(params: &Conv2dParams, input: crate::shape::Shape) -> Result<f32> {
    let seed = (params.in_channels * 31 + params.out_channels * 7 + input.h * 3 + input.w) as u64;
    let x = Tensor::random_uniform(input, 1.0, seed);
    let weight = Tensor::random_uniform(
        crate::shape::Shape::new(params.out_channels, params.in_channels, 3, 3),
        0.5,
        seed ^ 0x5a,
    );
    let reference = crate::conv::conv2d_im2col_packed(&x, &weight, None, params)?;
    let f4 = conv2d_winograd_f4(&x, &weight, None, params)?;
    reference.max_abs_diff(&f4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{conv2d_direct, conv2d_im2col_packed};
    use crate::shape::Shape;

    fn close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        let diff = a.max_abs_diff(b).unwrap();
        assert!(diff < tol, "tensors differ by {diff}");
    }

    #[test]
    fn matches_direct_on_basic_shapes() {
        for (ic, oc, h, w, pad) in [
            (1usize, 1usize, 6usize, 6usize, 1usize),
            (3, 4, 9, 7, 1),
            (5, 2, 8, 8, 0),
            (2, 3, 4, 5, 2),
        ] {
            let params = Conv2dParams::new(ic, oc, 3, 1, pad);
            let input = Tensor::random_uniform(Shape::chw(ic, h, w), 1.0, (ic * h) as u64);
            let weight = Tensor::random_uniform(Shape::new(oc, ic, 3, 3), 0.5, (oc + pad) as u64);
            let bias: Vec<f32> = (0..oc).map(|i| 0.1 * i as f32).collect();
            let reference = conv2d_direct(&input, &weight, Some(&bias), &params).unwrap();
            let wino = conv2d_winograd(&input, &weight, Some(&bias), &params).unwrap();
            close(&reference, &wino, 1e-4);
        }
    }

    #[test]
    fn matches_packed_on_batched_input() {
        let params = Conv2dParams::new(4, 6, 3, 1, 1);
        let input = Tensor::random_uniform(Shape::new(3, 4, 11, 13), 1.0, 7);
        let weight = Tensor::random_uniform(Shape::new(6, 4, 3, 3), 0.5, 8);
        let packed = conv2d_im2col_packed(&input, &weight, None, &params).unwrap();
        let wino = conv2d_winograd(&input, &weight, None, &params).unwrap();
        close(&packed, &wino, 1e-4);
    }

    #[test]
    fn fused_activation_matches_separate_pass_bitwise() {
        let params = Conv2dParams::new(3, 5, 3, 1, 1);
        let input = Tensor::random_uniform(Shape::chw(3, 10, 10), 1.0, 3);
        let weight = Tensor::random_uniform(Shape::new(5, 3, 3, 3), 0.5, 4);
        let filter = WinogradFilter::prepare(&weight, &params).unwrap();
        let plain = conv2d_winograd_prepared(&input, &filter, None, &params, FusedActivation::None)
            .unwrap();
        let fused = conv2d_winograd_prepared(&input, &filter, None, &params, FusedActivation::Relu)
            .unwrap();
        for (&x, &y) in plain.as_slice().iter().zip(fused.as_slice()) {
            assert_eq!(x.max(0.0).to_bits(), y.to_bits());
        }
        let fused6 =
            conv2d_winograd_prepared(&input, &filter, None, &params, FusedActivation::Relu6)
                .unwrap();
        for (&x, &y) in plain.as_slice().iter().zip(fused6.as_slice()) {
            assert_eq!(x.clamp(0.0, 6.0).to_bits(), y.to_bits());
        }
    }

    #[test]
    fn f4_matches_direct_on_basic_shapes() {
        // Shapes chosen to exercise every tail case: exact 4×4 tiling, partial
        // tail rows/columns, zero and double padding, width below one tile.
        for (ic, oc, h, w, pad) in [
            (1usize, 1usize, 8usize, 8usize, 1usize),
            (3, 4, 9, 7, 1),
            (5, 2, 12, 10, 0),
            (2, 3, 4, 5, 2),
            (4, 6, 6, 3, 1),
        ] {
            let params = Conv2dParams::new(ic, oc, 3, 1, pad);
            let input = Tensor::random_uniform(Shape::chw(ic, h, w), 1.0, (ic * h) as u64);
            let weight = Tensor::random_uniform(Shape::new(oc, ic, 3, 3), 0.5, (oc + pad) as u64);
            let bias: Vec<f32> = (0..oc).map(|i| 0.1 * i as f32).collect();
            let reference = conv2d_direct(&input, &weight, Some(&bias), &params).unwrap();
            let wino = conv2d_winograd_f4(&input, &weight, Some(&bias), &params).unwrap();
            close(&reference, &wino, WINOGRAD_F4_TOLERANCE);
        }
    }

    #[test]
    fn f4_matches_packed_on_batched_input() {
        let params = Conv2dParams::new(4, 6, 3, 1, 1);
        let input = Tensor::random_uniform(Shape::new(3, 4, 11, 13), 1.0, 7);
        let weight = Tensor::random_uniform(Shape::new(6, 4, 3, 3), 0.5, 8);
        let packed = conv2d_im2col_packed(&input, &weight, None, &params).unwrap();
        let wino = conv2d_winograd_f4(&input, &weight, None, &params).unwrap();
        close(&packed, &wino, WINOGRAD_F4_TOLERANCE);
    }

    #[test]
    fn f4_fused_activation_matches_separate_pass_bitwise() {
        let params = Conv2dParams::new(3, 5, 3, 1, 1);
        let input = Tensor::random_uniform(Shape::chw(3, 10, 10), 1.0, 3);
        let weight = Tensor::random_uniform(Shape::new(5, 3, 3, 3), 0.5, 4);
        let filter = WinogradFilter::prepare_f4(&weight, &params).unwrap();
        let plain =
            conv2d_winograd_f4_prepared(&input, &filter, None, &params, FusedActivation::None)
                .unwrap();
        let fused =
            conv2d_winograd_f4_prepared(&input, &filter, None, &params, FusedActivation::Relu)
                .unwrap();
        for (&x, &y) in plain.as_slice().iter().zip(fused.as_slice()) {
            assert_eq!(x.max(0.0).to_bits(), y.to_bits());
        }
    }

    #[test]
    fn f4_filter_kind_and_shape_mismatches_are_rejected() {
        let params = Conv2dParams::new(4, 4, 3, 1, 1);
        let input = Tensor::random_uniform(Shape::chw(4, 8, 8), 1.0, 1);
        let weight = Tensor::random_uniform(Shape::new(4, 4, 3, 3), 0.5, 2);
        let f2 = WinogradFilter::prepare(&weight, &params).unwrap();
        let f4 = WinogradFilter::prepare_f4(&weight, &params).unwrap();
        assert!(!f2.is_f4());
        assert!(f4.is_f4());
        // Each entry point accepts only its own transform size.
        assert!(
            conv2d_winograd_f4_prepared(&input, &f2, None, &params, FusedActivation::None).is_err()
        );
        assert!(
            conv2d_winograd_prepared(&input, &f4, None, &params, FusedActivation::None).is_err()
        );

        let strided = Conv2dParams::new(4, 4, 3, 2, 1);
        assert!(WinogradFilter::prepare_f4(&weight, &strided).is_err());
        assert!(conv2d_winograd_f4(&input, &weight, None, &strided).is_err());
    }

    #[test]
    fn f4_unit_error_probe_is_deterministic_and_bounded() {
        let params = Conv2dParams::new(8, 8, 3, 1, 1);
        let shape = Shape::chw(8, 28, 28);
        let a = winograd_f4_unit_error(&params, shape).unwrap();
        let b = winograd_f4_unit_error(&params, shape).unwrap();
        assert_eq!(a.to_bits(), b.to_bits(), "probe must be a pure function of the shape");
        assert!(a > 0.0 && a < WINOGRAD_F4_TOLERANCE, "unit error {a} vs pinned bound");
    }

    #[test]
    fn rejects_non_winograd_shapes() {
        let strided = Conv2dParams::new(4, 4, 3, 2, 1);
        let input = Tensor::random_uniform(Shape::chw(4, 8, 8), 1.0, 1);
        let weight = Tensor::random_uniform(Shape::new(4, 4, 3, 3), 0.5, 2);
        assert!(conv2d_winograd(&input, &weight, None, &strided).is_err());
        assert!(WinogradFilter::prepare(&weight, &strided).is_err());

        let grouped = Conv2dParams::new(4, 4, 3, 1, 1).with_groups(2);
        let gweight = Tensor::random_uniform(Shape::new(4, 2, 3, 3), 0.5, 3);
        assert!(conv2d_winograd(&input, &gweight, None, &grouped).is_err());

        let eligible = Conv2dParams::new(4, 4, 3, 1, 1);
        let filter = WinogradFilter::prepare(&weight, &eligible).unwrap();
        assert_eq!(filter.out_channels(), 4);
        assert_eq!(filter.in_channels(), 4);
        let wrong = Conv2dParams::new(4, 8, 3, 1, 1);
        assert!(
            conv2d_winograd_prepared(&input, &filter, None, &wrong, FusedActivation::None).is_err()
        );
        assert!(conv2d_winograd_prepared(
            &input,
            &filter,
            Some(&[0.0; 3]),
            &eligible,
            FusedActivation::None
        )
        .is_err());
    }
}
