//! Dense matrix multiplication kernels.
//!
//! Three implementations are provided: a straightforward triple loop used as a
//! reference, the seed's cache-blocked variant kept as the measured baseline, and
//! [`gemm_packed`] — the packed, register-tiled, multi-threaded kernel built on
//! [`engine`](crate::engine) that the convolution paths and [`matmul`] use. The
//! Criterion benchmarks sweep all three to demonstrate the utilization gap the
//! paper's autotuning section (§VI) builds on.
//!
//! Note on zero handling: earlier revisions skipped `a[i][p] == 0.0` entries in the
//! inner loops. On dense data that "optimization" is a mispredicted branch per
//! element, and it silently broke IEEE semantics (`0 × NaN` must be NaN, not an
//! untouched output). All kernels now multiply unconditionally.

use crate::{engine, scratch};

/// A row-major matrix view described by raw dimensions.
///
/// The GEMM routines operate on plain slices to avoid committing the tensor type to a
/// particular matrix layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatDims {
    /// Rows of the left operand / output.
    pub m: usize,
    /// Columns of the right operand / output.
    pub n: usize,
    /// Inner (shared) dimension.
    pub k: usize,
}

impl MatDims {
    /// Creates a new dimension triple.
    pub const fn new(m: usize, n: usize, k: usize) -> Self {
        MatDims { m, n, k }
    }

    /// Number of multiply–accumulate operations for one GEMM.
    pub const fn macs(&self) -> u64 {
        (self.m as u64) * (self.n as u64) * (self.k as u64)
    }
}

/// Reference GEMM: `out[m][n] += a[m][k] * b[k][n]` with a plain triple loop.
///
/// `out` must have length `dims.m * dims.n`, `a` length `dims.m * dims.k`, and `b` length
/// `dims.k * dims.n`. The output is accumulated into (callers zero it first when needed).
///
/// # Panics
/// Panics if any slice is shorter than its required length.
pub fn gemm_naive(dims: MatDims, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert!(a.len() >= dims.m * dims.k, "lhs too short");
    assert!(b.len() >= dims.k * dims.n, "rhs too short");
    assert!(out.len() >= dims.m * dims.n, "out too short");
    for i in 0..dims.m {
        for p in 0..dims.k {
            let av = a[i * dims.k + p];
            let brow = &b[p * dims.n..(p + 1) * dims.n];
            let orow = &mut out[i * dims.n..(i + 1) * dims.n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Blocking parameters for the tiled GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmBlocking {
    /// Tile extent along `m`.
    pub mb: usize,
    /// Tile extent along `n`.
    pub nb: usize,
    /// Tile extent along `k`.
    pub kb: usize,
}

impl Default for GemmBlocking {
    fn default() -> Self {
        // Sized for a 32 KiB L1 data cache: one MB×KB panel of A (64×64 f32 = 16 KiB)
        // plus streaming rows of B.
        GemmBlocking { mb: 64, nb: 256, kb: 64 }
    }
}

/// Cache-blocked GEMM with the same contract as [`gemm_naive`].
///
/// # Panics
/// Panics if any slice is shorter than its required length.
pub fn gemm_blocked(dims: MatDims, blocking: GemmBlocking, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert!(a.len() >= dims.m * dims.k, "lhs too short");
    assert!(b.len() >= dims.k * dims.n, "rhs too short");
    assert!(out.len() >= dims.m * dims.n, "out too short");
    let MatDims { m, n, k } = dims;
    let mb = blocking.mb.max(1);
    let nb = blocking.nb.max(1);
    let kb = blocking.kb.max(1);

    let mut i0 = 0;
    while i0 < m {
        let i1 = (i0 + mb).min(m);
        let mut p0 = 0;
        while p0 < k {
            let p1 = (p0 + kb).min(k);
            let mut j0 = 0;
            while j0 < n {
                let j1 = (j0 + nb).min(n);
                for i in i0..i1 {
                    let arow = &a[i * k..i * k + k];
                    let orow = &mut out[i * n + j0..i * n + j1];
                    for p in p0..p1 {
                        let av = arow[p];
                        let brow = &b[p * n + j0..p * n + j1];
                        for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                            *o += av * bv;
                        }
                    }
                }
                j0 = j1;
            }
            p0 = p1;
        }
        i0 = i1;
    }
}

/// Packed, register-tiled, multi-threaded GEMM with the same contract as
/// [`gemm_naive`] (`out += a · b`, `out` pre-initialized by the caller).
///
/// A and B are repacked into microkernel panels held in the thread-local scratch
/// arena; the `MR × NR` accumulator tile stays in registers across the full shared
/// dimension; output rows are computed on worker threads when the problem is large
/// enough (see [`engine`](crate::engine)). Results are bitwise identical for every
/// thread count.
///
/// # Panics
/// Panics if any slice is shorter than its required length.
pub fn gemm_packed(dims: MatDims, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert!(a.len() >= dims.m * dims.k, "lhs too short");
    assert!(b.len() >= dims.k * dims.n, "rhs too short");
    assert!(out.len() >= dims.m * dims.n, "out too short");
    let MatDims { m, n, k } = dims;
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let parallel = dims.macs() >= engine::PARALLEL_MIN_MACS;
    // Column stripes bound packed-B scratch for very wide products.
    let stripe_cols = (engine::MAX_B_PANEL_ELEMS / k).div_ceil(engine::NR).max(1) * engine::NR;
    let out = &mut out[..m * n];
    let mut j0 = 0;
    while j0 < n {
        let width = stripe_cols.min(n - j0);
        let mut bpack = scratch::take_uninit(width.div_ceil(engine::NR) * k * engine::NR);
        engine::pack_b(b, k, n, j0, width, &mut bpack);
        engine::parallel_packed_gemm(
            engine::GemmLhs::Rows { data: a, lda: k },
            m,
            k,
            &bpack,
            width,
            out,
            n,
            j0,
            engine::Epilogue::default(),
            true,
            parallel,
        );
        scratch::give(bpack);
        j0 += width;
    }
}

/// Convenience wrapper allocating and returning the output matrix (`m × n`,
/// zero-initialized before accumulation), using the packed engine kernel.
pub fn matmul(dims: MatDims, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0; dims.m * dims.n];
    gemm_packed(dims, a, b, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(dims: MatDims, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; dims.m * dims.n];
        for i in 0..dims.m {
            for j in 0..dims.n {
                let mut acc = 0.0;
                for p in 0..dims.k {
                    acc += a[i * dims.k + p] * b[p * dims.n + j];
                }
                out[i * dims.n + j] = acc;
            }
        }
        out
    }

    fn approx_eq(a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-4)
    }

    #[test]
    fn identity_multiplication() {
        let dims = MatDims::new(3, 3, 3);
        let eye: Vec<f32> = (0..9).map(|i| if i % 4 == 0 { 1.0 } else { 0.0 }).collect();
        let a: Vec<f32> = (0..9).map(|i| i as f32).collect();
        assert_eq!(matmul(dims, &a, &eye), a);
        assert_eq!(matmul(dims, &eye, &a), a);
    }

    #[test]
    fn naive_matches_reference() {
        let dims = MatDims::new(7, 5, 11);
        let a: Vec<f32> = (0..dims.m * dims.k).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..dims.k * dims.n).map(|i| (i as f32 * 0.11).cos()).collect();
        let mut out = vec![0.0; dims.m * dims.n];
        gemm_naive(dims, &a, &b, &mut out);
        assert!(approx_eq(&out, &reference(dims, &a, &b)));
    }

    #[test]
    fn blocked_matches_naive_across_blockings() {
        let dims = MatDims::new(33, 29, 47);
        let a: Vec<f32> = (0..dims.m * dims.k).map(|i| ((i * 7) % 13) as f32 - 6.0).collect();
        let b: Vec<f32> = (0..dims.k * dims.n).map(|i| ((i * 5) % 11) as f32 - 5.0).collect();
        let expect = reference(dims, &a, &b);
        for blocking in [
            GemmBlocking::default(),
            GemmBlocking { mb: 1, nb: 1, kb: 1 },
            GemmBlocking { mb: 8, nb: 7, kb: 100 },
            GemmBlocking { mb: 100, nb: 3, kb: 2 },
        ] {
            let mut out = vec![0.0; dims.m * dims.n];
            gemm_blocked(dims, blocking, &a, &b, &mut out);
            assert!(approx_eq(&out, &expect), "blocking {blocking:?} diverged");
        }
    }

    #[test]
    fn zero_blocking_is_clamped() {
        let dims = MatDims::new(4, 4, 4);
        let a = vec![1.0; 16];
        let b = vec![2.0; 16];
        let mut out = vec![0.0; 16];
        gemm_blocked(dims, GemmBlocking { mb: 0, nb: 0, kb: 0 }, &a, &b, &mut out);
        assert!(out.iter().all(|&x| (x - 8.0).abs() < 1e-6));
    }

    #[test]
    fn macs_accounting() {
        assert_eq!(MatDims::new(2, 3, 4).macs(), 24);
    }

    #[test]
    fn packed_matches_naive_for_awkward_shapes() {
        for (m, n, k) in [(1, 1, 1), (8, 8, 8), (7, 9, 5), (17, 33, 40), (64, 100, 27)] {
            let dims = MatDims::new(m, n, k);
            let a: Vec<f32> = (0..m * k).map(|i| ((i * 31) % 17) as f32 * 0.25 - 2.0).collect();
            let b: Vec<f32> = (0..k * n).map(|i| ((i * 23) % 19) as f32 * 0.25 - 2.2).collect();
            let mut naive = vec![0.0; m * n];
            gemm_naive(dims, &a, &b, &mut naive);
            let mut packed = vec![0.0; m * n];
            gemm_packed(dims, &a, &b, &mut packed);
            assert!(approx_eq(&naive, &packed), "{m}x{n}x{k} diverged");
        }
    }

    #[test]
    fn packed_accumulates_into_existing_output() {
        let dims = MatDims::new(3, 3, 2);
        let a = vec![1.0; 6];
        let b = vec![1.0; 6];
        let mut out = vec![10.0; 9];
        gemm_packed(dims, &a, &b, &mut out);
        assert!(out.iter().all(|&x| (x - 12.0).abs() < 1e-6));
    }

    #[test]
    fn zero_times_nan_propagates() {
        // The seed's `av == 0.0` skip silently dropped NaN/Inf propagation: a zero row
        // in A multiplied against a NaN in B must produce NaN, not leave the output
        // untouched.
        let dims = MatDims::new(1, 2, 1);
        let a = vec![0.0];
        let b = vec![f32::NAN, f32::INFINITY];
        for kernel in [
            gemm_naive as fn(MatDims, &[f32], &[f32], &mut [f32]),
            |d, a, b, out: &mut [f32]| gemm_blocked(d, GemmBlocking::default(), a, b, out),
            gemm_packed,
        ] {
            let mut out = vec![0.0; 2];
            kernel(dims, &a, &b, &mut out);
            assert!(out[0].is_nan(), "0 * NaN must be NaN");
            assert!(out[1].is_nan(), "0 * inf must be NaN");
        }
    }

    #[test]
    #[should_panic(expected = "lhs too short")]
    fn short_input_panics() {
        let dims = MatDims::new(2, 2, 2);
        let a = vec![0.0; 3];
        let b = vec![0.0; 4];
        let mut out = vec![0.0; 4];
        gemm_naive(dims, &a, &b, &mut out);
    }
}
