//! Persistent worker pool powering the kernel engine's data parallelism.
//!
//! # Architecture
//!
//! The engine parallelizes by splitting output buffers into disjoint chunks and
//! handing each chunk to a worker ([`for_each_chunk`]). Earlier revisions spawned
//! scoped threads per call, which cost ~tens of µs of spawn/join per GEMM and meant
//! worker-side thread-local scratch arenas never survived a call. Dispatch now goes
//! through a lazily-initialized **persistent pool**:
//!
//! * **Parked workers.** The first parallel dispatch spawns `num_threads() − 1`
//!   workers (the submitting thread always participates as a worker itself). Idle
//!   workers park on a condvar; waking them is the only per-call cost.
//! * **Job-queue handoff.** A dispatch publishes a [`Job`] — a type-erased task
//!   plus an atomic chunk cursor — onto a shared queue and wakes the pool. Workers
//!   claim chunk indices with a `fetch_add`, so uneven chunk costs load-balance
//!   automatically, and several jobs can be in flight at once (concurrent
//!   submitters from different threads never block each other's progress: each
//!   submitter also executes its own job's chunks).
//! * **Graceful resize.** [`set_num_threads`] only stores the target; the pool
//!   grows (spawns) or shrinks (excess workers exit on their next wakeup) at the
//!   next dispatch. [`shutdown_pool`] parks the whole pool for idle teardown; the
//!   next dispatch transparently reinitializes it.
//! * **Panic containment.** A panicking task marks its job poisoned, remaining
//!   chunks of that job are drained without executing, and the panic payload is
//!   re-raised on the submitting thread. Workers survive task panics, and other
//!   in-flight jobs are unaffected — a panicking kernel can never deadlock the
//!   queue.
//! * **Worker-persistent scratch.** Because workers are long-lived, the
//!   thread-local [`scratch`](crate::scratch) arenas they populate persist across
//!   dispatches: in steady state the zero-allocation property holds on worker
//!   threads, not just the caller.
//!
//! # Determinism
//!
//! Results are bitwise identical for every thread count and every scheduling order:
//! the chunk decomposition is a pure function of the data length and `chunk_len`
//! (never of the worker count), every output element is written by exactly one
//! task, and each task uses one fixed accumulation order. Which worker executes a
//! chunk affects only wall-clock time. Dispatch from inside a pool worker (nested
//! parallelism) executes inline on that worker in ascending chunk order — the same
//! decomposition, so nesting cannot change results either. The multi-thread
//! determinism suite in `tests/engine_parity.rs` (run in CI under
//! `RESCNN_THREADS=1,2,4`) pins this down.
//!
//! The effective worker count comes from the calling thread's
//! [`EngineContext`](crate::EngineContext) override when one is installed, then
//! [`set_num_threads`], then the `RESCNN_THREADS` environment variable, then
//! `std::thread::available_parallelism`.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

use crate::cancel::CancellationToken;

static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads the engine may use (always at least 1).
///
/// A thread-scoped [`EngineContext`](crate::EngineContext) override takes
/// precedence over the process-wide setting, which lets concurrent pipelines run
/// with different thread budgets without racing on global state.
pub fn num_threads() -> usize {
    if let Some(threads) = crate::context::EngineContext::current().threads {
        return threads;
    }
    configured_num_threads()
}

/// The process-wide worker-thread setting, ignoring any thread-scoped override.
pub(crate) fn configured_num_threads() -> usize {
    let cached = NUM_THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let configured = std::env::var("RESCNN_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    NUM_THREADS.store(configured, Ordering::Relaxed);
    configured
}

/// Overrides the engine's process-wide worker-thread count (clamped to at least 1).
///
/// The persistent pool resizes gracefully at the next dispatch: it spawns
/// additional workers when the target grew and retires excess workers when it
/// shrank. For a per-call bound that does not mutate process state, use
/// [`EngineContext::with_threads`](crate::EngineContext::with_threads) instead.
pub fn set_num_threads(threads: usize) {
    NUM_THREADS.store(threads.max(1), Ordering::Relaxed);
}

/// Splits a thread budget between sample-level (outer) and kernel-level (inner)
/// parallelism, returning `(outer, inner)` with `outer * inner <= threads`.
///
/// The heuristic is deliberately simple: batch-level parallelism only pays once the
/// batch can occupy every worker, so `batch >= threads` runs one sample per worker
/// (`(threads, 1)`), and anything smaller keeps all threads on one sample at a time
/// (`(1, threads)`) — the inner row-chunk parallelism scales near-linearly (see the
/// PR 1 measurements in ROADMAP.md), whereas a partially-filled outer batch would
/// idle `threads − batch` workers for the whole batch.
pub fn split_parallelism(batch: usize, threads: usize) -> (usize, usize) {
    let threads = threads.max(1);
    if batch.max(1) >= threads {
        (threads, 1)
    } else {
        (1, threads)
    }
}

/// Runs `f(index)` for every index in `0..count` and returns the outcomes in
/// index order, splitting `threads` between batch-level and kernel-level
/// parallelism with [`split_parallelism`]. This is the one shared implementation
/// of indexed batch dispatch (used by `Network::forward_batch` and the core
/// `BatchScheduler`).
///
/// The caller's [`EngineContext`](crate::EngineContext) is snapshotted and
/// re-installed around every task — also on pool worker threads, which have no
/// ambient scope of their own — with only the thread budget replaced by the
/// inner split. Results are therefore identical to running `f` sequentially in
/// the caller's scope, whatever the schedule.
pub fn parallel_map_indexed<R, F>(count: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let (outer, inner) = split_parallelism(count, threads);
    let mut task_context = crate::context::EngineContext::current();
    task_context.threads = Some(inner.max(1));
    if outer <= 1 {
        return task_context.scope(|| (0..count).map(f).collect());
    }
    // Pool workers have no ambient scopes of their own: carry the submitting
    // thread's cancellation token (like the engine context above) onto them.
    let token = crate::cancel::CancellationToken::current();
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(count).collect();
    // The dispatching scope bounds how many pool workers join the outer batch.
    // The token is masked around the slot-fill dispatch (every slot must be
    // recorded, cancelled or not) and re-installed inside each task.
    crate::cancel::mask_token_scope(|| {
        crate::context::EngineContext::new().with_threads(outer).scope(|| {
            for_each_chunk(&mut slots, 1, true, |index, slot| {
                slot[0] = Some(crate::cancel::with_token_scope(token.as_ref(), || {
                    task_context.scope(|| f(index))
                }));
            });
        });
    });
    slots.into_iter().map(|slot| slot.expect("every batch slot was executed")).collect()
}

/// Renders a panic payload as a human-readable message, for converting caught
/// task panics into per-request error records. `&str` and `String` payloads
/// (what `panic!` produces) come through verbatim; anything else gets a
/// placeholder.
pub fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(msg) = payload.downcast_ref::<&str>() {
        (*msg).to_string()
    } else if let Some(msg) = payload.downcast_ref::<String>() {
        msg.clone()
    } else {
        "task panicked with a non-string payload".to_string()
    }
}

/// [`parallel_map_indexed`] with **per-task panic isolation**: a panicking task
/// yields `Err(message)` in its own slot instead of poisoning the job and
/// re-raising on the submitter, so every other task still completes and returns
/// its result.
///
/// The catch wraps only the caller's `f` — the surrounding
/// [`EngineContext`](crate::EngineContext) scope (and any scoped calibration
/// installed inside `f`) unwinds through its drop guards as usual, so a caught
/// panic cannot leak thread-scoped state onto a pool worker. Because the pool's
/// job never observes the panic, the job is never poisoned: the chunk
/// decomposition, scheduling, and surviving tasks' results are identical to a
/// run where the panicking task had merely returned an error, for every thread
/// count.
///
/// A [`CancellationToken`](crate::CancellationToken) in scope is honoured at
/// *task* boundaries here: a task whose token has fired before it starts
/// yields `Err("cancelled …")` without running, and a task whose token fires
/// mid-run has its (partially-skipped, garbage) result replaced by the same
/// error — cancelled work can never leak data out of the isolation boundary.
pub fn parallel_map_isolated<R, F>(
    count: usize,
    threads: usize,
    f: F,
) -> Vec<std::result::Result<R, String>>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    parallel_map_indexed(count, threads, |index| {
        let token = crate::cancel::CancellationToken::current();
        if token.as_ref().is_some_and(CancellationToken::is_cancelled) {
            return Err(format!("cancelled before start: task {index}"));
        }
        let result = catch_unwind(AssertUnwindSafe(|| f(index))).map_err(panic_message);
        if token.is_some_and(|t| t.is_cancelled()) {
            return Err(format!("cancelled mid-run: task {index}"));
        }
        result
    })
}

/// A type-erased parallel task: `call(chunk_index)` for indices `0..total`.
///
/// The raw pointer refers into the submitting thread's stack frame; it is only
/// dereferenced for chunk indices below `total`, all of which complete before the
/// submitter returns from [`for_each_chunk`], so the referent always outlives use.
struct Job {
    task: *const (dyn Fn(usize) + Sync),
    /// Next chunk index to claim.
    cursor: AtomicUsize,
    /// Total number of chunks.
    total: usize,
    /// Pool workers still allowed to join this job (decremented under the pool
    /// lock). Bounds the job's parallelism to its submitter's thread budget even
    /// when the shared pool is larger.
    tickets: AtomicUsize,
    /// The submitter's total worker budget for this job (including itself):
    /// concurrent resize requests must not shrink the pool below what in-flight
    /// jobs were promised.
    workers: usize,
    /// Set once any chunk of this job panics; remaining chunks drain without running.
    poisoned: AtomicBool,
    /// Completed-chunk count plus the first panic payload, guarded for the condvar.
    done: Mutex<JobDone>,
    done_signal: Condvar,
}

// Safety: the task pointer is only dereferenced while the submitting thread blocks
// in `for_each_chunk` (see `Job` docs); the closure itself is `Sync`, so calling it
// from several threads is sound.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

struct JobDone {
    completed: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Job {
    /// Claims and executes chunks until the job is exhausted. Returns once this
    /// thread can make no further progress on the job (other threads may still be
    /// finishing chunks they claimed).
    fn work(&self) {
        loop {
            let index = self.cursor.fetch_add(1, Ordering::Relaxed);
            if index >= self.total {
                return;
            }
            let result = if self.poisoned.load(Ordering::Acquire) {
                Ok(())
            } else {
                // Dereference is in-bounds: index < total (see `Job` docs).
                catch_unwind(AssertUnwindSafe(|| unsafe { (*self.task)(index) }))
            };
            let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
            if let Err(payload) = result {
                self.poisoned.store(true, Ordering::Release);
                done.panic.get_or_insert(payload);
            }
            done.completed += 1;
            if done.completed == self.total {
                self.done_signal.notify_all();
            }
        }
    }

    /// Blocks until every chunk has completed, then re-raises any task panic.
    fn wait(&self) {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        while done.completed < self.total {
            done = self.done_signal.wait(done).unwrap_or_else(|e| e.into_inner());
        }
        if let Some(payload) = done.panic.take() {
            drop(done);
            resume_unwind(payload);
        }
    }

    fn exhausted(&self) -> bool {
        self.cursor.load(Ordering::Relaxed) >= self.total
    }
}

/// Shared pool state: the job queue and the worker census.
struct PoolState {
    /// In-flight jobs. A job is pushed at submit and removed by its submitter once
    /// fully complete; workers skip exhausted jobs.
    jobs: Vec<Arc<Job>>,
    /// Workers currently live (parked or running).
    alive: usize,
    /// Desired pool size; excess workers retire at their next wakeup.
    target: usize,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here; signalled on new jobs and on resize/shutdown.
    work_signal: Condvar,
    /// Signalled by each retiring worker so shutdown can await an empty pool.
    retire_signal: Condvar,
}

static POOL: OnceLock<PoolShared> = OnceLock::new();

fn pool() -> &'static PoolShared {
    POOL.get_or_init(|| PoolShared {
        state: Mutex::new(PoolState { jobs: Vec::new(), alive: 0, target: 0 }),
        work_signal: Condvar::new(),
        retire_signal: Condvar::new(),
    })
}

thread_local! {
    /// True on pool worker threads; nested dispatch from a worker runs inline.
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn worker_main(shared: &'static PoolShared) {
    IS_POOL_WORKER.with(|flag| flag.set(true));
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                // A plain shrink retires immediately (resize tests rely on
                // excess workers leaving at their next wakeup); a *shutdown*
                // (target == 0) drains first — queued jobs are claimed and
                // finished before this worker retires.
                let draining = state.target == 0;
                if !draining && state.alive > state.target {
                    state.alive -= 1;
                    shared.retire_signal.notify_all();
                    return;
                }
                let available = state
                    .jobs
                    .iter()
                    .find(|job| !job.exhausted() && job.tickets.load(Ordering::Relaxed) > 0);
                if let Some(job) = available {
                    // Claimed under the pool lock, so the ticket count never races.
                    job.tickets.fetch_sub(1, Ordering::Relaxed);
                    break Arc::clone(job);
                }
                if state.alive > state.target {
                    state.alive -= 1;
                    shared.retire_signal.notify_all();
                    return;
                }
                state = shared.work_signal.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        };
        job.work();
    }
}

/// Grows or shrinks the pool toward `target` workers. Growth is synchronous
/// (threads are spawned before returning); shrinking is lazy (excess workers
/// retire at their next wakeup, triggered here) and never drops below what
/// unfinished in-flight jobs were promised — a concurrent narrow-budget
/// submitter must not retire workers out from under a wide job mid-run.
fn resize_pool(shared: &'static PoolShared, target: usize) {
    let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    let in_flight = state
        .jobs
        .iter()
        .filter(|job| !job.exhausted())
        .map(|job| job.workers.saturating_sub(1))
        .max()
        .unwrap_or(0);
    let target = target.max(in_flight);
    state.target = target;
    if state.alive > target {
        shared.work_signal.notify_all();
    }
    // Wake any in-progress shutdown_pool so it observes the raised target and
    // cedes to the new work instead of waiting forever.
    shared.retire_signal.notify_all();
    while state.alive < target {
        // Failing to spawn (resource exhaustion) degrades to fewer workers; the
        // submitting thread always makes progress on its own.
        let spawned: std::io::Result<JoinHandle<()>> = std::thread::Builder::new()
            .name("rescnn-pool-worker".into())
            .spawn(move || worker_main(shared));
        match spawned {
            Ok(handle) => {
                drop(handle); // detached: lifecycle is tracked via the census
                state.alive += 1;
            }
            Err(_) => break,
        }
    }
}

/// What a [`shutdown_pool`] drain observed and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DrainReport {
    /// Jobs with unclaimed chunks at the moment the drain began. Every one of
    /// them was finished before the drain completed: workers drain queued work
    /// before retiring, and each job's submitter drives its own job regardless.
    pub jobs_in_flight: usize,
    /// True when a concurrent dispatch raised the pool target while the drain
    /// was waiting — the shutdown ceded to the new work and the pool stayed up.
    pub superseded: bool,
    /// Jobs still holding unclaimed chunks *after* the drain completed. Always
    /// zero on a non-superseded drain (the invariant a graceful server
    /// shutdown pins its tests on); a superseded drain may observe the new
    /// work's jobs here.
    pub abandoned: usize,
}

/// Retires every pool worker and blocks until they have all exited, returning
/// what the drain observed.
///
/// Intended for idle teardown (e.g. a server draining before exit); the next
/// parallel dispatch transparently respawns the pool. Drain semantics: workers
/// finish queued jobs before retiring (a shutdown never abandons unclaimed
/// chunks — and even a worker-less pool cannot lose work, because every job's
/// submitter executes and awaits its own job). If another thread dispatches
/// parallel work *while* the shutdown is draining, that dispatch revives the
/// pool and the shutdown request is superseded: this function returns with
/// [`DrainReport::superseded`] set (rather than blocking until the process
/// goes idle) and the pool stays up for the new work.
pub fn shutdown_pool() -> DrainReport {
    let shared = pool();
    let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    let jobs_in_flight = state.jobs.iter().filter(|job| !job.exhausted()).count();
    state.target = 0;
    shared.work_signal.notify_all();
    while state.alive > 0 && state.target == 0 {
        state = shared.retire_signal.wait(state).unwrap_or_else(|e| e.into_inner());
    }
    let abandoned = state.jobs.iter().filter(|job| !job.exhausted()).count();
    DrainReport { jobs_in_flight, superseded: state.target != 0, abandoned }
}

/// Number of live pool workers (parked or running). Observability for tests and
/// serving diagnostics; the submitting thread is not counted.
pub fn pool_size() -> usize {
    pool().state.lock().unwrap_or_else(|e| e.into_inner()).alive
}

/// Runs `task(i)` for every `i` in `0..total` across the persistent pool,
/// blocking until all have completed. The submitting thread participates, so at
/// most `workers - 1` pool workers join in.
fn run_on_pool(total: usize, workers: usize, task: &(dyn Fn(usize) + Sync)) {
    let shared = pool();
    // Erase the stack lifetime: `Job` documents why the pointer never dangles.
    let task: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
    let job = Arc::new(Job {
        task,
        cursor: AtomicUsize::new(0),
        total,
        tickets: AtomicUsize::new(workers.saturating_sub(1)),
        workers,
        poisoned: AtomicBool::new(false),
        done: Mutex::new(JobDone { completed: 0, panic: None }),
        done_signal: Condvar::new(),
    });
    // The pool tracks the process-wide setting; a larger per-call context budget
    // grows it further for this dispatch.
    resize_pool(shared, workers.max(configured_num_threads()).saturating_sub(1));
    {
        let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.jobs.push(Arc::clone(&job));
        shared.work_signal.notify_all();
    }
    job.work();
    let outcome = catch_unwind(AssertUnwindSafe(|| job.wait()));
    {
        let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.jobs.retain(|other| !Arc::ptr_eq(other, &job));
    }
    if let Err(payload) = outcome {
        resume_unwind(payload);
    }
}

/// Splits `data` into consecutive chunks of `chunk_len` elements (the final chunk may
/// be shorter) and invokes `f(chunk_index, chunk)` for every chunk, on pool workers
/// when `parallel` is set and the configuration allows it.
///
/// Chunks are claimed from a shared cursor, so uneven chunk costs load-balance
/// automatically. `f` must be safe to call concurrently; each invocation owns its
/// chunk exclusively. Called from inside a pool worker (nested parallelism), the
/// chunks run inline on that worker in ascending order.
pub fn for_each_chunk<T, F>(data: &mut [T], chunk_len: usize, parallel: bool, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    let n_chunks = data.len().div_ceil(chunk_len);
    let nested = IS_POOL_WORKER.with(|flag| flag.get());
    let workers = if parallel && !nested { num_threads().min(n_chunks) } else { 1 };
    // Snapshotted once per dispatch; checked at every chunk boundary. A fired
    // token skips the remaining chunk bodies (output is then unspecified — the
    // scope that installed the token discards the result).
    let token = CancellationToken::current();
    if workers <= 1 {
        for (index, chunk) in data.chunks_mut(chunk_len).enumerate() {
            if let Some(token) = &token {
                if token.is_cancelled() {
                    return;
                }
            }
            f(index, chunk);
        }
        return;
    }
    let len = data.len();
    let base = SendPtr(data.as_mut_ptr());
    run_on_pool(n_chunks, workers, &move |index: usize| {
        if let Some(token) = &token {
            if token.is_cancelled() {
                return;
            }
        }
        let start = index * chunk_len;
        let end = (start + chunk_len).min(len);
        // Safety: chunk windows [start, end) are pairwise disjoint across indices
        // and in-bounds, and `data` is exclusively borrowed for the whole dispatch.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        f(index, chunk);
    });
}

/// Runs `f(index)` for every `index` in `0..total` on the persistent pool (when
/// `parallel` allows), without slicing a data buffer.
///
/// [`for_each_chunk`] hands each task a contiguous `&mut` window, which fits
/// kernels whose output decomposes into consecutive runs. Some kernels produce
/// *strided* disjoint regions instead — the Winograd convolution, for example,
/// writes a range of output rows in **every** output-channel plane per task — so
/// this variant dispatches bare indices and leaves the (disjoint) data access to
/// the caller. `f` must be safe to call concurrently and tasks must touch
/// pairwise-disjoint data.
///
/// The determinism contract matches [`for_each_chunk`]: the index decomposition
/// is `0..total` regardless of worker count, so as long as each output element is
/// written by exactly one task in one fixed order, results are bitwise identical
/// for every thread count. Called from inside a pool worker (nested parallelism),
/// the indices run inline on that worker in ascending order.
pub fn for_each_task<F>(total: usize, parallel: bool, f: F)
where
    F: Fn(usize) + Sync,
{
    let nested = IS_POOL_WORKER.with(|flag| flag.get());
    let workers = if parallel && !nested { num_threads().min(total) } else { 1 };
    let token = CancellationToken::current();
    if workers <= 1 {
        for index in 0..total {
            if let Some(token) = &token {
                if token.is_cancelled() {
                    return;
                }
            }
            f(index);
        }
        return;
    }
    run_on_pool(total, workers, &move |index: usize| {
        if let Some(token) = &token {
            if token.is_cancelled() {
                return;
            }
        }
        f(index);
    });
}

/// Legacy dispatch: spawns scoped threads per call instead of using the persistent
/// pool. Kept as the measured baseline for the pool's dispatch-overhead benchmarks
/// (`pipeline_throughput`); kernels must not use it.
pub fn for_each_chunk_scoped<T, F>(data: &mut [T], chunk_len: usize, parallel: bool, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    let n_chunks = data.len().div_ceil(chunk_len);
    let workers = if parallel { num_threads().min(n_chunks) } else { 1 };
    if workers <= 1 {
        for (index, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(index, chunk);
        }
        return;
    }
    let queue = Mutex::new(data.chunks_mut(chunk_len).enumerate());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = queue.lock().expect("worker panicked holding queue").next();
                match next {
                    Some((index, chunk)) => f(index, chunk),
                    None => break,
                }
            });
        }
    });
}

/// A raw pointer that may cross thread boundaries (the chunk decomposition above
/// guarantees disjoint access).
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Accessor (rather than direct field use) so closures capture the whole
    /// wrapper instead of the bare `*mut T`, keeping them `Sync`.
    fn get(&self) -> *mut T {
        self.0
    }
}

unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_is_configurable() {
        let _guard = crate::test_sync::global_state_lock();
        let original = num_threads();
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(0);
        assert_eq!(num_threads(), 1, "zero clamps to one");
        set_num_threads(original);
    }

    #[test]
    fn chunks_cover_all_data_serial_and_parallel() {
        let _guard = crate::test_sync::global_state_lock();
        let original = num_threads();
        for threads in [1usize, 4] {
            set_num_threads(threads);
            let mut data = vec![0u64; 1003];
            for_each_chunk(&mut data, 64, true, |index, chunk| {
                for (offset, value) in chunk.iter_mut().enumerate() {
                    *value = (index * 64 + offset) as u64;
                }
            });
            assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
        }
        set_num_threads(original);
    }

    #[test]
    fn chunk_indices_match_positions() {
        let mut data = vec![0usize; 10];
        for_each_chunk(&mut data, 4, false, |index, chunk| {
            assert_eq!(chunk.len(), if index == 2 { 2 } else { 4 });
            chunk.fill(index);
        });
        assert_eq!(data, [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn scoped_baseline_matches_pool_dispatch() {
        let _guard = crate::test_sync::global_state_lock();
        let original = num_threads();
        set_num_threads(4);
        let mut pooled = vec![0u32; 257];
        let mut scoped = vec![0u32; 257];
        for_each_chunk(&mut pooled, 16, true, |i, c| c.fill(i as u32 + 1));
        for_each_chunk_scoped(&mut scoped, 16, true, |i, c| c.fill(i as u32 + 1));
        assert_eq!(pooled, scoped);
        set_num_threads(original);
    }

    #[test]
    fn nested_dispatch_runs_inline_without_deadlock() {
        let _guard = crate::test_sync::global_state_lock();
        let original = num_threads();
        set_num_threads(4);
        let mut data = vec![0u64; 64];
        for_each_chunk(&mut data, 8, true, |outer, chunk| {
            let mut inner = vec![0u64; 32];
            for_each_chunk(&mut inner, 4, true, |i, c| c.fill(i as u64));
            let inner_sum: u64 = inner.iter().sum();
            chunk.fill(outer as u64 * 1000 + inner_sum);
        });
        let expect_inner: u64 = (0..8u64).map(|i| i * 4).sum();
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i / 8) as u64 * 1000 + expect_inner);
        }
        set_num_threads(original);
    }

    #[test]
    fn split_heuristic_prefers_inner_for_small_batches() {
        assert_eq!(split_parallelism(1, 8), (1, 8));
        assert_eq!(split_parallelism(4, 8), (1, 8));
        assert_eq!(split_parallelism(8, 8), (8, 1));
        assert_eq!(split_parallelism(32, 8), (8, 1));
        assert_eq!(split_parallelism(5, 1), (1, 1));
        assert_eq!(split_parallelism(0, 3), (1, 3));
    }

    #[test]
    fn parallel_map_preserves_order_and_carries_caller_context() {
        let _guard = crate::test_sync::global_state_lock();
        let original = num_threads();
        set_num_threads(4);
        let caller = crate::context::EngineContext::new().with_algo(crate::conv::ConvAlgo::Direct);
        // Batch >= threads forces the outer (pool-worker) path; every task must
        // still observe the caller's algorithm override and its inner budget.
        let observed = caller.scope(|| {
            parallel_map_indexed(16, 4, |index| {
                let ctx = crate::context::EngineContext::current();
                (index, ctx.algo, ctx.threads)
            })
        });
        for (position, (index, algo, threads)) in observed.iter().enumerate() {
            assert_eq!(*index, position, "results must come back in index order");
            assert_eq!(*algo, Some(crate::conv::ConvAlgo::Direct), "caller algo dropped");
            assert_eq!(*threads, Some(1), "outer batch must single-thread each task");
        }
        // Small batch: sequential path, full inner budget.
        let observed = parallel_map_indexed(2, 4, |index| {
            (index, crate::context::EngineContext::current().threads)
        });
        assert_eq!(observed, vec![(0, Some(4)), (1, Some(4))]);
        set_num_threads(original);
    }

    #[test]
    fn isolated_map_contains_panics_to_their_own_slot() {
        let _guard = crate::test_sync::global_state_lock();
        let original = num_threads();
        for threads in [1usize, 2, 4] {
            set_num_threads(threads);
            // Batch >= threads exercises the pool-worker path at 2 and 4.
            let outcomes = parallel_map_isolated(8, threads, |index| {
                if index == 3 {
                    panic!("request {index} exploded");
                }
                index * 10
            });
            for (index, outcome) in outcomes.iter().enumerate() {
                if index == 3 {
                    let message = outcome.as_ref().unwrap_err();
                    assert!(message.contains("request 3 exploded"), "got {message:?}");
                } else {
                    assert_eq!(
                        *outcome,
                        Ok(index * 10),
                        "survivor {index} under {threads} threads"
                    );
                }
            }
        }
        set_num_threads(original);
    }

    #[test]
    fn isolated_map_leaves_the_pool_usable_and_scopes_clean() {
        let _guard = crate::test_sync::global_state_lock();
        let original = num_threads();
        set_num_threads(4);
        // A panicking task must not leak its EngineContext onto a pool worker:
        // the next dispatch on the same workers observes no stale override.
        let _ = parallel_map_isolated(8, 4, |index| {
            if index % 2 == 0 {
                panic!("boom {index}");
            }
            index
        });
        let contexts = parallel_map_indexed(8, 4, |_| crate::context::EngineContext::current());
        for ctx in contexts {
            assert_eq!(ctx.algo, None, "panicked task leaked scoped state onto a worker");
        }
        // The pool itself still dispatches normally.
        let mut data = vec![0u64; 256];
        for_each_chunk(&mut data, 16, true, |i, c| c.fill(i as u64));
        assert!(data.iter().enumerate().all(|(i, &v)| v == (i / 16) as u64));
        set_num_threads(original);
    }

    #[test]
    fn cancelled_token_skips_remaining_chunks() {
        let _guard = crate::test_sync::global_state_lock();
        let original = num_threads();
        for threads in [1usize, 4] {
            set_num_threads(threads);
            // Pre-cancelled: no chunk body may run, serial or pooled.
            let token = CancellationToken::new();
            token.cancel();
            let mut data = vec![0u64; 128];
            token.scope(|| {
                for_each_chunk(&mut data, 8, true, |_, chunk| chunk.fill(7));
            });
            assert!(data.iter().all(|&v| v == 0), "cancelled dispatch ran a chunk");
            let ran = AtomicUsize::new(0);
            token.scope(|| {
                for_each_task(16, true, |_| {
                    ran.fetch_add(1, Ordering::Relaxed);
                })
            });
            assert_eq!(ran.load(Ordering::Relaxed), 0);
            // Without cancellation the same scoped dispatch is unaffected.
            let live = CancellationToken::new();
            live.scope(|| for_each_chunk(&mut data, 8, true, |_, chunk| chunk.fill(7)));
            assert!(data.iter().all(|&v| v == 7));
        }
        set_num_threads(original);
    }

    #[test]
    fn isolated_map_reports_cancellation_as_task_errors() {
        let _guard = crate::test_sync::global_state_lock();
        let original = num_threads();
        set_num_threads(4);
        let token = CancellationToken::new();
        token.cancel();
        let outcomes = token.scope(|| parallel_map_isolated(6, 4, |index| index * 2));
        for outcome in &outcomes {
            let message = outcome.as_ref().expect_err("cancelled tasks must error, not run");
            assert!(message.contains("cancelled"), "got {message:?}");
        }
        // A token that fires mid-task replaces that task's result with an error.
        let mid = CancellationToken::new();
        let inner = mid.clone();
        let outcomes = mid.scope(|| {
            parallel_map_isolated(1, 1, move |index| {
                inner.cancel();
                index
            })
        });
        assert!(outcomes[0].as_ref().is_err_and(|m| m.contains("mid-run")));
        set_num_threads(original);
    }

    #[test]
    fn panic_message_renders_common_payloads() {
        let caught = catch_unwind(|| panic!("plain str")).unwrap_err();
        assert_eq!(panic_message(caught), "plain str");
        let caught = catch_unwind(|| panic!("{} {}", "formatted", 7)).unwrap_err();
        assert_eq!(panic_message(caught), "formatted 7");
        let caught = catch_unwind(|| std::panic::panic_any(42i32)).unwrap_err();
        assert!(panic_message(caught).contains("non-string"));
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let _guard = crate::test_sync::global_state_lock();
        let original = num_threads();
        set_num_threads(4);
        let results: Vec<Vec<u64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|submitter| {
                    scope.spawn(move || {
                        let mut data = vec![0u64; 500];
                        for_each_chunk(&mut data, 16, true, |i, c| {
                            c.fill(submitter as u64 * 10_000 + i as u64)
                        });
                        data
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (submitter, data) in results.iter().enumerate() {
            for (pos, &v) in data.iter().enumerate() {
                assert_eq!(v, submitter as u64 * 10_000 + (pos / 16) as u64);
            }
        }
        set_num_threads(original);
    }
}
