//! Thread-pool-free data parallelism for the kernel engine.
//!
//! The engine parallelizes by splitting output buffers into disjoint chunks and
//! handing each chunk to a scoped worker thread ([`for_each_chunk`]). Because every
//! output element is computed by exactly one task, in one fixed accumulation order,
//! results are bitwise identical for every thread count — the property the
//! multi-thread determinism tests in `tests/engine_parity.rs` pin down.
//!
//! The worker count comes from [`set_num_threads`], the `RESCNN_THREADS`
//! environment variable, or `std::thread::available_parallelism`, in that order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads the engine may use (always at least 1).
pub fn num_threads() -> usize {
    let cached = NUM_THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let configured = std::env::var("RESCNN_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    NUM_THREADS.store(configured, Ordering::Relaxed);
    configured
}

/// Overrides the engine's worker-thread count (clamped to at least 1).
///
/// Benchmarks use this to sweep thread counts; servers use it to bound kernel
/// parallelism per request.
pub fn set_num_threads(threads: usize) {
    NUM_THREADS.store(threads.max(1), Ordering::Relaxed);
}

/// Splits `data` into consecutive chunks of `chunk_len` elements (the final chunk may
/// be shorter) and invokes `f(chunk_index, chunk)` for every chunk, on worker threads
/// when `parallel` is set and the configuration allows it.
///
/// Chunks are distributed through a shared work queue, so uneven chunk costs
/// load-balance automatically. `f` must be safe to call concurrently; each invocation
/// owns its chunk exclusively.
pub fn for_each_chunk<T, F>(data: &mut [T], chunk_len: usize, parallel: bool, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    let n_chunks = data.len().div_ceil(chunk_len);
    let workers = if parallel { num_threads().min(n_chunks) } else { 1 };
    if workers <= 1 {
        for (index, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(index, chunk);
        }
        return;
    }
    let queue = Mutex::new(data.chunks_mut(chunk_len).enumerate());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = queue.lock().expect("worker panicked holding queue").next();
                match next {
                    Some((index, chunk)) => f(index, chunk),
                    None => break,
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_is_configurable() {
        let _guard = crate::test_sync::global_state_lock();
        let original = num_threads();
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(0);
        assert_eq!(num_threads(), 1, "zero clamps to one");
        set_num_threads(original);
    }

    #[test]
    fn chunks_cover_all_data_serial_and_parallel() {
        let _guard = crate::test_sync::global_state_lock();
        let original = num_threads();
        for threads in [1usize, 4] {
            set_num_threads(threads);
            let mut data = vec![0u64; 1003];
            for_each_chunk(&mut data, 64, true, |index, chunk| {
                for (offset, value) in chunk.iter_mut().enumerate() {
                    *value = (index * 64 + offset) as u64;
                }
            });
            assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
        }
        set_num_threads(original);
    }

    #[test]
    fn chunk_indices_match_positions() {
        let mut data = vec![0usize; 10];
        for_each_chunk(&mut data, 4, false, |index, chunk| {
            assert_eq!(chunk.len(), if index == 2 { 2 } else { 4 });
            chunk.fill(index);
        });
        assert_eq!(data, [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
    }
}
