//! The packed GEMM execution core.
//!
//! This module implements the register-blocked microkernel and panel packing that
//! every fast execution path (packed GEMM, 1×1 convolution, packed im2col
//! convolution) is built on:
//!
//! * **Microkernel** — an [`MR`]`×`[`NR`] f32 accumulator tile kept entirely in
//!   registers while streaming over the shared dimension. With
//!   `-C target-cpu=native` (set in `.cargo/config.toml`) the inner loop compiles to
//!   FMA vector code.
//! * **Packing** — A is repacked into `MR`-row column-major panels and B into
//!   `NR`-column row-major panels, so the microkernel reads both operands at stride
//!   1 regardless of the original layouts. Panels live in the thread-local
//!   [`scratch`](crate::scratch) arena and are reused across layers.
//! * **Parallelism** — output rows are split into panel-aligned chunks executed on
//!   the persistent worker pool ([`parallel::for_each_chunk`]): per-call dispatch
//!   cost is a worker wakeup, and long-lived workers keep their scratch arenas warm
//!   across calls. Each output element is produced by exactly one task in one fixed
//!   accumulation order, so results are bitwise identical for every thread count.
//!
//! The convolution dispatch layer in [`conv`](crate::conv) lowers convolutions onto
//! [`packed_gemm_strided`]; dense GEMM callers use the [`crate::gemm_packed`]
//! wrapper.

use crate::{parallel, scratch};

/// True when the AVX-512 microkernel is compiled in.
const HAS_AVX512: bool = cfg!(all(target_arch = "x86_64", target_feature = "avx512f"));

/// Microkernel tile height (rows of A / C).
pub const MR: usize = 6;

/// Microkernel tile width (columns of B / C): two vectors per accumulator row —
/// 6×32 with AVX-512 (12 zmm accumulators), 6×16 with AVX2 (12 ymm accumulators
/// plus two B vectors and one broadcast fit the 16 registers). The tile shape is
/// fixed at compile time because the packed-panel layouts depend on it.
pub const NR: usize = if HAS_AVX512 { 32 } else { 16 };

/// Shared-dimension block size: one `KC × NR` B block (16–32 KiB) stays L1-resident
/// while it is reused across every row tile of a worker's chunk.
pub const KC: usize = 256;

/// Row-chunk height handed to one worker task: several microkernel tiles, so each
/// L1-resident B block amortizes across [`MC`]` / `[`MR`] tiles.
pub const MC: usize = 8 * MR;

/// Work (in multiply–accumulates) below which spawning worker threads costs more
/// than it saves.
pub const PARALLEL_MIN_MACS: u64 = 1 << 20;

/// Number of f32 elements a packed B stripe may occupy (4 MiB), bounding scratch
/// memory for high-resolution layers.
pub const MAX_B_PANEL_ELEMS: usize = 1 << 20;

/// Pointwise activation fused into a kernel's output write (the GEMM epilogue or
/// the Winograd output transform), saving the separate full-tensor pass a caller
/// would otherwise run after the convolution.
///
/// Applying the same function in a fused or a separate pass is bitwise
/// equivalent (it is pointwise on the already-final value), so fusion never
/// changes results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FusedActivation {
    /// No activation: `y`.
    #[default]
    None,
    /// `max(y, 0)`.
    Relu,
    /// `clamp(y, 0, 6)` (the MobileNetV2 activation).
    Relu6,
}

impl FusedActivation {
    /// Applies the activation to one already-final value.
    #[inline]
    pub fn apply(self, y: f32) -> f32 {
        match self {
            FusedActivation::None => y,
            FusedActivation::Relu => y.max(0.0),
            FusedActivation::Relu6 => y.clamp(0.0, 6.0),
        }
    }
}

/// The fused tail of an overwrite-mode GEMM: per-row bias, an optional residual
/// add, and a pointwise activation, all applied in the output write of the final
/// KC slice instead of separate sweeps over the destination.
///
/// Ordering matches the separate-pass composition exactly — partial sums
/// accumulate across KC slices, then `y += residual`, then `y = activation(y)` —
/// so a fused epilogue is bitwise identical to running the convolution followed
/// by `add_relu_in_place`-style passes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Epilogue<'a> {
    /// Per-row constants added to every element of the row (`None` = 0.0),
    /// indexed relative to the call's `row0`.
    pub bias: Option<&'a [f32]>,
    /// Residual operand added elementwise after the reduction completes,
    /// indexed exactly like the destination window (`r * row_stride +
    /// col_offset + j`).
    pub residual: Option<&'a [f32]>,
    /// Activation applied last.
    pub activation: FusedActivation,
}

impl<'a> Epilogue<'a> {
    /// An epilogue that only adds the per-row bias (the historical Overwrite
    /// behaviour).
    pub fn with_bias(bias: Option<&'a [f32]>) -> Self {
        Epilogue { bias, residual: None, activation: FusedActivation::None }
    }
}

/// How C rows are written back by [`packed_gemm_strided`].
#[derive(Debug, Clone, Copy)]
pub enum WriteMode<'a> {
    /// `C[r][j] = activation(acc + bias[r] + residual[r][j])` — used by
    /// convolutions, whose output tiles are computed in a single pass over the
    /// full shared dimension. Bias is added on the first KC slice; residual and
    /// activation apply on the last.
    Overwrite {
        /// The fused output tail.
        epilogue: Epilogue<'a>,
    },
    /// `C[r][j] += acc` — the historical GEMM contract (callers pre-initialize C).
    Accumulate,
}

/// The left-hand GEMM operand: either plain row-major data packed on the fly
/// (per KC slice, into scratch), or panels prepacked once by
/// [`PreparedGemmA::prepare`] — the layout weights are stored in so the hot
/// path never repacks them.
#[derive(Debug, Clone, Copy)]
pub enum GemmLhs<'a> {
    /// Row-major data with leading dimension `lda`; packed into panels per call.
    Rows {
        /// The matrix data.
        data: &'a [f32],
        /// Leading dimension (elements between consecutive rows).
        lda: usize,
    },
    /// Prepacked full-K panels: tile `t` (rows `[t*MR, t*MR+MR)`) occupies
    /// `panels[t*k*MR .. (t+1)*k*MR]` with element `(r, p)` at `p*MR + r`.
    /// `row0` must be `MR`-aligned when this variant is used.
    Packed {
        /// The packed panel buffer.
        panels: &'a [f32],
        /// Shared dimension the panels were packed for.
        k: usize,
    },
}

/// A left-hand GEMM operand packed once into microkernel panel layout.
///
/// In this engine convolution weights are the *left* operand of every lowered
/// GEMM (`C[out_ch][pixels] = W[out_ch][k] · im2col[k][pixels]`), so this is the
/// type conv/FC weights are prepacked into at model-load time: the per-call
/// [`pack_a_panel`] pass — identical for every forward, since weights never
/// change — disappears from the hot path. Packing is pure data movement, so
/// results are bitwise identical to the pack-per-call path.
#[derive(Debug, Clone)]
pub struct PreparedGemmA {
    panels: Vec<f32>,
    rows: usize,
    k: usize,
}

impl PreparedGemmA {
    /// Packs `rows × k` row-major data (leading dimension `lda`) into full-K
    /// `MR`-row panels. Tail rows of the last tile are zero-padded.
    pub fn prepare(a: &[f32], lda: usize, rows: usize, k: usize) -> Self {
        let tiles = rows.div_ceil(MR);
        let mut panels = vec![0.0f32; tiles * k * MR];
        for tile in 0..tiles {
            let tile_rows = MR.min(rows - tile * MR);
            pack_a_panel(a, tile * MR, tile_rows, 0, k, lda, &mut panels[tile * k * MR..]);
        }
        PreparedGemmA { panels, rows, k }
    }

    /// Logical rows the panels cover.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Shared dimension the panels were packed for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The operand view [`packed_gemm_strided`] consumes.
    pub fn as_lhs(&self) -> GemmLhs<'_> {
        GemmLhs::Packed { panels: &self.panels, k: self.k }
    }

    /// Bytes resident in the packed panels.
    pub fn resident_bytes(&self) -> usize {
        self.panels.len() * std::mem::size_of::<f32>()
    }
}

/// A right-hand GEMM operand packed once into [`pack_b`]'s `NR`-column panels.
///
/// Fully-connected weights are the *right* operand of the batched linear layer
/// (`logits[n][o] = x[n][i] · Wᵀ[i][o]`), so the classifier prepacks `Wᵀ` here
/// once instead of packing it on every forward.
#[derive(Debug, Clone)]
pub struct PreparedGemmB {
    panels: Vec<f32>,
    k: usize,
    cols: usize,
}

impl PreparedGemmB {
    /// Packs row-major `k × cols` data into `NR`-column panels.
    pub fn prepare(b: &[f32], k: usize, cols: usize) -> Self {
        let mut panels = vec![0.0f32; cols.div_ceil(NR) * k * NR];
        pack_b(b, k, cols, 0, cols, &mut panels);
        PreparedGemmB { panels, k, cols }
    }

    /// Packs the *transpose* of row-major `rows × k` data (so logical panel
    /// element `(p, j)` is `w[j*k + p]`) — the layout a fully-connected weight
    /// matrix `W[out][in]` needs to serve as the right operand `Wᵀ[in][out]`.
    pub fn prepare_transposed(w: &[f32], rows: usize, k: usize) -> Self {
        debug_assert!(w.len() >= rows * k);
        let cols = rows;
        let mut panels = vec![0.0f32; cols.div_ceil(NR) * k * NR];
        for j in 0..cols {
            let panel = j / NR;
            let within = j % NR;
            for p in 0..k {
                panels[panel * k * NR + p * NR + within] = w[j * k + p];
            }
        }
        PreparedGemmB { panels, k, cols }
    }

    /// The packed panel buffer, in the layout [`packed_gemm_strided`] expects.
    pub fn panels(&self) -> &[f32] {
        &self.panels
    }

    /// Shared dimension the panels were packed for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Logical columns the panels cover.
    pub fn cols(&self) -> usize {
        self.cols
    }
}

/// Packs `count` columns of row-major `src` (logical `rows × src_cols`, starting at
/// column `col0`) into `NR`-wide panels: panel `p` holds columns
/// `[p*NR, p*NR+NR)` as `rows` consecutive `NR`-element groups. Tail columns are
/// zero-padded (the destination must arrive zeroed, as [`scratch::take`]
/// guarantees).
pub fn pack_b(
    src: &[f32],
    rows: usize,
    src_cols: usize,
    col0: usize,
    count: usize,
    dst: &mut [f32],
) {
    let panels = count.div_ceil(NR);
    debug_assert!(dst.len() >= panels * rows * NR);
    for panel in 0..panels {
        let j0 = panel * NR;
        let width = NR.min(count - j0);
        let panel_dst = &mut dst[panel * rows * NR..(panel + 1) * rows * NR];
        for p in 0..rows {
            let src_row = &src[p * src_cols + col0 + j0..p * src_cols + col0 + j0 + width];
            panel_dst[p * NR..p * NR + width].copy_from_slice(src_row);
        }
    }
}

/// Packs up to [`MR`] rows × `count` columns of row-major `a` (leading dimension
/// `lda`, starting at `(row0, col0)`) into a column-major panel: element `(r, p)`
/// lands at `dst[p*MR + r]`. Missing tail rows are zero-padded (destination must
/// arrive zeroed).
pub fn pack_a_panel(
    a: &[f32],
    row0: usize,
    rows: usize,
    col0: usize,
    count: usize,
    lda: usize,
    dst: &mut [f32],
) {
    debug_assert!(rows <= MR && dst.len() >= count * MR);
    for r in 0..rows {
        let row = &a[(row0 + r) * lda + col0..(row0 + r) * lda + col0 + count];
        for (p, &value) in row.iter().enumerate() {
            dst[p * MR + r] = value;
        }
    }
}

/// The register-tiled inner kernel: accumulates `apanel · bpanel` over `k` steps
/// into an `MR × NR` tile. Panels must be laid out by [`pack_a_panel`] / [`pack_b`].
///
/// On x86-64 builds with AVX2+FMA enabled (the workspace builds with
/// `-C target-cpu=native`) this statically dispatches to a hand-scheduled intrinsics
/// kernel holding all 12 accumulator vectors in registers; other targets use a
/// portable loop that auto-vectorizes.
#[inline]
fn microkernel(k: usize, apanel: &[f32], bpanel: &[f32]) -> [[f32; NR]; MR] {
    #[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
    {
        microkernel_avx512(k, apanel, bpanel)
    }
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma",
        not(target_feature = "avx512f")
    ))]
    {
        microkernel_avx2(k, apanel, bpanel)
    }
    #[cfg(not(all(target_arch = "x86_64", target_feature = "avx2", target_feature = "fma")))]
    {
        microkernel_portable(k, apanel, bpanel)
    }
}

/// AVX-512 microkernel: 12 × `__m512` accumulators (6 rows × 32 columns), two B
/// loads and six A broadcasts per k-step.
///
/// Safety: only compiled when AVX-512F is statically enabled, so the intrinsics are
/// always executable; the `unsafe` blocks cover raw-pointer panel reads, whose
/// bounds (`k * MR` / `k * NR` elements) are asserted on entry.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
#[inline]
fn microkernel_avx512(k: usize, apanel: &[f32], bpanel: &[f32]) -> [[f32; NR]; MR] {
    use core::arch::x86_64::{
        __m512, _mm512_fmadd_ps, _mm512_loadu_ps, _mm512_set1_ps, _mm512_setzero_ps,
        _mm512_storeu_ps,
    };
    assert!(apanel.len() >= k * MR && bpanel.len() >= k * NR);
    unsafe {
        let mut acc: [[__m512; 2]; MR] = [[_mm512_setzero_ps(); 2]; MR];
        let mut ap = apanel.as_ptr();
        let mut bp = bpanel.as_ptr();
        for _ in 0..k {
            let b_lo = _mm512_loadu_ps(bp);
            let b_hi = _mm512_loadu_ps(bp.add(16));
            macro_rules! fma_row {
                ($r:literal) => {
                    let a = _mm512_set1_ps(*ap.add($r));
                    acc[$r][0] = _mm512_fmadd_ps(a, b_lo, acc[$r][0]);
                    acc[$r][1] = _mm512_fmadd_ps(a, b_hi, acc[$r][1]);
                };
            }
            fma_row!(0);
            fma_row!(1);
            fma_row!(2);
            fma_row!(3);
            fma_row!(4);
            fma_row!(5);
            ap = ap.add(MR);
            bp = bp.add(NR);
        }
        let mut out = [[0.0f32; NR]; MR];
        for r in 0..MR {
            _mm512_storeu_ps(out[r].as_mut_ptr(), acc[r][0]);
            _mm512_storeu_ps(out[r].as_mut_ptr().add(16), acc[r][1]);
        }
        out
    }
}

#[allow(dead_code)]
#[inline]
fn microkernel_portable(k: usize, apanel: &[f32], bpanel: &[f32]) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for (avals, bvals) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)).take(k) {
        let mut b = [0.0f32; NR];
        b.copy_from_slice(bvals);
        for r in 0..MR {
            let a = avals[r];
            for c in 0..NR {
                // `mul_add` lowers to a hardware FMA when the target has one; rustc
                // never contracts `a * b + c` on its own.
                if cfg!(target_feature = "fma") {
                    acc[r][c] = a.mul_add(b[c], acc[r][c]);
                } else {
                    acc[r][c] += a * b[c];
                }
            }
        }
    }
    acc
}

/// AVX2+FMA microkernel: 12 × `__m256` accumulators (6 rows × 16 columns), two B
/// loads and six A broadcasts per k-step — FMA-port bound rather than load bound.
///
/// Safety: only compiled when AVX2 and FMA are statically enabled, so the intrinsics
/// are always executable; the `unsafe` blocks cover raw-pointer panel reads, whose
/// bounds (`k * MR` / `k * NR` elements) are asserted on entry.
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma",
    not(target_feature = "avx512f")
))]
#[inline]
fn microkernel_avx2(k: usize, apanel: &[f32], bpanel: &[f32]) -> [[f32; NR]; MR] {
    use core::arch::x86_64::{
        __m256, _mm256_broadcast_ss, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_setzero_ps,
        _mm256_storeu_ps,
    };
    assert!(apanel.len() >= k * MR && bpanel.len() >= k * NR);
    unsafe {
        let mut acc: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
        let mut ap = apanel.as_ptr();
        let mut bp = bpanel.as_ptr();
        for _ in 0..k {
            let b_lo = _mm256_loadu_ps(bp);
            let b_hi = _mm256_loadu_ps(bp.add(8));
            // Fully unrolled over rows so every accumulator stays pinned to a register.
            macro_rules! fma_row {
                ($r:literal) => {
                    let a = _mm256_broadcast_ss(&*ap.add($r));
                    acc[$r][0] = _mm256_fmadd_ps(a, b_lo, acc[$r][0]);
                    acc[$r][1] = _mm256_fmadd_ps(a, b_hi, acc[$r][1]);
                };
            }
            fma_row!(0);
            fma_row!(1);
            fma_row!(2);
            fma_row!(3);
            fma_row!(4);
            fma_row!(5);
            ap = ap.add(MR);
            bp = bp.add(NR);
        }
        let mut out = [[0.0f32; NR]; MR];
        for r in 0..MR {
            _mm256_storeu_ps(out[r].as_mut_ptr(), acc[r][0]);
            _mm256_storeu_ps(out[r].as_mut_ptr().add(8), acc[r][1]);
        }
        out
    }
}

/// Writes one output row's epilogue slice: combine the accumulator with the
/// partial sum (or bias on a single-slice reduction), add the optional residual,
/// apply the activation. Monomorphized per activation so the inner loop is
/// branch-free.
#[inline]
fn write_row_epilogue(
    out_row: &mut [f32],
    acc_row: &[f32],
    first_slice: bool,
    base: f32,
    skip_row: Option<&[f32]>,
    activation: FusedActivation,
) {
    match activation {
        FusedActivation::None => {
            write_row_epilogue_with(out_row, acc_row, first_slice, base, skip_row, |y| y)
        }
        FusedActivation::Relu => {
            write_row_epilogue_with(out_row, acc_row, first_slice, base, skip_row, |y| y.max(0.0))
        }
        FusedActivation::Relu6 => {
            write_row_epilogue_with(out_row, acc_row, first_slice, base, skip_row, |y| {
                y.clamp(0.0, 6.0)
            })
        }
    }
}

#[inline]
fn write_row_epilogue_with(
    out_row: &mut [f32],
    acc_row: &[f32],
    first_slice: bool,
    base: f32,
    skip_row: Option<&[f32]>,
    act: impl Fn(f32) -> f32,
) {
    match skip_row {
        Some(skip) => {
            for ((o, &v), &s) in out_row.iter_mut().zip(acc_row).zip(skip) {
                let partial = if first_slice { v + base } else { *o + v };
                *o = act(partial + s);
            }
        }
        None => {
            for (o, &v) in out_row.iter_mut().zip(acc_row) {
                let partial = if first_slice { v + base } else { *o + v };
                *o = act(partial);
            }
        }
    }
}

/// Computes `rows` rows of `C = A · B` against pre-packed B panels, writing into a
/// strided destination.
///
/// * `lhs` — the left operand: row-major data packed per KC slice into scratch, or
///   panels prepacked once by [`PreparedGemmA`] (in which case `row0` must be
///   `MR`-aligned and the packed `k` must match). Rows `[row0, row0+rows)` are
///   consumed.
/// * `bpack` — B packed by [`pack_b`]: `cols` logical columns over a shared
///   dimension of `k`.
/// * `dst` — destination window. Logical element `(r, j)` (with `r` relative to
///   `row0`) is stored at `dst[r * row_stride + col_offset + j]`.
///
/// In [`WriteMode::Overwrite`] the epilogue's bias lands on the first KC slice and
/// its residual + activation on the last, so partial sums accumulate exactly as
/// the unfused path would before the pointwise tail runs — fused output is
/// bitwise identical to conv-then-separate-passes.
///
/// The caller guarantees `dst` is large enough; out-of-range tile tails are never
/// touched.
#[allow(clippy::too_many_arguments)]
pub fn packed_gemm_strided(
    lhs: GemmLhs<'_>,
    row0: usize,
    rows: usize,
    k: usize,
    bpack: &[f32],
    cols: usize,
    dst: &mut [f32],
    row_stride: usize,
    col_offset: usize,
    mode: WriteMode<'_>,
) {
    let col_panels = cols.div_ceil(NR);
    let tiles = rows.div_ceil(MR);
    let kc_step = KC;
    // One A block (on-the-fly packing only): every tile of this chunk over one
    // column slice, packed once per slice and reused across all B panels (it
    // stays cache-resident). Prepacked operands skip this buffer entirely.
    let mut apack = match lhs {
        GemmLhs::Rows { .. } => Some(scratch::take(tiles * kc_step * MR)),
        GemmLhs::Packed { panels, k: packed_k } => {
            assert_eq!(packed_k, k, "prepacked panels were built for a different k");
            assert!(row0.is_multiple_of(MR), "prepacked GEMM requires MR-aligned row chunks");
            assert!(panels.len() >= (row0 / MR + tiles) * k * MR, "prepacked panels too short");
            None
        }
    };
    let mut pc = 0;
    while pc < k {
        let kc = kc_step.min(k - pc);
        let first_slice = pc == 0;
        let last_slice = pc + kc == k;
        // Tiles pack densely at the current slice's `kc * MR` stride, so only the
        // region actually consumed needs (re-)zeroing — and only when a partial
        // tail tile leaves padding rows that packing does not overwrite. This
        // matters for short shared dimensions (e.g. the Winograd per-point GEMMs,
        // k = in_channels), where zeroing the full KC-sized buffer per call would
        // cost more than the packing itself.
        let tile_stride = kc * MR;
        if let (GemmLhs::Rows { data, lda }, Some(apack)) = (lhs, apack.as_mut()) {
            if !rows.is_multiple_of(MR) && !first_slice {
                apack[..tiles * tile_stride].iter_mut().for_each(|x| *x = 0.0);
            }
            for tile in 0..tiles {
                let tile_rows = MR.min(rows - tile * MR);
                pack_a_panel(
                    data,
                    row0 + tile * MR,
                    tile_rows,
                    pc,
                    kc,
                    lda,
                    &mut apack[tile * tile_stride..(tile + 1) * tile_stride],
                );
            }
        }
        for panel in 0..col_panels {
            let j0 = panel * NR;
            let width = NR.min(cols - j0);
            // The KC × NR slice of this B panel: L1-resident across all row tiles.
            let bslice = &bpack[panel * k * NR + pc * NR..panel * k * NR + (pc + kc) * NR];
            for tile in 0..tiles {
                let tile_rows = MR.min(rows - tile * MR);
                let atile: &[f32] = match (&lhs, &apack) {
                    (GemmLhs::Rows { .. }, Some(apack)) => {
                        &apack[tile * tile_stride..(tile + 1) * tile_stride]
                    }
                    (GemmLhs::Packed { panels, .. }, _) => {
                        let t = row0 / MR + tile;
                        &panels[t * k * MR + pc * MR..t * k * MR + (pc + kc) * MR]
                    }
                    _ => unreachable!("apack exists exactly for the Rows variant"),
                };
                let acc = microkernel(kc, atile, bslice);
                for r in 0..tile_rows {
                    let start = (tile * MR + r) * row_stride + col_offset + j0;
                    let out_row = &mut dst[start..start + width];
                    match mode {
                        WriteMode::Overwrite { epilogue } if last_slice => {
                            let base = if first_slice {
                                epilogue.bias.map_or(0.0, |b| b[tile * MR + r])
                            } else {
                                0.0
                            };
                            let skip_row = epilogue.residual.map(|s| &s[start..start + width]);
                            write_row_epilogue(
                                out_row,
                                &acc[r][..width],
                                first_slice,
                                base,
                                skip_row,
                                epilogue.activation,
                            );
                        }
                        WriteMode::Overwrite { epilogue } if first_slice => {
                            let base = epilogue.bias.map_or(0.0, |b| b[tile * MR + r]);
                            for (o, &v) in out_row.iter_mut().zip(&acc[r][..width]) {
                                *o = v + base;
                            }
                        }
                        // Middle KC slices accumulate onto the partial sums, as does
                        // every slice in Accumulate mode.
                        _ => {
                            for (o, &v) in out_row.iter_mut().zip(&acc[r][..width]) {
                                *o += v;
                            }
                        }
                    }
                }
            }
        }
        pc += kc;
    }
    if let Some(apack) = apack {
        scratch::give(apack);
    }
}

/// Splits the rows of a C region into `MR`-aligned chunks and runs
/// [`packed_gemm_strided`] on worker threads. `region` must hold `m` rows of
/// `row_stride` elements each; row `r` of the product lands at
/// `region[r * row_stride + col_offset ..]`. The epilogue's `bias` is indexed by
/// absolute row and its `residual` exactly like `region` (it must have the same
/// length); both are sliced per chunk here.
#[allow(clippy::too_many_arguments)]
pub fn parallel_packed_gemm(
    lhs: GemmLhs<'_>,
    m: usize,
    k: usize,
    bpack: &[f32],
    cols: usize,
    region: &mut [f32],
    row_stride: usize,
    col_offset: usize,
    epilogue: Epilogue<'_>,
    accumulate: bool,
    parallel: bool,
) {
    // Chunk height balances B-block reuse (taller chunks amortize each L1-resident
    // KC × NR slice across more row tiles) against load balance (enough chunks to
    // feed every worker). Small or heavily-threaded products fall back to single
    // tiles.
    let threads = parallel::num_threads();
    let rows_per_chunk = if !parallel || m >= threads * MC { MC } else { MR };
    let chunk_len = rows_per_chunk * row_stride;
    let want_parallel = parallel && (m as u64) * (k as u64) * (cols as u64) >= PARALLEL_MIN_MACS;
    if let Some(residual) = epilogue.residual {
        debug_assert_eq!(residual.len(), region.len(), "residual must mirror the region");
    }
    parallel::for_each_chunk(region, chunk_len, want_parallel, |chunk_index, chunk| {
        let row0 = chunk_index * rows_per_chunk;
        let rows = rows_per_chunk.min(m - row0);
        let mode = if accumulate {
            WriteMode::Accumulate
        } else {
            let start = chunk_index * chunk_len;
            WriteMode::Overwrite {
                epilogue: Epilogue {
                    bias: epilogue.bias.map(|b| &b[row0..row0 + rows]),
                    residual: epilogue.residual.map(|s| &s[start..start + chunk.len()]),
                    activation: epilogue.activation,
                },
            }
        };
        packed_gemm_strided(lhs, row0, rows, k, bpack, cols, chunk, row_stride, col_offset, mode);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] = (0..k).map(|p| a[i * k + p] * b[p * n + j]).sum();
            }
        }
        out
    }

    #[test]
    fn pack_b_round_trips_columns() {
        let rows = 3usize;
        let cols = 10usize;
        let src: Vec<f32> = (0..rows * cols).map(|i| i as f32).collect();
        let panels = cols.div_ceil(NR);
        let mut packed = vec![0.0; panels * rows * NR];
        pack_b(&src, rows, cols, 0, cols, &mut packed);
        for j in 0..cols {
            for p in 0..rows {
                let panel = j / NR;
                let within = j % NR;
                assert_eq!(packed[panel * rows * NR + p * NR + within], src[p * cols + j]);
            }
        }
    }

    #[test]
    fn strided_gemm_matches_reference() {
        let (m, n, k) = (13, 21, 17);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 7) % 23) as f32 - 11.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 5) % 19) as f32 - 9.0).collect();
        let expect = reference(m, n, k, &a, &b);

        let panels = n.div_ceil(NR);
        let mut bpack = vec![0.0; panels * k * NR];
        pack_b(&b, k, n, 0, n, &mut bpack);

        // Write into a strided destination with a column offset.
        let row_stride = n + 5;
        let col_offset = 3;
        let mut dst = vec![-1.0; m * row_stride + col_offset];
        packed_gemm_strided(
            GemmLhs::Rows { data: &a, lda: k },
            0,
            m,
            k,
            &bpack,
            n,
            &mut dst,
            row_stride,
            col_offset,
            WriteMode::Overwrite { epilogue: Epilogue::with_bias(None) },
        );
        for i in 0..m {
            for j in 0..n {
                let got = dst[i * row_stride + col_offset + j];
                assert!((got - expect[i * n + j]).abs() < 1e-3, "({i},{j}): {got}");
            }
        }
        // Elements outside the window must be untouched.
        assert!(dst[..col_offset].iter().all(|&x| x == -1.0));

        // The prepacked left operand must reproduce the on-the-fly path bitwise.
        let prepared = PreparedGemmA::prepare(&a, k, m, k);
        assert_eq!(prepared.rows(), m);
        assert_eq!(prepared.k(), k);
        assert!(prepared.resident_bytes() > 0);
        let mut pre = vec![-1.0; m * row_stride + col_offset];
        packed_gemm_strided(
            prepared.as_lhs(),
            0,
            m,
            k,
            &bpack,
            n,
            &mut pre,
            row_stride,
            col_offset,
            WriteMode::Overwrite { epilogue: Epilogue::with_bias(None) },
        );
        assert_eq!(pre, dst, "prepacked lhs must be bitwise identical");
    }

    #[test]
    fn bias_and_accumulate_modes() {
        let (m, n, k) = (9, 6, 4);
        let a = vec![1.0; m * k];
        let b = vec![2.0; k * n];
        let bias: Vec<f32> = (0..m).map(|i| i as f32).collect();
        let mut bpack = vec![0.0; n.div_ceil(NR) * k * NR];
        pack_b(&b, k, n, 0, n, &mut bpack);

        let mut dst = vec![0.0; m * n];
        packed_gemm_strided(
            GemmLhs::Rows { data: &a, lda: k },
            0,
            m,
            k,
            &bpack,
            n,
            &mut dst,
            n,
            0,
            WriteMode::Overwrite { epilogue: Epilogue::with_bias(Some(&bias)) },
        );
        for i in 0..m {
            assert!(dst[i * n..(i + 1) * n].iter().all(|&x| (x - (8.0 + i as f32)).abs() < 1e-6));
        }

        let mut acc_dst = vec![1.0; m * n];
        packed_gemm_strided(
            GemmLhs::Rows { data: &a, lda: k },
            0,
            m,
            k,
            &bpack,
            n,
            &mut acc_dst,
            n,
            0,
            WriteMode::Accumulate,
        );
        assert!(acc_dst.iter().all(|&x| (x - 9.0).abs() < 1e-6));
    }

    #[test]
    fn fused_epilogue_matches_separate_passes_bitwise() {
        // Multi-slice reduction (k > KC) so bias lands on the first slice and the
        // residual + activation on the last.
        let (m, n, k) = (11, 37, KC + 17);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 29) % 23) as f32 * 0.05 - 0.5).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 31) % 19) as f32 * 0.05 - 0.45).collect();
        let bias: Vec<f32> = (0..m).map(|i| (i as f32 - 5.0) * 0.3).collect();
        let skip: Vec<f32> = (0..m * n).map(|i| ((i * 13) % 11) as f32 * 0.2 - 1.0).collect();
        let mut bpack = vec![0.0; n.div_ceil(NR) * k * NR];
        pack_b(&b, k, n, 0, n, &mut bpack);

        // Unfused: plain biased GEMM, then the separate residual + ReLU sweep.
        let mut plain = vec![0.0; m * n];
        packed_gemm_strided(
            GemmLhs::Rows { data: &a, lda: k },
            0,
            m,
            k,
            &bpack,
            n,
            &mut plain,
            n,
            0,
            WriteMode::Overwrite { epilogue: Epilogue::with_bias(Some(&bias)) },
        );
        let separate: Vec<f32> = plain.iter().zip(&skip).map(|(&o, &s)| (o + s).max(0.0)).collect();

        let mut fused = vec![0.0; m * n];
        packed_gemm_strided(
            GemmLhs::Rows { data: &a, lda: k },
            0,
            m,
            k,
            &bpack,
            n,
            &mut fused,
            n,
            0,
            WriteMode::Overwrite {
                epilogue: Epilogue {
                    bias: Some(&bias),
                    residual: Some(&skip),
                    activation: FusedActivation::Relu,
                },
            },
        );
        for (f, s) in fused.iter().zip(&separate) {
            assert_eq!(f.to_bits(), s.to_bits(), "fused epilogue must be bitwise identical");
        }
    }

    #[test]
    fn fused_activation_applies() {
        assert_eq!(FusedActivation::None.apply(-3.0), -3.0);
        assert_eq!(FusedActivation::Relu.apply(-3.0), 0.0);
        assert_eq!(FusedActivation::Relu.apply(2.0), 2.0);
        assert_eq!(FusedActivation::Relu6.apply(9.0), 6.0);
    }

    #[test]
    fn prepared_gemm_b_transposed_matches_pack_b() {
        let (k, cols) = (5usize, 7usize);
        // Row-major cols × k weight (the FC convention), and its transpose k × cols.
        let w: Vec<f32> = (0..cols * k).map(|i| i as f32 * 0.5 - 3.0).collect();
        let mut wt = vec![0.0f32; k * cols];
        for j in 0..cols {
            for p in 0..k {
                wt[p * cols + j] = w[j * k + p];
            }
        }
        let from_rows = PreparedGemmB::prepare(&wt, k, cols);
        let transposed = PreparedGemmB::prepare_transposed(&w, cols, k);
        assert_eq!(from_rows.panels(), transposed.panels());
        assert_eq!(transposed.k(), k);
        assert_eq!(transposed.cols(), cols);
    }

    #[test]
    fn parallel_driver_is_deterministic_across_thread_counts() {
        let _guard = crate::test_sync::global_state_lock();
        let (m, n, k) = (40usize, 120usize, 230usize);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 13) % 31) as f32 * 0.1 - 1.5).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 11) % 29) as f32 * 0.1 - 1.4).collect();
        let mut bpack = vec![0.0; n.div_ceil(NR) * k * NR];
        pack_b(&b, k, n, 0, n, &mut bpack);

        let original = crate::parallel::num_threads();
        let mut results = Vec::new();
        for threads in [1usize, 2, 5] {
            crate::parallel::set_num_threads(threads);
            let mut out = vec![0.0f32; m * n];
            parallel_packed_gemm(
                GemmLhs::Rows { data: &a, lda: k },
                m,
                k,
                &bpack,
                n,
                &mut out,
                n,
                0,
                Epilogue::default(),
                false,
                true,
            );
            results.push(out);
        }
        crate::parallel::set_num_threads(original);
        assert_eq!(results[0], results[1], "1 vs 2 threads must agree bitwise");
        assert_eq!(results[0], results[2], "1 vs 5 threads must agree bitwise");
        let expect = reference(m, n, k, &a, &b);
        for (x, y) in results[0].iter().zip(&expect) {
            assert!((x - y).abs() < 1e-2);
        }
    }
}
