//! # rescnn-tensor
//!
//! A small, dependency-light NCHW `f32` tensor library providing the convolution,
//! pooling, normalization, and linear-algebra kernels that the rest of the
//! resolution-characterization workspace is built on.
//!
//! The crate intentionally offers *multiple executable implementations* of convolution
//! ([`conv2d_direct`], [`conv2d_im2col`], [`conv2d_tiled`]) so the benchmark harness can
//! measure, with real wall-clock time, how kernel implementation choices interact with the
//! input resolution — the phenomenon the paper's §VI (operator autotuning) is about.
//!
//! # Examples
//! ```
//! use rescnn_tensor::{conv2d, Conv2dParams, Shape, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = Conv2dParams::new(3, 8, 3, 2, 1);
//! let input = Tensor::random_uniform(Shape::chw(3, 32, 32), 1.0, 0);
//! let weight = Tensor::kaiming(Shape::new(8, 3, 3, 3), 27, 1);
//! let out = conv2d(&input, &weight, None, &params)?;
//! assert_eq!(out.shape(), Shape::new(1, 8, 16, 16));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod conv;
mod error;
mod gemm;
mod ops;
mod shape;
mod tensor;

pub use conv::{conv2d, conv2d_direct, conv2d_im2col, conv2d_tiled, im2col, ConvTiling};
pub use error::{Result, TensorError};
pub use gemm::{gemm_blocked, gemm_naive, matmul, GemmBlocking, MatDims};
pub use ops::{
    avg_pool2d, batch_norm, global_avg_pool, linear, max_pool2d, relu, relu6, sigmoid, softmax,
};
pub use shape::{conv_output_extent, Conv2dParams, Pool2dParams, Shape};
pub use tensor::Tensor;

/// Commonly used items, intended for glob import.
pub mod prelude {
    pub use crate::{
        conv2d, Conv2dParams, ConvTiling, Pool2dParams, Shape, Tensor, TensorError,
    };
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn small_conv_case() -> impl Strategy<Value = (usize, usize, usize, usize, usize, usize)> {
        // (in_ch, out_ch, kernel, stride, pad, spatial)
        (
            1usize..4,
            1usize..5,
            prop_oneof![Just(1usize), Just(3usize), Just(5usize)],
            1usize..3,
            0usize..3,
            6usize..14,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn conv_output_extent_is_consistent((i, k, s, p) in (1usize..64, 1usize..8, 1usize..4, 0usize..4)) {
            if let Ok(out) = conv_output_extent(i, k, s, p) {
                // Re-derive: last window start fits inside padded input.
                prop_assert!( (out - 1) * s + k <= i + 2 * p );
                prop_assert!(out >= 1);
            } else {
                prop_assert!(i + 2 * p < k || s == 0);
            }
        }

        #[test]
        fn im2col_conv_matches_direct((ic, oc, k, s, p, hw) in small_conv_case()) {
            prop_assume!(hw + 2 * p >= k);
            let params = Conv2dParams::new(ic, oc, k, s, p);
            let input = Tensor::random_uniform(Shape::chw(ic, hw, hw), 1.0, (ic * 31 + hw) as u64);
            let wshape = Shape::new(oc, ic, k, k);
            let weight = Tensor::random_uniform(wshape, 0.7, (oc * 17 + k) as u64);
            let direct = conv2d_direct(&input, &weight, None, &params).unwrap();
            let lowered = conv2d_im2col(&input, &weight, None, &params).unwrap();
            prop_assert!(direct.max_abs_diff(&lowered).unwrap() < 1e-3);
        }

        #[test]
        fn tiled_conv_matches_direct((ic, oc, k, s, p, hw) in small_conv_case(),
                                      (t0, t1, t2) in (1usize..8, 1usize..8, 1usize..8)) {
            prop_assume!(hw + 2 * p >= k);
            let params = Conv2dParams::new(ic, oc, k, s, p);
            let input = Tensor::random_uniform(Shape::chw(ic, hw, hw), 1.0, (ic + oc) as u64);
            let weight = Tensor::random_uniform(Shape::new(oc, ic, k, k), 0.7, k as u64);
            let direct = conv2d_direct(&input, &weight, None, &params).unwrap();
            let tiled = conv2d_tiled(&input, &weight, None, &params, ConvTiling::new(t0, t1, t2)).unwrap();
            prop_assert!(direct.max_abs_diff(&tiled).unwrap() < 1e-3);
        }

        #[test]
        fn gemm_blocked_matches_naive((m, n, k) in (1usize..20, 1usize..20, 1usize..20),
                                       (mb, nb, kb) in (1usize..8, 1usize..8, 1usize..8)) {
            let dims = MatDims::new(m, n, k);
            let a: Vec<f32> = (0..m * k).map(|i| ((i * 13 % 17) as f32) - 8.0).collect();
            let b: Vec<f32> = (0..k * n).map(|i| ((i * 7 % 19) as f32) - 9.0).collect();
            let mut naive = vec![0.0; m * n];
            gemm_naive(dims, &a, &b, &mut naive);
            let mut blocked = vec![0.0; m * n];
            gemm_blocked(dims, GemmBlocking { mb, nb, kb }, &a, &b, &mut blocked);
            for (x, y) in naive.iter().zip(&blocked) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }

        #[test]
        fn softmax_is_a_distribution(vals in proptest::collection::vec(-50.0f32..50.0, 1..32)) {
            let c = vals.len();
            let t = Tensor::from_vec(Shape::new(1, c, 1, 1), vals).unwrap();
            let s = softmax(&t).unwrap();
            let sum: f32 = s.as_slice().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.as_slice().iter().all(|&x| (0.0..=1.0).contains(&x)));
        }

        #[test]
        fn relu_is_idempotent_and_nonnegative(vals in proptest::collection::vec(-10.0f32..10.0, 1..64)) {
            let len = vals.len();
            let t = Tensor::from_vec(Shape::new(1, 1, 1, len), vals).unwrap();
            let r = relu(&t);
            prop_assert!(r.min() >= 0.0);
            prop_assert_eq!(relu(&r), r.clone());
        }

        #[test]
        fn global_avg_pool_bounded_by_extrema(hw in 1usize..16, c in 1usize..4) {
            let t = Tensor::random_uniform(Shape::chw(c, hw, hw), 5.0, hw as u64);
            let g = global_avg_pool(&t);
            prop_assert!(g.max() <= t.max() + 1e-5);
            prop_assert!(g.min() >= t.min() - 1e-5);
        }
    }
}
