//! # rescnn-tensor
//!
//! A small, dependency-light NCHW `f32` tensor library providing the convolution,
//! pooling, normalization, and linear-algebra kernels that the rest of the
//! resolution-characterization workspace is built on.
//!
//! The crate intentionally offers *multiple executable implementations* of convolution
//! ([`conv2d_direct`], [`conv2d_im2col`], [`conv2d_tiled`], and the packed engine
//! paths behind [`conv2d_with_algo`]) so the benchmark harness can measure, with real
//! wall-clock time, how kernel implementation choices interact with the input
//! resolution — the phenomenon the paper's §VI (operator autotuning) is about.
//!
//! # Engine architecture
//!
//! The hot path is a packed, multi-threaded convolution engine layered as:
//!
//! 1. **Microkernel** ([`engine`]) — an `MR × NR` f32 accumulator tile (6×32 with
//!    AVX-512, 6×16 with AVX2, see [`engine::MR`]/[`engine::NR`]) held in registers
//!    while streaming over the shared dimension; compiled with
//!    `-C target-cpu=native` it lowers to hand-scheduled FMA intrinsics.
//! 2. **Packing** ([`engine::pack_a_panel`] / [`engine::pack_b`]) — operands are
//!    repacked into panel layouts read at stride 1 by the microkernel. The im2col
//!    lowering writes *directly* into packed-B panels ("packing-aware im2col"), so no
//!    intermediate column matrix is ever materialized.
//! 3. **Scratch arena** ([`scratch`]) — packing buffers and im2col stripes are
//!    recycled through a thread-local pool: steady-state forward passes perform zero
//!    per-layer heap allocations.
//! 4. **Parallelism** ([`parallel`]) — output rows/planes are split into disjoint
//!    chunks executed on a lazily-initialized **persistent worker pool** (parked
//!    workers, job-queue handoff; per-call cost is a wakeup rather than a thread
//!    spawn). Every element is produced by exactly one task in one fixed
//!    accumulation order, so results are bitwise identical across thread counts.
//!    The worker budget comes from the innermost [`EngineContext`] scope, then
//!    [`set_num_threads`] / `RESCNN_THREADS`.
//! 5. **Dispatch** ([`select_algo`]) — 1×1 stride-1 convolutions route straight to
//!    GEMM over the input planes ([`ConvAlgo::Gemm1x1`]), depthwise shapes to a
//!    dedicated shift-and-accumulate kernel ([`ConvAlgo::Depthwise`]), everything
//!    else to packed im2col stripes ([`ConvAlgo::Im2colPacked`]). A Winograd
//!    F(2×2, 3×3) arm ([`ConvAlgo::Winograd`], module [`winograd`]) covers stride-1
//!    dense 3×3 layers with ~2.25× fewer multiplies; it becomes the default for a
//!    shape when an installed measurement-derived [`AlgoCalibration`] table (see
//!    [`install_algo_calibration`]) says it was fastest there. The chosen
//!    algorithm is observable via [`conv2d_dispatch`] and can be pinned per scope
//!    with [`EngineContext::with_algo`] or process-wide with [`force_conv_algo`]
//!    so autotuners and benchmarks can sweep algorithm × tiling per resolution.
//! 6. **Per-call configuration** ([`EngineContext`]) — thread budgets and
//!    algorithm overrides are scoped values rather than global mutations, so
//!    concurrent pipelines with different settings never race.
//!
//! # Examples
//! ```
//! use rescnn_tensor::{conv2d, Conv2dParams, Shape, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = Conv2dParams::new(3, 8, 3, 2, 1);
//! let input = Tensor::random_uniform(Shape::chw(3, 32, 32), 1.0, 0);
//! let weight = Tensor::kaiming(Shape::new(8, 3, 3, 3), 27, 1);
//! let out = conv2d(&input, &weight, None, &params)?;
//! assert_eq!(out.shape(), Shape::new(1, 8, 16, 16));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod cancel;
pub mod chain;
mod context;
mod conv;
pub mod engine;
mod error;
mod gemm;
mod ops;
pub mod parallel;
pub mod quant;
pub mod scratch;
mod shape;
mod tensor;
pub mod winograd;

pub use arena::{with_thread_arena, ActivationArena};
pub use cancel::CancellationToken;
pub use chain::{
    chain_enabled, chain_mode, chain_plan, conv2d_chain_fused_into, set_chain_mode, ChainConsumer,
    ChainMode, ChainPlan,
};
pub use context::EngineContext;
pub use conv::{
    algo_calibration_generation, conv2d, conv2d_depthwise, conv2d_direct, conv2d_dispatch,
    conv2d_gemm_1x1, conv2d_im2col, conv2d_im2col_packed, conv2d_tiled, conv2d_with_algo,
    force_conv_algo, im2col, install_algo_calibration, installed_algo_calibration,
    merge_algo_calibration, planned_conv_algo, select_algo, with_algo_calibration_scope,
    AlgoCalibration, ConvAlgo, ConvEpilogue, ConvShapeKey, ConvTiling, PreparedLayer,
};
pub use engine::{Epilogue, FusedActivation, GemmLhs, PreparedGemmA, PreparedGemmB};
pub use error::{Result, TensorError};
pub use gemm::{gemm_blocked, gemm_naive, gemm_packed, matmul, GemmBlocking, MatDims};
pub use ops::{
    add_relu_in_place, avg_pool2d, avg_pool2d_into, batch_norm, global_avg_pool,
    global_avg_pool_into, linear, linear_prepared, linear_prepared_into, max_pool2d,
    max_pool2d_into, relu, relu6, relu6_in_place, relu_in_place, sigmoid, softmax,
};
pub use parallel::{
    num_threads, panic_message, parallel_map_isolated, set_num_threads, shutdown_pool,
    split_parallelism, DrainReport,
};
pub use quant::{
    conv2d_int8, int8_unit_error, tensor_range, ActQuant, QuantizedConv, INT8_TOLERANCE,
    INT8_WEIGHT_QMAX,
};
#[doc(hidden)]
pub use quant::{int8_microkernel_dispatch, int8_microkernel_reference};
pub use shape::{conv_output_extent, Conv2dParams, Pool2dParams, Shape};
pub use tensor::Tensor;
pub use winograd::{
    conv2d_winograd, conv2d_winograd_f4, conv2d_winograd_f4_fused_into,
    conv2d_winograd_f4_prepared, conv2d_winograd_fused_into, conv2d_winograd_prepared,
    winograd_f4_unit_error, WinogradFilter, WINOGRAD_F4_TOLERANCE,
};

#[cfg(test)]
pub(crate) mod test_sync {
    //! Serialization of tests that mutate process-global engine state (the worker
    //! thread count, the forced conv algorithm): without it, concurrent tests in
    //! this binary race and fail intermittently.

    use std::sync::{Mutex, MutexGuard};

    static LOCK: Mutex<()> = Mutex::new(());

    pub(crate) fn global_state_lock() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Commonly used items, intended for glob import.
pub mod prelude {
    pub use crate::{
        conv2d, Conv2dParams, ConvAlgo, ConvTiling, EngineContext, Pool2dParams, Shape, Tensor,
        TensorError,
    };
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn small_conv_case() -> impl Strategy<Value = (usize, usize, usize, usize, usize, usize)> {
        // (in_ch, out_ch, kernel, stride, pad, spatial)
        (
            1usize..4,
            1usize..5,
            prop_oneof![Just(1usize), Just(3usize), Just(5usize)],
            1usize..3,
            0usize..3,
            6usize..14,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn conv_output_extent_is_consistent((i, k, s, p) in (1usize..64, 1usize..8, 1usize..4, 0usize..4)) {
            if let Ok(out) = conv_output_extent(i, k, s, p) {
                // Re-derive: last window start fits inside padded input.
                prop_assert!( (out - 1) * s + k <= i + 2 * p );
                prop_assert!(out >= 1);
            } else {
                prop_assert!(i + 2 * p < k || s == 0);
            }
        }

        #[test]
        fn engine_dispatch_matches_direct((ic, oc, k, s, p, hw) in small_conv_case()) {
            prop_assume!(hw + 2 * p >= k);
            let _guard = crate::test_sync::global_state_lock();
            let params = Conv2dParams::new(ic, oc, k, s, p);
            let input = Tensor::random_uniform(Shape::chw(ic, hw, hw), 1.0, (ic * 7 + hw) as u64);
            let weight = Tensor::random_uniform(Shape::new(oc, ic, k, k), 0.7, (oc * 5 + k) as u64);
            let direct = conv2d_direct(&input, &weight, None, &params).unwrap();
            let (engine_out, algo) = conv2d_dispatch(&input, &weight, None, &params).unwrap();
            prop_assert!(algo == select_algo(&params, input.shape()));
            prop_assert!(direct.max_abs_diff(&engine_out).unwrap() < 1e-3);
        }

        #[test]
        fn im2col_conv_matches_direct((ic, oc, k, s, p, hw) in small_conv_case()) {
            prop_assume!(hw + 2 * p >= k);
            let params = Conv2dParams::new(ic, oc, k, s, p);
            let input = Tensor::random_uniform(Shape::chw(ic, hw, hw), 1.0, (ic * 31 + hw) as u64);
            let wshape = Shape::new(oc, ic, k, k);
            let weight = Tensor::random_uniform(wshape, 0.7, (oc * 17 + k) as u64);
            let direct = conv2d_direct(&input, &weight, None, &params).unwrap();
            let lowered = conv2d_im2col(&input, &weight, None, &params).unwrap();
            prop_assert!(direct.max_abs_diff(&lowered).unwrap() < 1e-3);
        }

        #[test]
        fn tiled_conv_matches_direct((ic, oc, k, s, p, hw) in small_conv_case(),
                                      (t0, t1, t2) in (1usize..8, 1usize..8, 1usize..8)) {
            prop_assume!(hw + 2 * p >= k);
            let params = Conv2dParams::new(ic, oc, k, s, p);
            let input = Tensor::random_uniform(Shape::chw(ic, hw, hw), 1.0, (ic + oc) as u64);
            let weight = Tensor::random_uniform(Shape::new(oc, ic, k, k), 0.7, k as u64);
            let direct = conv2d_direct(&input, &weight, None, &params).unwrap();
            let tiled = conv2d_tiled(&input, &weight, None, &params, ConvTiling::new(t0, t1, t2)).unwrap();
            prop_assert!(direct.max_abs_diff(&tiled).unwrap() < 1e-3);
        }

        #[test]
        fn gemm_blocked_matches_naive((m, n, k) in (1usize..20, 1usize..20, 1usize..20),
                                       (mb, nb, kb) in (1usize..8, 1usize..8, 1usize..8)) {
            let dims = MatDims::new(m, n, k);
            let a: Vec<f32> = (0..m * k).map(|i| ((i * 13 % 17) as f32) - 8.0).collect();
            let b: Vec<f32> = (0..k * n).map(|i| ((i * 7 % 19) as f32) - 9.0).collect();
            let mut naive = vec![0.0; m * n];
            gemm_naive(dims, &a, &b, &mut naive);
            let mut blocked = vec![0.0; m * n];
            gemm_blocked(dims, GemmBlocking { mb, nb, kb }, &a, &b, &mut blocked);
            for (x, y) in naive.iter().zip(&blocked) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }

        #[test]
        fn softmax_is_a_distribution(vals in proptest::collection::vec(-50.0f32..50.0, 1..32)) {
            let c = vals.len();
            let t = Tensor::from_vec(Shape::new(1, c, 1, 1), vals).unwrap();
            let s = softmax(&t).unwrap();
            let sum: f32 = s.as_slice().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.as_slice().iter().all(|&x| (0.0..=1.0).contains(&x)));
        }

        #[test]
        fn relu_is_idempotent_and_nonnegative(vals in proptest::collection::vec(-10.0f32..10.0, 1..64)) {
            let len = vals.len();
            let t = Tensor::from_vec(Shape::new(1, 1, 1, len), vals).unwrap();
            let r = relu(&t);
            prop_assert!(r.min() >= 0.0);
            prop_assert_eq!(relu(&r), r.clone());
        }

        #[test]
        fn global_avg_pool_bounded_by_extrema(hw in 1usize..16, c in 1usize..4) {
            let t = Tensor::random_uniform(Shape::chw(c, hw, hw), 5.0, hw as u64);
            let g = global_avg_pool(&t);
            prop_assert!(g.max() <= t.max() + 1e-5);
            prop_assert!(g.min() >= t.min() - 1e-5);
        }
    }
}
