//! Reusable activation-tensor arena.
//!
//! The engine's [`scratch`](crate::scratch) pool recycles *kernel working
//! memory* (packed panels, im2col stripes); this module recycles the much
//! larger *activation tensors* a network forward pass produces — one fresh
//! `vec![0.0; C*H*W]` per layer in the unmanaged path, which at 448² inputs
//! means hundreds of megabytes of allocate + memset per ResNet-50 forward.
//!
//! An [`ActivationArena`] hands out [`Tensor`]s backed by retired buffers
//! (best-fit by capacity, **without** zeroing — see [`ActivationArena::take`])
//! and takes them back with [`ActivationArena::give`]. A model runs its whole
//! forward out of one arena: after a warm-up pass at each served resolution
//! bucket, steady-state forwards perform zero heap allocations for
//! activations. Allocation misses advance the same process-wide counter as the
//! scratch pool ([`crate::scratch::heap_allocations`]), so one counter pins the
//! engine's entire zero-allocation property.
//!
//! Buffer reuse is pure memory recycling — it never changes computed values —
//! so arena-backed execution is bitwise identical to fresh-allocation
//! execution.

use std::cell::RefCell;

use crate::scratch;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Maximum retired buffers an arena retains; beyond this the smallest retired
/// buffer is dropped in favour of larger ones (mixed-resolution serving keeps
/// the per-bucket maxima resident).
const MAX_SLOTS: usize = 24;

/// A pool of retired activation buffers, reused best-fit by capacity.
///
/// # Examples
/// ```
/// use rescnn_tensor::{ActivationArena, Shape};
///
/// let mut arena = ActivationArena::new();
/// let a = arena.take(Shape::chw(8, 16, 16));
/// arena.give(a);
/// let b = arena.take(Shape::chw(4, 16, 16)); // reuses the retired buffer
/// assert_eq!(b.shape().volume(), 4 * 16 * 16);
/// # drop(b);
/// ```
#[derive(Debug, Default)]
pub struct ActivationArena {
    slots: Vec<Vec<f32>>,
    /// Bytes of activations currently checked out (taken and not yet given
    /// back). Pure bookkeeping — never allocates.
    live_bytes: usize,
    /// High-water mark of [`live_bytes`](Self::live_bytes) since the last
    /// [`reset_peak`](Self::reset_peak).
    peak_live_bytes: usize,
}

impl ActivationArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a tensor of the given shape backed by a recycled buffer when one
    /// is large enough (best fit), allocating otherwise (which advances
    /// [`crate::scratch::heap_allocations`]).
    ///
    /// **Contents are unspecified** — recycled buffers are *not* zeroed (that
    /// memset is part of what the arena saves). Every consumer must overwrite
    /// the full tensor; all engine kernels' `_into` variants do.
    pub fn take(&mut self, shape: Shape) -> Tensor {
        let len = shape.volume();
        // Best fit: the smallest retired buffer that is large enough, so one
        // high-resolution buffer is not burned on a low-resolution request.
        let position = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, buffer)| buffer.capacity() >= len)
            .min_by_key(|(_, buffer)| buffer.capacity())
            .map(|(index, _)| index);
        let mut buffer = match position {
            Some(index) => self.slots.swap_remove(index),
            None => {
                scratch::record_external_allocation();
                Vec::with_capacity(len)
            }
        };
        // Truncate-then-resize initializes only the region beyond the buffer's
        // previous length; the (stale) prefix is already-initialized memory.
        if buffer.len() > len {
            buffer.truncate(len);
        }
        if buffer.len() < len {
            buffer.resize(len, 0.0);
        }
        self.live_bytes += len * std::mem::size_of::<f32>();
        self.peak_live_bytes = self.peak_live_bytes.max(self.live_bytes);
        Tensor::from_vec(shape, buffer).expect("buffer sized to the shape's volume")
    }

    /// Returns a tensor's buffer to the arena for reuse.
    pub fn give(&mut self, tensor: Tensor) {
        // Saturating: tensors not taken from this arena may legitimately be
        // retired into it (warm-up paths); accounting must never underflow.
        self.live_bytes =
            self.live_bytes.saturating_sub(tensor.shape().volume() * std::mem::size_of::<f32>());
        let buffer = tensor.into_vec();
        if buffer.capacity() == 0 {
            return;
        }
        if self.slots.len() < MAX_SLOTS {
            self.slots.push(buffer);
        } else if let Some(smallest) =
            self.slots.iter().enumerate().min_by_key(|(_, b)| b.capacity()).map(|(i, _)| i)
        {
            if self.slots[smallest].capacity() < buffer.capacity() {
                self.slots[smallest] = buffer;
            }
        }
    }

    /// Pre-populates the arena so a forward pass planned to use buffers of
    /// exactly these element counts will not allocate: takes every size (in the
    /// given order, allocating on miss) and retires them all.
    pub fn reserve(&mut self, sizes: &[usize]) {
        let tensors: Vec<Tensor> =
            sizes.iter().map(|&len| self.take(Shape::new(1, 1, 1, len.max(1)))).collect();
        for tensor in tensors {
            self.give(tensor);
        }
    }

    /// Number of retired buffers currently held.
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Bytes resident across all retired buffers.
    pub fn resident_bytes(&self) -> usize {
        self.slots.iter().map(|b| b.capacity() * std::mem::size_of::<f32>()).sum()
    }

    /// Bytes of activations currently checked out of the arena.
    pub fn live_bytes(&self) -> usize {
        self.live_bytes
    }

    /// High-water mark of simultaneously-live activation bytes since the last
    /// [`reset_peak`](Self::reset_peak) (or arena creation). This is the
    /// measured counterpart of a planned peak (`ArenaPlan::peak_live_bytes` in
    /// `rescnn-models`), and what a memory-budgeted admission controller
    /// ultimately bounds.
    pub fn peak_live_bytes(&self) -> usize {
        self.peak_live_bytes
    }

    /// Restarts peak tracking from the current live level.
    pub fn reset_peak(&mut self) {
        self.peak_live_bytes = self.live_bytes;
    }
}

thread_local! {
    static THREAD_ARENA: RefCell<ActivationArena> = RefCell::new(ActivationArena::new());
}

/// Runs `f` against the calling thread's persistent [`ActivationArena`].
///
/// Model forward passes route through this: on the engine's persistent worker
/// pool, worker threads — and therefore their arenas — survive across requests,
/// so batched serving reaches the zero-allocation steady state on every thread.
///
/// # Panics
/// Panics if called reentrantly from inside `f` (the arena is exclusively
/// borrowed for the extent of the call).
pub fn with_thread_arena<R>(f: impl FnOnce(&mut ActivationArena) -> R) -> R {
    THREAD_ARENA.with(|cell| f(&mut cell.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuses_retired_buffers_without_allocating() {
        let mut arena = ActivationArena::new();
        let first = arena.take(Shape::chw(2, 8, 8));
        let ptr = first.as_slice().as_ptr();
        arena.give(first);

        let warm = scratch::heap_allocations();
        let second = arena.take(Shape::chw(1, 8, 8));
        assert_eq!(second.as_slice().as_ptr(), ptr, "best fit should reuse the retired buffer");
        assert_eq!(second.shape().volume(), 64);
        assert_eq!(scratch::heap_allocations() - warm, 0, "reuse must not allocate");
        arena.give(second);
    }

    #[test]
    fn misses_advance_the_shared_counter() {
        let mut arena = ActivationArena::new();
        let before = scratch::heap_allocations();
        let t = arena.take(Shape::chw(1, 4, 4));
        assert!(scratch::heap_allocations() > before);
        arena.give(t);
    }

    #[test]
    fn best_fit_prefers_the_smallest_sufficient_buffer() {
        let mut arena = ActivationArena::new();
        arena.reserve(&[1024, 64]);
        let t = arena.take(Shape::new(1, 1, 1, 60));
        let buffer = t.into_vec();
        assert!(buffer.len() == 60 && buffer.capacity() < 1024);
    }

    #[test]
    fn reserve_then_forward_sized_takes_do_not_allocate() {
        let mut arena = ActivationArena::new();
        arena.reserve(&[512, 256, 256]);
        let warm = scratch::heap_allocations();
        let a = arena.take(Shape::new(1, 1, 1, 512));
        let b = arena.take(Shape::new(1, 1, 1, 250));
        let c = arena.take(Shape::new(1, 1, 1, 256));
        assert_eq!(scratch::heap_allocations() - warm, 0);
        arena.give(a);
        arena.give(b);
        arena.give(c);
        assert_eq!(arena.slots(), 3);
        assert!(arena.resident_bytes() >= (512 + 256 + 256) * 4);
    }

    #[test]
    fn slot_cap_keeps_the_largest_buffers() {
        let mut arena = ActivationArena::new();
        for len in 0..MAX_SLOTS + 4 {
            arena.give(Tensor::zeros(Shape::new(1, 1, 1, len + 1)));
        }
        assert_eq!(arena.slots(), MAX_SLOTS);
        let largest = arena.take(Shape::new(1, 1, 1, MAX_SLOTS + 4));
        assert_eq!(largest.shape().volume(), MAX_SLOTS + 4);
        drop(largest);
    }

    #[test]
    fn byte_accounting_tracks_live_and_peak() {
        let mut arena = ActivationArena::new();
        assert_eq!(arena.live_bytes(), 0);
        assert_eq!(arena.peak_live_bytes(), 0);
        let a = arena.take(Shape::new(1, 1, 1, 100)); // 400 B live
        let b = arena.take(Shape::new(1, 1, 1, 50)); // 600 B live (peak)
        assert_eq!(arena.live_bytes(), 600);
        assert_eq!(arena.peak_live_bytes(), 600);
        arena.give(a); // 200 B live
        assert_eq!(arena.live_bytes(), 200);
        assert_eq!(arena.peak_live_bytes(), 600, "peak holds after a give");
        let c = arena.take(Shape::new(1, 1, 1, 75)); // 500 B live, below peak
        assert_eq!(arena.live_bytes(), 500);
        assert_eq!(arena.peak_live_bytes(), 600);
        arena.give(b);
        arena.reset_peak();
        assert_eq!(arena.peak_live_bytes(), 300, "reset restarts from the live level");
        arena.give(c);
        assert_eq!(arena.live_bytes(), 0);
    }

    #[test]
    fn foreign_gives_saturate_instead_of_underflowing() {
        let mut arena = ActivationArena::new();
        arena.give(Tensor::zeros(Shape::new(1, 1, 1, 64)));
        assert_eq!(arena.live_bytes(), 0, "a give of a non-arena tensor must not underflow");
        let t = arena.take(Shape::new(1, 1, 1, 32));
        assert_eq!(arena.live_bytes(), 128);
        arena.give(t);
    }

    #[test]
    fn accounting_does_not_allocate() {
        let mut arena = ActivationArena::new();
        arena.reserve(&[256]);
        arena.reset_peak();
        let warm = scratch::heap_allocations();
        let t = arena.take(Shape::new(1, 1, 1, 256));
        assert_eq!(arena.peak_live_bytes(), 1024);
        arena.give(t);
        assert_eq!(scratch::heap_allocations() - warm, 0, "byte accounting must stay free");
    }

    #[test]
    fn thread_arena_persists_across_calls() {
        let ptr = with_thread_arena(|arena| {
            let t = arena.take(Shape::chw(3, 5, 5));
            let ptr = t.as_slice().as_ptr() as usize;
            arena.give(t);
            ptr
        });
        let again = with_thread_arena(|arena| {
            let t = arena.take(Shape::chw(3, 5, 5));
            let again = t.as_slice().as_ptr() as usize;
            arena.give(t);
            again
        });
        assert_eq!(ptr, again, "the thread arena must persist between scopes");
    }
}
