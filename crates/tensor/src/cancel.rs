//! Cooperative cancellation for in-flight parallel work.
//!
//! A [`CancellationToken`] is a cheap, cloneable flag a supervisor (e.g. a
//! serving watchdog) sets to tell an execution it has become pointless — its
//! deadline is blown, its request was superseded — so the engine stops
//! spending compute on it. Cancellation is *cooperative*: nothing is
//! interrupted mid-kernel. Instead the parallel dispatchers
//! ([`for_each_chunk`](crate::parallel::for_each_chunk),
//! [`for_each_task`](crate::parallel::for_each_task)) snapshot the calling
//! scope's token at dispatch entry and check it at every chunk boundary,
//! skipping the remaining chunk bodies once it fires. A dispatch that observed
//! a cancellation leaves its output buffers partially written — the caller
//! that installed the token must discard the result (the serving layer turns
//! it into a typed `Cancelled` error and never reads the data).
//!
//! Tokens travel by *scope*, not by argument: [`CancellationToken::scope`]
//! installs the token as the calling thread's current token, and the batch
//! dispatchers re-install the submitting scope's token around every task they
//! run on pool workers — so a token installed around a batched execution is
//! observed at chunk granularity arbitrarily deep in the kernel stack, without
//! any kernel signature knowing about it. With no token installed (the common
//! case) the per-chunk check is a `None` test on a snapshotted `Option` —
//! kernels pay no atomic traffic.
//!
//! Cancellation never changes *completed* results: a chunk either runs in
//! full or not at all, and uncancelled dispatches are bitwise identical to
//! runs without any token installed.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag, checked cooperatively at chunk boundaries.
///
/// # Examples
/// ```
/// use rescnn_tensor::CancellationToken;
///
/// let token = CancellationToken::new();
/// assert!(!token.is_cancelled());
/// let watcher = token.clone();
/// token.cancel();
/// assert!(watcher.is_cancelled(), "clones observe the shared flag");
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    flag: Arc<AtomicBool>,
}

thread_local! {
    /// The calling thread's installed token, if any.
    static CURRENT: RefCell<Option<CancellationToken>> = const { RefCell::new(None) };
}

/// Restores the previously-installed token on drop (also on panic), so scopes
/// nest and a caught panic cannot leak a token onto a pool worker.
struct ScopeGuard {
    previous: Option<CancellationToken>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CURRENT.with(|cell| *cell.borrow_mut() = self.previous.take());
    }
}

impl CancellationToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; all clones observe the flag.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Runs `f` with this token installed as the calling thread's current
    /// token; the previous token (if any) is restored afterwards, panic or
    /// not.
    pub fn scope<R>(&self, f: impl FnOnce() -> R) -> R {
        let previous = CURRENT.with(|cell| cell.borrow_mut().replace(self.clone()));
        let _guard = ScopeGuard { previous };
        f()
    }

    /// The calling thread's currently-installed token, if any. Parallel
    /// dispatchers snapshot this once per dispatch.
    pub fn current() -> Option<CancellationToken> {
        CURRENT.with(|cell| cell.borrow().clone())
    }
}

/// Re-installs `token` (when present) around `f` — how batch dispatchers carry
/// the submitting scope's token onto pool workers.
pub(crate) fn with_token_scope<R>(token: Option<&CancellationToken>, f: impl FnOnce() -> R) -> R {
    match token {
        Some(token) => token.scope(f),
        None => f(),
    }
}

/// Runs `f` with *no* token installed, restoring the caller's token afterwards.
///
/// Batch dispatchers use this around the slot-filling dispatch whose chunk
/// bodies must always run (each records its task's result); the ambient token
/// is re-installed *inside* every task instead, so cancellation is observed at
/// task granularity there and at chunk granularity in the kernels below.
pub(crate) fn mask_token_scope<R>(f: impl FnOnce() -> R) -> R {
    let previous = CURRENT.with(|cell| cell.borrow_mut().take());
    let _guard = ScopeGuard { previous };
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_nest_and_restore() {
        assert!(CancellationToken::current().is_none());
        let outer = CancellationToken::new();
        outer.scope(|| {
            assert!(!CancellationToken::current().expect("outer installed").is_cancelled());
            let inner = CancellationToken::new();
            inner.cancel();
            inner.scope(|| {
                assert!(CancellationToken::current().expect("inner installed").is_cancelled());
            });
            assert!(
                !CancellationToken::current().expect("outer restored").is_cancelled(),
                "inner scope must restore the outer token"
            );
        });
        assert!(CancellationToken::current().is_none());
    }

    #[test]
    fn scope_restores_across_panics() {
        let token = CancellationToken::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            token.scope(|| panic!("boom"));
        }));
        assert!(caught.is_err());
        assert!(CancellationToken::current().is_none(), "panic must not leak the token");
    }
}
