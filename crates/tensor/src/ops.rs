//! Non-convolution neural-network operators: activations, pooling, normalization,
//! fully-connected layers, and softmax.
//!
//! The pooling / pooling-like operators and the linear layer additionally offer
//! `_into` variants writing into a caller-provided tensor (every element of
//! which is overwritten), so arena-backed forward passes allocate nothing.

use crate::engine::{self, PreparedGemmB};
use crate::error::{Result, TensorError};
use crate::shape::{Pool2dParams, Shape};
use crate::tensor::Tensor;

/// Rectified linear unit, elementwise.
pub fn relu(input: &Tensor) -> Tensor {
    input.map(|x| x.max(0.0))
}

/// Rectified linear unit applied in place (the allocation-free variant the model zoo
/// uses between fused conv layers).
pub fn relu_in_place(input: &mut Tensor) {
    input.map_inplace(|x| x.max(0.0));
}

/// ReLU6 (used by MobileNetV2), elementwise.
pub fn relu6(input: &Tensor) -> Tensor {
    input.map(|x| x.clamp(0.0, 6.0))
}

/// ReLU6 applied in place.
pub fn relu6_in_place(input: &mut Tensor) {
    input.map_inplace(|x| x.clamp(0.0, 6.0));
}

/// Fused residual merge: `out = max(out + skip, 0)` in one pass over the data (the
/// tail of every ResNet block; fusing saves a full read-modify-write sweep).
///
/// # Errors
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn add_relu_in_place(out: &mut Tensor, skip: &Tensor) -> Result<()> {
    if out.shape() != skip.shape() {
        return Err(TensorError::ShapeMismatch {
            left: out.shape().as_array().to_vec(),
            right: skip.shape().as_array().to_vec(),
            op: "add_relu_in_place",
        });
    }
    for (o, &s) in out.as_mut_slice().iter_mut().zip(skip.as_slice()) {
        *o = (*o + s).max(0.0);
    }
    Ok(())
}

/// Inference-mode batch normalization.
///
/// `mean`, `var`, `gamma`, and `beta` must each have one entry per channel.
///
/// # Errors
/// Returns [`TensorError::LengthMismatch`] if any parameter vector does not match the
/// channel count.
pub fn batch_norm(
    input: &Tensor,
    mean: &[f32],
    var: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
) -> Result<Tensor> {
    let c = input.shape().c;
    for (name, v) in [("mean", mean), ("var", var), ("gamma", gamma), ("beta", beta)] {
        if v.len() != c {
            let _ = name;
            return Err(TensorError::LengthMismatch { expected: c, actual: v.len() });
        }
    }
    let shape = input.shape();
    let mut out = Tensor::zeros(shape);
    for n in 0..shape.n {
        for ch in 0..c {
            let scale = gamma[ch] / (var[ch] + eps).sqrt();
            let shift = beta[ch] - mean[ch] * scale;
            let src = input.plane(n, ch);
            let dst = out.plane_mut(n, ch);
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = s * scale + shift;
            }
        }
    }
    Ok(out)
}

/// Max pooling over square windows.
///
/// # Errors
/// Returns an error if the window does not fit in the padded input.
pub fn max_pool2d(input: &Tensor, params: &Pool2dParams) -> Result<Tensor> {
    let mut out = Tensor::zeros(params.output_shape(input.shape())?);
    pool2d_into(input, params, PoolKind::Max, &mut out)?;
    Ok(out)
}

/// [`max_pool2d`] writing into a caller-provided tensor (fully overwritten).
///
/// # Errors
/// Returns an error if the window does not fit, or `out` has the wrong shape.
pub fn max_pool2d_into(input: &Tensor, params: &Pool2dParams, out: &mut Tensor) -> Result<()> {
    pool2d_into(input, params, PoolKind::Max, out)
}

/// Average pooling over square windows (zero padding contributes to the divisor only when
/// inside the image, matching common framework semantics `count_include_pad = false`).
///
/// # Errors
/// Returns an error if the window does not fit in the padded input.
pub fn avg_pool2d(input: &Tensor, params: &Pool2dParams) -> Result<Tensor> {
    let mut out = Tensor::zeros(params.output_shape(input.shape())?);
    pool2d_into(input, params, PoolKind::Avg, &mut out)?;
    Ok(out)
}

/// [`avg_pool2d`] writing into a caller-provided tensor (fully overwritten).
///
/// # Errors
/// Returns an error if the window does not fit, or `out` has the wrong shape.
pub fn avg_pool2d_into(input: &Tensor, params: &Pool2dParams, out: &mut Tensor) -> Result<()> {
    pool2d_into(input, params, PoolKind::Avg, out)
}

#[derive(Clone, Copy)]
enum PoolKind {
    Max,
    Avg,
}

fn pool2d_into(
    input: &Tensor,
    params: &Pool2dParams,
    kind: PoolKind,
    out: &mut Tensor,
) -> Result<()> {
    let ishape = input.shape();
    let oshape = params.output_shape(ishape)?;
    if out.shape() != oshape {
        return Err(TensorError::ShapeMismatch {
            left: out.shape().as_array().to_vec(),
            right: oshape.as_array().to_vec(),
            op: "pool output buffer",
        });
    }
    let pad = params.padding as isize;
    for n in 0..ishape.n {
        for c in 0..ishape.c {
            let plane = input.plane(n, c);
            for oh in 0..oshape.h {
                for ow in 0..oshape.w {
                    let mut acc = match kind {
                        PoolKind::Max => f32::NEG_INFINITY,
                        PoolKind::Avg => 0.0,
                    };
                    let mut count = 0usize;
                    for kh in 0..params.kernel {
                        let ih = (oh * params.stride + kh) as isize - pad;
                        if ih < 0 || ih >= ishape.h as isize {
                            continue;
                        }
                        for kw in 0..params.kernel {
                            let iw = (ow * params.stride + kw) as isize - pad;
                            if iw < 0 || iw >= ishape.w as isize {
                                continue;
                            }
                            let v = plane[ih as usize * ishape.w + iw as usize];
                            match kind {
                                PoolKind::Max => acc = acc.max(v),
                                PoolKind::Avg => acc += v,
                            }
                            count += 1;
                        }
                    }
                    let value = match kind {
                        PoolKind::Max => {
                            if count == 0 {
                                0.0
                            } else {
                                acc
                            }
                        }
                        PoolKind::Avg => {
                            if count == 0 {
                                0.0
                            } else {
                                acc / count as f32
                            }
                        }
                    };
                    out.set(n, c, oh, ow, value);
                }
            }
        }
    }
    Ok(())
}

/// Global average pooling: reduces each channel plane to a single value, producing an
/// `N × C × 1 × 1` tensor. This is what makes ResNet-style models resolution-agnostic.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    let ishape = input.shape();
    let mut out = Tensor::zeros(Shape::new(ishape.n, ishape.c, 1, 1));
    global_avg_pool_into(input, &mut out).expect("freshly shaped output");
    out
}

/// [`global_avg_pool`] writing into a caller-provided `N × C × 1 × 1` tensor
/// (fully overwritten).
///
/// # Errors
/// Returns an error if `out` has the wrong shape.
pub fn global_avg_pool_into(input: &Tensor, out: &mut Tensor) -> Result<()> {
    let ishape = input.shape();
    let expected = Shape::new(ishape.n, ishape.c, 1, 1);
    if out.shape() != expected {
        return Err(TensorError::ShapeMismatch {
            left: out.shape().as_array().to_vec(),
            right: expected.as_array().to_vec(),
            op: "global_avg_pool output buffer",
        });
    }
    let area = (ishape.h * ishape.w).max(1) as f32;
    for n in 0..ishape.n {
        for c in 0..ishape.c {
            let sum: f32 = input.plane(n, c).iter().sum();
            out.set(n, c, 0, 0, sum / area);
        }
    }
    Ok(())
}

/// Fully-connected (linear) layer: `out[n][o] = Σ_i in[n][i] * weight[o][i] + bias[o]`.
///
/// The input must have spatial extent `1 × 1` (i.e. already globally pooled); `weight` is an
/// `out_features × in_features` row-major matrix.
///
/// # Errors
/// Returns an error if the input is not `N × C × 1 × 1`, or if the weight/bias sizes do not
/// match.
pub fn linear(
    input: &Tensor,
    weight: &[f32],
    bias: Option<&[f32]>,
    out_features: usize,
) -> Result<Tensor> {
    let ishape = input.shape();
    if ishape.h != 1 || ishape.w != 1 {
        return Err(TensorError::ShapeMismatch {
            left: ishape.as_array().to_vec(),
            right: vec![ishape.n, ishape.c, 1, 1],
            op: "linear input",
        });
    }
    let in_features = ishape.c;
    if weight.len() != out_features * in_features {
        return Err(TensorError::LengthMismatch {
            expected: out_features * in_features,
            actual: weight.len(),
        });
    }
    if let Some(b) = bias {
        if b.len() != out_features {
            return Err(TensorError::LengthMismatch { expected: out_features, actual: b.len() });
        }
    }
    let mut out = Tensor::zeros(Shape::new(ishape.n, out_features, 1, 1));
    for n in 0..ishape.n {
        for o in 0..out_features {
            let mut acc = bias.map_or(0.0, |b| b[o]);
            let wrow = &weight[o * in_features..(o + 1) * in_features];
            for (i, &wv) in wrow.iter().enumerate() {
                acc += input.get(n, i, 0, 0) * wv;
            }
            out.set(n, o, 0, 0, acc);
        }
    }
    Ok(out)
}

/// Fully-connected layer against a weight matrix prepacked once into GEMM
/// right-operand panels (`Wᵀ`, [`PreparedGemmB::prepare_transposed`]): the
/// batched features are the GEMM left operand, so the forward runs on the
/// packed microkernel with no per-call weight packing.
///
/// The engine reduction is KC-blocked vector arithmetic, so results agree with
/// the scalar [`linear`] only to floating-point reassociation (≤ ~1e-4 at
/// unit scale), not bitwise.
///
/// # Errors
/// Returns an error if the input is not `N × C × 1 × 1`, its feature count does
/// not match the packed weights, or the bias length is wrong.
pub fn linear_prepared(
    input: &Tensor,
    weight: &PreparedGemmB,
    bias: Option<&[f32]>,
) -> Result<Tensor> {
    let mut out = Tensor::zeros(Shape::new(input.shape().n, weight.cols(), 1, 1));
    linear_prepared_into(input, weight, bias, &mut out)?;
    Ok(out)
}

/// [`linear_prepared`] writing into a caller-provided `N × O × 1 × 1` tensor
/// (fully overwritten).
///
/// # Errors
/// See [`linear_prepared`]; additionally errors if `out` has the wrong shape.
pub fn linear_prepared_into(
    input: &Tensor,
    weight: &PreparedGemmB,
    bias: Option<&[f32]>,
    out: &mut Tensor,
) -> Result<()> {
    let ishape = input.shape();
    let (k, out_features) = (weight.k(), weight.cols());
    if ishape.h != 1 || ishape.w != 1 || ishape.c != k {
        return Err(TensorError::ShapeMismatch {
            left: ishape.as_array().to_vec(),
            right: vec![ishape.n, k, 1, 1],
            op: "linear_prepared input",
        });
    }
    let expected = Shape::new(ishape.n, out_features, 1, 1);
    if out.shape() != expected {
        return Err(TensorError::ShapeMismatch {
            left: out.shape().as_array().to_vec(),
            right: expected.as_array().to_vec(),
            op: "linear_prepared output buffer",
        });
    }
    if let Some(b) = bias {
        if b.len() != out_features {
            return Err(TensorError::LengthMismatch { expected: out_features, actual: b.len() });
        }
    }
    engine::packed_gemm_strided(
        engine::GemmLhs::Rows { data: input.as_slice(), lda: k },
        0,
        ishape.n,
        k,
        weight.panels(),
        out_features,
        out.as_mut_slice(),
        out_features,
        0,
        engine::WriteMode::Overwrite { epilogue: engine::Epilogue::with_bias(None) },
    );
    if let Some(b) = bias {
        // The engine's bias is per *row* (batch element); the linear bias is per
        // column (output feature), so it is added in a tiny second sweep.
        let data = out.as_mut_slice();
        for n in 0..ishape.n {
            for (o, &bv) in data[n * out_features..(n + 1) * out_features].iter_mut().zip(b) {
                *o += bv;
            }
        }
    }
    Ok(())
}

/// Numerically-stable softmax over the channel dimension of an `N × C × 1 × 1` tensor.
///
/// # Errors
/// Returns an error if the input has spatial extent other than `1 × 1`.
pub fn softmax(input: &Tensor) -> Result<Tensor> {
    let ishape = input.shape();
    if ishape.h != 1 || ishape.w != 1 {
        return Err(TensorError::ShapeMismatch {
            left: ishape.as_array().to_vec(),
            right: vec![ishape.n, ishape.c, 1, 1],
            op: "softmax input",
        });
    }
    let mut out = Tensor::zeros(ishape);
    for n in 0..ishape.n {
        let mut maxv = f32::NEG_INFINITY;
        for c in 0..ishape.c {
            maxv = maxv.max(input.get(n, c, 0, 0));
        }
        let mut denom = 0.0;
        for c in 0..ishape.c {
            denom += (input.get(n, c, 0, 0) - maxv).exp();
        }
        for c in 0..ishape.c {
            out.set(n, c, 0, 0, (input.get(n, c, 0, 0) - maxv).exp() / denom);
        }
    }
    Ok(out)
}

/// Sigmoid activation, elementwise (used by the multi-label scale model head).
pub fn sigmoid(input: &Tensor) -> Tensor {
    input.map(|x| 1.0 / (1.0 + (-x).exp()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_and_relu6() {
        let t = Tensor::from_vec(Shape::new(1, 1, 1, 4), vec![-1.0, 0.5, 3.0, 9.0]).unwrap();
        assert_eq!(relu(&t).as_slice(), &[0.0, 0.5, 3.0, 9.0]);
        assert_eq!(relu6(&t).as_slice(), &[0.0, 0.5, 3.0, 6.0]);
    }

    #[test]
    fn batch_norm_normalizes() {
        let input = Tensor::from_fn(Shape::new(1, 2, 2, 2), |_, c, _, _| c as f32 * 10.0 + 5.0);
        let out =
            batch_norm(&input, &[5.0, 15.0], &[1.0, 1.0], &[1.0, 2.0], &[0.0, 1.0], 1e-5).unwrap();
        // channel 0: (5-5)/1*1+0 = 0; channel 1: (15-15)/1*2+1 = 1.
        assert!(out.plane(0, 0).iter().all(|x| x.abs() < 1e-3));
        assert!(out.plane(0, 1).iter().all(|x| (x - 1.0).abs() < 1e-3));
    }

    #[test]
    fn batch_norm_validates_lengths() {
        let input = Tensor::zeros(Shape::new(1, 3, 2, 2));
        assert!(batch_norm(&input, &[0.0; 2], &[1.0; 3], &[1.0; 3], &[0.0; 3], 1e-5).is_err());
        assert!(batch_norm(&input, &[0.0; 3], &[1.0; 3], &[1.0; 3], &[0.0; 2], 1e-5).is_err());
    }

    #[test]
    fn max_pool_picks_maximum() {
        let input = Tensor::from_fn(Shape::new(1, 1, 4, 4), |_, _, h, w| (h * 4 + w) as f32);
        let out = max_pool2d(&input, &Pool2dParams::new(2, 2, 0)).unwrap();
        assert_eq!(out.shape(), Shape::new(1, 1, 2, 2));
        assert_eq!(out.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn avg_pool_excludes_padding_from_divisor() {
        let input = Tensor::ones(Shape::new(1, 1, 2, 2));
        let out = avg_pool2d(&input, &Pool2dParams::new(3, 1, 1)).unwrap();
        // Every window only ever sees ones, so excluding padded cells keeps the average 1.
        assert!(out.as_slice().iter().all(|&x| (x - 1.0).abs() < 1e-6));
    }

    #[test]
    fn pooling_window_validation() {
        let input = Tensor::ones(Shape::new(1, 1, 2, 2));
        assert!(max_pool2d(&input, &Pool2dParams::new(5, 1, 0)).is_err());
    }

    #[test]
    fn global_avg_pool_reduces_planes() {
        let input = Tensor::from_fn(Shape::new(2, 3, 4, 4), |n, c, _, _| (n + c) as f32);
        let out = global_avg_pool(&input);
        assert_eq!(out.shape(), Shape::new(2, 3, 1, 1));
        assert!((out.get(1, 2, 0, 0) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn linear_layer() {
        let input = Tensor::from_vec(Shape::new(1, 3, 1, 1), vec![1.0, 2.0, 3.0]).unwrap();
        let weight = vec![1.0, 0.0, 0.0, 0.0, 1.0, 1.0];
        let out = linear(&input, &weight, Some(&[0.5, -0.5]), 2).unwrap();
        assert_eq!(out.as_slice(), &[1.5, 4.5]);
        // Non-pooled input rejected.
        let spatial = Tensor::zeros(Shape::new(1, 3, 2, 2));
        assert!(linear(&spatial, &weight, None, 2).is_err());
        // Wrong weight length rejected.
        assert!(linear(&input, &weight[..4], None, 2).is_err());
        assert!(linear(&input, &weight, Some(&[0.0; 3]), 2).is_err());
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let input = Tensor::from_vec(Shape::new(1, 3, 1, 1), vec![1000.0, 1001.0, 1002.0]).unwrap();
        let out = softmax(&input).unwrap();
        let sum: f32 = out.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(!out.has_non_finite());
        assert!(out.get(0, 2, 0, 0) > out.get(0, 0, 0, 0));
        assert!(softmax(&Tensor::zeros(Shape::new(1, 3, 2, 2))).is_err());
    }

    #[test]
    fn sigmoid_bounds() {
        let input = Tensor::from_vec(Shape::new(1, 1, 1, 3), vec![-100.0, 0.0, 100.0]).unwrap();
        let out = sigmoid(&input);
        assert!(out.get(0, 0, 0, 0) < 1e-6);
        assert!((out.get(0, 0, 0, 1) - 0.5).abs() < 1e-6);
        assert!(out.get(0, 0, 0, 2) > 1.0 - 1e-6);
    }
}
