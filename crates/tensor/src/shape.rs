//! Shape arithmetic for NCHW tensors and convolution/pooling windows.

use serde::{Deserialize, Serialize};

use crate::error::{Result, TensorError};

/// Shape of a 4-D tensor laid out as `N × C × H × W` (batch, channels, height, width).
///
/// All computer-vision tensors in this workspace use this layout; 2-D matrices are
/// represented as `1 × 1 × rows × cols` where convenient or handled by dedicated GEMM
/// routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    /// Batch size.
    pub n: usize,
    /// Channel count.
    pub c: usize,
    /// Spatial height.
    pub h: usize,
    /// Spatial width.
    pub w: usize,
}

impl Shape {
    /// Creates a new NCHW shape.
    ///
    /// # Examples
    /// ```
    /// use rescnn_tensor::Shape;
    /// let s = Shape::new(1, 3, 224, 224);
    /// assert_eq!(s.volume(), 3 * 224 * 224);
    /// ```
    pub const fn new(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape { n, c, h, w }
    }

    /// Shape of a single feature map `1 × c × h × w`.
    pub const fn chw(c: usize, h: usize, w: usize) -> Self {
        Shape::new(1, c, h, w)
    }

    /// Total number of elements.
    pub const fn volume(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// Linear offset of the element at `(n, c, h, w)`.
    ///
    /// # Panics
    /// Panics in debug builds if any coordinate is out of range.
    #[inline]
    pub fn offset(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(n < self.n && c < self.c && h < self.h && w < self.w);
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Returns the shape as a `[n, c, h, w]` array (useful for error messages).
    pub const fn as_array(&self) -> [usize; 4] {
        [self.n, self.c, self.h, self.w]
    }

    /// Returns `true` when any dimension is zero.
    pub const fn is_empty(&self) -> bool {
        self.n == 0 || self.c == 0 || self.h == 0 || self.w == 0
    }

    /// Returns a copy of the shape with a different batch size.
    pub const fn with_batch(&self, n: usize) -> Self {
        Shape { n, ..*self }
    }

    /// Returns a copy of the shape with different spatial dimensions.
    pub const fn with_spatial(&self, h: usize, w: usize) -> Self {
        Shape { h, w, ..*self }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}x{}", self.n, self.c, self.h, self.w)
    }
}

/// Parameters of a 2-D convolution or pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dParams {
    /// Number of input channels.
    pub in_channels: usize,
    /// Number of output channels.
    pub out_channels: usize,
    /// Kernel height (and width — square kernels only).
    pub kernel: usize,
    /// Stride applied in both spatial dimensions.
    pub stride: usize,
    /// Zero padding applied symmetrically to both spatial dimensions.
    pub padding: usize,
    /// Number of channel groups (`1` = dense convolution, `in_channels` = depthwise).
    pub groups: usize,
}

impl Conv2dParams {
    /// Creates a dense (non-grouped) convolution parameter set.
    pub const fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Conv2dParams { in_channels, out_channels, kernel, stride, padding, groups: 1 }
    }

    /// Creates a depthwise convolution parameter set (one group per channel).
    pub const fn depthwise(channels: usize, kernel: usize, stride: usize, padding: usize) -> Self {
        Conv2dParams {
            in_channels: channels,
            out_channels: channels,
            kernel,
            stride,
            padding,
            groups: channels,
        }
    }

    /// Returns a copy with a different group count.
    pub const fn with_groups(mut self, groups: usize) -> Self {
        self.groups = groups;
        self
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    /// Returns an error if any structural dimension is zero, or if the channel counts are
    /// not divisible by the group count.
    pub fn validate(&self) -> Result<()> {
        if self.in_channels == 0 {
            return Err(TensorError::ZeroDimension { name: "in_channels" });
        }
        if self.out_channels == 0 {
            return Err(TensorError::ZeroDimension { name: "out_channels" });
        }
        if self.kernel == 0 {
            return Err(TensorError::ZeroDimension { name: "kernel" });
        }
        if self.stride == 0 {
            return Err(TensorError::ZeroDimension { name: "stride" });
        }
        if self.groups == 0
            || !self.in_channels.is_multiple_of(self.groups)
            || !self.out_channels.is_multiple_of(self.groups)
        {
            return Err(TensorError::InvalidGrouping {
                in_channels: self.in_channels,
                out_channels: self.out_channels,
                groups: self.groups,
            });
        }
        Ok(())
    }

    /// Spatial output extent for an input extent, or an error if the window is invalid.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidWindow`] when the padded input is smaller than the
    /// kernel.
    pub fn output_extent(&self, input: usize) -> Result<usize> {
        conv_output_extent(input, self.kernel, self.stride, self.padding)
    }

    /// Output shape for a given input shape.
    ///
    /// # Errors
    /// Returns an error if the parameters are invalid for the input shape (channel
    /// mismatch or empty output window).
    pub fn output_shape(&self, input: Shape) -> Result<Shape> {
        self.validate()?;
        if input.c != self.in_channels {
            return Err(TensorError::ShapeMismatch {
                left: input.as_array().to_vec(),
                right: vec![self.in_channels],
                op: "conv2d input channels",
            });
        }
        let oh = self.output_extent(input.h)?;
        let ow = self.output_extent(input.w)?;
        Ok(Shape::new(input.n, self.out_channels, oh, ow))
    }

    /// Number of multiply–accumulate operations for one forward pass at `input`.
    ///
    /// This is the canonical FLOP accounting used by the paper (one MAC counted as two
    /// FLOPs by [`Conv2dParams::flops`]).
    pub fn macs(&self, input: Shape) -> Result<u64> {
        let out = self.output_shape(input)?;
        let per_output = (self.in_channels / self.groups) * self.kernel * self.kernel;
        Ok(out.volume() as u64 * per_output as u64)
    }

    /// Number of floating-point operations (2 × MACs) for one forward pass.
    pub fn flops(&self, input: Shape) -> Result<u64> {
        Ok(self.macs(input)? * 2)
    }

    /// Number of weight parameters (excluding bias).
    pub const fn weight_count(&self) -> usize {
        self.out_channels * (self.in_channels / self.groups) * self.kernel * self.kernel
    }
}

/// Computes the output extent of a strided, padded sliding window.
///
/// # Errors
/// Returns [`TensorError::InvalidWindow`] when `input + 2 * padding < kernel` or when
/// `stride == 0`.
pub fn conv_output_extent(
    input: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> Result<usize> {
    if stride == 0 || kernel == 0 {
        return Err(TensorError::InvalidWindow { input, kernel, stride, padding });
    }
    let padded = input + 2 * padding;
    if padded < kernel {
        return Err(TensorError::InvalidWindow { input, kernel, stride, padding });
    }
    Ok((padded - kernel) / stride + 1)
}

/// Parameters of a 2-D pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pool2dParams {
    /// Window extent (square windows only).
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Symmetric zero padding.
    pub padding: usize,
}

impl Pool2dParams {
    /// Creates a pooling parameter set.
    pub const fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        Pool2dParams { kernel, stride, padding }
    }

    /// Output shape for a given input shape.
    ///
    /// # Errors
    /// Returns an error when the window does not fit in the padded input.
    pub fn output_shape(&self, input: Shape) -> Result<Shape> {
        let oh = conv_output_extent(input.h, self.kernel, self.stride, self.padding)?;
        let ow = conv_output_extent(input.w, self.kernel, self.stride, self.padding)?;
        Ok(Shape::new(input.n, input.c, oh, ow))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_volume_and_offset() {
        let s = Shape::new(2, 3, 4, 5);
        assert_eq!(s.volume(), 120);
        assert_eq!(s.offset(0, 0, 0, 0), 0);
        assert_eq!(s.offset(1, 2, 3, 4), 119);
        assert_eq!(s.offset(0, 1, 0, 0), 20);
        assert_eq!(s.to_string(), "2x3x4x5");
        assert!(!s.is_empty());
        assert!(Shape::new(0, 3, 4, 5).is_empty());
    }

    #[test]
    fn shape_modifiers() {
        let s = Shape::chw(3, 224, 224);
        assert_eq!(s.n, 1);
        assert_eq!(s.with_batch(8).n, 8);
        assert_eq!(s.with_spatial(112, 112).h, 112);
        assert_eq!(s.as_array(), [1, 3, 224, 224]);
    }

    #[test]
    fn conv_output_extent_standard_cases() {
        // 3x3 stride-1 pad-1 preserves extent.
        assert_eq!(conv_output_extent(224, 3, 1, 1).unwrap(), 224);
        // 7x7 stride-2 pad-3: ImageNet stem.
        assert_eq!(conv_output_extent(224, 7, 2, 3).unwrap(), 112);
        // 1x1 stride 2.
        assert_eq!(conv_output_extent(56, 1, 2, 0).unwrap(), 28);
        // Window larger than padded input.
        assert!(conv_output_extent(2, 7, 1, 1).is_err());
        assert!(conv_output_extent(8, 3, 0, 1).is_err());
    }

    #[test]
    fn conv_params_output_shape_and_flops() {
        let p = Conv2dParams::new(3, 64, 7, 2, 3);
        let out = p.output_shape(Shape::chw(3, 224, 224)).unwrap();
        assert_eq!(out, Shape::new(1, 64, 112, 112));
        // MACs = 112*112*64 * 3*7*7
        assert_eq!(p.macs(Shape::chw(3, 224, 224)).unwrap(), 112 * 112 * 64 * 3 * 7 * 7);
        assert_eq!(p.flops(Shape::chw(3, 224, 224)).unwrap(), 2 * 112 * 112 * 64 * 3 * 7 * 7);
        assert_eq!(p.weight_count(), 64 * 3 * 7 * 7);
    }

    #[test]
    fn conv_params_channel_mismatch_is_rejected() {
        let p = Conv2dParams::new(16, 32, 3, 1, 1);
        assert!(p.output_shape(Shape::chw(8, 28, 28)).is_err());
    }

    #[test]
    fn depthwise_params() {
        let p = Conv2dParams::depthwise(32, 3, 1, 1);
        assert_eq!(p.groups, 32);
        p.validate().unwrap();
        let macs = p.macs(Shape::chw(32, 56, 56)).unwrap();
        assert_eq!(macs, 56 * 56 * 32 * 9);
        assert_eq!(p.weight_count(), 32 * 9);
    }

    #[test]
    fn grouping_validation() {
        let p = Conv2dParams::new(6, 8, 3, 1, 1).with_groups(4);
        assert!(p.validate().is_err());
        let p = Conv2dParams::new(8, 8, 3, 1, 1).with_groups(4);
        assert!(p.validate().is_ok());
        let p = Conv2dParams::new(8, 8, 3, 1, 1).with_groups(0);
        assert!(p.validate().is_err());
    }

    #[test]
    fn zero_dimension_validation() {
        assert!(Conv2dParams::new(0, 8, 3, 1, 1).validate().is_err());
        assert!(Conv2dParams::new(8, 0, 3, 1, 1).validate().is_err());
        assert!(Conv2dParams::new(8, 8, 0, 1, 1).validate().is_err());
        assert!(Conv2dParams::new(8, 8, 3, 0, 1).validate().is_err());
    }

    #[test]
    fn pool_output_shape() {
        let p = Pool2dParams::new(3, 2, 1);
        let out = p.output_shape(Shape::chw(64, 112, 112)).unwrap();
        assert_eq!(out, Shape::new(1, 64, 56, 56));
        assert!(Pool2dParams::new(9, 1, 0).output_shape(Shape::chw(1, 4, 4)).is_err());
    }
}
