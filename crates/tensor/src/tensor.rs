//! The dense `f32` NCHW tensor type.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::error::{Result, TensorError};
use crate::shape::Shape;

/// A dense, row-major (NCHW) tensor of `f32` values.
///
/// All neural-network activations and weights in this workspace use this type. The
/// representation is deliberately simple: a contiguous `Vec<f32>` plus a [`Shape`].
///
/// # Examples
/// ```
/// use rescnn_tensor::{Shape, Tensor};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let t = Tensor::zeros(Shape::new(1, 3, 4, 4));
/// assert_eq!(t.shape().volume(), 48);
/// let u = t.map(|x| x + 1.0);
/// assert_eq!(u.get(0, 0, 0, 0), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: Shape) -> Self {
        Tensor { shape, data: vec![0.0; shape.volume()] }
    }

    /// Creates a tensor filled with a constant value.
    pub fn full(shape: Shape, value: f32) -> Self {
        Tensor { shape, data: vec![value; shape.volume()] }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: Shape) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    /// Returns [`TensorError::LengthMismatch`] if `data.len() != shape.volume()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self> {
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor by evaluating `f(n, c, h, w)` at every coordinate.
    pub fn from_fn<F: FnMut(usize, usize, usize, usize) -> f32>(shape: Shape, mut f: F) -> Self {
        let mut data = Vec::with_capacity(shape.volume());
        for n in 0..shape.n {
            for c in 0..shape.c {
                for h in 0..shape.h {
                    for w in 0..shape.w {
                        data.push(f(n, c, h, w));
                    }
                }
            }
        }
        Tensor { shape, data }
    }

    /// Creates a tensor with values drawn from a seeded uniform distribution on `[-scale, scale]`.
    pub fn random_uniform(shape: Shape, scale: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = rand::distributions::Uniform::new_inclusive(-scale, scale);
        let data = (0..shape.volume()).map(|_| dist.sample(&mut rng)).collect();
        Tensor { shape, data }
    }

    /// Creates a tensor with Kaiming-style initialization for a conv weight of shape
    /// `out_ch × in_ch_per_group × k × k` (encoded as NCHW), seeded deterministically.
    pub fn kaiming(shape: Shape, fan_in: usize, seed: u64) -> Self {
        let scale = (2.0 / fan_in.max(1) as f32).sqrt();
        Tensor::random_uniform(shape, scale, seed)
    }

    /// Returns the shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Returns the underlying data as a slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Returns the underlying data as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at `(n, c, h, w)`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn get(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.shape.offset(n, c, h, w)]
    }

    /// Sets the element at `(n, c, h, w)`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, value: f32) {
        let idx = self.shape.offset(n, c, h, w);
        self.data[idx] = value;
    }

    /// Returns the channel plane `(n, c)` as a slice of length `h * w`.
    pub fn plane(&self, n: usize, c: usize) -> &[f32] {
        let start = self.shape.offset(n, c, 0, 0);
        &self.data[start..start + self.shape.h * self.shape.w]
    }

    /// Returns the channel plane `(n, c)` as a mutable slice.
    pub fn plane_mut(&mut self, n: usize, c: usize) -> &mut [f32] {
        let start = self.shape.offset(n, c, 0, 0);
        let len = self.shape.h * self.shape.w;
        &mut self.data[start..start + len]
    }

    /// Applies a function elementwise, returning a new tensor.
    pub fn map<F: FnMut(f32) -> f32>(&self, mut f: F) -> Self {
        Tensor { shape: self.shape, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies a function elementwise in place.
    pub fn map_inplace<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise addition.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Elementwise multiplication.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, "mul", |a, b| a * b)
    }

    fn zip_with<F: FnMut(f32, f32) -> f32>(
        &self,
        other: &Tensor,
        op: &'static str,
        mut f: F,
    ) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.as_array().to_vec(),
                right: other.shape.as_array().to_vec(),
                op,
            });
        }
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect();
        Ok(Tensor { shape: self.shape, data })
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.as_array().to_vec(),
                right: other.shape.as_array().to_vec(),
                op: "add_assign",
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, factor: f32) -> Tensor {
        self.map(|x| x * factor)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for empty tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for empty tensors).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element across the whole tensor (`None` for empty tensors).
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Returns `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Reinterprets the tensor with a new shape of identical volume.
    ///
    /// # Errors
    /// Returns [`TensorError::LengthMismatch`] when the volumes differ.
    pub fn reshape(&self, shape: Shape) -> Result<Tensor> {
        if shape.volume() != self.shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.shape.volume(),
            });
        }
        Ok(Tensor { shape, data: self.data.clone() })
    }

    /// Maximum absolute difference between two tensors of identical shape.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.as_array().to_vec(),
                right: other.shape.as_array().to_vec(),
                op: "max_abs_diff",
            });
        }
        Ok(self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0_f32, f32::max))
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(Shape::new(1, 1, 1, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let shape = Shape::new(1, 2, 3, 3);
        let t = Tensor::from_fn(shape, |_, c, h, w| (c * 9 + h * 3 + w) as f32);
        assert_eq!(t.get(0, 0, 0, 0), 0.0);
        assert_eq!(t.get(0, 1, 2, 2), 17.0);
        assert_eq!(t.plane(0, 1).len(), 9);
        assert_eq!(t.plane(0, 1)[0], 9.0);
        assert_eq!(t.as_slice().len(), 18);
    }

    #[test]
    fn from_vec_validates_length() {
        let shape = Shape::new(1, 1, 2, 2);
        assert!(Tensor::from_vec(shape, vec![1.0; 4]).is_ok());
        assert!(Tensor::from_vec(shape, vec![1.0; 5]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let shape = Shape::new(1, 1, 2, 2);
        let a = Tensor::from_vec(shape, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::ones(shape);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(a.sub(&b).unwrap().as_slice(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), a.as_slice());
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0, 8.0]);
        let mut c = a.clone();
        c.add_assign(&b).unwrap();
        assert_eq!(c.as_slice(), &[2.0, 3.0, 4.0, 5.0]);

        let other = Tensor::zeros(Shape::new(1, 1, 1, 4));
        assert!(a.add(&other).is_err());
        assert!(a.clone().add_assign(&other).is_err());
    }

    #[test]
    fn reductions() {
        let shape = Shape::new(1, 1, 2, 2);
        let a = Tensor::from_vec(shape, vec![1.0, -2.0, 3.5, 0.0]).unwrap();
        assert_eq!(a.sum(), 2.5);
        assert!((a.mean() - 0.625).abs() < 1e-6);
        assert_eq!(a.max(), 3.5);
        assert_eq!(a.min(), -2.0);
        assert_eq!(a.argmax(), Some(2));
    }

    #[test]
    fn reshape_preserves_volume() {
        let t = Tensor::zeros(Shape::new(1, 4, 2, 2));
        assert!(t.reshape(Shape::new(1, 1, 4, 4)).is_ok());
        assert!(t.reshape(Shape::new(1, 1, 4, 5)).is_err());
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let shape = Shape::new(1, 3, 8, 8);
        let a = Tensor::random_uniform(shape, 1.0, 7);
        let b = Tensor::random_uniform(shape, 1.0, 7);
        let c = Tensor::random_uniform(shape, 1.0, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.max() <= 1.0 && a.min() >= -1.0);
    }

    #[test]
    fn nan_detection_and_diff() {
        let shape = Shape::new(1, 1, 1, 2);
        let a = Tensor::from_vec(shape, vec![1.0, f32::NAN]).unwrap();
        assert!(a.has_non_finite());
        let b = Tensor::from_vec(shape, vec![1.0, 2.0]).unwrap();
        let c = Tensor::from_vec(shape, vec![1.5, 2.0]).unwrap();
        assert!((b.max_abs_diff(&c).unwrap() - 0.5).abs() < 1e-6);
        assert!(b.max_abs_diff(&Tensor::zeros(Shape::new(1, 1, 2, 1))).is_err());
    }

    #[test]
    fn map_and_mutation() {
        let mut t = Tensor::full(Shape::new(1, 1, 2, 2), -1.0);
        t.map_inplace(|x| x.abs());
        assert_eq!(t.as_slice(), &[1.0; 4]);
        t.set(0, 0, 1, 1, 5.0);
        assert_eq!(t.get(0, 0, 1, 1), 5.0);
        t.plane_mut(0, 0)[0] = 9.0;
        assert_eq!(t.get(0, 0, 0, 0), 9.0);
        assert_eq!(t.clone().into_vec().len(), 4);
    }

    #[test]
    fn default_is_non_empty() {
        let t = Tensor::default();
        assert_eq!(t.shape().volume(), 1);
    }
}
