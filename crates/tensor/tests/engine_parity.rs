//! Parity suite for the packed convolution engine.
//!
//! Every engine path (packed im2col, 1×1 GEMM fast path, dedicated depthwise kernel,
//! packed GEMM) is validated against the reference seven-loop [`conv2d_direct`] over
//! randomized strided / padded / grouped / depthwise / 1×1 shapes at multiple
//! resolutions, and the multi-threaded paths are pinned to bitwise-identical results
//! across thread counts.

use rescnn_tensor::{
    conv2d_direct, conv2d_dispatch, conv2d_with_algo, gemm_packed, num_threads, select_algo,
    set_num_threads, Conv2dParams, ConvAlgo, MatDims, Shape, Tensor, INT8_TOLERANCE,
};

const TOLERANCE: f32 = 1e-3;

/// Small deterministic generator for shape fuzzing (independent of the tensor RNG).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, bound: usize) -> usize {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((self.0 >> 33) as usize) % bound.max(1)
    }

    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[self.next(options.len())]
    }
}

fn assert_matches_direct(params: &Conv2dParams, input_shape: Shape, seed: u64) {
    let input = Tensor::random_uniform(input_shape, 1.0, seed);
    let weight = Tensor::random_uniform(
        Shape::new(
            params.out_channels,
            params.in_channels / params.groups,
            params.kernel,
            params.kernel,
        ),
        0.6,
        seed ^ 0xABCD,
    );
    let bias: Vec<f32> = (0..params.out_channels).map(|i| (i as f32 - 2.0) * 0.11).collect();
    let reference = conv2d_direct(&input, &weight, Some(&bias), params).unwrap();
    let (engine, algo) = conv2d_dispatch(&input, &weight, Some(&bias), params).unwrap();
    let diff = reference.max_abs_diff(&engine).unwrap();
    assert!(
        diff < TOLERANCE,
        "engine ({algo}) diverged by {diff} for {params:?} at input {input_shape}"
    );
}

#[test]
fn randomized_dense_shapes_match_direct() {
    let mut rng = Lcg(0x5EED);
    for case in 0..60 {
        let kernel = rng.pick(&[1usize, 3, 5, 7]);
        let stride = rng.pick(&[1usize, 2, 3]);
        let padding = rng.next(kernel); // padding < kernel keeps windows valid
        let in_channels = 1 + rng.next(9);
        let out_channels = 1 + rng.next(12);
        let resolution = rng.pick(&[7usize, 12, 19, 28, 33]);
        if resolution + 2 * padding < kernel {
            continue;
        }
        let params = Conv2dParams::new(in_channels, out_channels, kernel, stride, padding);
        let batch = 1 + rng.next(2);
        assert_matches_direct(
            &params,
            Shape::new(batch, in_channels, resolution, resolution),
            case as u64,
        );
    }
}

#[test]
fn randomized_grouped_shapes_match_direct() {
    let mut rng = Lcg(0x6EED);
    for case in 0..30 {
        let groups = rng.pick(&[2usize, 3, 4]);
        let in_channels = groups * (1 + rng.next(4));
        let out_channels = groups * (1 + rng.next(5));
        let kernel = rng.pick(&[1usize, 3, 5]);
        let stride = rng.pick(&[1usize, 2]);
        let padding = rng.next(kernel);
        let resolution = rng.pick(&[9usize, 14, 21, 30]);
        if resolution + 2 * padding < kernel {
            continue;
        }
        let params = Conv2dParams::new(in_channels, out_channels, kernel, stride, padding)
            .with_groups(groups);
        assert_matches_direct(
            &params,
            Shape::new(1 + rng.next(2), in_channels, resolution, resolution),
            0x1000 + case as u64,
        );
    }
}

#[test]
fn randomized_depthwise_shapes_match_direct() {
    let mut rng = Lcg(0x7EED);
    for case in 0..30 {
        let channels = 1 + rng.next(12);
        let kernel = rng.pick(&[3usize, 5]);
        let stride = rng.pick(&[1usize, 2, 3]);
        let padding = rng.next(kernel);
        let resolution = rng.pick(&[8usize, 15, 22, 31]);
        if resolution + 2 * padding < kernel {
            continue;
        }
        let params = Conv2dParams::depthwise(channels, kernel, stride, padding);
        assert_eq!(
            select_algo(&params, Shape::chw(channels, resolution, resolution)),
            ConvAlgo::Depthwise
        );
        assert_matches_direct(
            &params,
            Shape::new(1 + rng.next(2), channels, resolution, resolution),
            0x2000 + case as u64,
        );
    }
}

#[test]
fn pointwise_shapes_take_gemm_path_and_match() {
    let mut rng = Lcg(0x8EED);
    for case in 0..25 {
        let in_channels = 1 + rng.next(24);
        let out_channels = 1 + rng.next(24);
        let resolution = rng.pick(&[6usize, 13, 27, 41]);
        let params = Conv2dParams::new(in_channels, out_channels, 1, 1, 0);
        assert_eq!(
            select_algo(&params, Shape::chw(in_channels, resolution, resolution)),
            ConvAlgo::Gemm1x1
        );
        assert_matches_direct(
            &params,
            Shape::new(1 + rng.next(3), in_channels, resolution, resolution),
            0x3000 + case as u64,
        );
    }
}

#[test]
fn resolution_ladder_matches_direct() {
    // The paper's ladder, scaled down in channel count to keep the reference
    // seven-loop kernel affordable in a test.
    for resolution in [28usize, 42, 56, 84, 112] {
        let params = Conv2dParams::new(8, 12, 3, 1, 1);
        assert_matches_direct(&params, Shape::chw(8, resolution, resolution), resolution as u64);
        let strided = Conv2dParams::new(8, 12, 3, 2, 1);
        assert_matches_direct(&strided, Shape::chw(8, resolution, resolution), resolution as u64);
    }
}

#[test]
fn every_algo_agrees_on_every_supported_shape() {
    let cases = [
        Conv2dParams::new(6, 10, 3, 1, 1),
        Conv2dParams::new(6, 10, 1, 1, 0),
        Conv2dParams::depthwise(7, 3, 2, 1),
        Conv2dParams::new(8, 8, 5, 2, 2).with_groups(2),
    ];
    for (index, params) in cases.iter().enumerate() {
        let input = Tensor::random_uniform(
            Shape::new(2, params.in_channels, 17, 17),
            1.0,
            50 + index as u64,
        );
        let weight = Tensor::random_uniform(
            Shape::new(
                params.out_channels,
                params.in_channels / params.groups,
                params.kernel,
                params.kernel,
            ),
            0.5,
            60 + index as u64,
        );
        let reference = conv2d_direct(&input, &weight, None, params).unwrap();
        for algo in ConvAlgo::ALL {
            if !algo.supports(params) {
                continue;
            }
            let out = conv2d_with_algo(&input, &weight, None, params, algo).unwrap();
            let diff = reference.max_abs_diff(&out).unwrap();
            // The quantized arm is exact only up to its characterized bound
            // (its own suite, int8_parity.rs, pins it per shape); every f32
            // arm must agree to reassociation-level precision.
            let bound = if algo == ConvAlgo::Int8 { INT8_TOLERANCE } else { TOLERANCE };
            assert!(diff < bound, "{algo} diverged by {diff} on {params:?}");
        }
    }
}

/// Same input must produce bitwise-identical output for every thread count: the
/// engine partitions outputs into disjoint chunks with a fixed per-element
/// accumulation order, so scheduling must never change results.
#[test]
fn multi_thread_results_are_bitwise_identical() {
    let original = num_threads();
    let params = Conv2dParams::new(16, 32, 3, 1, 1);
    let input = Tensor::random_uniform(Shape::new(2, 16, 56, 56), 1.0, 11);
    let weight = Tensor::random_uniform(Shape::new(32, 16, 3, 3), 0.5, 12);
    let pointwise = Conv2dParams::new(16, 24, 1, 1, 0);
    let pw_weight = Tensor::random_uniform(Shape::new(24, 16, 1, 1), 0.5, 13);
    let depthwise = Conv2dParams::depthwise(16, 3, 1, 1);
    let dw_weight = Tensor::random_uniform(Shape::new(16, 1, 3, 3), 0.5, 14);

    let mut baselines: Option<(Tensor, Tensor, Tensor, Vec<f32>)> = None;
    for threads in [1usize, 2, 3, 8] {
        set_num_threads(threads);
        let dense = conv2d_dispatch(&input, &weight, None, &params).unwrap().0;
        let pw = conv2d_dispatch(&input, &pw_weight, None, &pointwise).unwrap().0;
        let dw = conv2d_dispatch(&input, &dw_weight, None, &depthwise).unwrap().0;
        let dims = MatDims::new(61, 301, 97);
        let a: Vec<f32> = (0..dims.m * dims.k).map(|i| (i as f32 * 0.11).sin()).collect();
        let b: Vec<f32> = (0..dims.k * dims.n).map(|i| (i as f32 * 0.17).cos()).collect();
        let mut gemm_out = vec![0.0f32; dims.m * dims.n];
        gemm_packed(dims, &a, &b, &mut gemm_out);
        match &baselines {
            None => baselines = Some((dense, pw, dw, gemm_out)),
            Some((dense0, pw0, dw0, gemm0)) => {
                assert_eq!(
                    dense0.as_slice(),
                    dense.as_slice(),
                    "dense conv differs at {threads} threads"
                );
                assert_eq!(pw0.as_slice(), pw.as_slice(), "1x1 conv differs at {threads} threads");
                assert_eq!(
                    dw0.as_slice(),
                    dw.as_slice(),
                    "depthwise conv differs at {threads} threads"
                );
                assert_eq!(gemm0, &gemm_out, "packed gemm differs at {threads} threads");
            }
        }
    }
    set_num_threads(original);
}

/// Repeated runs on the same thread count must also be identical (no dependence on
/// work-queue scheduling order).
#[test]
fn repeated_runs_are_bitwise_identical() {
    let original = num_threads();
    set_num_threads(4);
    let params = Conv2dParams::new(24, 48, 3, 2, 1);
    let input = Tensor::random_uniform(Shape::chw(24, 64, 64), 1.0, 21);
    let weight = Tensor::random_uniform(Shape::new(48, 24, 3, 3), 0.5, 22);
    let first = conv2d_dispatch(&input, &weight, None, &params).unwrap().0;
    for _ in 0..5 {
        let again = conv2d_dispatch(&input, &weight, None, &params).unwrap().0;
        assert_eq!(first.as_slice(), again.as_slice());
    }
    set_num_threads(original);
}
