//! Int8 quantized-arm acceptance suite: the characterized accuracy contract
//! against the f32 packed im2col engine, bitwise microkernel-tier parity,
//! bitwise determinism across thread counts, the zero-allocation warm path,
//! and the gate-off guarantee that f32 forwards are untouched.
//!
//! The arm trades exactness for u8×i8 arithmetic: per-output-channel symmetric
//! weight scales ([`INT8_WEIGHT_QMAX`] keeps every `maddubs` pair sum inside
//! i16, so all kernel tiers are bitwise identical) and a per-tensor asymmetric
//! activation range. Its agreement with the f32 paths is therefore bounded by
//! the pinned [`INT8_TOLERANCE`] at unit-scale activations, characterized here
//! across the serving ladder's stage shapes — the same bound the calibration
//! gate (`MeasuredTuner::admits_int8` in `rescnn-hwsim`) keys on. Across
//! thread counts and repeat runs the kernel must remain **bitwise identical**,
//! like every other engine path. CI re-runs this suite under
//! `RESCNN_THREADS=1,2,4`.

use rescnn_tensor::{
    conv2d_im2col_packed, conv2d_int8, int8_microkernel_dispatch, int8_microkernel_reference,
    int8_unit_error, scratch, select_algo, set_num_threads, tensor_range, ActQuant, Conv2dParams,
    ConvAlgo, ConvEpilogue, FusedActivation, PreparedLayer, Shape, Tensor, INT8_TOLERANCE,
    INT8_WEIGHT_QMAX,
};

/// Serializes tests that mutate the process-wide thread count or observe the
/// process-wide allocation counter.
static GLOBAL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn sample(params: &Conv2dParams, n: usize, h: usize, w: usize, seed: u64) -> (Tensor, Tensor) {
    let input = Tensor::random_uniform(Shape::new(n, params.in_channels, h, w), 1.0, seed);
    let weight = Tensor::random_uniform(
        Shape::new(params.out_channels, params.in_channels, params.kernel, params.kernel),
        0.5,
        seed ^ 0x5a5a,
    );
    (input, weight)
}

/// Activation quantization round trip: the zero-point is exact (padding fill
/// depends on it) and every in-range value reconstructs within half a step.
#[test]
fn activation_round_trip_is_within_half_a_step_and_zero_is_exact() {
    for (lo, hi) in [(-1.0f32, 1.0f32), (0.0, 6.0), (-0.25, 3.75), (-5.0, 0.0), (0.1, 0.9)] {
        let q = ActQuant::from_range(lo, hi);
        assert_eq!(
            q.quantize(0.0),
            q.zero_point,
            "0.0 must map to the zero-point exactly for range [{lo}, {hi}]"
        );
        for i in 0..=64 {
            let x = lo + (hi - lo) * i as f32 / 64.0;
            let code = q.quantize(x);
            let back = (code as i32 - q.zero_point as i32) as f32 * q.scale;
            assert!(
                (x - back).abs() <= q.scale * 0.5 + 1e-6,
                "round trip of {x} through [{lo}, {hi}] drifted to {back} (scale {})",
                q.scale
            );
        }
    }
    // Degenerate ranges must not produce NaN scales.
    let degenerate = ActQuant::from_range(0.0, 0.0);
    assert!(degenerate.scale.is_finite() && degenerate.scale > 0.0);
}

/// Whatever SIMD tier this build dispatches to must agree **bitwise** with the
/// portable reference on in-contract operands (weights within
/// [`INT8_WEIGHT_QMAX`], activations spanning all of u8).
#[test]
fn microkernel_tiers_agree_bitwise_with_the_portable_reference() {
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for quads in [0usize, 1, 2, 3, 7, 13, 32] {
        // Oversized panels are fine: both kernels read the same leading
        // `quads` chunks of the same layout.
        let apanel: Vec<i32> = (0..quads.max(1) * 8)
            .map(|_| {
                let bytes: [i8; 4] = std::array::from_fn(|_| {
                    (next() % (2 * INT8_WEIGHT_QMAX as u64 + 1)) as i32 as i8
                        - INT8_WEIGHT_QMAX as i8
                });
                i32::from_le_bytes(bytes.map(|b| b as u8))
            })
            .collect();
        let bpanel: Vec<u8> = (0..quads.max(1) * 32 * 4).map(|_| (next() & 0xff) as u8).collect();
        let reference = int8_microkernel_reference(quads, &apanel, &bpanel);
        let dispatched = int8_microkernel_dispatch(quads, &apanel, &bpanel);
        assert_eq!(
            reference, dispatched,
            "dispatched microkernel tier diverged from the portable reference at quads={quads}"
        );
    }
}

/// The characterization satellite: every ResNet-family stage shape of the
/// serving ladder must measure within the pinned bound, and the probe itself
/// must be a pure function of the shape (bit-stable across calls) since the
/// calibration gate keys on it.
#[test]
fn characterized_unit_error_stays_within_pinned_bound_across_ladder_shapes() {
    let stages: &[(usize, usize, usize, usize)] = &[
        (64, 64, 3, 56),
        (128, 128, 3, 28),
        (256, 256, 3, 14),
        (512, 512, 3, 7),
        (256, 64, 1, 56),
        (1024, 256, 1, 14),
    ];
    for &(ic, oc, k, s) in stages {
        let params = Conv2dParams::new(ic, oc, k, 1, k / 2);
        let shape = Shape::chw(ic, s, s);
        let err = int8_unit_error(&params, shape).unwrap();
        assert!(
            err > 0.0,
            "int8 must genuinely quantize for {ic}→{oc} k={k}@{s}² (a zero probe means it ran \
             a fallback path and the pin is meaningless)"
        );
        assert!(
            err <= INT8_TOLERANCE,
            "int8 unit error {err} exceeds the pinned bound {INT8_TOLERANCE} for \
             {ic}→{oc} k={k}@{s}² — the characterized contract regressed"
        );
        let again = int8_unit_error(&params, shape).unwrap();
        assert_eq!(err.to_bits(), again.to_bits(), "the gate probe must be shape-pure");
        println!("int8 unit error {ic}->{oc} k={k}@{s}²: {err:.3} (bound {INT8_TOLERANCE})");
    }
}

/// Quantized convolution agrees with the f32 packed engine within the pinned
/// bound across edge geometries the stage shapes do not cover: 1×1 and 3×3,
/// pad 0/1/2, rectangular frames, batches > 1, odd channel counts.
#[test]
fn tolerance_against_packed_im2col_across_shapes_and_paddings() {
    let cases: &[(usize, usize, usize, usize, usize, usize, usize)] = &[
        // (in_ch, out_ch, kernel, batch, h, w, pad)
        (1, 1, 3, 1, 6, 6, 0),
        (3, 8, 3, 1, 9, 11, 1),
        (8, 4, 3, 2, 13, 15, 1),
        (16, 16, 1, 1, 16, 16, 0),
        (5, 7, 3, 1, 10, 7, 2),
        (48, 32, 3, 1, 19, 17, 1),
        (4, 4, 3, 3, 8, 22, 1),
        (33, 17, 1, 1, 12, 9, 0),
    ];
    for &(ic, oc, k, n, h, w, pad) in cases {
        let params = Conv2dParams::new(ic, oc, k, 1, pad);
        let (input, weight) = sample(&params, n, h, w, (ic * h + oc * w) as u64);
        let bias: Vec<f32> = (0..oc).map(|i| 0.05 * i as f32 - 0.1).collect();
        let packed = conv2d_im2col_packed(&input, &weight, Some(&bias), &params).unwrap();
        let quantized = conv2d_int8(&input, &weight, Some(&bias), &params).unwrap();
        assert_eq!(packed.shape(), quantized.shape());
        let diff = packed.max_abs_diff(&quantized).unwrap();
        assert!(
            diff <= INT8_TOLERANCE,
            "int8 vs im2col_packed drift {diff} for ic={ic} oc={oc} k={k} n={n} {h}x{w} pad={pad}"
        );
    }
}

#[test]
fn bitwise_deterministic_across_thread_counts() {
    let _guard = lock();
    // Large enough to clear the engine's parallelism threshold.
    let params = Conv2dParams::new(32, 48, 3, 1, 1);
    let (input, weight) = sample(&params, 1, 57, 61, 7);
    let bias: Vec<f32> = (0..48).map(|i| (i as f32) * 0.01).collect();
    let mut prepared = PreparedLayer::new(weight, Some(bias), params).unwrap();
    let (lo, hi) = tensor_range(&input);
    prepared.set_int8_range(lo, hi);
    let mut out = Tensor::zeros(params.output_shape(input.shape()).unwrap());

    let mut outputs = Vec::new();
    for threads in [1usize, 2, 4] {
        set_num_threads(threads);
        prepared
            .forward_with_algo_into(
                &input,
                ConvAlgo::Int8,
                ConvEpilogue::activation(FusedActivation::Relu),
                &mut out,
            )
            .unwrap();
        outputs.push(out.as_slice().to_vec());
    }
    set_num_threads(1);
    assert_eq!(outputs[0], outputs[1], "1 vs 2 threads must agree bitwise");
    assert_eq!(outputs[0], outputs[2], "1 vs 4 threads must agree bitwise");

    // Repeat runs at the ambient thread count are bitwise stable too (scratch
    // arena reuse must not leak state between calls, and the dynamic-range
    // fallback of `conv2d_int8` must agree with the static-range prepared
    // path given the same observed range).
    prepared
        .forward_with_algo_into(
            &input,
            ConvAlgo::Int8,
            ConvEpilogue::activation(FusedActivation::Relu),
            &mut out,
        )
        .unwrap();
    assert_eq!(outputs[0], out.as_slice());
}

/// The serving contract: once the layer is prepared (weights quantized, the
/// activation range calibrated) and the scratch arena is warm, the quantized
/// forward allocates nothing on any thread.
#[test]
fn warm_quantized_path_does_not_allocate() {
    let _guard = lock();
    let params = Conv2dParams::new(32, 64, 3, 1, 1);
    let (input, weight) = sample(&params, 1, 96, 96, 11);
    let mut prepared = PreparedLayer::new(weight, None, params).unwrap();
    let (lo, hi) = tensor_range(&input);
    prepared.set_int8_range(lo, hi);
    prepared.int8_weights().unwrap(); // quantize + prepack outside the counted region
    let mut out = Tensor::zeros(params.output_shape(input.shape()).unwrap());
    let epilogue = || ConvEpilogue::activation(FusedActivation::Relu);
    for _ in 0..5 {
        prepared.forward_with_algo_into(&input, ConvAlgo::Int8, epilogue(), &mut out).unwrap();
    }

    let warm = scratch::heap_allocations();
    for _ in 0..5 {
        prepared.forward_with_algo_into(&input, ConvAlgo::Int8, epilogue(), &mut out).unwrap();
    }
    let steady = scratch::heap_allocations();
    assert_eq!(
        steady - warm,
        0,
        "steady-state quantized convolutions must not allocate scratch on any thread"
    );
}

/// Gate-off guarantee: the arm is never selected heuristically, and merely
/// preparing a layer's int8 weights does not perturb the f32 forward — bitwise.
#[test]
fn gate_off_leaves_f32_forwards_bitwise_identical() {
    // No shape ever selects Int8 without installed calibration.
    for (ic, oc, k, s) in [(64usize, 64usize, 3usize, 56usize), (256, 64, 1, 56), (3, 64, 7, 224)] {
        let params = Conv2dParams::new(ic, oc, k, 1, k / 2);
        assert_ne!(
            select_algo(&params, Shape::chw(ic, s, s)),
            ConvAlgo::Int8,
            "heuristic dispatch must never pick the quantized arm"
        );
    }

    let params = Conv2dParams::new(16, 24, 3, 1, 1);
    let (input, weight) = sample(&params, 1, 30, 26, 19);
    let mut out = Tensor::zeros(params.output_shape(input.shape()).unwrap());

    let baseline = PreparedLayer::new(weight.clone(), None, params).unwrap();
    let algo = baseline
        .forward_fused_into(&input, ConvEpilogue::activation(FusedActivation::None), &mut out)
        .unwrap();
    assert_ne!(algo, ConvAlgo::Int8);
    let f32_out = out.as_slice().to_vec();

    // Same layer with the quantized side prepared: dispatch and output are
    // untouched.
    let mut quant_ready = PreparedLayer::new(weight, None, params).unwrap();
    let (lo, hi) = tensor_range(&input);
    quant_ready.set_int8_range(lo, hi);
    quant_ready.int8_weights().unwrap();
    let algo = quant_ready
        .forward_fused_into(&input, ConvEpilogue::activation(FusedActivation::None), &mut out)
        .unwrap();
    assert_ne!(algo, ConvAlgo::Int8, "int8 prepack must not change dispatch");
    assert_eq!(f32_out, out.as_slice(), "int8 prepack must not perturb the f32 forward");
}
