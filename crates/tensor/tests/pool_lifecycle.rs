//! Lifecycle tests for the persistent worker pool: resize up/down mid-run, idle
//! shutdown and reinitialization, panic-in-worker propagation (a panicking kernel
//! task must never deadlock the queue), and persistence of worker-side scratch
//! arenas (the zero-allocation property on worker threads).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use rescnn_tensor::parallel::{for_each_chunk, pool_size};
use rescnn_tensor::{
    conv2d_dispatch, num_threads, scratch, set_num_threads, shutdown_pool, Conv2dParams,
    EngineContext, Shape, Tensor,
};

/// Serializes tests in this binary: they mutate the process-global thread count
/// and observe process-global pool/scratch counters.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs one parallel dispatch and returns the filled buffer.
fn dispatch_stamp(len: usize, chunk: usize) -> Vec<u64> {
    let mut data = vec![0u64; len];
    for_each_chunk(&mut data, chunk, true, |index, chunk| {
        for (offset, value) in chunk.iter_mut().enumerate() {
            *value = (index * 1000 + offset) as u64;
        }
    });
    data
}

/// Spin-waits until the pool census reaches `predicate`, so tests tolerate the
/// lazy (wakeup-driven) worker retirement.
fn await_pool<F: Fn(usize) -> bool>(predicate: F) -> usize {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let size = pool_size();
        if predicate(size) || Instant::now() > deadline {
            return size;
        }
        std::thread::yield_now();
    }
}

#[test]
fn resize_up_and_down_mid_run_keeps_results_identical() {
    let _guard = lock();
    let original = num_threads();
    set_num_threads(1);
    let baseline = dispatch_stamp(4096, 64);

    set_num_threads(4);
    assert_eq!(dispatch_stamp(4096, 64), baseline, "grown pool changed results");
    assert!(pool_size() >= 3, "dispatch at 4 threads should have grown the pool");

    set_num_threads(2);
    assert_eq!(dispatch_stamp(4096, 64), baseline, "shrunk pool changed results");
    let settled = await_pool(|size| size <= 1);
    assert!(settled <= 1, "excess workers should retire after shrink, saw {settled}");

    set_num_threads(6);
    assert_eq!(dispatch_stamp(4096, 64), baseline, "regrown pool changed results");
    assert!(pool_size() >= 5, "pool should regrow after shrink");
    set_num_threads(original);
}

#[test]
fn idle_shutdown_and_reinit() {
    let _guard = lock();
    let original = num_threads();
    set_num_threads(3);
    let before = dispatch_stamp(2048, 32);
    assert!(pool_size() >= 2);

    shutdown_pool();
    assert_eq!(pool_size(), 0, "shutdown must join every worker");

    // The next dispatch transparently reinitializes the pool.
    assert_eq!(dispatch_stamp(2048, 32), before);
    assert!(pool_size() >= 2, "pool should respawn after shutdown");
    set_num_threads(original);
}

#[test]
fn repeated_shutdown_is_idempotent() {
    let _guard = lock();
    shutdown_pool();
    shutdown_pool();
    assert_eq!(pool_size(), 0);
}

/// Shutdown has explicit drain semantics: an idle drain reports no in-flight
/// jobs, work dispatched before the shutdown is always *finished* (never
/// abandoned — the submitter drives its own job and draining workers claim
/// queued jobs before retiring), and a drain superseded by new work says so.
#[test]
fn shutdown_drain_reports_and_finishes_queued_work() {
    let _guard = lock();
    let original = num_threads();
    set_num_threads(4);
    dispatch_stamp(512, 8); // warm the pool
    let report = shutdown_pool();
    assert_eq!(report.jobs_in_flight, 0, "idle pool has nothing to drain");
    assert!(!report.superseded, "no dispatch raced this drain");
    assert_eq!(pool_size(), 0);

    // Dispatches racing a storm of shutdowns must all complete with correct
    // results — queued work is finished or the drain is reported superseded,
    // and nothing deadlocks.
    let stop = std::sync::atomic::AtomicBool::new(false);
    let rounds = AtomicUsize::new(0);
    let mut any_superseded = false;
    std::thread::scope(|scope| {
        let submitter = scope.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                let data = dispatch_stamp(2048, 16);
                assert!(
                    data.iter().enumerate().all(|(i, &v)| v == ((i / 16) * 1000 + i % 16) as u64),
                    "a drain abandoned chunks of an in-flight dispatch"
                );
                rounds.fetch_add(1, Ordering::Relaxed);
            }
        });
        // Keep draining until the submitter has demonstrably dispatched across
        // the storm, so shutdowns genuinely interleave with live jobs.
        let deadline = Instant::now() + Duration::from_secs(5);
        while rounds.load(Ordering::Relaxed) < 10 && Instant::now() < deadline {
            any_superseded |= shutdown_pool().superseded;
        }
        stop.store(true, Ordering::Relaxed);
        assert!(submitter.join().is_ok(), "submitter must finish cleanly");
    });
    assert!(rounds.load(Ordering::Relaxed) >= 10, "dispatches must make progress under drains");
    let _ = any_superseded; // whether a race was observed is timing-dependent
    let report = shutdown_pool();
    assert!(!report.superseded, "final drain has no competing dispatch");
    assert_eq!(pool_size(), 0);
    set_num_threads(original);
}

/// A dispatch racing a shutdown revives the pool; the shutdown must return
/// (superseded) rather than wait forever for a pool that keeps being refilled.
#[test]
fn shutdown_concurrent_with_dispatch_does_not_hang() {
    let _guard = lock();
    let original = num_threads();
    set_num_threads(4);
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let submitter = scope.spawn(|| {
            let mut checksum = 0u64;
            while !stop.load(Ordering::Relaxed) {
                checksum = checksum.wrapping_add(dispatch_stamp(512, 8)[11]);
            }
            checksum
        });
        for _ in 0..20 {
            shutdown_pool(); // must return promptly every time, drained or superseded
        }
        stop.store(true, Ordering::Relaxed);
        assert!(submitter.join().is_ok());
    });
    // With the submitter gone, a final shutdown fully drains the pool.
    shutdown_pool();
    assert_eq!(pool_size(), 0);
    set_num_threads(original);
}

#[test]
fn panic_in_worker_propagates_without_deadlocking() {
    let _guard = lock();
    let original = num_threads();
    set_num_threads(4);

    let executed = AtomicUsize::new(0);
    let mut data = vec![0u8; 640];
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        for_each_chunk(&mut data, 10, true, |index, _chunk| {
            executed.fetch_add(1, Ordering::Relaxed);
            if index == 7 {
                panic!("kernel task exploded");
            }
        });
    }));
    let payload = outcome.expect_err("worker panic must propagate to the submitter");
    let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
    assert_eq!(message, "kernel task exploded");
    assert!(executed.load(Ordering::Relaxed) >= 1);

    // The queue must be fully drained and the pool healthy: both a plain dispatch
    // and a real convolution still run to completion afterwards.
    let stamped = dispatch_stamp(1024, 16);
    assert!(stamped.iter().enumerate().all(|(i, &v)| v == ((i / 16) * 1000 + i % 16) as u64));
    let params = Conv2dParams::new(8, 16, 3, 1, 1);
    let input = Tensor::random_uniform(Shape::chw(8, 48, 48), 1.0, 5);
    let weight = Tensor::random_uniform(Shape::new(16, 8, 3, 3), 0.5, 6);
    conv2d_dispatch(&input, &weight, None, &params).expect("engine healthy after panic");
    set_num_threads(original);
}

#[test]
fn consecutive_panics_do_not_poison_the_pool() {
    let _guard = lock();
    let original = num_threads();
    set_num_threads(3);
    for round in 0..4 {
        let mut data = vec![0u8; 300];
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for_each_chunk(&mut data, 4, true, |index, _| {
                assert!(index != 20, "boom {round}");
            });
        }));
        assert!(outcome.is_err(), "round {round} must propagate its panic");
    }
    assert!(!dispatch_stamp(512, 8).is_empty());
    set_num_threads(original);
}

/// Worker threads persist across dispatches, so their thread-local scratch arenas
/// do too: after a warm-up pass, repeated convolutions must perform zero heap
/// allocations — on the submitting thread *and* on every pool worker.
#[test]
fn worker_scratch_arenas_persist_across_dispatches() {
    let _guard = lock();
    let original = num_threads();
    set_num_threads(4);

    // Large enough that every engine path parallelizes and every worker
    // repeatedly claims chunks.
    let params = Conv2dParams::new(32, 64, 3, 1, 1);
    let input = Tensor::random_uniform(Shape::chw(32, 96, 96), 1.0, 7);
    let weight = Tensor::random_uniform(Shape::new(64, 32, 3, 3), 0.5, 8);
    for _ in 0..5 {
        conv2d_dispatch(&input, &weight, None, &params).unwrap();
    }

    let warm = scratch::heap_allocations();
    for _ in 0..5 {
        conv2d_dispatch(&input, &weight, None, &params).unwrap();
    }
    let steady = scratch::heap_allocations();
    assert_eq!(
        steady - warm,
        0,
        "steady-state convolutions must not allocate scratch on any thread"
    );
    set_num_threads(original);
}

/// Per-call contexts bound pool participation even when the shared pool is larger
/// than the caller's budget.
#[test]
fn context_budget_is_respected_alongside_a_larger_pool() {
    let _guard = lock();
    let original = num_threads();
    set_num_threads(8);
    // Grow the pool to 7 workers.
    dispatch_stamp(4096, 8);
    assert!(pool_size() >= 7);

    EngineContext::new().with_threads(2).scope(|| {
        assert_eq!(num_threads(), 2);
        let concurrent_peak = AtomicUsize::new(0);
        let concurrent_now = AtomicUsize::new(0);
        let mut data = vec![0u8; 64];
        for_each_chunk(&mut data, 1, true, |_, _| {
            let now = concurrent_now.fetch_add(1, Ordering::SeqCst) + 1;
            concurrent_peak.fetch_max(now, Ordering::SeqCst);
            // Hold the chunk long enough for overlap to be observable.
            std::thread::sleep(Duration::from_millis(2));
            concurrent_now.fetch_sub(1, Ordering::SeqCst);
        });
        let peak = concurrent_peak.load(Ordering::SeqCst);
        assert!(peak <= 2, "context budget of 2 was exceeded: {peak} concurrent tasks");
    });
    set_num_threads(original);
}
