//! Winograd F(4×4, 3×3) acceptance suite: the characterized numerical-tolerance
//! contract against the packed im2col engine path, and bitwise determinism
//! across thread counts.
//!
//! The α=6 transform trades a ≈4× multiply reduction for larger stencil
//! coefficients (up to 8 in `Aᵀ`, 1/24 in `G`), so its agreement with the GEMM
//! paths is legitimately looser than F(2×2)'s `1e-4`: the pinned bound is
//! [`WINOGRAD_F4_TOLERANCE`] at unit-scale activations, characterized here
//! across the serving ladder's stage shapes. Calibration only admits the arm
//! for shapes inside that bound (`MeasuredTuner::admits_f4` in `rescnn-hwsim`).
//! Across thread counts and repeat runs the kernel must remain **bitwise
//! identical**, like every other engine path. CI re-runs this suite under
//! `RESCNN_THREADS=1,2,4`.

use rescnn_tensor::{
    conv2d_im2col_packed, conv2d_winograd_f4, conv2d_winograd_f4_prepared, conv2d_with_algo,
    set_num_threads, winograd_f4_unit_error, Conv2dParams, ConvAlgo, FusedActivation, Shape,
    Tensor, WinogradFilter, WINOGRAD_F4_TOLERANCE,
};

/// Serializes tests that mutate the process-wide thread count.
static GLOBAL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn sample(params: &Conv2dParams, n: usize, h: usize, w: usize, seed: u64) -> (Tensor, Tensor) {
    let input = Tensor::random_uniform(Shape::new(n, params.in_channels, h, w), 1.0, seed);
    let weight = Tensor::random_uniform(
        Shape::new(params.out_channels, params.in_channels, 3, 3),
        0.5,
        seed ^ 0x5a5a,
    );
    (input, weight)
}

/// The characterization satellite: every ResNet-family 3×3 stage shape of the
/// serving ladder (channel depths 64–512 at their ladder spatial extents, here
/// instantiated at the ladder's small end — the probe's error is governed by
/// the reduction depth and transform arithmetic, which these cover in full)
/// must measure within the pinned bound, and the probe itself must be a pure
/// function of the shape (bit-stable across calls) since the calibration gate
/// keys on it.
#[test]
fn characterized_unit_error_stays_within_pinned_bound_across_ladder_shapes() {
    // (in_ch, out_ch, spatial): the four ResNet stage families as instantiated
    // by the r=112 end of the serving ladder [112, 168, …, 448], plus one
    // wider-spatial probe per the deeper ladder rungs.
    let stages: &[(usize, usize, usize)] =
        &[(64, 64, 28), (64, 64, 56), (128, 128, 14), (256, 256, 7), (512, 512, 4)];
    for &(ic, oc, s) in stages {
        let params = Conv2dParams::new(ic, oc, 3, 1, 1);
        let shape = Shape::chw(ic, s, s);
        let err = winograd_f4_unit_error(&params, shape).unwrap();
        assert!(
            err > 0.0,
            "F(4×4) must genuinely reassociate for {ic}→{oc}@{s}² (a zero probe means it ran \
             a fallback path and the pin is meaningless)"
        );
        assert!(
            err <= WINOGRAD_F4_TOLERANCE,
            "F(4×4) unit error {err} exceeds the pinned bound {WINOGRAD_F4_TOLERANCE} for \
             {ic}→{oc}@{s}² — the characterized contract regressed"
        );
        let again = winograd_f4_unit_error(&params, shape).unwrap();
        assert_eq!(err.to_bits(), again.to_bits(), "the gate probe must be shape-pure");
        println!("f4 unit error {ic}->{oc}@{s}²: {err:.3e} (bound {WINOGRAD_F4_TOLERANCE:.1e})");
    }
}

#[test]
fn tolerance_against_packed_im2col_across_shapes_and_paddings() {
    // Edge-tile coverage for the 4×4 output tiles: output extents not divisible
    // by 4 (every residue 1..3), rectangular frames, pad 0/1/2, batches > 1.
    let cases: &[(usize, usize, usize, usize, usize, usize)] = &[
        // (in_ch, out_ch, batch, h, w, pad)
        (1, 1, 1, 6, 6, 0),
        (1, 3, 1, 7, 7, 1),
        (3, 8, 1, 9, 11, 1),
        (8, 4, 2, 13, 15, 1),
        (16, 16, 1, 16, 16, 0),
        (5, 7, 1, 10, 7, 2),
        (48, 32, 1, 19, 17, 1),
        (4, 4, 3, 8, 22, 1),
        (2, 2, 1, 4, 4, 1),
        (6, 5, 1, 3, 3, 1),
    ];
    for &(ic, oc, n, h, w, pad) in cases {
        let params = Conv2dParams::new(ic, oc, 3, 1, pad);
        let (input, weight) = sample(&params, n, h, w, (ic * h + oc * w) as u64);
        let bias: Vec<f32> = (0..oc).map(|i| 0.05 * i as f32 - 0.1).collect();
        let packed = conv2d_im2col_packed(&input, &weight, Some(&bias), &params).unwrap();
        let wino = conv2d_winograd_f4(&input, &weight, Some(&bias), &params).unwrap();
        assert_eq!(packed.shape(), wino.shape());
        let diff = packed.max_abs_diff(&wino).unwrap();
        assert!(
            diff <= WINOGRAD_F4_TOLERANCE,
            "winograd_f4 vs im2col_packed drift {diff} for ic={ic} oc={oc} n={n} {h}x{w} pad={pad}"
        );
    }
}

#[test]
fn bitwise_deterministic_across_thread_counts() {
    let _guard = lock();
    // Large enough to clear the engine's parallelism threshold, with output
    // extents not divisible by 4 so edge tiles are in play.
    let params = Conv2dParams::new(32, 48, 3, 1, 1);
    let (input, weight) = sample(&params, 1, 57, 61, 7);
    let bias: Vec<f32> = (0..48).map(|i| (i as f32) * 0.01).collect();
    let filter = WinogradFilter::prepare_f4(&weight, &params).unwrap();

    let mut outputs = Vec::new();
    for threads in [1usize, 2, 4] {
        set_num_threads(threads);
        outputs.push(
            conv2d_winograd_f4_prepared(
                &input,
                &filter,
                Some(&bias),
                &params,
                FusedActivation::Relu,
            )
            .unwrap(),
        );
    }
    set_num_threads(1);
    assert_eq!(outputs[0].as_slice(), outputs[1].as_slice(), "1 vs 2 threads must agree bitwise");
    assert_eq!(outputs[0].as_slice(), outputs[2].as_slice(), "1 vs 4 threads must agree bitwise");

    // Repeat runs at the ambient thread count are bitwise stable too (scratch
    // arena reuse must not leak state between calls).
    let again =
        conv2d_winograd_f4_prepared(&input, &filter, Some(&bias), &params, FusedActivation::Relu)
            .unwrap();
    assert_eq!(outputs[0].as_slice(), again.as_slice());
}

#[test]
fn prepared_filter_matches_on_the_fly_transform_bitwise() {
    let params = Conv2dParams::new(6, 10, 3, 1, 1);
    let (input, weight) = sample(&params, 2, 14, 10, 3);
    let filter = WinogradFilter::prepare_f4(&weight, &params).unwrap();
    let on_the_fly = conv2d_winograd_f4(&input, &weight, None, &params).unwrap();
    let prepared =
        conv2d_winograd_f4_prepared(&input, &filter, None, &params, FusedActivation::None).unwrap();
    assert_eq!(on_the_fly.as_slice(), prepared.as_slice());
}

#[test]
fn conv2d_with_algo_falls_back_for_unsupported_shapes() {
    // The sweep entry point must never fail on ineligible shapes: they fall
    // back to the packed engine path, exactly like the other specialized arms.
    let strided = Conv2dParams::new(4, 4, 3, 2, 1);
    let (input, weight) = sample(&strided, 1, 12, 12, 5);
    let out = conv2d_with_algo(&input, &weight, None, &strided, ConvAlgo::WinogradF4).unwrap();
    let packed = conv2d_im2col_packed(&input, &weight, None, &strided).unwrap();
    assert_eq!(out.as_slice(), packed.as_slice());
}
