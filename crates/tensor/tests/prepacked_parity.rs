//! Parity suite for the prepacked + fused execution stage.
//!
//! Pins the PR's two core contracts:
//!
//! * **Prepacked weights are pure data movement** — a [`PreparedLayer`] forward
//!   is bitwise identical to the pack-per-call `conv2d_with_algo` path for every
//!   engine algorithm, at every thread count (CI re-runs this suite under
//!   `RESCNN_THREADS=1,2,4`).
//! * **Fused epilogues reassociate nothing** — executing the block tail
//!   (residual add + activation) inside the kernel's output write is bitwise
//!   identical to the separate `add_relu_in_place`-style passes.

use rescnn_tensor::{
    add_relu_in_place, conv2d_with_algo, linear, linear_prepared, relu6_in_place, relu_in_place,
    ActivationArena, Conv2dParams, ConvAlgo, ConvEpilogue, FusedActivation, PreparedGemmB,
    PreparedLayer, Shape, Tensor,
};

fn sample(params: &Conv2dParams, res: usize, seed: u64) -> (Tensor, Tensor, Vec<f32>) {
    let input = Tensor::random_uniform(Shape::chw(params.in_channels, res, res), 1.0, seed);
    let weight = Tensor::random_uniform(
        Shape::new(
            params.out_channels,
            params.in_channels / params.groups,
            params.kernel,
            params.kernel,
        ),
        0.5,
        seed ^ 0xF00D,
    );
    let bias: Vec<f32> = (0..params.out_channels).map(|i| (i as f32 - 3.0) * 0.17).collect();
    (input, weight, bias)
}

/// Every engine algorithm: prepared forward must equal the unprepared path
/// bitwise (packing is data movement, never arithmetic).
#[test]
fn prepared_layers_match_unpacked_paths_bitwise() {
    let cases = [
        (Conv2dParams::new(13, 21, 3, 1, 1), ConvAlgo::Im2colPacked, 33usize),
        (Conv2dParams::new(9, 17, 5, 2, 2), ConvAlgo::Im2colPacked, 27),
        (Conv2dParams::new(16, 24, 1, 1, 0), ConvAlgo::Gemm1x1, 19),
        (Conv2dParams::new(8, 12, 1, 1, 0).with_groups(4), ConvAlgo::Gemm1x1, 15),
        (Conv2dParams::depthwise(11, 3, 1, 1), ConvAlgo::Depthwise, 23),
        // Depthwise shape forced onto the GEMM path: no panels are prepacked
        // for depthwise-dispatched layers, so this exercises the raw-weight
        // fallback inside the prepared layer.
        (Conv2dParams::depthwise(11, 3, 1, 1), ConvAlgo::Im2colPacked, 23),
        (Conv2dParams::new(7, 10, 3, 1, 1), ConvAlgo::Winograd, 18),
    ];
    for (params, algo, res) in cases {
        let (input, weight, bias) = sample(&params, res, 42 + res as u64);
        let unpacked = conv2d_with_algo(&input, &weight, Some(&bias), &params, algo).unwrap();
        let prepared = PreparedLayer::new(weight, Some(bias), params).unwrap();
        let mut out = Tensor::zeros(params.output_shape(input.shape()).unwrap());
        prepared.forward_with_algo_into(&input, algo, ConvEpilogue::default(), &mut out).unwrap();
        assert_eq!(
            unpacked.as_slice(),
            out.as_slice(),
            "prepacked {algo} diverged from the unpacked path for {params:?}"
        );
        if ConvAlgo::Depthwise.supports(&params) {
            // Depthwise layers skip GEMM panel prepacking entirely.
            assert_eq!(prepared.prepacked_bytes(), 0);
        } else {
            assert!(prepared.prepacked_bytes() > 0);
        }
    }
}

/// The fused epilogue (residual + ReLU in the kernel's output write) must be
/// bitwise identical to conv followed by the separate `add_relu_in_place` pass,
/// for every algorithm a bottleneck tail can dispatch to.
#[test]
fn fused_residual_tails_match_separate_passes_bitwise() {
    let cases = [
        (Conv2dParams::new(12, 18, 1, 1, 0), ConvAlgo::Gemm1x1, 21usize),
        (Conv2dParams::new(6, 14, 3, 1, 1), ConvAlgo::Im2colPacked, 24),
        (Conv2dParams::new(6, 14, 3, 1, 1), ConvAlgo::Winograd, 24),
        (Conv2dParams::depthwise(10, 3, 1, 1), ConvAlgo::Depthwise, 17),
        (Conv2dParams::new(5, 8, 3, 1, 1), ConvAlgo::Direct, 12),
    ];
    for (params, algo, res) in cases {
        let (input, weight, bias) = sample(&params, res, 7 + res as u64);
        let oshape = params.output_shape(input.shape()).unwrap();
        let skip = Tensor::random_uniform(oshape, 1.0, 99);

        let mut separate = conv2d_with_algo(&input, &weight, Some(&bias), &params, algo).unwrap();
        add_relu_in_place(&mut separate, &skip).unwrap();

        let prepared = PreparedLayer::new(weight, Some(bias), params).unwrap();
        let mut fused = Tensor::zeros(oshape);
        prepared
            .forward_with_algo_into(
                &input,
                algo,
                ConvEpilogue::activation(FusedActivation::Relu).with_residual(&skip),
                &mut fused,
            )
            .unwrap();
        assert_eq!(
            separate.as_slice(),
            fused.as_slice(),
            "fused residual tail diverged for {algo} {params:?}"
        );
    }
}

/// Fused activations without a residual must also match the separate in-place
/// activation sweeps bitwise.
#[test]
fn fused_activations_match_separate_passes_bitwise() {
    for (act, algo) in [
        (FusedActivation::Relu, ConvAlgo::Gemm1x1),
        (FusedActivation::Relu6, ConvAlgo::Im2colPacked),
        (FusedActivation::Relu6, ConvAlgo::Depthwise),
    ] {
        let params = match algo {
            ConvAlgo::Gemm1x1 => Conv2dParams::new(10, 16, 1, 1, 0),
            ConvAlgo::Depthwise => Conv2dParams::depthwise(9, 3, 2, 1),
            _ => Conv2dParams::new(8, 12, 3, 2, 1),
        };
        let (input, weight, bias) = sample(&params, 22, 5);
        let mut separate = conv2d_with_algo(&input, &weight, Some(&bias), &params, algo).unwrap();
        match act {
            FusedActivation::Relu => relu_in_place(&mut separate),
            FusedActivation::Relu6 => relu6_in_place(&mut separate),
            FusedActivation::None => {}
        }
        let prepared = PreparedLayer::new(weight, Some(bias), params).unwrap();
        let mut fused = Tensor::zeros(separate.shape());
        prepared
            .forward_with_algo_into(&input, algo, ConvEpilogue::activation(act), &mut fused)
            .unwrap();
        assert_eq!(separate.as_slice(), fused.as_slice(), "{algo} fused {act:?} diverged");
    }
}

/// Arena-recycled (stale-content) output buffers must produce the same bits as
/// fresh zeroed buffers: every kernel overwrites its full output.
#[test]
fn arena_backed_outputs_match_fresh_buffers_bitwise() {
    let mut arena = ActivationArena::new();
    for algo in [ConvAlgo::Im2colPacked, ConvAlgo::Gemm1x1, ConvAlgo::Winograd] {
        let params = match algo {
            ConvAlgo::Gemm1x1 => Conv2dParams::new(14, 10, 1, 1, 0),
            _ => Conv2dParams::new(6, 9, 3, 1, 1),
        };
        let (input, weight, bias) = sample(&params, 20, 11);
        let prepared = PreparedLayer::new(weight, Some(bias), params).unwrap();
        let mut fresh = Tensor::zeros(params.output_shape(input.shape()).unwrap());
        prepared.forward_with_algo_into(&input, algo, ConvEpilogue::default(), &mut fresh).unwrap();

        // Poison a recycled buffer, then run into it.
        let oshape = fresh.shape();
        let mut poison = arena.take(oshape);
        poison.as_mut_slice().fill(f32::NAN);
        arena.give(poison);
        let mut recycled = arena.take(oshape);
        prepared
            .forward_with_algo_into(&input, algo, ConvEpilogue::default(), &mut recycled)
            .unwrap();
        assert_eq!(fresh.as_slice(), recycled.as_slice(), "{algo} left stale buffer contents");
        arena.give(recycled);
    }
}

/// The prepacked linear layer agrees with the scalar reference within
/// reassociation tolerance and is self-consistent across batches.
#[test]
fn prepared_linear_matches_reference() {
    let (n, in_features, out_features) = (5usize, 37usize, 12usize);
    let input = Tensor::random_uniform(Shape::new(n, in_features, 1, 1), 1.0, 3);
    let w = Tensor::random_uniform(Shape::new(1, 1, out_features, in_features), 0.4, 4).into_vec();
    let bias: Vec<f32> = (0..out_features).map(|i| i as f32 * 0.05 - 0.3).collect();

    let reference = linear(&input, &w, Some(&bias), out_features).unwrap();
    let packed = PreparedGemmB::prepare_transposed(&w, out_features, in_features);
    let fast = linear_prepared(&input, &packed, Some(&bias)).unwrap();
    assert_eq!(fast.shape(), reference.shape());
    assert!(reference.max_abs_diff(&fast).unwrap() < 1e-4);

    // Wrong feature count is rejected.
    let bad = Tensor::zeros(Shape::new(1, in_features + 1, 1, 1));
    assert!(linear_prepared(&bad, &packed, None).is_err());
}
