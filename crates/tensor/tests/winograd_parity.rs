//! Winograd F(2×2, 3×3) acceptance suite: numerical parity against the packed
//! im2col engine path and bitwise determinism across thread counts.
//!
//! The contract (documented on `ConvAlgo::Winograd` and in the `winograd`
//! module): Winograd legitimately reassociates arithmetic, so it is *not*
//! bitwise equal to the GEMM paths — the pinned bound is elementwise agreement
//! within `1e-4` at unit-scale activations — but across thread counts and
//! repeat runs it must be **bitwise identical**, like every other engine path.
//! CI re-runs this suite under `RESCNN_THREADS=1,2,4`.

use rescnn_tensor::{
    conv2d_im2col_packed, conv2d_winograd, conv2d_winograd_prepared, conv2d_with_algo,
    set_num_threads, Conv2dParams, ConvAlgo, FusedActivation, Shape, Tensor, WinogradFilter,
};

/// Serializes tests that mutate the process-wide thread count.
static GLOBAL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn sample(params: &Conv2dParams, n: usize, h: usize, w: usize, seed: u64) -> (Tensor, Tensor) {
    let input = Tensor::random_uniform(Shape::new(n, params.in_channels, h, w), 1.0, seed);
    let weight = Tensor::random_uniform(
        Shape::new(params.out_channels, params.in_channels, 3, 3),
        0.5,
        seed ^ 0x5a5a,
    );
    (input, weight)
}

#[test]
fn tolerance_against_packed_im2col_across_shapes_and_paddings() {
    // Swept shapes include non-multiple-of-2 output extents (odd inputs, odd
    // outputs after padding), rectangular frames, pad 0/1/2, batches > 1, and
    // channel counts from 1 to 48 — every case exercises the edge-tile clipping
    // of the 2×2 output tiles.
    let cases: &[(usize, usize, usize, usize, usize, usize)] = &[
        // (in_ch, out_ch, batch, h, w, pad)
        (1, 1, 1, 4, 4, 0),
        (1, 3, 1, 5, 5, 1),
        (3, 8, 1, 7, 9, 1),
        (8, 4, 2, 11, 13, 1),
        (16, 16, 1, 12, 12, 0),
        (5, 7, 1, 9, 6, 2),
        (48, 32, 1, 17, 15, 1),
        (4, 4, 3, 8, 21, 1),
        (2, 2, 1, 3, 3, 1),
    ];
    for &(ic, oc, n, h, w, pad) in cases {
        let params = Conv2dParams::new(ic, oc, 3, 1, pad);
        let (input, weight) = sample(&params, n, h, w, (ic * h + oc * w) as u64);
        let bias: Vec<f32> = (0..oc).map(|i| 0.05 * i as f32 - 0.1).collect();
        let packed = conv2d_im2col_packed(&input, &weight, Some(&bias), &params).unwrap();
        let wino = conv2d_winograd(&input, &weight, Some(&bias), &params).unwrap();
        assert_eq!(packed.shape(), wino.shape());
        let diff = packed.max_abs_diff(&wino).unwrap();
        assert!(
            diff <= 1e-4,
            "winograd vs im2col_packed drift {diff} for ic={ic} oc={oc} n={n} {h}x{w} pad={pad}"
        );
    }
}

#[test]
fn bitwise_deterministic_across_thread_counts() {
    let _guard = lock();
    // Large enough to clear the engine's parallelism threshold, with
    // non-multiple-of-2 output extents so edge tiles are in play.
    let params = Conv2dParams::new(32, 48, 3, 1, 1);
    let (input, weight) = sample(&params, 1, 57, 61, 7);
    let bias: Vec<f32> = (0..48).map(|i| (i as f32) * 0.01).collect();
    let filter = WinogradFilter::prepare(&weight, &params).unwrap();

    let mut outputs = Vec::new();
    for threads in [1usize, 2, 4] {
        set_num_threads(threads);
        outputs.push(
            conv2d_winograd_prepared(&input, &filter, Some(&bias), &params, FusedActivation::Relu)
                .unwrap(),
        );
    }
    set_num_threads(1);
    assert_eq!(outputs[0].as_slice(), outputs[1].as_slice(), "1 vs 2 threads must agree bitwise");
    assert_eq!(outputs[0].as_slice(), outputs[2].as_slice(), "1 vs 4 threads must agree bitwise");

    // Repeat runs at the ambient thread count are bitwise stable too (scratch
    // arena reuse must not leak state between calls).
    let again =
        conv2d_winograd_prepared(&input, &filter, Some(&bias), &params, FusedActivation::Relu)
            .unwrap();
    assert_eq!(outputs[0].as_slice(), again.as_slice());
}

#[test]
fn prepared_filter_matches_on_the_fly_transform_bitwise() {
    let params = Conv2dParams::new(6, 10, 3, 1, 1);
    let (input, weight) = sample(&params, 2, 14, 10, 3);
    let filter = WinogradFilter::prepare(&weight, &params).unwrap();
    let on_the_fly = conv2d_winograd(&input, &weight, None, &params).unwrap();
    let prepared =
        conv2d_winograd_prepared(&input, &filter, None, &params, FusedActivation::None).unwrap();
    assert_eq!(on_the_fly.as_slice(), prepared.as_slice());
}

#[test]
fn conv2d_with_algo_falls_back_for_unsupported_shapes() {
    // The sweep entry point must never fail on ineligible shapes: they fall
    // back to the packed engine path, exactly like the other specialized arms.
    let strided = Conv2dParams::new(4, 4, 3, 2, 1);
    let (input, weight) = sample(&strided, 1, 12, 12, 5);
    let out = conv2d_with_algo(&input, &weight, None, &strided, ConvAlgo::Winograd).unwrap();
    let packed = conv2d_im2col_packed(&input, &weight, None, &strided).unwrap();
    assert_eq!(out.as_slice(), packed.as_slice());
}

#[test]
fn fused_activations_match_separate_passes() {
    let params = Conv2dParams::new(5, 6, 3, 1, 1);
    let (input, weight) = sample(&params, 1, 15, 11, 9);
    let bias: Vec<f32> = (0..6).map(|i| 0.2 - 0.07 * i as f32).collect();
    let filter = WinogradFilter::prepare(&weight, &params).unwrap();
    let plain =
        conv2d_winograd_prepared(&input, &filter, Some(&bias), &params, FusedActivation::None)
            .unwrap();
    let relu =
        conv2d_winograd_prepared(&input, &filter, Some(&bias), &params, FusedActivation::Relu)
            .unwrap();
    let relu6 =
        conv2d_winograd_prepared(&input, &filter, Some(&bias), &params, FusedActivation::Relu6)
            .unwrap();
    for ((&x, &r), &r6) in plain.as_slice().iter().zip(relu.as_slice()).zip(relu6.as_slice()) {
        assert_eq!(r.to_bits(), x.max(0.0).to_bits());
        assert_eq!(r6.to_bits(), x.clamp(0.0, 6.0).to_bits());
    }
}
