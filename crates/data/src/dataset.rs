//! Dataset kinds, generation, and cross-validation sharding.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use rescnn_imaging::SceneSpec;

use crate::sample::Sample;

/// The two dataset families the paper evaluates on, reproduced as synthetic equivalents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// ImageNet-like: 1000 broad classes, moderate image sizes, wide object-scale spread,
    /// classes that hinge on fine-grained texture (high detail requirements).
    ImageNetLike,
    /// Stanford-Cars-like: 196 fine-grained classes, larger images, objects that fill more
    /// of the frame, and classes dominated by overall shape (lower detail requirements —
    /// the reason the paper finds Cars tolerates far more aggressive data reduction).
    CarsLike,
}

impl DatasetKind {
    /// Both dataset kinds.
    pub const ALL: [DatasetKind; 2] = [DatasetKind::ImageNetLike, DatasetKind::CarsLike];

    /// Human-readable name used in figures and tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::ImageNetLike => "ImageNet",
            DatasetKind::CarsLike => "Cars",
        }
    }

    /// Number of classes (1000 for ImageNet, 196 for Stanford Cars).
    pub fn num_classes(&self) -> usize {
        match self {
            DatasetKind::ImageNetLike => 1000,
            DatasetKind::CarsLike => 196,
        }
    }

    /// Mean training-image dimensions reported by the paper (§V): 472×405 for ImageNet,
    /// 699×482 for Cars.
    pub fn mean_dimensions(&self) -> (usize, usize) {
        match self {
            DatasetKind::ImageNetLike => (472, 405),
            DatasetKind::CarsLike => (699, 482),
        }
    }

    /// Log-normal-ish parameters of the object-scale distribution (mean, spread of the
    /// natural-log scale).
    fn object_scale_distribution(&self) -> (f64, f64) {
        match self {
            // ImageNet objects vary widely in apparent size.
            DatasetKind::ImageNetLike => (0.50, 0.38),
            // Photographed cars tend to fill a larger, more consistent share of the frame.
            DatasetKind::CarsLike => (0.55, 0.24),
        }
    }

    /// Range of the texture-detail requirement.
    fn detail_range(&self) -> (f64, f64) {
        match self {
            // Fine-grained textures matter for many ImageNet classes.
            DatasetKind::ImageNetLike => (0.35, 0.95),
            // Car identity is mostly carried by shape; less high-frequency detail needed.
            DatasetKind::CarsLike => (0.15, 0.60),
        }
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builder for synthetic datasets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    kind: DatasetKind,
    len: usize,
    max_dimension: usize,
    num_classes: Option<usize>,
}

impl DatasetSpec {
    /// Starts a spec for an ImageNet-like dataset (default length 256).
    pub fn imagenet_like() -> Self {
        DatasetSpec {
            kind: DatasetKind::ImageNetLike,
            len: 256,
            max_dimension: 0,
            num_classes: None,
        }
    }

    /// Starts a spec for a Cars-like dataset (default length 256).
    pub fn cars_like() -> Self {
        DatasetSpec { kind: DatasetKind::CarsLike, len: 256, max_dimension: 0, num_classes: None }
    }

    /// Starts a spec for an explicit kind.
    pub fn for_kind(kind: DatasetKind) -> Self {
        DatasetSpec { kind, len: 256, max_dimension: 0, num_classes: None }
    }

    /// Sets the number of samples.
    pub fn with_len(mut self, len: usize) -> Self {
        self.len = len;
        self
    }

    /// Caps image dimensions (useful to keep tests fast); 0 means the dataset's natural
    /// size distribution.
    pub fn with_max_dimension(mut self, max_dimension: usize) -> Self {
        self.max_dimension = max_dimension;
        self
    }

    /// Overrides the number of classes (defaults to the dataset kind's real class count).
    pub fn with_num_classes(mut self, num_classes: usize) -> Self {
        self.num_classes = Some(num_classes.max(2));
        self
    }

    /// Generates the dataset deterministically from a seed.
    pub fn build(self, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0DA7_A5E7);
        let num_classes = self.num_classes.unwrap_or_else(|| self.kind.num_classes());
        let (mean_w, mean_h) = self.kind.mean_dimensions();
        let (scale_mean, scale_spread) = self.kind.object_scale_distribution();
        let (detail_lo, detail_hi) = self.kind.detail_range();

        let mut samples = Vec::with_capacity(self.len);
        for i in 0..self.len {
            let id = seed.wrapping_mul(1_000_003).wrapping_add(i as u64);
            let class = rng.gen_range(0..num_classes);
            // Dimension jitter around the dataset means (±30 %).
            let jitter_w = rng.gen_range(0.7..1.3);
            let jitter_h = rng.gen_range(0.7..1.3);
            let mut width = ((mean_w as f64 * jitter_w) as usize).max(64);
            let mut height = ((mean_h as f64 * jitter_h) as usize).max(64);
            if self.max_dimension > 0 {
                let cap = self.max_dimension as f64;
                let scale = (cap / width.max(height) as f64).min(1.0);
                width = ((width as f64 * scale) as usize).max(32);
                height = ((height as f64 * scale) as usize).max(32);
            }
            // Log-normal object scale, clamped to the renderable range.
            let z: f64 = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0);
            let object_scale = (scale_mean * (z * scale_spread).exp()).clamp(0.08, 0.95);
            let detail = rng.gen_range(detail_lo..detail_hi);
            let background = rng.gen_range(0.15..0.6);
            // Objects are photographed roughly centred, with some offset.
            let cx = 0.5 + rng.gen_range(-0.12..0.12);
            let cy = 0.5 + rng.gen_range(-0.12..0.12);
            let scene = SceneSpec::new(width, height, class)
                .with_object_scale(object_scale)
                .with_detail(detail)
                .with_background(background)
                .with_center(cx, cy)
                .with_seed(id);
            let difficulty = rng.gen_range(0.0..1.0);
            samples.push(Sample { id, class, scene, difficulty });
        }
        Dataset { kind: self.kind, num_classes, samples }
    }
}

/// A generated dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    kind: DatasetKind,
    num_classes: usize,
    samples: Vec<Sample>,
}

impl Dataset {
    /// The dataset family.
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterates over the samples.
    pub fn iter(&self) -> std::slice::Iter<'_, Sample> {
        self.samples.iter()
    }

    /// The samples as a slice.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Splits the dataset into `n` disjoint shards of (nearly) equal size, as used by the
    /// paper's cross-validation training of the scale model (Figure 5).
    ///
    /// Shard `i` contains the samples whose index is congruent to `i` modulo `n`.
    pub fn shards(&self, n: usize) -> Vec<Dataset> {
        let n = n.max(1);
        let mut shards: Vec<Vec<Sample>> = vec![Vec::new(); n];
        for (i, sample) in self.samples.iter().enumerate() {
            shards[i % n].push(sample.clone());
        }
        shards
            .into_iter()
            .map(|samples| Dataset { kind: self.kind, num_classes: self.num_classes, samples })
            .collect()
    }

    /// Produces the cross-validation splits of Figure 5: for each of the `n` shards, a
    /// training set of the other `n − 1` shards and the held-out shard itself.
    pub fn cross_validation(&self, n: usize) -> Vec<ShardSplit> {
        let shards = self.shards(n);
        (0..shards.len())
            .map(|held_out| {
                let mut train = Vec::new();
                for (i, shard) in shards.iter().enumerate() {
                    if i != held_out {
                        train.extend(shard.samples.iter().cloned());
                    }
                }
                ShardSplit {
                    held_out_index: held_out,
                    train: Dataset {
                        kind: self.kind,
                        num_classes: self.num_classes,
                        samples: train,
                    },
                    held_out: shards[held_out].clone(),
                }
            })
            .collect()
    }

    /// Deterministically selects a subset of at most `n` samples (used for calibration,
    /// which the paper limits to 10 000 images per split).
    pub fn take(&self, n: usize) -> Dataset {
        Dataset {
            kind: self.kind,
            num_classes: self.num_classes,
            samples: self.samples.iter().take(n).cloned().collect(),
        }
    }
}

impl std::ops::Index<usize> for Dataset {
    type Output = Sample;

    fn index(&self, index: usize) -> &Sample {
        &self.samples[index]
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a Sample;
    type IntoIter = std::slice::Iter<'a, Sample>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

/// One cross-validation split: the training shards and the held-out shard (Figure 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSplit {
    /// Index of the held-out shard.
    pub held_out_index: usize,
    /// Union of the other shards (used to train a backbone).
    pub train: Dataset,
    /// The held-out shard (used to train the scale model against that backbone).
    pub held_out: Dataset,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_kind_metadata() {
        assert_eq!(DatasetKind::ImageNetLike.num_classes(), 1000);
        assert_eq!(DatasetKind::CarsLike.num_classes(), 196);
        assert_eq!(DatasetKind::ImageNetLike.mean_dimensions(), (472, 405));
        assert_eq!(DatasetKind::CarsLike.to_string(), "Cars");
        assert_eq!(DatasetKind::ALL.len(), 2);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DatasetSpec::imagenet_like().with_len(20).build(5);
        let b = DatasetSpec::imagenet_like().with_len(20).build(5);
        let c = DatasetSpec::imagenet_like().with_len(20).build(6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 20);
        assert!(!a.is_empty());
    }

    #[test]
    fn cars_images_are_larger_and_less_detailed() {
        let imagenet = DatasetSpec::imagenet_like().with_len(64).build(1);
        let cars = DatasetSpec::cars_like().with_len(64).build(1);
        let mean =
            |d: &Dataset, f: &dyn Fn(&Sample) -> f64| d.iter().map(f).sum::<f64>() / d.len() as f64;
        let area = |s: &Sample| (s.scene.width * s.scene.height) as f64;
        assert!(mean(&cars, &area) > mean(&imagenet, &area));
        assert!(mean(&cars, &|s| s.detail_level()) < mean(&imagenet, &|s| s.detail_level()));
        assert!(mean(&cars, &|s| s.object_scale()) > mean(&imagenet, &|s| s.object_scale()) - 0.05);
    }

    #[test]
    fn class_labels_within_range() {
        let d = DatasetSpec::cars_like().with_len(100).with_num_classes(12).build(2);
        assert_eq!(d.num_classes(), 12);
        assert!(d.iter().all(|s| s.class < 12));
        // Sample ids are unique.
        let mut ids: Vec<_> = d.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), d.len());
    }

    #[test]
    fn max_dimension_caps_sizes() {
        let d = DatasetSpec::imagenet_like().with_len(16).with_max_dimension(128).build(9);
        for s in &d {
            assert!(s.scene.width <= 128 && s.scene.height <= 128);
            assert!(s.scene.width >= 32 && s.scene.height >= 32);
        }
    }

    #[test]
    fn shards_are_disjoint_and_cover() {
        let d = DatasetSpec::imagenet_like().with_len(23).build(4);
        let shards = d.shards(4);
        assert_eq!(shards.len(), 4);
        let total: usize = shards.iter().map(Dataset::len).sum();
        assert_eq!(total, 23);
        let mut all_ids: Vec<_> = shards.iter().flat_map(|s| s.iter().map(|x| x.id)).collect();
        all_ids.sort_unstable();
        all_ids.dedup();
        assert_eq!(all_ids.len(), 23);
        // Sizes differ by at most 1.
        let sizes: Vec<_> = shards.iter().map(Dataset::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn cross_validation_structure() {
        let d = DatasetSpec::cars_like().with_len(40).build(7);
        let splits = d.cross_validation(4);
        assert_eq!(splits.len(), 4);
        for (i, split) in splits.iter().enumerate() {
            assert_eq!(split.held_out_index, i);
            assert_eq!(split.train.len() + split.held_out.len(), 40);
            // Held-out samples never appear in the corresponding training set.
            for sample in &split.held_out {
                assert!(split.train.iter().all(|s| s.id != sample.id));
            }
        }
    }

    #[test]
    fn take_limits_size() {
        let d = DatasetSpec::imagenet_like().with_len(10).build(0);
        assert_eq!(d.take(3).len(), 3);
        assert_eq!(d.take(100).len(), 10);
        assert_eq!(d[2].id, d.take(3)[2].id);
    }

    #[test]
    fn degenerate_shard_counts() {
        let d = DatasetSpec::imagenet_like().with_len(5).build(0);
        assert_eq!(d.shards(0).len(), 1);
        assert_eq!(d.shards(1)[0].len(), 5);
        let many = d.shards(10);
        assert_eq!(many.iter().map(Dataset::len).sum::<usize>(), 5);
    }
}
