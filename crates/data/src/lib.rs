//! # rescnn-data
//!
//! Synthetic dataset generation standing in for ImageNet and Stanford Cars.
//!
//! Each [`Sample`] is a procedurally generated scene (via `rescnn-imaging`) whose
//! ground-truth *object scale*, *texture-detail level*, and *class* are known and follow
//! dataset-specific distributions calibrated to the properties the paper reports (image
//! size statistics, scale spread, fidelity tolerance). Samples render deterministic pixels
//! on demand and can be progressively encoded, so the storage experiments read real bytes.
//!
//! # Examples
//! ```
//! use rescnn_data::DatasetSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dataset = DatasetSpec::imagenet_like().with_len(8).with_max_dimension(128).build(42);
//! assert_eq!(dataset.len(), 8);
//! let shards = dataset.shards(4);
//! assert_eq!(shards.len(), 4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod dataset;
mod sample;

pub use dataset::{Dataset, DatasetKind, DatasetSpec, ShardSplit};
pub use sample::{Sample, SampleId};

/// Commonly used items, intended for glob import.
pub mod prelude {
    pub use crate::{Dataset, DatasetKind, DatasetSpec, Sample, SampleId, ShardSplit};
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn generated_samples_are_always_renderable(seed in 0u64..10_000, len in 1usize..12) {
            let d = DatasetSpec::cars_like().with_len(len).with_max_dimension(64).build(seed);
            prop_assert_eq!(d.len(), len);
            for s in &d {
                prop_assert!(s.scene.validate().is_ok());
                prop_assert!(s.class < d.num_classes());
                prop_assert!((0.0..=1.0).contains(&s.difficulty));
            }
        }

        #[test]
        fn shards_partition_any_dataset(len in 1usize..40, n in 1usize..8) {
            let d = DatasetSpec::imagenet_like().with_len(len).with_max_dimension(64).build(1);
            let shards = d.shards(n);
            let total: usize = shards.iter().map(Dataset::len).sum();
            prop_assert_eq!(total, len);
        }
    }
}
