//! Individual dataset samples.

use serde::{Deserialize, Serialize};

use rescnn_imaging::{render_scene, Image, ImagingError, SceneSpec};
use rescnn_projpeg::{CodecError, ProgressiveImage, ScanPlan};

/// Stable identifier of a sample within a dataset (also used to seed all per-sample
/// deterministic draws downstream, e.g. the accuracy oracle).
pub type SampleId = u64;

/// One synthetic dataset sample: ground-truth metadata plus a deterministic recipe for its
/// pixels.
///
/// # Examples
/// ```
/// use rescnn_data::DatasetSpec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dataset = DatasetSpec::imagenet_like().with_len(4).build(7);
/// let sample = &dataset[0];
/// let image = sample.render()?;
/// assert_eq!(image.dimensions(), sample.dimensions());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Stable identifier (unique within the dataset).
    pub id: SampleId,
    /// Ground-truth class label.
    pub class: usize,
    /// Scene recipe (dimensions, object scale, detail level, seed).
    pub scene: SceneSpec,
    /// Per-sample intrinsic difficulty in `[0, 1]` (1 = hardest); models photographic
    /// factors (occlusion, lighting) that the renderer does not capture.
    pub difficulty: f64,
}

impl Sample {
    /// Image dimensions `(width, height)` of the stored image.
    pub fn dimensions(&self) -> (usize, usize) {
        (self.scene.width, self.scene.height)
    }

    /// Ground-truth object scale: object diameter as a fraction of the image's short side.
    pub fn object_scale(&self) -> f64 {
        self.scene.object_scale
    }

    /// Ground-truth texture-detail level in `[0, 1]`.
    pub fn detail_level(&self) -> f64 {
        self.scene.detail_level
    }

    /// Renders the sample's pixels.
    ///
    /// # Errors
    /// Returns an error if the scene recipe is invalid (cannot happen for samples built by
    /// [`crate::DatasetSpec`]).
    pub fn render(&self) -> Result<Image, ImagingError> {
        render_scene(&self.scene)
    }

    /// Renders and progressively encodes the sample at the given quality with the standard
    /// five-scan plan — the on-disk representation assumed by the storage experiments.
    ///
    /// # Errors
    /// Returns an error if rendering or encoding fails.
    pub fn encode_progressive(&self, quality: u8) -> Result<ProgressiveImage, CodecError> {
        let image = self.render().map_err(CodecError::from)?;
        ProgressiveImage::encode(&image, quality, ScanPlan::standard())
    }
}

#[cfg(test)]
mod tests {

    use crate::dataset::DatasetSpec;

    #[test]
    fn sample_accessors_and_render() {
        let dataset = DatasetSpec::cars_like().with_len(3).build(11);
        let sample = &dataset[1];
        let (w, h) = sample.dimensions();
        assert!(w > 0 && h > 0);
        assert!(sample.object_scale() > 0.0 && sample.object_scale() <= 1.0);
        assert!((0.0..=1.0).contains(&sample.detail_level()));
        assert!((0.0..=1.0).contains(&sample.difficulty));
        let img = sample.render().unwrap();
        assert_eq!(img.dimensions(), (w, h));
        // Rendering is deterministic.
        assert_eq!(sample.render().unwrap(), img);
    }

    #[test]
    fn progressive_encoding_round_trip() {
        let dataset = DatasetSpec::imagenet_like().with_len(1).with_max_dimension(96).build(3);
        let encoded = dataset[0].encode_progressive(80).unwrap();
        assert_eq!(encoded.num_scans(), 5);
        assert!(encoded.total_bytes() > 0);
        let decoded = encoded.decode(5).unwrap();
        assert_eq!(decoded.dimensions(), dataset[0].dimensions());
    }
}
