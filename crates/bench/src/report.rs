//! Small helpers for printing experiment results and saving them as JSON.

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// Prints a named table with a header row and formatted data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    println!("{}", header.join("\t"));
    for row in rows {
        println!("{}", row.join("\t"));
    }
}

/// Serializes experiment rows to `results/<name>.json` (best effort: failures are reported
/// but do not abort the experiment).
pub fn save_json<T: Serialize>(name: &str, rows: &T) -> Option<PathBuf> {
    let dir = PathBuf::from("results");
    if let Err(err) = fs::create_dir_all(&dir) {
        eprintln!("warning: could not create results directory: {err}");
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(rows) {
        Ok(json) => {
            if let Err(err) = fs::write(&path, json) {
                eprintln!("warning: could not write {}: {err}", path.display());
                None
            } else {
                println!("(wrote {})", path.display());
                Some(path)
            }
        }
        Err(err) => {
            eprintln!("warning: could not serialize {name}: {err}");
            None
        }
    }
}

/// Formats a float with a fixed number of decimals.
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_rounds() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(10.0, 1), "10.0");
    }

    #[test]
    fn save_json_round_trips() {
        let tmp = std::env::temp_dir().join(format!("rescnn-report-test-{}", std::process::id()));
        std::fs::create_dir_all(&tmp).unwrap();
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&tmp).unwrap();
        let rows = vec![1u32, 2, 3];
        let path = save_json("unit-test", &rows).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains('2'));
        std::env::set_current_dir(old).unwrap();
        let _ = std::fs::remove_dir_all(&tmp);
    }
}
