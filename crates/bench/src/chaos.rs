//! Cross-layer deterministic chaos harness for the resilient serving core.
//!
//! [`ChaosPlan`] generalises [`FaultPlan`](crate::load::FaultPlan) from
//! single-layer stream corruption to coordinated, seeded injection at every
//! lifecycle layer:
//!
//! * **decode** — bit flips and scan truncations in stored streams (via the
//!   embedded fault plan);
//! * **execute** — latency spikes (cost multipliers) and injected panics
//!   (every n-th request);
//! * **source** — a *hot source*: one client whose every request carries a
//!   persistently corrupt stream until a recovery instant on the virtual
//!   clock, exercising circuit-breaker trip/shed/probe behaviour.
//!
//! Every decision is a pure function of `(plan, request index, arrival)`, so
//! the same plan produces the same faults on every run, host, and thread
//! budget — which is what lets the `slo_chaos` binary machine-check bitwise
//! determinism of the resulting [`SloReport`]s.

use crate::load::{ArrivalTrace, FaultDecision, FaultPlan};
use rescnn_core::{
    DynamicResolutionPipeline, Result, SloOptions, SloReport, SloRequest, SloScheduler, SourceId,
};
use rescnn_data::Dataset;

/// A persistently corrupt client: every request from `source` carries a
/// truncated stream until its arrival reaches `recover_at_ms` on the virtual
/// clock (use `f64::INFINITY` for a client that never recovers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotSource {
    /// The corrupt client's identity.
    pub source: SourceId,
    /// Virtual instant from which the client's streams are healthy again.
    pub recover_at_ms: f64,
}

/// A seeded, cross-layer chaos plan. All decisions are deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    /// Decode-layer corruption and execute-layer latency spikes.
    pub faults: FaultPlan,
    /// Execute-layer panic injection: every `n`-th request panics mid-execute
    /// (0 disables). Mirrors [`SloOptions::with_chaos_panic_every`].
    pub panic_every: usize,
    /// Round-robin source fan-out: request `i` is tagged `SourceId(i % n)`.
    /// 0 leaves every request unsourced (no breaker gating applies).
    pub num_sources: u64,
    /// The persistently corrupt client, if any (requires `num_sources > 0`).
    pub hot_source: Option<HotSource>,
}

impl ChaosPlan {
    /// No chaos at all: healthy streams, no panics, no sources.
    pub fn none() -> Self {
        ChaosPlan { faults: FaultPlan::none(), panic_every: 0, num_sources: 0, hot_source: None }
    }

    /// The source tag for request `index` under the round-robin fan-out.
    pub fn source_for(&self, index: usize) -> Option<SourceId> {
        (self.num_sources > 0).then(|| SourceId(index as u64 % self.num_sources))
    }

    /// Whether request `index`, arriving at `arrival_ms`, carries the hot
    /// source's persistent corruption. Hot-source corruption dominates the
    /// per-request fault draw: the point is a *persistent* decode failure
    /// from one client, not an independent coin flip.
    pub fn hot_corrupt(&self, index: usize, arrival_ms: f64) -> bool {
        match (&self.hot_source, self.source_for(index)) {
            (Some(hot), Some(source)) => source == hot.source && arrival_ms < hot.recover_at_ms,
            _ => false,
        }
    }
}

/// Drives one [`SloScheduler`] drain under a chaos plan: request `i` serves
/// `data[i % data.len()]`, arrives at `trace.arrivals_ms[i]`, is tagged with
/// its round-robin source, and is injected per the plan's decode/execute/source
/// layers. Resilience policies (retry, breaker, watchdog, memory budget) come
/// in through `options`.
///
/// # Errors
/// Returns an error if the dataset is empty or encoding a fault carrier
/// fails; per-request faults and injected panics never abort the drain.
pub fn run_slo_chaos(
    pipeline: &DynamicResolutionPipeline,
    data: &Dataset,
    trace: &ArrivalTrace,
    chaos: &ChaosPlan,
    options: SloOptions,
) -> Result<SloReport> {
    if data.is_empty() {
        return Err(rescnn_core::CoreError::EmptyDataset);
    }
    let quality = pipeline.config().encode_quality;
    let options = if chaos.panic_every > 0 {
        options.with_chaos_panic_every(chaos.panic_every)
    } else {
        options
    };
    let mut scheduler = SloScheduler::new(pipeline, options);
    for (i, &arrival) in trace.arrivals_ms.iter().enumerate() {
        let sample = &data.samples()[i % data.len()];
        let mut request = SloRequest::new(sample, arrival, arrival + trace.deadline_slack_ms);
        if let Some(source) = chaos.source_for(i) {
            request = request.with_source(source);
        }
        if chaos.hot_corrupt(i, arrival) {
            let stream = sample
                .encode_progressive(quality)
                .map_err(rescnn_core::CoreError::from)?
                .with_truncated_scan(0, 2);
            request = request.with_storage(stream);
        } else {
            match chaos.faults.decide(i) {
                FaultDecision::Healthy => {}
                FaultDecision::BitFlip { scan, byte, bit } => {
                    let stream = sample
                        .encode_progressive(quality)
                        .map_err(rescnn_core::CoreError::from)?
                        .with_bit_flip(scan, byte, bit);
                    request = request.with_storage(stream);
                }
                FaultDecision::Truncate { scan, keep } => {
                    let stream = sample
                        .encode_progressive(quality)
                        .map_err(rescnn_core::CoreError::from)?
                        .with_truncated_scan(scan, keep);
                    request = request.with_storage(stream);
                }
                FaultDecision::Spike { multiplier } => {
                    request = request.with_cost_multiplier(multiplier);
                }
            }
        }
        scheduler.submit(request);
    }
    scheduler.run()
}

/// Strips the only host-dependent fields (`wall_seconds`, `threads`) so two
/// reports can be compared bitwise across reruns and thread budgets.
pub fn comparable(mut report: SloReport) -> SloReport {
    report.wall_seconds = 0.0;
    report.threads = 0;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_fan_out_is_round_robin_and_optional() {
        let mut plan = ChaosPlan::none();
        assert_eq!(plan.source_for(5), None);
        plan.num_sources = 3;
        assert_eq!(plan.source_for(0), Some(SourceId(0)));
        assert_eq!(plan.source_for(4), Some(SourceId(1)));
        assert_eq!(plan.source_for(5), Some(SourceId(2)));
    }

    #[test]
    fn hot_source_corruption_ends_at_the_recovery_instant() {
        let mut plan = ChaosPlan::none();
        plan.num_sources = 4;
        plan.hot_source = Some(HotSource { source: SourceId(1), recover_at_ms: 100.0 });
        // Requests 1, 5, 9, … belong to the hot source.
        assert!(plan.hot_corrupt(1, 10.0));
        assert!(plan.hot_corrupt(5, 99.9));
        assert!(!plan.hot_corrupt(5, 100.0), "recovery instant is inclusive-healthy");
        assert!(!plan.hot_corrupt(2, 10.0), "cold sources are never hot-corrupted");
        let never = ChaosPlan {
            hot_source: Some(HotSource { source: SourceId(0), recover_at_ms: f64::INFINITY }),
            num_sources: 2,
            ..ChaosPlan::none()
        };
        assert!(never.hot_corrupt(0, 1e12));
    }

    #[test]
    fn comparable_zeroes_only_host_dependent_fields() {
        let plan = ChaosPlan::none();
        assert_eq!(plan, plan.clone());
        // Pure-plan determinism: the same plan makes the same decisions.
        let chaotic = ChaosPlan {
            faults: FaultPlan::corruption(0.2, 7),
            panic_every: 3,
            num_sources: 2,
            hot_source: Some(HotSource { source: SourceId(0), recover_at_ms: 50.0 }),
        };
        for i in 0..64 {
            assert_eq!(chaotic.faults.decide(i), chaotic.faults.decide(i));
            assert_eq!(chaotic.hot_corrupt(i, 25.0), chaotic.hot_corrupt(i, 25.0));
        }
    }
}
