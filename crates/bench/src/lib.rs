//! # rescnn-bench
//!
//! Experiment harnesses reproducing every table and figure of the paper, plus Criterion
//! micro-benchmarks of the executable kernels. Each `bin/` target regenerates one
//! table/figure; sample counts are controlled by `RESCNN_*` environment variables (see
//! [`HarnessConfig`]).
//!
//! | Target | Paper artefact |
//! |---|---|
//! | `table1` | Table I — GFLOPs & accuracy vs. resolution |
//! | `fig2` | Figure 2 — progressive scan sizes |
//! | `fig6` | Figure 6 — storage-calibration curves |
//! | `fig7` | Figure 7 — tuned vs. library throughput (+ §VII-a speedups) |
//! | `table2` | Table II — ResNet-50 wall-clock latency |
//! | `fig8` | Figure 8 — accuracy vs. FLOPs on ImageNet-like data |
//! | `fig9` | Figure 9 — accuracy vs. FLOPs on Cars-like data |
//! | `table3` | Table III — ImageNet read-bandwidth savings |
//! | `table4` | Table IV — Cars read-bandwidth savings |
//! | `scale_overhead` | §VII-c — scale-model runtime overhead |
//! | `slo_load` | SLO serving core under trace-driven load + fault injection |
//! | `slo_chaos` | cross-layer chaos drill of the resilient lifecycle (retry, breaker, watchdog, memory budget) |
//! | `slo_server` | real-clock async front-end under paced load + record/replay determinism check |

#![warn(missing_docs)]

pub mod chaos;
pub mod config;
pub mod experiments;
pub mod load;
pub mod report;
pub mod server_load;

pub use config::HarnessConfig;
