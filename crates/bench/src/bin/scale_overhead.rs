//! Reproduces §VII-c: runtime overhead of the scale model relative to the backbone.

use rescnn_bench::{experiments, report};

fn main() {
    let rows = experiments::scale_overhead();
    let formatted: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.cpu.clone(),
                report::fmt(r.scale_model_library_ms, 1),
                report::fmt(r.scale_model_tuned_ms, 1),
                report::fmt(r.backbone_tuned_ms, 1),
                report::fmt(r.overhead_percent, 0),
            ]
        })
        .collect();
    report::print_table(
        "§VII-c: scale-model (MobileNetV2@112) overhead vs. tuned ResNet-50@224",
        &["CPU", "Scale untuned (ms)", "Scale tuned (ms)", "Backbone tuned (ms)", "Overhead (%)"],
        &formatted,
    );
    report::save_json("scale_overhead", &rows);
}
