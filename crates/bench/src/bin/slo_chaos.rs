//! Cross-layer chaos drill of the resilient request lifecycle: seeded fault
//! injection at the decode (bit flips, truncations), execute (panics, latency
//! spikes), and source (persistently corrupt client) layers, with every
//! resilience policy — retry-with-demotion, circuit breaking, watchdog
//! cancellation, and memory-budget backpressure — exercised under load.
//!
//! The harness machine-checks its invariants and exits 1 on any violation:
//!
//! * zero escaped panics: every drain completes under `catch_unwind`;
//! * retry measurably converts transient failures into completions
//!   (`transient_panics/retry` vs `transient_panics/no_retry`);
//! * breaker trips shed a hot source at the gate; cold sources are untouched;
//! * the watchdog cancels exactly the injected spike set, and retries
//!   recover the cancelled work;
//! * a memory budget below the top rung demotes (never OOMs, never sheds);
//! * the combined-chaos report is bitwise identical across a same-seed rerun
//!   and thread budgets 1/2/4;
//! * per-scenario goodput floors hold;
//! * the async front-end contains injected panics across a graceful drain,
//!   converts a wedged consumer into typed `QueueFull` backpressure with the
//!   submission queue never exceeding its bound, and settles every ticket
//!   accepted while submitters race the drain — with every refusal typed.
//!
//! Scale with `RESCNN_SAMPLES` (e.g. `RESCNN_SAMPLES=96` for a CI smoke run).

use rescnn_bench::chaos::{comparable, run_slo_chaos, ChaosPlan, HotSource};
use rescnn_bench::load::{ArrivalTrace, FaultDecision, FaultPlan};
use rescnn_bench::{report, HarnessConfig};
use rescnn_core::{
    BatchOptions, CircuitBreakerPolicy, DynamicResolutionPipeline, PipelineConfig,
    ResolutionLatencyModel, RetryPolicy, ScaleModelConfig, ScaleModelTrainer, ServerConfig,
    ServerRequest, SloOptions, SloReport, SloServer, SourceId, SubmitError, WatchdogPolicy,
};
use rescnn_data::{Dataset, DatasetKind, DatasetSpec};
use rescnn_imaging::CropRatio;
use rescnn_models::ModelKind;
use rescnn_oracle::AccuracyOracle;
use serde::Serialize;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Serialize)]
struct ChaosRow {
    scenario: String,
    requests: usize,
    completed: usize,
    recovered: usize,
    retry_attempts: usize,
    degraded: usize,
    memory_demoted: usize,
    watchdog_cancelled: usize,
    breaker_shed: usize,
    breaker_trips: usize,
    shed: usize,
    expired: usize,
    faulted: usize,
    goodput: f64,
    p99_latency_ms: f64,
    slo_violation_rate: f64,
    mean_delivered_ssim: f64,
}

fn row(name: &str, report: &SloReport) -> ChaosRow {
    ChaosRow {
        scenario: name.to_string(),
        requests: report.total,
        completed: report.completed,
        recovered: report.recovered,
        retry_attempts: report.retry_attempts,
        degraded: report.degraded,
        memory_demoted: report.memory_demoted,
        watchdog_cancelled: report.watchdog_cancelled,
        breaker_shed: report.breaker_shed,
        breaker_trips: report.breaker_trips,
        shed: report.shed,
        expired: report.expired,
        faulted: report.faulted,
        goodput: report.goodput,
        p99_latency_ms: report.p99_latency_ms,
        slo_violation_rate: report.slo_violation_rate,
        mean_delivered_ssim: report.mean_delivered_ssim,
    }
}

fn build_pipeline(config: &HarnessConfig) -> DynamicResolutionPipeline {
    let resolutions = vec![112usize, 168, 224];
    let scale_config = ScaleModelConfig {
        resolutions: resolutions.clone(),
        seed: config.seed,
        ..Default::default()
    };
    let trainer = ScaleModelTrainer::new(scale_config, ModelKind::ResNet18, DatasetKind::CarsLike);
    let train = DatasetSpec::cars_like()
        .with_len(config.train_samples)
        .with_max_dimension(config.max_dimension.min(128))
        .build(config.seed ^ 0xA11CE);
    let scale_model = trainer.train(&train, 3).expect("scale-model training succeeds");
    let pipeline_config = PipelineConfig::new(ModelKind::ResNet18, DatasetKind::CarsLike)
        .with_crop(CropRatio::new(0.56).expect("valid crop"))
        .with_resolutions(resolutions);
    DynamicResolutionPipeline::new(pipeline_config, scale_model, AccuracyOracle::new(config.seed))
        .expect("pipeline construction succeeds")
}

/// Runs one chaos drain under `catch_unwind`, recording an invariant
/// violation if a panic ever escapes the serving core.
fn drain(
    pipeline: &DynamicResolutionPipeline,
    data: &Dataset,
    trace: &ArrivalTrace,
    chaos: &ChaosPlan,
    options: SloOptions,
    violations: &mut Vec<String>,
    name: &str,
) -> Option<SloReport> {
    let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
        run_slo_chaos(pipeline, data, trace, chaos, options)
    }));
    match caught {
        Ok(Ok(report)) => Some(report),
        Ok(Err(err)) => {
            violations.push(format!("{name}: drain aborted with error: {err}"));
            None
        }
        Err(_) => {
            violations.push(format!("{name}: a panic ESCAPED the serving core"));
            None
        }
    }
}

fn main() {
    let config = HarnessConfig::from_env();
    let pipeline = Arc::new(build_pipeline(&config));
    let data = DatasetSpec::cars_like()
        .with_len(config.eval_samples.min(48))
        .with_max_dimension(config.max_dimension.min(128))
        .build(config.seed ^ 0xC405);

    let latency =
        ResolutionLatencyModel::analytic(&pipeline).expect("analytic latency model builds");
    let top_ms = latency.estimate_ms(224).max(1.0);
    let n = (config.eval_samples / 8).clamp(12, 64);
    let trace = ArrivalTrace::uniform(n, 2.0 * top_ms, 10.0 * top_ms);
    // Retries queue behind the whole first round on the single virtual
    // server, so recovery scenarios need slack deep enough for a second pass.
    let patient = ArrivalTrace::uniform(n, 2.0 * top_ms, 30.0 * top_ms);
    let base = SloOptions::default().with_latency_model(latency.clone());
    let top_peak = pipeline.arena_peak_bytes(224).expect("arena plan for the top rung");

    let mut violations: Vec<String> = Vec::new();
    let mut rows: Vec<ChaosRow> = Vec::new();

    // -- transient panics: retry converts failures into completions ---------
    let panics = ChaosPlan { panic_every: 5, ..ChaosPlan::none() };
    let no_retry = drain(
        &pipeline,
        &data,
        &patient,
        &panics,
        base.clone(),
        &mut violations,
        "transient_panics/no_retry",
    );
    let with_retry = drain(
        &pipeline,
        &data,
        &patient,
        &panics,
        base.clone().with_retry(RetryPolicy::new(2)),
        &mut violations,
        "transient_panics/retry",
    );
    if let (Some(no_retry), Some(with_retry)) = (&no_retry, &with_retry) {
        rows.push(row("transient_panics/no_retry", no_retry));
        rows.push(row("transient_panics/retry", with_retry));
        if no_retry.faulted == 0 {
            violations.push("transient_panics/no_retry: chaos injected no panics".into());
        }
        if with_retry.completed <= no_retry.completed || with_retry.recovered == 0 {
            violations.push(format!(
                "retry failed to convert failures: completed {} -> {}, recovered {}",
                no_retry.completed, with_retry.completed, with_retry.recovered
            ));
        }
        if with_retry.goodput < 0.85 {
            violations.push(format!(
                "transient_panics/retry: goodput {:.3} below floor 0.85",
                with_retry.goodput
            ));
        }
    }

    // -- decode storm: bounded retries, corruption never cascades ------------
    let storm = ChaosPlan {
        faults: FaultPlan::corruption(0.25, config.seed ^ 0x5702),
        ..ChaosPlan::none()
    };
    let corrupt_count =
        (0..n).filter(|&i| storm.faults.decide(i) != FaultDecision::Healthy).count();
    if let Some(report) = drain(
        &pipeline,
        &data,
        &trace,
        &storm,
        base.clone().with_retry(RetryPolicy::new(1)),
        &mut violations,
        "decode_storm",
    ) {
        if report.completed < n - corrupt_count {
            violations.push(format!(
                "decode_storm: corruption cascaded: {} completed < {} healthy",
                report.completed,
                n - corrupt_count
            ));
        }
        if report.faulted > corrupt_count {
            violations.push(format!(
                "decode_storm: {} faulted exceeds {} injected corruptions",
                report.faulted, corrupt_count
            ));
        }
        rows.push(row("decode_storm", &report));
    }

    // -- hot source: the breaker sheds a corrupt client at the gate ----------
    let hot = ChaosPlan {
        num_sources: 4,
        hot_source: Some(HotSource { source: SourceId(1), recover_at_ms: f64::INFINITY }),
        ..ChaosPlan::none()
    };
    let hot_count = (0..n).filter(|&i| i as u64 % 4 == 1).count();
    if let Some(report) = drain(
        &pipeline,
        &data,
        &trace,
        &hot,
        base.clone().with_breaker(CircuitBreakerPolicy::new(2, 20.0 * top_ms)),
        &mut violations,
        "hot_source_breaker",
    ) {
        if report.breaker_trips == 0 || report.breaker_shed == 0 {
            violations.push(format!(
                "hot_source_breaker: breaker never engaged (trips {}, shed {})",
                report.breaker_trips, report.breaker_shed
            ));
        }
        if report.completed != n - hot_count {
            violations.push(format!(
                "hot_source_breaker: cold sources must all complete: {} != {}",
                report.completed,
                n - hot_count
            ));
        }
        rows.push(row("hot_source_breaker", &report));
    }

    // -- latency spikes: the watchdog cancels exactly the spiked set ---------
    let spikes = ChaosPlan {
        faults: FaultPlan {
            spike_rate: 0.35,
            spike_multiplier: 8.0,
            seed: config.seed ^ 0x5B1C,
            ..FaultPlan::none()
        },
        ..ChaosPlan::none()
    };
    let spiked =
        (0..n).filter(|&i| matches!(spikes.faults.decide(i), FaultDecision::Spike { .. })).count();
    if let Some(report) = drain(
        &pipeline,
        &data,
        &patient,
        &spikes,
        base.clone().with_watchdog(WatchdogPolicy::new(2.0)).with_retry(RetryPolicy::new(1)),
        &mut violations,
        "spike_watchdog",
    ) {
        if report.watchdog_cancelled != spiked {
            violations.push(format!(
                "spike_watchdog: {} cancellations != {} injected spikes",
                report.watchdog_cancelled, spiked
            ));
        }
        if spiked > 0 && report.recovered == 0 {
            violations.push("spike_watchdog: no cancelled execution was recovered by retry".into());
        }
        rows.push(row("spike_watchdog", &report));
    }

    // -- memory squeeze: a budget below the top rung demotes, never sheds ----
    let planned_at_top = data
        .samples()
        .iter()
        .cycle()
        .take(n)
        .filter(|sample| pipeline.plan(sample).map(|p| p.chosen_resolution == 224).unwrap_or(false))
        .count();
    if let Some(report) = drain(
        &pipeline,
        &data,
        &trace,
        &ChaosPlan::none(),
        base.clone().with_memory_budget_bytes(top_peak - 1),
        &mut violations,
        "memory_squeeze",
    ) {
        if report.memory_demoted != planned_at_top {
            violations.push(format!(
                "memory_squeeze: {} demotions != {} requests planned at 224",
                report.memory_demoted, planned_at_top
            ));
        }
        if report.shed + report.expired + report.faulted > 0 || report.completed != n {
            violations.push(format!(
                "memory_squeeze: budget must demote, not reject: completed {}, shed {}, expired {}, faulted {}",
                report.completed, report.shed, report.expired, report.faulted
            ));
        }
        rows.push(row("memory_squeeze", &report));
    }

    // -- combined chaos: every layer and every policy at once ----------------
    let combined = ChaosPlan {
        faults: FaultPlan {
            bit_flip_rate: 0.03,
            truncate_rate: 0.03,
            spike_rate: 0.08,
            spike_multiplier: 8.0,
            seed: config.seed ^ 0xC0DE,
        },
        panic_every: 9,
        num_sources: 3,
        hot_source: Some(HotSource {
            source: SourceId(2),
            recover_at_ms: trace.arrivals_ms[n - 1] * 0.5,
        }),
    };
    let combined_options = base
        .clone()
        .with_batch(BatchOptions::default().with_threads(1))
        .with_retry(RetryPolicy::new(2).with_backoff_ms(2.0))
        .with_breaker(CircuitBreakerPolicy::new(2, 10.0 * top_ms))
        .with_watchdog(WatchdogPolicy::new(2.5))
        .with_memory_budget_bytes(top_peak - 1)
        .with_ssim_floor(0.35);
    let baseline = drain(
        &pipeline,
        &data,
        &trace,
        &combined,
        combined_options.clone(),
        &mut violations,
        "combined",
    );
    if let Some(baseline) = &baseline {
        rows.push(row("combined", baseline));
        if baseline.goodput < 0.40 {
            violations.push(format!("combined: goodput {:.3} below floor 0.40", baseline.goodput));
        }

        // Same-seed rerun: every field must reproduce bitwise.
        if let Some(rerun) = drain(
            &pipeline,
            &data,
            &trace,
            &combined,
            combined_options.clone(),
            &mut violations,
            "combined/rerun",
        ) {
            if comparable(rerun) != comparable(baseline.clone()) {
                violations.push("combined: same-seed rerun diverged".into());
            }
        }

        // Thread-budget squeeze: 2 and 4 workers must reproduce every
        // virtual-clock decision of the single-threaded baseline.
        for threads in [2usize, 4] {
            let squeezed =
                combined_options.clone().with_batch(BatchOptions::default().with_threads(threads));
            if let Some(replay) = drain(
                &pipeline,
                &data,
                &trace,
                &combined,
                squeezed,
                &mut violations,
                "combined/threads",
            ) {
                if comparable(replay) != comparable(baseline.clone()) {
                    violations.push(format!("combined: outcome diverged at threads={threads}"));
                }
            }
        }
    }

    // -- server: injected panics during a drain stay contained ---------------
    {
        let name = "server/panic_during_drain";
        let options = base.clone().with_chaos_panic_every(3).with_retry(RetryPolicy::new(2));
        let server_config =
            ServerConfig::default().with_options(options).with_drain_deadline_ms(120_000.0);
        match SloServer::start(Arc::clone(&pipeline), server_config) {
            Err(err) => violations.push(format!("{name}: server failed to start: {err}")),
            Ok(mut server) => {
                let stream = server.completions().expect("a fresh server has its stream");
                let consumer = std::thread::spawn(move || stream.count());
                let slack = (4 * n.max(16)) as f64 * top_ms;
                let mut accepted = 0usize;
                for i in 0..n {
                    let sample = Arc::new(data[i % data.len()].clone());
                    if server.submit(ServerRequest::new(sample, slack)).is_ok() {
                        accepted += 1;
                    }
                }
                // Drain immediately: the backlog executes while the drain is
                // pending, so the injected panics fire inside the shutdown
                // path and must still be caught, retried, and accounted.
                server.drain();
                match server.join() {
                    Err(err) => {
                        violations.push(format!("{name}: a panic ESCAPED the event loop: {err}"))
                    }
                    Ok(report) => {
                        if !report.drained_gracefully || report.hard_cancelled > 0 {
                            violations.push(format!(
                                "{name}: drain was not graceful (hard_cancelled {})",
                                report.hard_cancelled
                            ));
                        }
                        if report.slo.recovered == 0 && report.slo.faulted == 0 {
                            violations.push(format!("{name}: chaos injected no panics"));
                        }
                        if report.slo.outcomes.len() != accepted {
                            violations.push(format!(
                                "{name}: {} outcomes for {accepted} accepted tickets",
                                report.slo.outcomes.len()
                            ));
                        }
                        rows.push(row(name, &report.slo));
                    }
                }
                let delivered = consumer.join().expect("the stream consumer never panics");
                if delivered != accepted {
                    violations.push(format!(
                        "{name}: {delivered} completions for {accepted} accepted tickets"
                    ));
                }
            }
        }
    }

    // -- server: a wedged consumer becomes typed gate backpressure -----------
    {
        let name = "server/slow_consumer";
        let queue_bound = 4usize;
        let server_config = ServerConfig::default()
            .with_options(base.clone())
            .with_queue_capacity(queue_bound)
            .with_completion_capacity(1)
            .with_idle_tick_ms(1.0)
            .with_drain_deadline_ms(120_000.0);
        match SloServer::start(Arc::clone(&pipeline), server_config) {
            Err(err) => violations.push(format!("{name}: server failed to start: {err}")),
            Ok(mut server) => {
                let stream = server.completions().expect("a fresh server has its stream");
                let mut accepted = 0usize;
                let mut queue_full = 0usize;
                let mut max_depth = 0usize;
                // Nobody consumes: the bounded completion queue wedges the
                // event loop, and the stall must surface at the gate as typed
                // QueueFull rejections — never as unbounded buffering.
                for i in 0..(queue_bound * 16) {
                    let sample = Arc::new(data[i % data.len()].clone());
                    match server.submit(ServerRequest::new(sample, 0.0)) {
                        Ok(_) => accepted += 1,
                        Err(SubmitError::QueueFull { .. }) => queue_full += 1,
                        Err(err) => violations.push(format!("{name}: unexpected rejection: {err}")),
                    }
                    max_depth = max_depth.max(server.queue_depth());
                    std::thread::sleep(Duration::from_millis(1));
                }
                if queue_full == 0 {
                    violations.push(format!(
                        "{name}: a wedged consumer never produced QueueFull backpressure"
                    ));
                }
                if max_depth > queue_bound {
                    violations.push(format!(
                        "{name}: queue depth {max_depth} exceeded its bound {queue_bound}"
                    ));
                }
                // Unwedge and drain: every accepted ticket must still settle.
                let consumer = std::thread::spawn(move || stream.count());
                server.drain();
                match server.join() {
                    Err(err) => violations.push(format!("{name}: join failed: {err}")),
                    Ok(report) => {
                        if report.submitted != accepted || report.rejected_queue_full != queue_full
                        {
                            violations.push(format!(
                                "{name}: gate accounting drifted: submitted {} vs {accepted}, queue_full {} vs {queue_full}",
                                report.submitted, report.rejected_queue_full
                            ));
                        }
                        if !report.drained_gracefully {
                            violations.push(format!("{name}: drain was not graceful"));
                        }
                        rows.push(row(name, &report.slo));
                    }
                }
                let delivered = consumer.join().expect("the stream consumer never panics");
                if delivered != accepted {
                    violations.push(format!(
                        "{name}: {delivered} completions for {accepted} accepted tickets"
                    ));
                }
            }
        }
    }

    // -- server: submitters racing the drain lose with typed errors ----------
    {
        let name = "server/submit_vs_drain_race";
        let server_config = ServerConfig::default()
            .with_options(base.clone())
            .with_queue_capacity(256)
            .with_drain_deadline_ms(120_000.0);
        match SloServer::start(Arc::clone(&pipeline), server_config) {
            Err(err) => violations.push(format!("{name}: server failed to start: {err}")),
            Ok(mut server) => {
                let stream = server.completions().expect("a fresh server has its stream");
                let consumer = std::thread::spawn(move || stream.count());
                let slack = 1_000.0 * top_ms;
                let accepted = AtomicUsize::new(0);
                let rejected = AtomicUsize::new(0);
                std::thread::scope(|scope| {
                    for submitter in 0..4usize {
                        let server = &server;
                        let data = &data;
                        let accepted = &accepted;
                        let rejected = &rejected;
                        scope.spawn(move || {
                            for i in 0..16usize {
                                let index = (submitter * 16 + i) % data.len();
                                let sample = Arc::new(data[index].clone());
                                match server.submit(ServerRequest::new(sample, slack)) {
                                    Ok(_) => {
                                        accepted.fetch_add(1, Ordering::AcqRel);
                                    }
                                    // Losing the race is always a typed error,
                                    // never a panic or a silent drop.
                                    Err(
                                        SubmitError::Draining
                                        | SubmitError::Stopped
                                        | SubmitError::QueueFull { .. },
                                    ) => {
                                        rejected.fetch_add(1, Ordering::AcqRel);
                                    }
                                }
                                std::thread::sleep(Duration::from_micros(200));
                            }
                        });
                    }
                    scope.spawn(|| {
                        std::thread::sleep(Duration::from_millis(2));
                        server.drain();
                    });
                });
                let accepted = accepted.into_inner();
                let rejected = rejected.into_inner();
                if rejected == 0 {
                    violations.push(format!("{name}: the drain raced no submitter"));
                }
                if accepted == 0 {
                    violations.push(format!("{name}: every submission lost the race"));
                }
                match server.join() {
                    Err(err) => violations.push(format!("{name}: join failed: {err}")),
                    Ok(report) => {
                        if report.submitted != accepted {
                            violations.push(format!(
                                "{name}: {} tickets issued for {accepted} accepted submits",
                                report.submitted
                            ));
                        }
                        if !report.drained_gracefully {
                            violations.push(format!("{name}: drain was not graceful"));
                        }
                        rows.push(row(name, &report.slo));
                    }
                }
                let delivered = consumer.join().expect("the stream consumer never panics");
                if delivered != accepted {
                    violations.push(format!(
                        "{name}: {delivered} completions for {accepted} accepted tickets"
                    ));
                }
            }
        }
    }

    let formatted: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                r.requests.to_string(),
                r.completed.to_string(),
                r.recovered.to_string(),
                r.retry_attempts.to_string(),
                r.memory_demoted.to_string(),
                r.watchdog_cancelled.to_string(),
                r.breaker_shed.to_string(),
                r.breaker_trips.to_string(),
                r.faulted.to_string(),
                report::fmt(r.goodput, 3),
                report::fmt(r.slo_violation_rate, 3),
            ]
        })
        .collect();
    report::print_table(
        "SLO chaos drill: resilience policies under cross-layer fault injection",
        &[
            "Scenario", "Req", "Done", "Recov", "Retry", "MemDem", "WdCancel", "BrkShed",
            "BrkTrip", "Fault", "Goodput", "Viol",
        ],
        &formatted,
    );
    report::save_json("slo_chaos", &rows);

    if violations.is_empty() {
        println!("chaos invariants: OK (panic containment, retry conversion, breaker gating, watchdog accounting, memory backpressure, determinism 1/2/4, server drain/backpressure/race drills)");
    } else {
        for violation in &violations {
            eprintln!("CHAOS INVARIANT VIOLATED: {violation}");
        }
        std::process::exit(1);
    }
}
