//! Reproduces Figure 7: tuned vs. library throughput across resolutions on both CPUs, plus
//! the §VII-a speedup summary.

use rescnn_bench::{experiments, report, HarnessConfig};
use rescnn_models::ModelKind;

fn main() {
    let _config = HarnessConfig::from_env();
    let rows = experiments::fig7_table2(&[ModelKind::ResNet18, ModelKind::ResNet50]);
    let formatted: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.cpu.clone(),
                r.model.clone(),
                r.resolution.to_string(),
                report::fmt(r.tuned_gflops_s, 1),
                report::fmt(r.library_gflops_s, 1),
            ]
        })
        .collect();
    report::print_table(
        "Figure 7: throughput (GFLOPs/s) of tuned vs. library kernels",
        &["CPU", "Model", "Resolution", "Tuned", "Library (MKLDNN-like)"],
        &formatted,
    );
    let summary = experiments::speedup_summary(&rows);
    let formatted: Vec<Vec<String>> = summary
        .iter()
        .map(|s| {
            vec![
                s.cpu.clone(),
                s.model.clone(),
                report::fmt(s.library_speedup_448_to_112, 1),
                report::fmt(s.tuned_speedup_448_to_112, 1),
                report::fmt(s.tuned280_vs_library224, 2),
            ]
        })
        .collect();
    report::print_table(
        "§VII-a summary: 448→112 speedups and tuned@280 vs. library@224",
        &["CPU", "Model", "Library speedup", "Tuned speedup", "Tuned@280 / Library@224"],
        &formatted,
    );
    report::save_json("fig7", &rows);
    report::save_json("fig7_summary", &summary);
}
