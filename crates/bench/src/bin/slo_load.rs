//! Trace-driven SLO load harness: drives the serving core through nominal,
//! diurnal, overload, fault-injection, and latency-spike scenarios and reports
//! goodput, virtual-latency percentiles, SLO-violation/shed rates, degradation
//! counts, and mean delivered SSIM. Also re-runs the fault scenario under a
//! squeezed thread budget and fails (exit 1) if any decision changes.
//!
//! Scale with `RESCNN_SAMPLES` (e.g. `RESCNN_SAMPLES=8` for a CI smoke run).

use rescnn_bench::load::{run_slo_load, ArrivalTrace, FaultPlan};
use rescnn_bench::{report, HarnessConfig};
use rescnn_core::{
    BatchOptions, DynamicResolutionPipeline, PipelineConfig, ResolutionLatencyModel,
    ScaleModelConfig, ScaleModelTrainer, SloOptions, SloReport,
};
use rescnn_data::{DatasetKind, DatasetSpec};
use rescnn_imaging::CropRatio;
use rescnn_models::ModelKind;
use rescnn_oracle::AccuracyOracle;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct ScenarioRow {
    scenario: String,
    requests: usize,
    completed: usize,
    degraded: usize,
    shed: usize,
    expired: usize,
    faulted: usize,
    goodput: f64,
    p50_latency_ms: f64,
    p99_latency_ms: f64,
    slo_violation_rate: f64,
    shed_rate: f64,
    mean_delivered_ssim: f64,
}

fn row(name: &str, report: &SloReport) -> ScenarioRow {
    ScenarioRow {
        scenario: name.to_string(),
        requests: report.total,
        completed: report.completed,
        degraded: report.degraded,
        shed: report.shed,
        expired: report.expired,
        faulted: report.faulted,
        goodput: report.goodput,
        p50_latency_ms: report.p50_latency_ms,
        p99_latency_ms: report.p99_latency_ms,
        slo_violation_rate: report.slo_violation_rate,
        shed_rate: report.shed_rate,
        mean_delivered_ssim: report.mean_delivered_ssim,
    }
}

fn build_pipeline(config: &HarnessConfig) -> DynamicResolutionPipeline {
    let resolutions = vec![112usize, 168, 224];
    let scale_config = ScaleModelConfig {
        resolutions: resolutions.clone(),
        seed: config.seed,
        ..Default::default()
    };
    let trainer = ScaleModelTrainer::new(scale_config, ModelKind::ResNet18, DatasetKind::CarsLike);
    let train = DatasetSpec::cars_like()
        .with_len(config.train_samples)
        .with_max_dimension(config.max_dimension.min(128))
        .build(config.seed ^ 0xA11CE);
    let scale_model = trainer.train(&train, 3).expect("scale-model training succeeds");
    let pipeline_config = PipelineConfig::new(ModelKind::ResNet18, DatasetKind::CarsLike)
        .with_crop(CropRatio::new(0.56).expect("valid crop"))
        .with_resolutions(resolutions);
    DynamicResolutionPipeline::new(pipeline_config, scale_model, AccuracyOracle::new(config.seed))
        .expect("pipeline construction succeeds")
}

fn main() {
    let config = HarnessConfig::from_env();
    let pipeline = build_pipeline(&config);
    let data = DatasetSpec::cars_like()
        .with_len(config.eval_samples.min(48))
        .with_max_dimension(config.max_dimension.min(128))
        .build(config.seed ^ 0x10AD);

    // Virtual service estimates from the calibrated/analytic cost model; the
    // trace shapes are expressed relative to the top-of-ladder estimate so the
    // scenarios stress the same regimes on any host.
    let latency =
        ResolutionLatencyModel::analytic(&pipeline).expect("analytic latency model builds");
    let top_ms = latency.estimate_ms(224).max(1.0);
    let n = (config.eval_samples / 8).clamp(12, 64);

    let base_options = SloOptions::default().with_latency_model(latency.clone());
    let scenarios: Vec<(&str, ArrivalTrace, FaultPlan, SloOptions)> = vec![
        (
            "nominal",
            ArrivalTrace::uniform(n, 2.0 * top_ms, 10.0 * top_ms),
            FaultPlan::none(),
            base_options.clone(),
        ),
        (
            "diurnal",
            ArrivalTrace::diurnal(n, 1.5 * top_ms, 0.8, n / 2, 5.0 * top_ms),
            FaultPlan::none(),
            base_options.clone(),
        ),
        (
            "overload",
            ArrivalTrace::bursty(n, 8, 8.0 * top_ms, 2.5 * top_ms),
            FaultPlan::none(),
            base_options.clone().with_ssim_floor(0.35),
        ),
        (
            "corrupt5+chaos",
            ArrivalTrace::bursty(n, 4, 6.0 * top_ms, 4.0 * top_ms),
            FaultPlan::corruption(0.05, config.seed ^ 0xFA17),
            base_options
                .clone()
                .with_batch(BatchOptions::default().with_threads(2))
                .with_chaos_panic_every(17),
        ),
        (
            "spikes",
            ArrivalTrace::uniform(n, 2.0 * top_ms, 4.0 * top_ms),
            FaultPlan { spike_rate: 0.10, spike_multiplier: 8.0, ..FaultPlan::none() },
            base_options.clone(),
        ),
    ];

    let mut rows = Vec::new();
    let mut fault_report: Option<SloReport> = None;
    for (name, trace, faults, options) in &scenarios {
        let report = run_slo_load(&pipeline, &data, trace, faults, options.clone())
            .expect("load drain never aborts on per-request faults");
        if *name == "corrupt5+chaos" {
            fault_report = Some(report.clone());
        }
        rows.push(row(name, &report));
    }

    // Thread-budget squeeze: the fault scenario replayed at 1 and 4 threads
    // must reproduce every virtual-clock decision and outcome bit-for-bit.
    let (_, trace, faults, options) = &scenarios[3];
    let mut deterministic = true;
    for threads in [1usize, 4] {
        let squeezed = options.clone().with_batch(BatchOptions::default().with_threads(threads));
        let mut replay = run_slo_load(&pipeline, &data, trace, faults, squeezed)
            .expect("squeezed drain never aborts on per-request faults");
        let baseline = fault_report.as_ref().expect("fault scenario ran");
        replay.wall_seconds = baseline.wall_seconds;
        replay.threads = baseline.threads;
        if &replay != baseline {
            eprintln!("DETERMINISM MISMATCH: corrupt5+chaos differs at threads={threads}");
            deterministic = false;
        }
    }

    let formatted: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                r.requests.to_string(),
                r.completed.to_string(),
                r.degraded.to_string(),
                r.shed.to_string(),
                r.expired.to_string(),
                r.faulted.to_string(),
                report::fmt(r.goodput, 3),
                report::fmt(r.p50_latency_ms, 1),
                report::fmt(r.p99_latency_ms, 1),
                report::fmt(r.slo_violation_rate, 3),
                report::fmt(r.mean_delivered_ssim, 3),
            ]
        })
        .collect();
    report::print_table(
        "SLO load harness: goodput & delivered quality under load",
        &[
            "Scenario", "Req", "Done", "Degr", "Shed", "Expd", "Fault", "Goodput", "p50ms",
            "p99ms", "Viol", "SSIM",
        ],
        &formatted,
    );
    println!(
        "determinism across thread budgets (1/2/4): {}",
        if deterministic { "OK" } else { "MISMATCH" }
    );
    report::save_json("slo_load", &rows);
    if !deterministic {
        std::process::exit(1);
    }
}
