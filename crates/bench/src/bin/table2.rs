//! Reproduces Table II: ResNet-50 wall-clock latency with tuned and library kernels on the
//! Intel 4790K and AMD 2990WX.

use rescnn_bench::{experiments, report, HarnessConfig};
use rescnn_models::ModelKind;

fn main() {
    let _config = HarnessConfig::from_env();
    let rows = experiments::fig7_table2(&[ModelKind::ResNet50]);
    let mut formatted = Vec::new();
    for res in [112usize, 168, 224, 280, 336, 392, 448] {
        let mut row = vec![res.to_string()];
        for cpu in ["4790K", "2990WX"] {
            if let Some(r) = rows.iter().find(|r| r.cpu == cpu && r.resolution == res) {
                row.push(report::fmt(r.tuned_ms, 1));
                row.push(report::fmt(r.library_ms, 1));
            }
        }
        formatted.push(row);
    }
    report::print_table(
        "Table II: ResNet-50 wall-clock latency (ms)",
        &["Res", "4790K tuned", "4790K library", "2990WX tuned", "2990WX library"],
        &formatted,
    );
    report::save_json("table2", &rows);
}
