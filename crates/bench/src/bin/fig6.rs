//! Reproduces Figure 6: storage calibration (accuracy change vs. relative read size) for
//! ResNet-18/50 on ImageNet-like and Cars-like data, three seeds each.

use rescnn_bench::{experiments, report, HarnessConfig};
use rescnn_data::DatasetKind;
use rescnn_models::{ModelKind, PAPER_RESOLUTIONS};

fn main() {
    let config = HarnessConfig::from_env();
    let mut all = Vec::new();
    for dataset in [DatasetKind::ImageNetLike, DatasetKind::CarsLike] {
        for model in [ModelKind::ResNet18, ModelKind::ResNet50] {
            let rows = experiments::fig6(&config, dataset, model, &PAPER_RESOLUTIONS);
            let formatted: Vec<Vec<String>> = rows
                .iter()
                .map(|p| {
                    vec![
                        p.resolution.to_string(),
                        format!("seed{}", p.seed),
                        report::fmt(p.read_fraction, 3),
                        report::fmt(p.accuracy_change, 2),
                    ]
                })
                .collect();
            report::print_table(
                &format!("Figure 6: {} {} storage calibration", dataset.name(), model.name()),
                &["Resolution", "Seed", "Relative read size", "Accuracy change (%)"],
                &formatted,
            );
            all.extend(rows);
        }
    }
    report::save_json("fig6", &all);
}
