//! Reproduces Table I: compute complexity and accuracy of ResNet-18 across resolutions.

use rescnn_bench::{experiments, report, HarnessConfig};

fn main() {
    let config = HarnessConfig::from_env();
    let rows = experiments::table1(&config);
    let formatted: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                "ResNet-18".to_string(),
                format!("{0}x{0}", r.resolution),
                report::fmt(r.gflops, 1),
                report::fmt(r.accuracy, 1),
            ]
        })
        .collect();
    report::print_table(
        "Table I: ResNet-18 compute complexity and accuracy vs. resolution (75% crop)",
        &["Model", "Resolution", "GFLOPs", "Accuracy"],
        &formatted,
    );
    report::save_json("table1", &rows);
}
