//! Reproduces Figure 9: accuracy vs. FLOPs for static and dynamic resolution on
//! Cars-like data, ResNet-18 and ResNet-50, crops 25–100%.

use rescnn_bench::{experiments, report, HarnessConfig};
use rescnn_data::DatasetKind;
use rescnn_models::ModelKind;

fn main() {
    let config = HarnessConfig::from_env();
    let mut all = Vec::new();
    for model in [ModelKind::ResNet18, ModelKind::ResNet50] {
        let rows = experiments::fig8_fig9(&config, DatasetKind::CarsLike, model);
        let formatted: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.crop.clone(),
                    r.method.clone(),
                    if r.resolution == 0 { "-".into() } else { r.resolution.to_string() },
                    report::fmt(r.gflops, 2),
                    report::fmt(r.accuracy * 100.0, 1),
                ]
            })
            .collect();
        report::print_table(
            &format!("Figure 9: Cars {} accuracy vs. FLOPs", model.name()),
            &["Crop", "Method", "Resolution", "GFLOPs", "Accuracy (%)"],
            &formatted,
        );
        all.extend(rows);
    }
    report::save_json("fig9", &all);
}
