//! Reproduces Figure 2: cumulative bytes and quality per progressive scan.

use rescnn_bench::{experiments, report, HarnessConfig};

fn main() {
    let config = HarnessConfig::from_env();
    let rows = experiments::fig2(&config);
    let formatted: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("scan {}", r.scan),
                format!("{} bytes", r.cumulative_bytes),
                report::fmt(r.ssim, 4),
            ]
        })
        .collect();
    report::print_table(
        "Figure 2: progressive scans of one image (cumulative bytes, SSIM vs. source)",
        &["Scan", "Cumulative bytes", "SSIM"],
        &formatted,
    );
    report::save_json("fig2", &rows);
}
