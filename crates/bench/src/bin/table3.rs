//! Reproduces Table III: ImageNet read-bandwidth savings (default vs. calibrated accuracy
//! and read savings per resolution, plus the dynamic pipeline row).

use rescnn_bench::{experiments, report, HarnessConfig};
use rescnn_data::DatasetKind;
use rescnn_models::{ModelKind, PAPER_RESOLUTIONS};

fn main() {
    let config = HarnessConfig::from_env();
    let mut all = Vec::new();
    for model in [ModelKind::ResNet18, ModelKind::ResNet50] {
        for crop in [0.75, 0.56, 0.25] {
            let rows = experiments::table3_table4(
                &config,
                DatasetKind::ImageNetLike,
                model,
                crop,
                &PAPER_RESOLUTIONS,
            );
            let formatted: Vec<Vec<String>> = rows
                .iter()
                .map(|r| {
                    vec![
                        r.crop.clone(),
                        r.resolution.clone(),
                        report::fmt(r.default_accuracy, 1),
                        report::fmt(r.calibrated_accuracy, 1),
                        report::fmt(r.read_savings, 1),
                    ]
                })
                .collect();
            report::print_table(
                &format!("Table III: ImageNet {} read-bandwidth savings", model.name()),
                &["Crop", "Resolution", "Default acc", "Calibrated acc", "Read savings (%)"],
                &formatted,
            );
            all.extend(rows);
        }
    }
    report::save_json("table3", &all);
}
