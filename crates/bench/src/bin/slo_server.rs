//! Real-clock harness for the async serving front-end: paces bursty and
//! steady arrival traces against a live [`SloServer`], reporting wall-clock
//! latency percentiles, shed/degrade counts, gate rejections, and drain
//! latency, then replays each run's recorded trace through the virtual-clock
//! batch scheduler and exits 1 if any admission decision diverges or any
//! accepted ticket fails to settle exactly once.
//!
//! Wall numbers are host-dependent and reported, not asserted; the replay
//! equality check is exact and holds at any `RESCNN_THREADS` budget.
//!
//! Scale with `RESCNN_SAMPLES` (e.g. `RESCNN_SAMPLES=8` for a CI smoke run).

use rescnn_bench::load::ArrivalTrace;
use rescnn_bench::server_load::{replay_trace, run_server_load, ServerLoadRun};
use rescnn_bench::{report, HarnessConfig};
use rescnn_core::{
    DynamicResolutionPipeline, PipelineConfig, ResolutionLatencyModel, ScaleModelConfig,
    ScaleModelTrainer, ServerConfig, SloOptions,
};
use rescnn_data::{DatasetKind, DatasetSpec};
use rescnn_imaging::CropRatio;
use rescnn_models::ModelKind;
use rescnn_oracle::AccuracyOracle;
use serde::Serialize;
use std::sync::Arc;

#[derive(Debug, Serialize)]
struct ServerRow {
    scenario: String,
    submitted: usize,
    rejected_queue_full: usize,
    rejected_draining: usize,
    completed: usize,
    degraded: usize,
    shed: usize,
    expired: usize,
    wall_p50_ms: f64,
    wall_p99_ms: f64,
    wall_deadline_violations: usize,
    drain_ms: f64,
    drained_gracefully: bool,
    replay_matches: bool,
}

fn row(name: &str, run: &ServerLoadRun, replay_matches: bool) -> ServerRow {
    let report = &run.report;
    ServerRow {
        scenario: name.to_string(),
        submitted: report.submitted,
        rejected_queue_full: report.rejected_queue_full,
        rejected_draining: report.rejected_draining,
        completed: report.slo.completed,
        degraded: report.slo.degraded,
        shed: report.slo.shed,
        expired: report.slo.expired,
        wall_p50_ms: report.wall_p50_ms,
        wall_p99_ms: report.wall_p99_ms,
        wall_deadline_violations: report.wall_deadline_violations,
        drain_ms: report.drain_seconds * 1_000.0,
        drained_gracefully: report.drained_gracefully,
        replay_matches,
    }
}

fn build_pipeline(config: &HarnessConfig) -> DynamicResolutionPipeline {
    let resolutions = vec![112usize, 168, 224];
    let scale_config = ScaleModelConfig {
        resolutions: resolutions.clone(),
        seed: config.seed,
        ..Default::default()
    };
    let trainer = ScaleModelTrainer::new(scale_config, ModelKind::ResNet18, DatasetKind::CarsLike);
    let train = DatasetSpec::cars_like()
        .with_len(config.train_samples)
        .with_max_dimension(config.max_dimension.min(128))
        .build(config.seed ^ 0xA11CE);
    let scale_model = trainer.train(&train, 3).expect("scale-model training succeeds");
    let pipeline_config = PipelineConfig::new(ModelKind::ResNet18, DatasetKind::CarsLike)
        .with_crop(CropRatio::new(0.56).expect("valid crop"))
        .with_resolutions(resolutions);
    DynamicResolutionPipeline::new(pipeline_config, scale_model, AccuracyOracle::new(config.seed))
        .expect("pipeline construction succeeds")
}

fn main() {
    let config = HarnessConfig::from_env();
    let pipeline = Arc::new(build_pipeline(&config));
    let data = DatasetSpec::cars_like()
        .with_len(config.eval_samples.min(48))
        .with_max_dimension(config.max_dimension.min(128))
        .build(config.seed ^ 0x5E12);

    let latency =
        ResolutionLatencyModel::analytic(&pipeline).expect("analytic latency model builds");
    let top_ms = latency.estimate_ms(224).max(1.0);
    let n = (config.eval_samples / 8).clamp(8, 32);
    let base_options = SloOptions::default().with_latency_model(latency);

    let scenarios: Vec<(&str, ArrivalTrace, ServerConfig)> = vec![
        (
            "steady",
            ArrivalTrace::uniform(n, 2.0 * top_ms, 10.0 * top_ms),
            ServerConfig::default().with_options(base_options.clone()).with_record(true),
        ),
        (
            "bursty",
            ArrivalTrace::bursty(n, 4, 6.0 * top_ms, 4.0 * top_ms),
            ServerConfig::default()
                .with_options(base_options.clone().with_ssim_floor(0.35))
                .with_record(true),
        ),
        (
            "tight_queue",
            ArrivalTrace::bursty(n, 8, 8.0 * top_ms, 2.5 * top_ms),
            ServerConfig::default()
                .with_options(base_options.clone().with_ssim_floor(0.35))
                .with_queue_capacity(8)
                .with_record(true),
        ),
    ];

    let mut rows = Vec::new();
    let mut failed = false;
    for (name, trace, server_config) in &scenarios {
        let options = server_config.options.clone();
        let run = run_server_load(&pipeline, &data, trace, server_config.clone())
            .expect("the event loop drains instead of dying");
        if run.delivered != run.accepted.len() {
            eprintln!(
                "SETTLEMENT MISMATCH: {name}: {} completions for {} accepted tickets",
                run.delivered,
                run.accepted.len()
            );
            failed = true;
        }
        let live = run.report.trace.as_ref().expect("recording runs carry their trace");
        if !live.replayable() {
            eprintln!("REPLAY UNAVAILABLE: {name}: the drain hard-cancelled; trace not replayable");
            failed = true;
            rows.push(row(name, &run, false));
            continue;
        }
        let (_, replayed) = replay_trace(&pipeline, &data, &run.accepted, options, live)
            .expect("a graceful recording replays");
        let matches = replayed.decisions == live.decisions;
        if !matches {
            eprintln!("REPLAY DIVERGENCE: {name}: replayed admission decisions differ from live");
            failed = true;
        }
        rows.push(row(name, &run, matches));
    }

    let formatted: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                r.submitted.to_string(),
                r.rejected_queue_full.to_string(),
                r.rejected_draining.to_string(),
                r.completed.to_string(),
                r.degraded.to_string(),
                r.shed.to_string(),
                r.expired.to_string(),
                report::fmt(r.wall_p50_ms, 1),
                report::fmt(r.wall_p99_ms, 1),
                r.wall_deadline_violations.to_string(),
                report::fmt(r.drain_ms, 1),
                r.drained_gracefully.to_string(),
                r.replay_matches.to_string(),
            ]
        })
        .collect();
    report::print_table(
        "SLO server — real-clock serving front-end",
        &[
            "scenario",
            "submitted",
            "rej_full",
            "rej_drain",
            "completed",
            "degraded",
            "shed",
            "expired",
            "wall_p50",
            "wall_p99",
            "wall_viol",
            "drain_ms",
            "graceful",
            "replay_ok",
        ],
        &formatted,
    );
    report::save_json("slo_server", &rows);

    if failed {
        std::process::exit(1);
    }
    println!("replay determinism: every recorded scenario replayed bitwise");
}
