//! Experiment implementations: one function per table/figure of the paper.
//!
//! Each function returns plain serde-serializable rows; the `bin/` targets print them as
//! text tables and emit JSON next to the binary output so EXPERIMENTS.md can be
//! regenerated from machine-readable data.

use serde::Serialize;

use rescnn_core::{
    CalibrationCurves, DynamicResolutionPipeline, PipelineConfig, ScaleModelConfig,
    ScaleModelTrainer, StorageCalibrator, StoragePolicy,
};
use rescnn_data::{DatasetKind, DatasetSpec};
use rescnn_hwsim::{AutoTuner, CpuProfile, LibraryKernels, TunerConfig};
use rescnn_imaging::{render_scene, ssim, CropRatio, SceneSpec};
use rescnn_models::{ModelKind, PAPER_RESOLUTIONS};
use rescnn_oracle::{AccuracyOracle, EvalContext};
use rescnn_projpeg::{ProgressiveImage, ScanPlan};

use crate::config::HarnessConfig;

/// One row of Table I: compute cost and accuracy of ResNet-18 across resolutions.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Inference resolution.
    pub resolution: usize,
    /// GFLOPs at that resolution (paper MAC-counting convention).
    pub gflops: f64,
    /// Top-1 accuracy (percent) on the ImageNet-like evaluation set, 75 % crop.
    pub accuracy: f64,
}

/// Reproduces Table I.
pub fn table1(config: &HarnessConfig) -> Vec<Table1Row> {
    let arch = ModelKind::ResNet18.arch(DatasetKind::ImageNetLike.num_classes());
    let data = DatasetSpec::imagenet_like()
        .with_len(config.eval_samples)
        .with_max_dimension(config.max_dimension)
        .build(config.seed);
    let oracle = AccuracyOracle::new(config.seed);
    let crop = CropRatio::new(0.75).expect("valid crop");
    PAPER_RESOLUTIONS
        .iter()
        .map(|&res| Table1Row {
            resolution: res,
            gflops: arch.gflops(res).expect("paper resolutions are valid"),
            accuracy: oracle.accuracy(
                &data,
                &EvalContext::full_quality(
                    ModelKind::ResNet18,
                    DatasetKind::ImageNetLike,
                    res,
                    crop,
                ),
            ) * 100.0,
        })
        .collect()
}

/// One row of the Figure 2 reproduction: cumulative bytes and quality per scan.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Row {
    /// Scan index (1-based).
    pub scan: usize,
    /// Cumulative bytes read after this scan.
    pub cumulative_bytes: u64,
    /// SSIM of the partial reconstruction against the source image.
    pub ssim: f64,
}

/// Reproduces Figure 2: progressive scans of one representative image.
pub fn fig2(config: &HarnessConfig) -> Vec<Fig2Row> {
    let scene = SceneSpec::new(472, 405, 284)
        .with_object_scale(0.55)
        .with_detail(0.75)
        .with_seed(config.seed);
    let image = render_scene(&scene).expect("scene renders");
    let encoded =
        ProgressiveImage::encode(&image, 90, ScanPlan::standard()).expect("encoding succeeds");
    (1..=encoded.num_scans())
        .map(|scan| {
            let decoded = encoded.decode(scan).expect("decoding succeeds");
            Fig2Row {
                scan,
                cumulative_bytes: encoded.cumulative_bytes(scan),
                ssim: ssim(&image, &decoded).expect("dimensions match"),
            }
        })
        .collect()
}

/// One point of Figure 6: storage-calibration sweep.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Point {
    /// Dataset name.
    pub dataset: String,
    /// Model name.
    pub model: String,
    /// Inference resolution.
    pub resolution: usize,
    /// Seed index (the paper's seed1/seed2/seed3).
    pub seed: u64,
    /// Mean relative read size.
    pub read_fraction: f64,
    /// Accuracy change vs. reading everything, in percentage points.
    pub accuracy_change: f64,
}

/// Reproduces one panel of Figure 6 (a dataset × model pair, three seeds).
pub fn fig6(
    config: &HarnessConfig,
    dataset: DatasetKind,
    model: ModelKind,
    resolutions: &[usize],
) -> Vec<Fig6Point> {
    let crop = CropRatio::new(0.75).expect("valid crop");
    let mut rows = Vec::new();
    for seed in 1..=3u64 {
        let data = DatasetSpec::for_kind(dataset)
            .with_len(config.calibration_samples)
            .with_max_dimension(config.max_dimension)
            .build(config.seed ^ seed);
        let curves = CalibrationCurves::compute(&data, model, crop, resolutions, 90)
            .expect("calibration curves");
        let oracle = AccuracyOracle::new(seed);
        for (res_idx, &res) in resolutions.iter().enumerate() {
            for (read_fraction, accuracy_change) in
                curves.read_size_sweep(&oracle, res_idx, 0.55, 10)
            {
                rows.push(Fig6Point {
                    dataset: dataset.name().to_string(),
                    model: model.name().to_string(),
                    resolution: res,
                    seed,
                    read_fraction,
                    accuracy_change,
                });
            }
        }
    }
    rows
}

/// One row of Figure 7 / Table II: tuned vs. library kernel performance.
#[derive(Debug, Clone, Serialize)]
pub struct KernelRow {
    /// CPU name.
    pub cpu: String,
    /// Model name.
    pub model: String,
    /// Inference resolution.
    pub resolution: usize,
    /// Autotuned latency in milliseconds.
    pub tuned_ms: f64,
    /// Library (MKLDNN-like) latency in milliseconds.
    pub library_ms: f64,
    /// Autotuned throughput in GFLOPs/s (MAC convention).
    pub tuned_gflops_s: f64,
    /// Library throughput in GFLOPs/s.
    pub library_gflops_s: f64,
}

/// Reproduces Figure 7 (throughput curves) and Table II (latency), for both CPUs and both
/// backbones.
pub fn fig7_table2(models: &[ModelKind]) -> Vec<KernelRow> {
    let tuner = AutoTuner::new(TunerConfig::default());
    let library = LibraryKernels::mkldnn_like();
    let mut rows = Vec::new();
    for profile in CpuProfile::paper_platforms() {
        for &model in models {
            let arch = model.arch(1000);
            for &res in &PAPER_RESOLUTIONS {
                let tuned = tuner.tune_network(&arch, res, &profile).expect("tuning succeeds");
                let lib = library.plan(&arch, res, &profile).expect("library plan succeeds");
                rows.push(KernelRow {
                    cpu: profile.name.clone(),
                    model: model.name().to_string(),
                    resolution: res,
                    tuned_ms: tuned.latency_ms(),
                    library_ms: lib.latency_ms(),
                    tuned_gflops_s: tuned.throughput_gmacs(),
                    library_gflops_s: lib.throughput_gmacs(),
                });
            }
        }
    }
    rows
}

/// One point of Figures 8/9: accuracy vs. compute cost for static and dynamic resolution.
#[derive(Debug, Clone, Serialize)]
pub struct AccuracyFlopsRow {
    /// Dataset name.
    pub dataset: String,
    /// Model name.
    pub model: String,
    /// Centre-crop percentage label ("25%", …).
    pub crop: String,
    /// "static" or "dynamic resolution".
    pub method: String,
    /// Static resolution (0 for the dynamic pipeline).
    pub resolution: usize,
    /// Mean compute cost in GFLOPs.
    pub gflops: f64,
    /// Top-1 accuracy in [0, 1].
    pub accuracy: f64,
}

/// Trains a scale model and builds the dynamic pipeline for a (dataset, model, crop)
/// combination.
fn build_pipeline(
    config: &HarnessConfig,
    dataset: DatasetKind,
    model: ModelKind,
    crop: CropRatio,
    storage: StoragePolicy,
) -> DynamicResolutionPipeline {
    let train = DatasetSpec::for_kind(dataset)
        .with_len(config.train_samples)
        .with_max_dimension(config.max_dimension)
        .build(config.seed ^ 0xA11CE);
    let trainer = ScaleModelTrainer::new(
        ScaleModelConfig { seed: config.seed, ..Default::default() },
        model,
        dataset,
    );
    let scale_model = trainer.train(&train, 4).expect("scale-model training succeeds");
    let pipeline_config = PipelineConfig::new(model, dataset).with_crop(crop).with_storage(storage);
    DynamicResolutionPipeline::new(pipeline_config, scale_model, AccuracyOracle::new(config.seed))
        .expect("pipeline construction succeeds")
}

/// Reproduces one panel row of Figure 8 (ImageNet) or Figure 9 (Cars): all four crops for
/// one backbone.
pub fn fig8_fig9(
    config: &HarnessConfig,
    dataset: DatasetKind,
    model: ModelKind,
) -> Vec<AccuracyFlopsRow> {
    let eval = DatasetSpec::for_kind(dataset)
        .with_len(config.eval_samples)
        .with_max_dimension(config.max_dimension)
        .build(config.seed ^ 0xE7A1);
    let mut rows = Vec::new();
    for &crop_area in &CropRatio::PAPER_SET {
        let crop = CropRatio::new(crop_area).expect("paper crops are valid");
        let pipeline = build_pipeline(config, dataset, model, crop, StoragePolicy::read_all());
        // Static baselines (oracle-only: full-quality reads).
        for &res in &PAPER_RESOLUTIONS {
            let report =
                pipeline.evaluate_static(&eval, res, false).expect("static evaluation succeeds");
            rows.push(AccuracyFlopsRow {
                dataset: dataset.name().to_string(),
                model: model.name().to_string(),
                crop: crop.label(),
                method: "static".to_string(),
                resolution: res,
                gflops: report.mean_gflops,
                accuracy: report.accuracy,
            });
        }
        // Dynamic resolution.
        let dynamic = pipeline.evaluate(&eval).expect("dynamic evaluation succeeds");
        rows.push(AccuracyFlopsRow {
            dataset: dataset.name().to_string(),
            model: model.name().to_string(),
            crop: crop.label(),
            method: "dynamic resolution".to_string(),
            resolution: 0,
            gflops: dynamic.mean_gflops,
            accuracy: dynamic.accuracy,
        });
    }
    rows
}

/// One row of Tables III/IV: default vs. calibrated accuracy and read savings.
#[derive(Debug, Clone, Serialize)]
pub struct SavingsRow {
    /// Dataset name.
    pub dataset: String,
    /// Model name.
    pub model: String,
    /// Crop label.
    pub crop: String,
    /// Resolution, or "dynamic".
    pub resolution: String,
    /// Accuracy reading all data (percent).
    pub default_accuracy: f64,
    /// Accuracy reading only calibrated data (percent).
    pub calibrated_accuracy: f64,
    /// Read savings (percent of bytes not read).
    pub read_savings: f64,
}

/// Reproduces Table III (ImageNet) or Table IV (Cars) for one backbone at one crop.
pub fn table3_table4(
    config: &HarnessConfig,
    dataset: DatasetKind,
    model: ModelKind,
    crop_area: f64,
    resolutions: &[usize],
) -> Vec<SavingsRow> {
    let crop = CropRatio::new(crop_area).expect("valid crop");
    // Calibrate the storage policy on a calibration split.
    let calib_data = DatasetSpec::for_kind(dataset)
        .with_len(config.calibration_samples)
        .with_max_dimension(config.max_dimension)
        .build(config.seed ^ 0xCA11B);
    let curves = CalibrationCurves::compute(&calib_data, model, crop, resolutions, 90)
        .expect("calibration curves");
    let oracle = AccuracyOracle::new(config.seed);
    let policy = StorageCalibrator::default().calibrate(&curves, &oracle);

    // Evaluation split.
    let eval = DatasetSpec::for_kind(dataset)
        .with_len(config.eval_samples.min(4 * config.calibration_samples))
        .with_max_dimension(config.max_dimension)
        .build(config.seed ^ 0xE7A1);

    let pipeline = build_pipeline(config, dataset, model, crop, policy.clone());
    let read_all_pipeline = build_pipeline(config, dataset, model, crop, StoragePolicy::read_all());

    let mut rows = Vec::new();
    for &res in resolutions {
        let default =
            pipeline.evaluate_static(&eval, res, false).expect("default static evaluation");
        let calibrated =
            pipeline.evaluate_static(&eval, res, true).expect("calibrated static evaluation");
        rows.push(SavingsRow {
            dataset: dataset.name().to_string(),
            model: model.name().to_string(),
            crop: crop.label(),
            resolution: res.to_string(),
            default_accuracy: default.accuracy * 100.0,
            calibrated_accuracy: calibrated.accuracy * 100.0,
            read_savings: (1.0 - calibrated.mean_read_fraction) * 100.0,
        });
    }
    // Dynamic rows: read-all vs. calibrated dynamic pipeline.
    let dynamic_default = read_all_pipeline.evaluate(&eval).expect("dynamic evaluation");
    let dynamic_calibrated = pipeline.evaluate(&eval).expect("dynamic evaluation");
    rows.push(SavingsRow {
        dataset: dataset.name().to_string(),
        model: model.name().to_string(),
        crop: crop.label(),
        resolution: "dynamic".to_string(),
        default_accuracy: dynamic_default.accuracy * 100.0,
        calibrated_accuracy: dynamic_calibrated.accuracy * 100.0,
        read_savings: (1.0 - dynamic_calibrated.mean_read_fraction) * 100.0,
    });
    rows
}

/// Scale-model overhead figures (§VII-c).
#[derive(Debug, Clone, Serialize)]
pub struct ScaleOverheadRow {
    /// CPU name.
    pub cpu: String,
    /// Untuned (library) MobileNetV2@112 latency in ms.
    pub scale_model_library_ms: f64,
    /// Tuned MobileNetV2@112 latency in ms.
    pub scale_model_tuned_ms: f64,
    /// Tuned ResNet-50@224 latency in ms (the backbone it is compared against).
    pub backbone_tuned_ms: f64,
    /// Overhead of the untuned scale model relative to the tuned backbone, in percent.
    pub overhead_percent: f64,
}

/// Reproduces the §VII-c scale-model overhead measurement.
pub fn scale_overhead() -> Vec<ScaleOverheadRow> {
    let tuner = AutoTuner::new(TunerConfig::default());
    let library = LibraryKernels::mkldnn_like();
    let mb2 = ModelKind::MobileNetV2.arch(1000);
    let r50 = ModelKind::ResNet50.arch(1000);
    CpuProfile::paper_platforms()
        .into_iter()
        .map(|profile| {
            let scale_lib = library.plan(&mb2, 112, &profile).expect("library plan").latency_ms();
            let scale_tuned = tuner.tune_network(&mb2, 112, &profile).expect("tuning").latency_ms();
            let backbone = tuner.tune_network(&r50, 224, &profile).expect("tuning").latency_ms();
            ScaleOverheadRow {
                cpu: profile.name.clone(),
                scale_model_library_ms: scale_lib,
                scale_model_tuned_ms: scale_tuned,
                backbone_tuned_ms: backbone,
                overhead_percent: scale_lib / backbone * 100.0,
            }
        })
        .collect()
}

/// Summary statistics the paper quotes in §VII-a (speedups from 448 to 112, and tuned@280
/// vs. library@224).
#[derive(Debug, Clone, Serialize)]
pub struct SpeedupSummary {
    /// CPU name.
    pub cpu: String,
    /// Model name.
    pub model: String,
    /// Library speedup when dropping 448 → 112.
    pub library_speedup_448_to_112: f64,
    /// Tuned speedup when dropping 448 → 112.
    pub tuned_speedup_448_to_112: f64,
    /// Tuned latency at 280 relative to library latency at 224 (>1 means tuned@280 is
    /// faster).
    pub tuned280_vs_library224: f64,
}

/// Derives the §VII-a summary from kernel rows produced by [`fig7_table2`].
pub fn speedup_summary(rows: &[KernelRow]) -> Vec<SpeedupSummary> {
    let mut out = Vec::new();
    let cpus: Vec<String> = {
        let mut v: Vec<String> = rows.iter().map(|r| r.cpu.clone()).collect();
        v.dedup();
        v.sort();
        v.dedup();
        v
    };
    let models: Vec<String> = {
        let mut v: Vec<String> = rows.iter().map(|r| r.model.clone()).collect();
        v.sort();
        v.dedup();
        v
    };
    for cpu in &cpus {
        for model in &models {
            let find = |res: usize| {
                rows.iter().find(|r| &r.cpu == cpu && &r.model == model && r.resolution == res)
            };
            let (Some(r112), Some(r224), Some(r280), Some(r448)) =
                (find(112), find(224), find(280), find(448))
            else {
                continue;
            };
            out.push(SpeedupSummary {
                cpu: cpu.clone(),
                model: model.clone(),
                library_speedup_448_to_112: r448.library_ms / r112.library_ms,
                tuned_speedup_448_to_112: r448.tuned_ms / r112.tuned_ms,
                tuned280_vs_library224: r224.library_ms / r280.tuned_ms,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_paper_shape() {
        let rows = table1(&HarnessConfig::tiny());
        assert_eq!(rows.len(), 7);
        // GFLOPs grow monotonically; accuracy peaks somewhere in the middle.
        assert!(rows.windows(2).all(|w| w[1].gflops > w[0].gflops));
        let acc112 = rows[0].accuracy;
        let peak = rows.iter().map(|r| r.accuracy).fold(0.0, f64::max);
        assert!(peak > acc112 + 5.0, "peak {peak} must clearly beat 112 ({acc112})");
        assert!((rows[2].gflops - 1.8).abs() < 0.3, "ResNet-18@224 ≈ 1.8 GFLOPs");
    }

    #[test]
    fn fig2_bytes_and_quality_grow() {
        let rows = fig2(&HarnessConfig::tiny());
        assert_eq!(rows.len(), 5);
        assert!(rows.windows(2).all(|w| w[1].cumulative_bytes > w[0].cumulative_bytes));
        assert!(rows.last().unwrap().ssim > rows.first().unwrap().ssim);
    }

    #[test]
    fn fig6_points_are_bounded() {
        let rows =
            fig6(&HarnessConfig::tiny(), DatasetKind::CarsLike, ModelKind::ResNet18, &[112, 224]);
        assert!(!rows.is_empty());
        for p in &rows {
            assert!(p.read_fraction > 0.0 && p.read_fraction <= 1.0);
            assert!(p.accuracy_change <= 1e-9);
        }
    }

    #[test]
    fn speedup_summary_from_kernel_rows() {
        let rows = fig7_table2(&[ModelKind::ResNet18]);
        assert_eq!(rows.len(), 2 * 7);
        let summary = speedup_summary(&rows);
        assert_eq!(summary.len(), 2);
        for s in &summary {
            assert!(s.tuned_speedup_448_to_112 > s.library_speedup_448_to_112 * 0.9);
            assert!(s.tuned_speedup_448_to_112 > 4.0);
            assert!(s.tuned280_vs_library224 > 0.8);
        }
    }

    #[test]
    fn scale_overhead_is_small_fraction_of_backbone() {
        let rows = scale_overhead();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.scale_model_tuned_ms < r.scale_model_library_ms);
            assert!(r.overhead_percent < 60.0, "overhead {}% too large", r.overhead_percent);
            assert!(r.scale_model_library_ms < r.backbone_tuned_ms);
        }
    }
}
