//! Trace-driven load generation and deterministic fault injection for the
//! SLO-aware serving core (`rescnn_core::SloScheduler`).
//!
//! Everything here is seeded and pure: the same trace/fault plan produces the
//! same requests on every run and every host, so the `slo_load` binary's
//! goodput/latency/SSIM table and the CI fault-injection job are reproducible.

use rescnn_core::{
    DynamicResolutionPipeline, Result, SloOptions, SloReport, SloRequest, SloScheduler,
};
use rescnn_data::Dataset;

/// Deterministic splitmix64 PRNG (no external crates; stable across hosts).
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw below `bound` (`bound` ≥ 1).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }
}

/// A virtual-clock arrival trace: one arrival timestamp (ms) per request, plus
/// the per-request deadline slack the workload contracts for.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    /// Ascending arrival timestamps in virtual milliseconds.
    pub arrivals_ms: Vec<f64>,
    /// Deadline = arrival + this slack, per request.
    pub deadline_slack_ms: f64,
}

impl ArrivalTrace {
    /// A uniform trace: `n` requests, one every `gap_ms`.
    pub fn uniform(n: usize, gap_ms: f64, deadline_slack_ms: f64) -> Self {
        ArrivalTrace { arrivals_ms: (0..n).map(|i| i as f64 * gap_ms).collect(), deadline_slack_ms }
    }

    /// A diurnal trace: the inter-arrival gap swings sinusoidally between
    /// `base_gap_ms * (1 ± swing)` over `period` requests — quiet troughs and
    /// a rush-hour peak per cycle.
    pub fn diurnal(
        n: usize,
        base_gap_ms: f64,
        swing: f64,
        period: usize,
        deadline_slack_ms: f64,
    ) -> Self {
        let swing = swing.clamp(0.0, 0.95);
        let period = period.max(2) as f64;
        let mut arrivals_ms = Vec::with_capacity(n);
        let mut clock = 0.0f64;
        for i in 0..n {
            let phase = (i as f64 / period) * std::f64::consts::TAU;
            clock += base_gap_ms * (1.0 - swing * phase.sin());
            arrivals_ms.push(clock);
        }
        ArrivalTrace { arrivals_ms, deadline_slack_ms }
    }

    /// A bursty trace: bursts of `burst` near-simultaneous arrivals separated
    /// by `burst_gap_ms` of silence.
    pub fn bursty(n: usize, burst: usize, burst_gap_ms: f64, deadline_slack_ms: f64) -> Self {
        let burst = burst.max(1);
        let arrivals_ms =
            (0..n).map(|i| (i / burst) as f64 * burst_gap_ms + (i % burst) as f64 * 0.01).collect();
        ArrivalTrace { arrivals_ms, deadline_slack_ms }
    }

    /// Number of requests in the trace.
    pub fn len(&self) -> usize {
        self.arrivals_ms.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals_ms.is_empty()
    }
}

/// What fault (if any) a request is injected with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultDecision {
    /// Serve normally.
    Healthy,
    /// Flip one bit of the stored stream.
    BitFlip {
        /// Scan index (modulo-clamped by the injector).
        scan: usize,
        /// Byte offset (modulo-clamped).
        byte: usize,
        /// Bit within the byte.
        bit: u8,
    },
    /// Truncate one scan of the stored stream.
    Truncate {
        /// Scan index (modulo-clamped).
        scan: usize,
        /// Bytes to keep.
        keep: usize,
    },
    /// Multiply the request's estimated service time (a straggler/latency
    /// spike).
    Spike {
        /// The service-time multiplier.
        multiplier: f64,
    },
}

/// Seeded per-request fault plan: rates for stream corruption, truncation, and
/// latency spikes. Decisions are a pure function of `(seed, request index)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability a request's stream gets one bit flipped.
    pub bit_flip_rate: f64,
    /// Probability a request's stream gets one scan truncated.
    pub truncate_rate: f64,
    /// Probability a request's service estimate is multiplied by
    /// `spike_multiplier`.
    pub spike_rate: f64,
    /// The latency-spike multiplier.
    pub spike_multiplier: f64,
    /// Seed for the per-request decisions.
    pub seed: u64,
}

impl FaultPlan {
    /// No faults at all.
    pub fn none() -> Self {
        FaultPlan {
            bit_flip_rate: 0.0,
            truncate_rate: 0.0,
            spike_rate: 0.0,
            spike_multiplier: 1.0,
            seed: 0,
        }
    }

    /// A corruption-only plan: `rate` split evenly between bit flips and
    /// truncations.
    pub fn corruption(rate: f64, seed: u64) -> Self {
        FaultPlan {
            bit_flip_rate: rate / 2.0,
            truncate_rate: rate / 2.0,
            spike_rate: 0.0,
            spike_multiplier: 1.0,
            seed,
        }
    }

    /// The (deterministic) fault decision for request `index`.
    pub fn decide(&self, index: usize) -> FaultDecision {
        let mut rng = SplitMix64::new(self.seed ^ (index as u64).wrapping_mul(0x9e37_79b9));
        let roll = rng.next_f64();
        if roll < self.bit_flip_rate {
            return FaultDecision::BitFlip {
                scan: rng.below(16) as usize,
                byte: rng.below(4096) as usize,
                bit: rng.below(8) as u8,
            };
        }
        if roll < self.bit_flip_rate + self.truncate_rate {
            return FaultDecision::Truncate {
                scan: rng.below(16) as usize,
                keep: rng.below(8) as usize,
            };
        }
        if roll < self.bit_flip_rate + self.truncate_rate + self.spike_rate {
            return FaultDecision::Spike { multiplier: self.spike_multiplier };
        }
        FaultDecision::Healthy
    }
}

/// Drives one [`SloScheduler`] drain from a trace and a fault plan: request `i`
/// serves `data[i % data.len()]`, arrives at `trace.arrivals_ms[i]`, and is
/// injected per `faults.decide(i)`.
///
/// # Errors
/// Returns an error if the trace or dataset is empty, or encoding a fault
/// carrier fails; per-request faults never abort the drain.
pub fn run_slo_load(
    pipeline: &DynamicResolutionPipeline,
    data: &Dataset,
    trace: &ArrivalTrace,
    faults: &FaultPlan,
    options: SloOptions,
) -> Result<SloReport> {
    if data.is_empty() {
        return Err(rescnn_core::CoreError::EmptyDataset);
    }
    let quality = pipeline.config().encode_quality;
    let mut scheduler = SloScheduler::new(pipeline, options);
    for (i, &arrival) in trace.arrivals_ms.iter().enumerate() {
        let sample = &data.samples()[i % data.len()];
        let mut request = SloRequest::new(sample, arrival, arrival + trace.deadline_slack_ms);
        match faults.decide(i) {
            FaultDecision::Healthy => {}
            FaultDecision::BitFlip { scan, byte, bit } => {
                let stream = sample
                    .encode_progressive(quality)
                    .map_err(rescnn_core::CoreError::from)?
                    .with_bit_flip(scan, byte, bit);
                request = request.with_storage(stream);
            }
            FaultDecision::Truncate { scan, keep } => {
                let stream = sample
                    .encode_progressive(quality)
                    .map_err(rescnn_core::CoreError::from)?
                    .with_truncated_scan(scan, keep);
                request = request.with_storage(stream);
            }
            FaultDecision::Spike { multiplier } => {
                request = request.with_cost_multiplier(multiplier);
            }
        }
        scheduler.submit(request);
    }
    scheduler.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_ascending_and_sized() {
        let uniform = ArrivalTrace::uniform(10, 5.0, 50.0);
        assert_eq!(uniform.len(), 10);
        assert_eq!(uniform.arrivals_ms[3], 15.0);
        let diurnal = ArrivalTrace::diurnal(50, 10.0, 0.8, 20, 100.0);
        assert_eq!(diurnal.len(), 50);
        for pair in diurnal.arrivals_ms.windows(2) {
            assert!(pair[1] > pair[0], "diurnal arrivals must strictly ascend");
        }
        let bursty = ArrivalTrace::bursty(12, 4, 100.0, 50.0);
        assert_eq!(bursty.arrivals_ms[0], 0.0);
        assert!(bursty.arrivals_ms[3] < 1.0, "intra-burst arrivals are near-simultaneous");
        assert_eq!(bursty.arrivals_ms[4], 100.0);
        assert!(!bursty.is_empty());
        assert!(ArrivalTrace::uniform(0, 1.0, 1.0).is_empty());
    }

    #[test]
    fn fault_decisions_are_deterministic_and_rate_bounded() {
        let plan = FaultPlan::corruption(0.10, 42);
        let first: Vec<FaultDecision> = (0..400).map(|i| plan.decide(i)).collect();
        let second: Vec<FaultDecision> = (0..400).map(|i| plan.decide(i)).collect();
        assert_eq!(first, second, "decisions must be a pure function of (seed, index)");
        let faulted = first.iter().filter(|d| **d != FaultDecision::Healthy).count();
        assert!(faulted > 10 && faulted < 100, "~10% of 400 requests fault, got {faulted}");
        assert!(
            first.iter().any(|d| matches!(d, FaultDecision::BitFlip { .. }))
                && first.iter().any(|d| matches!(d, FaultDecision::Truncate { .. })),
            "both corruption modes occur"
        );
        let none = FaultPlan::none();
        assert!((0..100).all(|i| none.decide(i) == FaultDecision::Healthy));
        let spiky = FaultPlan { spike_rate: 1.0, spike_multiplier: 8.0, ..FaultPlan::none() };
        assert_eq!(spiky.decide(3), FaultDecision::Spike { multiplier: 8.0 });
    }
}
