//! Harness configuration shared by every experiment binary.
//!
//! All experiments run out of the box at a laptop-friendly scale; set the environment
//! variables below to approach the paper's original sample counts.

/// Runtime configuration for the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarnessConfig {
    /// Number of evaluation samples per dataset (`RESCNN_SAMPLES`, default 400).
    pub eval_samples: usize,
    /// Number of calibration samples (`RESCNN_CALIB_SAMPLES`, default 48; the paper uses
    /// 10 000 per split).
    pub calibration_samples: usize,
    /// Number of scale-model training samples (`RESCNN_TRAIN_SAMPLES`, default 96).
    pub train_samples: usize,
    /// Cap on rendered image dimensions (`RESCNN_MAX_DIM`, default 256; 0 = natural sizes).
    pub max_dimension: usize,
    /// Base random seed (`RESCNN_SEED`, default 0).
    pub seed: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            eval_samples: 400,
            calibration_samples: 48,
            train_samples: 96,
            max_dimension: 256,
            seed: 0,
        }
    }
}

impl HarnessConfig {
    /// Reads the configuration from the environment, falling back to defaults.
    pub fn from_env() -> Self {
        let read = |key: &str, default: usize| -> usize {
            std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
        };
        let defaults = Self::default();
        HarnessConfig {
            eval_samples: read("RESCNN_SAMPLES", defaults.eval_samples).max(8),
            calibration_samples: read("RESCNN_CALIB_SAMPLES", defaults.calibration_samples).max(4),
            train_samples: read("RESCNN_TRAIN_SAMPLES", defaults.train_samples).max(12),
            max_dimension: read("RESCNN_MAX_DIM", defaults.max_dimension),
            seed: read("RESCNN_SEED", defaults.seed as usize) as u64,
        }
    }

    /// A deliberately tiny configuration used by the crate's own tests.
    pub fn tiny() -> Self {
        HarnessConfig {
            eval_samples: 24,
            calibration_samples: 6,
            train_samples: 24,
            max_dimension: 96,
            seed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_env_fallback() {
        let d = HarnessConfig::default();
        assert!(d.eval_samples >= 100);
        let t = HarnessConfig::tiny();
        assert!(t.eval_samples < d.eval_samples);
        // from_env falls back to defaults when variables are unset or invalid.
        let e = HarnessConfig::from_env();
        assert!(e.eval_samples >= 8);
        assert!(e.calibration_samples >= 4);
    }
}
