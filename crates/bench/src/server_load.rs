//! Real-clock load driver for the async serving front-end: a paced submitter
//! replays an [`ArrivalTrace`] against a live [`SloServer`] while a consumer
//! thread drains the completion stream, plus a helper that replays a recorded
//! [`ServingTrace`] through the deterministic batch scheduler so live and
//! replayed admission decisions can be compared bitwise.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rescnn_core::{
    CoreError, DynamicResolutionPipeline, Result, ServerConfig, ServerReport, ServerRequest,
    ServingTrace, SloOptions, SloReport, SloRequest, SloScheduler, SloServer, SubmitError,
};
use rescnn_data::Dataset;

use crate::load::ArrivalTrace;

/// Outcome of one real-clock load run: the server's final report plus the
/// submitter-side bookkeeping a replay needs.
#[derive(Debug)]
pub struct ServerLoadRun {
    /// Final server report: virtual-clock outcomes, wall percentiles,
    /// rejection counts, drain telemetry, and (when recording) the trace.
    pub report: ServerReport,
    /// Dataset index of each *accepted* submission, in ticket order. Replay
    /// rebuilds the batch scheduler's queue from exactly these samples.
    pub accepted: Vec<usize>,
    /// Submissions rejected at the gate with [`SubmitError::QueueFull`].
    pub rejected_queue_full: usize,
    /// Completions observed on the stream; every accepted ticket must yield
    /// exactly one, so this must equal `accepted.len()`.
    pub delivered: usize,
}

/// Paces `trace` against a live [`SloServer`] in real time: request `i`
/// serves `data[i % data.len()]`, is submitted no earlier than wall offset
/// `trace.arrivals_ms[i]` from the first submission, and carries the trace's
/// deadline slack as its wall/virtual deadline. A consumer thread drains the
/// completion stream throughout, so the run measures steady-state serving
/// rather than backpressure stalls. Ends with a graceful drain.
///
/// # Errors
/// Returns an error if the dataset is empty, the server fails to start, or
/// the event loop dies instead of draining.
pub fn run_server_load(
    pipeline: &Arc<DynamicResolutionPipeline>,
    data: &Dataset,
    trace: &ArrivalTrace,
    config: ServerConfig,
) -> Result<ServerLoadRun> {
    if data.is_empty() {
        return Err(CoreError::EmptyDataset);
    }
    let mut server = SloServer::start(Arc::clone(pipeline), config)?;
    let stream = server.completions().expect("a fresh server always has its stream");
    let consumer = std::thread::spawn(move || stream.count());

    let epoch = Instant::now();
    let mut accepted = Vec::new();
    let mut rejected_queue_full = 0usize;
    for (i, &arrival) in trace.arrivals_ms.iter().enumerate() {
        let target = epoch + Duration::from_secs_f64(arrival.max(0.0) / 1000.0);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        let index = i % data.len();
        let sample = Arc::new(data[index].clone());
        match server.submit(ServerRequest::new(sample, trace.deadline_slack_ms)) {
            Ok(_) => accepted.push(index),
            Err(SubmitError::QueueFull { .. }) => rejected_queue_full += 1,
            // Unreachable here (the drain starts below), but never a panic.
            Err(SubmitError::Draining | SubmitError::Stopped) => {}
        }
    }

    server.drain();
    let report = server.join()?;
    let delivered = consumer.join().expect("the stream consumer never panics");
    Ok(ServerLoadRun { report, accepted, rejected_queue_full, delivered })
}

/// Replays a recorded serving trace through the virtual-clock batch
/// scheduler: the queue is rebuilt from the `accepted` sample indices of the
/// live run, every request's stamps are overridden from the trace, and the
/// recorded step times drive admission. For a gracefully drained recording
/// the returned trace's decisions must equal the live trace's bitwise.
///
/// # Errors
/// Returns an error if the trace is inconsistent with the rebuilt queue
/// (wrong request count, non-replayable hard-cancelled recording).
pub fn replay_trace(
    pipeline: &DynamicResolutionPipeline,
    data: &Dataset,
    accepted: &[usize],
    options: SloOptions,
    trace: &ServingTrace,
) -> Result<(SloReport, ServingTrace)> {
    let mut scheduler = SloScheduler::new(pipeline, options);
    for &index in accepted {
        // Placeholder stamps: replay overwrites arrival and deadline from the
        // recorded trace before any admission step runs.
        scheduler.submit(SloRequest::new(&data[index], 0.0, 1.0));
    }
    scheduler.replay(trace)
}
