//! Wall-clock benchmarks of the progressive codec: encoding and partial-scan decoding,
//! the storage-side cost of the dynamic-resolution pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rescnn_imaging::{render_scene, SceneSpec};
use rescnn_projpeg::{ProgressiveImage, ScanPlan};

fn codec_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("projpeg");
    group.sample_size(10);
    let image = render_scene(&SceneSpec::new(472, 405, 3).with_detail(0.6)).unwrap();
    group.bench_function("encode_q90", |b| {
        b.iter(|| ProgressiveImage::encode(&image, 90, ScanPlan::standard()).unwrap())
    });
    let encoded = ProgressiveImage::encode(&image, 90, ScanPlan::standard()).unwrap();
    for scans in [1usize, 3, 5] {
        group.bench_with_input(BenchmarkId::new("decode_scans", scans), &scans, |b, &scans| {
            b.iter(|| encoded.decode(scans).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, codec_benchmarks);
criterion_main!(benches);
