//! Wall-clock benchmarks of the dynamic-resolution decision path (feature extraction,
//! scale-model prediction) and of the analytic kernel autotuner, i.e. the per-image
//! overhead the pipeline adds on top of backbone inference.

use criterion::{criterion_group, criterion_main, Criterion};
use rescnn_core::{extract_features, ScaleModel, ScaleModelConfig, TrainingExample, FEATURE_COUNT};
use rescnn_hwsim::{AutoTuner, CpuProfile, TunerConfig};
use rescnn_imaging::{crop_and_resize, render_scene, CropRatio, SceneSpec};
use rescnn_models::ModelKind;

fn pipeline_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    let image = render_scene(&SceneSpec::new(472, 405, 9).with_detail(0.5)).unwrap();
    let preview = crop_and_resize(&image, CropRatio::new(0.75).unwrap(), 112).unwrap();
    group.bench_function("feature_extraction_112", |b| {
        b.iter(|| extract_features(&preview).unwrap())
    });

    let examples: Vec<TrainingExample> = (0..64)
        .map(|i| TrainingExample {
            features: (0..FEATURE_COUNT).map(|f| ((i * 7 + f) % 13) as f64 / 13.0).collect(),
            labels: vec![i % 2 == 0; 7],
        })
        .collect();
    let model = ScaleModel::train(&ScaleModelConfig::default(), &examples).unwrap();
    let features = examples[0].features.clone();
    group.bench_function("scale_model_predict", |b| b.iter(|| model.choose_resolution(&features)));

    let profile = CpuProfile::intel_4790k();
    let arch = ModelKind::ResNet18.arch(1000);
    let layer = arch.conv_layers(224).unwrap()[5];
    let tuner = AutoTuner::new(TunerConfig::default());
    group.bench_function("autotune_one_layer", |b| b.iter(|| tuner.tune_layer(&layer, &profile)));
    group.finish();
}

criterion_group!(benches, pipeline_benchmarks);
criterion_main!(benches);
