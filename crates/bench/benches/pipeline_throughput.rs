//! Wall-clock benchmarks of the dynamic-resolution decision path (feature extraction,
//! scale-model prediction), the analytic kernel autotuner, the plan stage in isolation
//! (`planning` group: `sample_curves` plus one-request and 32-request `plan` latency —
//! the PR 3 acceptance numbers), the batched serving layer (resolution-bucketed
//! scheduling across the 112–448 ladder at batch sizes 1/8/32), and the persistent
//! pool's dispatch overhead against the legacy scoped-spawn path.

use criterion::{criterion_group, criterion_main, Criterion};
use rescnn_bench::load::{run_slo_load, ArrivalTrace, FaultPlan};
use rescnn_core::{
    extract_features, BatchOptions, CalibrationCurves, DynamicResolutionPipeline, PipelineConfig,
    ResolutionLatencyModel, ScaleModel, ScaleModelConfig, ScaleModelTrainer, SloOptions,
    TrainingExample, FEATURE_COUNT,
};
use rescnn_data::{DatasetKind, DatasetSpec};
use rescnn_hwsim::{AutoTuner, CpuProfile, TunerConfig};
use rescnn_imaging::{crop_and_resize, render_scene, CropRatio, SceneSpec};
use rescnn_models::ModelKind;
use rescnn_oracle::AccuracyOracle;
use rescnn_projpeg::{ProgressiveImage, ScanPlan};
use rescnn_tensor::parallel::{for_each_chunk, for_each_chunk_scoped};

/// The paper's full candidate-resolution ladder.
const LADDER: [usize; 7] = [112, 168, 224, 280, 336, 392, 448];

/// Builds the ResNet-50 pipeline the serving/planning benches share.
fn ladder_pipeline() -> DynamicResolutionPipeline {
    let ladder = LADDER.to_vec();
    let config = ScaleModelConfig { resolutions: ladder.clone(), epochs: 30, ..Default::default() };
    let trainer = ScaleModelTrainer::new(config, ModelKind::ResNet50, DatasetKind::CarsLike);
    let train = DatasetSpec::cars_like().with_len(60).with_max_dimension(96).build(1);
    let scale_model = trainer.train(&train, 3).expect("scale model trains");
    DynamicResolutionPipeline::new(
        PipelineConfig::new(ModelKind::ResNet50, DatasetKind::CarsLike).with_resolutions(ladder),
        scale_model,
        AccuracyOracle::new(7),
    )
    .expect("pipeline assembles")
}

fn pipeline_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    let image = render_scene(&SceneSpec::new(472, 405, 9).with_detail(0.5)).unwrap();
    let preview = crop_and_resize(&image, CropRatio::new(0.75).unwrap(), 112).unwrap();
    group.bench_function("feature_extraction_112", |b| {
        b.iter(|| extract_features(&preview).unwrap())
    });

    let examples: Vec<TrainingExample> = (0..64)
        .map(|i| TrainingExample {
            features: (0..FEATURE_COUNT).map(|f| ((i * 7 + f) % 13) as f64 / 13.0).collect(),
            labels: vec![i % 2 == 0; 7],
        })
        .collect();
    let model = ScaleModel::train(&ScaleModelConfig::default(), &examples).unwrap();
    let features = examples[0].features.clone();
    group.bench_function("scale_model_predict", |b| b.iter(|| model.choose_resolution(&features)));

    let profile = CpuProfile::intel_4790k();
    let arch = ModelKind::ResNet18.arch(1000);
    let layer = arch.conv_layers(224).unwrap()[5];
    let tuner = AutoTuner::new(TunerConfig::default());
    group.bench_function("autotune_one_layer", |b| b.iter(|| tuner.tune_layer(&layer, &profile)));
    group.finish();
}

/// Batched serving across the paper's full 112–448 resolution ladder: one
/// scheduler drain (plan → bucket → execute) over a 32-request mixed-resolution
/// queue, swept over batch sizes 1/8/32. Batch 1 degenerates to sequential
/// serving, so the spread between the three is the value of resolution-bucketed
/// batching itself.
fn serving_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving");
    group.sample_size(10);

    let pipeline = ladder_pipeline();
    let queue = DatasetSpec::cars_like().with_len(32).with_max_dimension(96).build(99);

    for max_batch in [1usize, 8, 32] {
        group.bench_function(format!("batched_evaluate_32req_b{max_batch}"), |b| {
            b.iter(|| {
                pipeline
                    .evaluate_batched(&queue, BatchOptions::default().with_max_batch(max_batch))
                    .expect("serving succeeds")
            })
        });
    }
    group.finish();
}

/// Plan-stage latency, the serving-bench bottleneck PR 3 targets: the per-request
/// quality/read-curve computation (progressive decode + crop/resize + SSIM at the
/// preview and every candidate resolution) in isolation (`sample_curves` over the
/// full 112–448 ladder on a representative 472×405 source), plus the end-to-end
/// `plan` stage (render + encode + curves + scale model) for one request and a
/// 32-request queue.
fn planning_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("planning");
    group.sample_size(10);

    let image = render_scene(&SceneSpec::new(472, 405, 9).with_detail(0.5)).unwrap();
    let encoded = ProgressiveImage::encode(&image, 90, ScanPlan::standard()).unwrap();
    let crop = CropRatio::new(0.75).unwrap();
    group.bench_function("sample_curves_112_448_ladder", |b| {
        b.iter(|| CalibrationCurves::sample_curves(&image, &encoded, crop, &LADDER).unwrap())
    });

    let pipeline = ladder_pipeline();
    let queue = DatasetSpec::cars_like().with_len(32).with_max_dimension(96).build(99);
    group.bench_function("plan_one_request", |b| {
        b.iter(|| pipeline.plan(&queue[0]).expect("planning succeeds"))
    });
    group.bench_function("plan_32_requests", |b| {
        b.iter(|| {
            queue
                .iter()
                .map(|sample| pipeline.plan(sample).expect("planning succeeds"))
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

/// Dispatch overhead: the persistent pool (wake parked workers) vs. the legacy
/// scoped path (spawn + join threads) on a job whose compute is negligible, so
/// the measurement is almost pure dispatch cost.
fn dispatch_overhead_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch");
    let mut data = vec![0u64; 1 << 10];
    group.bench_function("pool_dispatch_16_chunks", |b| {
        b.iter(|| {
            for_each_chunk(&mut data, 64, true, |index, chunk| {
                chunk[0] = chunk[0].wrapping_add(index as u64);
            })
        })
    });
    group.bench_function("scoped_spawn_dispatch_16_chunks", |b| {
        b.iter(|| {
            for_each_chunk_scoped(&mut data, 64, true, |index, chunk| {
                chunk[0] = chunk[0].wrapping_add(index as u64);
            })
        })
    });
    group.finish();
}

/// One SLO scheduler drain over a bursty 24-request trace with 5% stream
/// corruption: plan → virtual-clock admission (degrade/shed) → bucketed
/// execution with per-request fault isolation. Measures the serving core's
/// end-to-end overhead on top of the plain batched path above.
fn slo_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("slo");
    group.sample_size(10);

    let pipeline = ladder_pipeline();
    let data = DatasetSpec::cars_like().with_len(24).with_max_dimension(96).build(99);
    let latency = ResolutionLatencyModel::analytic(&pipeline).expect("latency model builds");
    let top_ms = latency.estimate_ms(448).max(1.0);
    let trace = ArrivalTrace::bursty(24, 6, 4.0 * top_ms, 3.0 * top_ms);
    let faults = FaultPlan::corruption(0.05, 7);
    let options = SloOptions::default().with_latency_model(latency);
    group.bench_function("slo_drain_24req_bursty_corrupt5", |b| {
        b.iter(|| {
            run_slo_load(&pipeline, &data, &trace, &faults, options.clone())
                .expect("drain never aborts on per-request faults")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    pipeline_benchmarks,
    planning_benchmarks,
    serving_benchmarks,
    dispatch_overhead_benchmarks,
    slo_benchmarks
);
criterion_main!(benches);
