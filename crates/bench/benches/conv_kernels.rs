//! Real wall-clock micro-benchmarks of the executable convolution kernels: the
//! measured counterpart of the analytic cost model.
//!
//! Seven groups:
//!
//! * `conv2d` — the seed comparison (direct / im2col / tiled) at small resolutions,
//!   demonstrating that the best tiling depends on the input resolution (§VI).
//! * `engine` — the packed engine across the paper's resolution ladder 112–448:
//!   packed GEMM vs the seed's blocked GEMM, the 1×1 fast path, the dedicated
//!   depthwise kernel, and thread counts 1/2/N.
//! * `winograd` — the Winograd F(2×2,3×3) and F(4×4,3×3) arms vs the packed
//!   im2col baseline on stride-1 3×3 layers (the PR 4 acceptance table: ≥1.5×
//!   at 224² and 448²; PR 7 adds the α=6 transform).
//! * `forward_prepacked` — prepacked + fused + arena execution vs the PR-4-era
//!   reference at 224² and 448², under three-way calibrated dispatch; writes
//!   milestone latencies to `results/forward_latency.json`.
//! * `chained_forward` — cache-resident conv→conv chaining vs layer-at-a-time
//!   execution of the same dispatch (the PR 7 acceptance comparison).
//! * `quantized` — the int8 u8×i8 arm vs the f32 packed engine on prepared
//!   stage-shape layers, plus the calibrated ResNet-50 forward with the arm
//!   admitted by its accuracy gate (the PR 9 acceptance comparison).
//! * `resnet50_forward` — the end-to-end acceptance benchmark: a ResNet-50-style
//!   forward at 224×224 through the engine (heuristic, measurement-calibrated,
//!   and forced-Winograd dispatch) vs the seed's im2col path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rescnn_hwsim::{CalibratedCostModel, CpuProfile, MeasuredSweepConfig, MeasuredTuner};
use rescnn_models::{ModelKind, Network};
use rescnn_tensor::{
    conv2d_direct, conv2d_im2col, conv2d_tiled, conv2d_winograd_f4_prepared,
    conv2d_winograd_prepared, conv2d_with_algo, force_conv_algo, gemm_blocked, gemm_packed,
    install_algo_calibration, num_threads, set_chain_mode, set_num_threads, tensor_range,
    ChainMode, Conv2dParams, ConvAlgo, ConvEpilogue, ConvShapeKey, ConvTiling, FusedActivation,
    GemmBlocking, MatDims, PreparedLayer, Shape, Tensor, WinogradFilter,
};

/// The paper's inference-resolution ladder (§IV).
const RESOLUTION_LADDER: [usize; 4] = [112, 168, 224, 448];

/// One end-to-end forward latency measurement destined for
/// `results/forward_latency.json`.
struct LatencyRecord {
    milestone: &'static str,
    resolution: usize,
    min_ms: f64,
}

/// Minimum wall-clock milliseconds over `reps` runs (after one warm-up): the
/// same robust estimator the measured tuner uses, at network granularity.
fn min_ms_of(reps: usize, mut run: impl FnMut()) -> f64 {
    run();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = std::time::Instant::now();
        run();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Parses one record line of the hand-formatted latency JSON back into its
/// fields (the vendored serde stub does not deserialize collections either).
fn parse_latency_record(line: &str) -> Option<(String, usize, f64)> {
    fn after<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        Some(&line[line.find(key)? + key.len()..])
    }
    let rest = after(line, "\"milestone\": \"")?;
    let milestone = rest[..rest.find('"')?].to_string();
    let rest = after(line, "\"resolution\": ")?;
    let resolution = rest[..rest.find(',')?].trim().parse().ok()?;
    let rest = after(line, "\"min_ms\": ")?;
    let min_ms = rest[..rest.find(' ').unwrap_or(rest.len())].parse().ok()?;
    Some((milestone, resolution, min_ms))
}

/// Persists the forward-latency records as hand-formatted JSON (the vendored
/// serde stub does not serialize collections) so milestone-over-milestone
/// regressions are diffable in-repo. Records already on disk are preserved —
/// several bench groups write their own milestones into the same file — with
/// the newest measurement of a `(milestone, resolution)` pair winning.
fn write_forward_latency(records: &[LatencyRecord]) {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = format!("{dir}/forward_latency.json");
    let mut combined: Vec<(String, usize, f64)> = std::fs::read_to_string(&path)
        .map(|existing| existing.lines().filter_map(parse_latency_record).collect())
        .unwrap_or_default();
    combined.retain(|(m, r, _)| !records.iter().any(|n| n.milestone == m && n.resolution == *r));
    combined.extend(records.iter().map(|r| (r.milestone.to_string(), r.resolution, r.min_ms)));
    let mut out = String::from("[\n");
    for (i, (milestone, resolution, min_ms)) in combined.iter().enumerate() {
        let sep = if i + 1 == combined.len() { "" } else { "," };
        out.push_str(&format!(
            "  {{ \"milestone\": \"{milestone}\", \"resolution\": {resolution}, \
             \"min_ms\": {min_ms:.3} }}{sep}\n"
        ));
    }
    out.push_str("]\n");
    if std::fs::write(&path, out).is_ok() {
        println!("forward latency records written to {path}");
    }
}

fn conv_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d");
    group.sample_size(10);
    let params = Conv2dParams::new(16, 32, 3, 1, 1);
    let weight = Tensor::kaiming(Shape::new(32, 16, 3, 3), 16 * 9, 1);
    for &res in &[28usize, 56] {
        let input = Tensor::random_uniform(Shape::chw(16, res, res), 1.0, res as u64);
        group.bench_with_input(BenchmarkId::new("direct", res), &res, |b, _| {
            b.iter(|| conv2d_direct(&input, &weight, None, &params).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("im2col", res), &res, |b, _| {
            b.iter(|| conv2d_im2col(&input, &weight, None, &params).unwrap())
        });
        for (label, tiling) in [
            ("tiled_small", ConvTiling::new(8, 4, 16)),
            ("tiled_large", ConvTiling::new(32, 8, 64)),
        ] {
            group.bench_with_input(BenchmarkId::new(label, res), &res, |b, _| {
                b.iter(|| conv2d_tiled(&input, &weight, None, &params, tiling).unwrap())
            });
        }
    }
    group.finish();
}

/// Thread counts to sweep: 1, 2, and the host's full parallelism.
fn thread_sweep() -> Vec<usize> {
    let max = num_threads();
    let mut counts = vec![1];
    if max >= 2 {
        counts.push(2);
    }
    if max > 2 {
        counts.push(max);
    }
    counts
}

fn engine_benchmarks(c: &mut Criterion) {
    let original_threads = num_threads();
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);

    // Packed GEMM vs the seed's blocked GEMM at a ResNet-50 layer-2 shape.
    let dims = MatDims::new(128, 784, 1152);
    let a: Vec<f32> = (0..dims.m * dims.k).map(|i| (i as f32 * 0.3).sin()).collect();
    let b: Vec<f32> = (0..dims.k * dims.n).map(|i| (i as f32 * 0.7).cos()).collect();
    group.bench_function("gemm_blocked_seed/128x784x1152", |bench| {
        let mut out = vec![0.0; dims.m * dims.n];
        bench.iter(|| {
            out.fill(0.0);
            gemm_blocked(dims, GemmBlocking::default(), &a, &b, &mut out)
        })
    });
    for threads in thread_sweep() {
        set_num_threads(threads);
        group.bench_with_input(
            BenchmarkId::new("gemm_packed_128x784x1152/threads", threads),
            &threads,
            |bench, _| {
                let mut out = vec![0.0; dims.m * dims.n];
                bench.iter(|| {
                    out.fill(0.0);
                    gemm_packed(dims, &a, &b, &mut out)
                })
            },
        );
    }
    set_num_threads(original_threads);

    // Engine algorithms across the paper's resolution ladder. Channel counts are
    // ResNet-50 stage-1-like, scaled by resolution as in the paper's ladder.
    for &res in &RESOLUTION_LADDER {
        let dense = Conv2dParams::new(32, 64, 3, 1, 1);
        let input = Tensor::random_uniform(Shape::chw(32, res, res), 1.0, res as u64);
        let weight = Tensor::kaiming(Shape::new(64, 32, 3, 3), 32 * 9, 2);
        group.bench_with_input(BenchmarkId::new("im2col_packed_3x3", res), &res, |b, _| {
            b.iter(|| {
                conv2d_with_algo(&input, &weight, None, &dense, ConvAlgo::Im2colPacked).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("im2col_seed_3x3", res), &res, |b, _| {
            b.iter(|| conv2d_with_algo(&input, &weight, None, &dense, ConvAlgo::Im2col).unwrap())
        });

        let pointwise = Conv2dParams::new(32, 64, 1, 1, 0);
        let pw_weight = Tensor::kaiming(Shape::new(64, 32, 1, 1), 32, 3);
        group.bench_with_input(BenchmarkId::new("gemm_1x1", res), &res, |b, _| {
            b.iter(|| {
                conv2d_with_algo(&input, &pw_weight, None, &pointwise, ConvAlgo::Gemm1x1).unwrap()
            })
        });

        let depthwise = Conv2dParams::depthwise(32, 3, 1, 1);
        let dw_weight = Tensor::kaiming(Shape::new(32, 1, 3, 3), 9, 4);
        group.bench_with_input(BenchmarkId::new("depthwise", res), &res, |b, _| {
            b.iter(|| {
                conv2d_with_algo(&input, &dw_weight, None, &depthwise, ConvAlgo::Depthwise).unwrap()
            })
        });
    }
    group.finish();
}

/// Winograd F(2×2,3×3) vs the packed im2col baseline on stride-1 3×3 layers across
/// the paper's resolution ladder (PR 4 acceptance: ≥1.5× at 224² and 448²).
/// `winograd` pays the filter transform per call; `winograd_prepared` uses the
/// cached per-layer transform, the path the model zoo takes.
fn winograd_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("winograd");
    group.sample_size(10);
    // The acceptance ladder: a VGG-block-1-like 64→64 stride-1 3×3 layer at the
    // paper's input resolutions (the channel count every ResNet-50 stage-2
    // bottleneck also uses). The PR 4 bar is winograd ≥1.5× im2col_packed at
    // 224² and 448².
    for &res in &RESOLUTION_LADDER {
        let params = Conv2dParams::new(64, 64, 3, 1, 1);
        let input = Tensor::random_uniform(Shape::chw(64, res, res), 1.0, res as u64);
        let weight = Tensor::kaiming(Shape::new(64, 64, 3, 3), 64 * 9, 2);
        let filter = WinogradFilter::prepare(&weight, &params).expect("eligible layer");
        group.bench_with_input(BenchmarkId::new("im2col_packed", res), &res, |b, _| {
            b.iter(|| {
                conv2d_with_algo(&input, &weight, None, &params, ConvAlgo::Im2colPacked).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("winograd", res), &res, |b, _| {
            b.iter(|| conv2d_with_algo(&input, &weight, None, &params, ConvAlgo::Winograd).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("winograd_prepared", res), &res, |b, _| {
            b.iter(|| {
                conv2d_winograd_prepared(&input, &filter, None, &params, FusedActivation::None)
                    .unwrap()
            })
        });
        // The α=6 arm (PR 7): ≈2.25× fewer transform-domain multiplies than
        // F(2×2) on the same shapes, within its characterized tolerance.
        let filter_f4 = WinogradFilter::prepare_f4(&weight, &params).expect("eligible layer");
        group.bench_with_input(BenchmarkId::new("winograd_f4", res), &res, |b, _| {
            b.iter(|| {
                conv2d_with_algo(&input, &weight, None, &params, ConvAlgo::WinogradF4).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("winograd_f4_prepared", res), &res, |b, _| {
            b.iter(|| {
                conv2d_winograd_f4_prepared(
                    &input,
                    &filter_f4,
                    None,
                    &params,
                    FusedActivation::None,
                )
                .unwrap()
            })
        });
    }
    // Secondary shapes: the shallow stem-like 32→64 layer (short GEMM reduction —
    // winograd's weakest case) and a deep low-resolution bottleneck 3×3.
    for (label, ic, oc, res) in
        [("stem_32to64_224", 32usize, 64usize, 224usize), ("deep_256_28", 256, 256, 28)]
    {
        let params = Conv2dParams::new(ic, oc, 3, 1, 1);
        let input = Tensor::random_uniform(Shape::chw(ic, res, res), 1.0, 5);
        let weight = Tensor::kaiming(Shape::new(oc, ic, 3, 3), ic * 9, 6);
        group.bench_function(format!("im2col_packed/{label}"), |b| {
            b.iter(|| {
                conv2d_with_algo(&input, &weight, None, &params, ConvAlgo::Im2colPacked).unwrap()
            })
        });
        group.bench_function(format!("winograd/{label}"), |b| {
            b.iter(|| conv2d_with_algo(&input, &weight, None, &params, ConvAlgo::Winograd).unwrap())
        });
    }
    group.finish();
}

/// The acceptance benchmark: ResNet-50-style forward at 224×224, engine vs the
/// seed's im2col path (forced through the whole network via [`force_conv_algo`]).
fn resnet50_forward(c: &mut Criterion) {
    let original_threads = num_threads();
    let mut group = c.benchmark_group("resnet50_forward_224");
    group.sample_size(10);
    let net = Network::new(ModelKind::ResNet50, 1000, 0);
    let input = Tensor::random_uniform(Shape::chw(3, 224, 224), 1.0, 1);

    force_conv_algo(None);
    group.bench_function("engine", |b| b.iter(|| net.forward(&input).unwrap()));
    for threads in thread_sweep() {
        set_num_threads(threads);
        group.bench_with_input(BenchmarkId::new("engine/threads", threads), &threads, |b, _| {
            b.iter(|| net.forward(&input).unwrap())
        });
    }
    // Calibrated dispatch: sweep the network's Winograd-eligible layer shapes
    // once (winograd vs packed im2col, wall clock), install the measured-fastest
    // table, and run the forward with per-layer measured defaults — Winograd only
    // where it actually won on this host. This is the deployment configuration.
    set_num_threads(original_threads);
    let layers = ModelKind::ResNet50.arch(1000).conv_layers(224).expect("resnet50 at 224");
    let tuner =
        MeasuredTuner::new(MeasuredSweepConfig { reps: 2, max_threads: 1, ..Default::default() });
    let mut calibrated = CalibratedCostModel::new(CpuProfile::host());
    let mut seen = std::collections::HashSet::new();
    for layer in &layers {
        if ConvAlgo::Winograd.supports(&layer.params)
            && seen.insert(ConvShapeKey::new(layer.params, layer.input))
        {
            for algo in [ConvAlgo::Im2colPacked, ConvAlgo::Winograd] {
                let kernel = tuner.measure_algo(layer, algo, 1);
                calibrated.record(layer, kernel.algo, kernel.seconds);
            }
            if tuner.admits_f4(layer) {
                let kernel = tuner.measure_algo(layer, ConvAlgo::WinogradF4, 1);
                calibrated.record(layer, kernel.algo, kernel.seconds);
            }
        }
    }
    install_algo_calibration(Some(calibrated.dispatch_table()));
    group.bench_function("engine_calibrated", |b| b.iter(|| net.forward(&input).unwrap()));
    install_algo_calibration(None);

    // Every stride-1 3×3 layer through the cached Winograd path (other shapes keep
    // their engine fast paths) — what calibration protects against: forcing
    // Winograd even on the deep low-resolution layers where it loses.
    force_conv_algo(Some(ConvAlgo::Winograd));
    group.bench_function("engine_winograd", |b| b.iter(|| net.forward(&input).unwrap()));
    for threads in thread_sweep() {
        set_num_threads(threads);
        group.bench_with_input(
            BenchmarkId::new("engine_winograd/threads", threads),
            &threads,
            |b, _| b.iter(|| net.forward(&input).unwrap()),
        );
    }
    set_num_threads(1);
    force_conv_algo(Some(ConvAlgo::Im2col));
    group.bench_function("seed_im2col", |b| b.iter(|| net.forward(&input).unwrap()));
    force_conv_algo(None);
    set_num_threads(original_threads);
    group.finish();
}

/// The PR 5 acceptance benchmark: prepacked weights + fused epilogues + arena
/// execution (`Network::forward`) vs the PR-4-era execution path
/// (`Network::forward_reference`: per-call weight packing, separate
/// activation/residual sweeps, fresh allocations per layer) — both under
/// measurement-calibrated dispatch, at 224² and 448². The two paths are
/// bitwise identical in results (pinned by the prepacked parity suites); only
/// the execution strategy differs.
fn forward_prepacked(c: &mut Criterion) {
    let original_threads = num_threads();
    set_num_threads(1);
    let mut group = c.benchmark_group("forward_prepacked");
    group.sample_size(10);
    let net = Network::new(ModelKind::ResNet50, 1000, 0);
    let tuner = MeasuredTuner::new(MeasuredSweepConfig { reps: 2, ..Default::default() });
    let mut records = Vec::new();
    for &res in &[224usize, 448] {
        // Calibrate dispatch for this resolution's shapes (the serving config).
        // The sweep now duels all three dense arms — packed im2col, F(2×2), and
        // (where the numerical gate admits the shape) F(4×4).
        let layers = ModelKind::ResNet50.arch(1000).conv_layers(res).expect("resnet50 layers");
        let mut calibrated = CalibratedCostModel::new(CpuProfile::host());
        let mut seen = std::collections::HashSet::new();
        for layer in &layers {
            if ConvAlgo::Winograd.supports(&layer.params)
                && seen.insert(ConvShapeKey::new(layer.params, layer.input))
            {
                for algo in [ConvAlgo::Im2colPacked, ConvAlgo::Winograd] {
                    let kernel = tuner.measure_algo(layer, algo, 1);
                    calibrated.record(layer, kernel.algo, kernel.seconds);
                }
                if tuner.admits_f4(layer) {
                    let kernel = tuner.measure_algo(layer, ConvAlgo::WinogradF4, 1);
                    calibrated.record(layer, kernel.algo, kernel.seconds);
                }
            }
        }
        install_algo_calibration(Some(calibrated.dispatch_table()));

        let shape = Shape::chw(3, res, res);
        let input = Tensor::random_uniform(shape, 1.0, res as u64);
        let plan = net.warm_thread_arena(shape).expect("arena plan");
        println!(
            "arena plan @{res}: {} buffers, {:.1} MiB arena, {:.1} MiB peak live activations",
            plan.buffer_elems.len(),
            plan.arena_bytes() as f64 / (1024.0 * 1024.0),
            plan.peak_live_bytes as f64 / (1024.0 * 1024.0),
        );
        // Under calibrated dispatch at one thread, ChainMode::Auto chains every
        // eligible conv→conv pair; Off is the PR-5 execution of the same plan.
        group.bench_with_input(BenchmarkId::new("prepacked", res), &res, |b, _| {
            b.iter(|| net.forward(&input).unwrap())
        });
        set_chain_mode(ChainMode::Off);
        group.bench_with_input(BenchmarkId::new("prepacked_unchained", res), &res, |b, _| {
            b.iter(|| net.forward(&input).unwrap())
        });
        set_chain_mode(ChainMode::Auto);
        group.bench_with_input(BenchmarkId::new("reference", res), &res, |b, _| {
            b.iter(|| net.forward_reference(&input).unwrap())
        });

        // Milestone records for results/forward_latency.json.
        records.push(LatencyRecord {
            milestone: "pr7_calibrated_chained",
            resolution: res,
            min_ms: min_ms_of(3, || {
                net.forward(&input).unwrap();
            }),
        });
        set_chain_mode(ChainMode::Off);
        records.push(LatencyRecord {
            milestone: "pr5_calibrated_unchained",
            resolution: res,
            min_ms: min_ms_of(3, || {
                net.forward(&input).unwrap();
            }),
        });
        set_chain_mode(ChainMode::Auto);
        records.push(LatencyRecord {
            milestone: "pr4_reference",
            resolution: res,
            min_ms: min_ms_of(1, || {
                net.forward_reference(&input).unwrap();
            }),
        });
        install_algo_calibration(None);
    }
    write_forward_latency(&records);
    group.finish();
    set_num_threads(original_threads);
}

/// The int8 quantized arm: u8×i8 GEMM with i32 accumulation and fused f32
/// dequantization vs the f32 packed engine, first on prepared stage-shape
/// layers (the microbenchmark behind the PR 9 acceptance table), then as the
/// end-to-end calibrated ResNet-50 forward with the arm admitted by its
/// accuracy gate (`MeasuredTuner::admits_int8`) — the deployment
/// configuration, with milestone latencies recorded alongside the f32 ones.
fn quantized_benchmarks(c: &mut Criterion) {
    let original_threads = num_threads();
    set_num_threads(1);
    let mut group = c.benchmark_group("quantized");
    group.sample_size(10);

    // Micro ladder: the four ResNet stage families at their 224²-input spatial
    // extents, prepared weights and a calibrated (static) activation range on
    // both arms — the serving operating point.
    for (ic, oc, k, res) in [
        (64usize, 64usize, 3usize, 56usize),
        (128, 128, 3, 28),
        (256, 256, 3, 14),
        (512, 512, 3, 7),
    ] {
        let params = Conv2dParams::new(ic, oc, k, 1, k / 2);
        let weight = Tensor::kaiming(Shape::new(oc, ic, k, k), ic * k * k, 7);
        let input = Tensor::random_uniform(Shape::chw(ic, res, res), 1.0, res as u64);
        let mut prepared = PreparedLayer::new(weight, None, params).expect("stage layer");
        let (lo, hi) = tensor_range(&input);
        prepared.set_int8_range(lo, hi);
        prepared.int8_weights().expect("int8-eligible layer");
        let mut out = Tensor::zeros(params.output_shape(input.shape()).expect("output shape"));
        let label = format!("{ic}to{oc}k{k}_{res}");
        group.bench_function(format!("f32_prepared/{label}"), |b| {
            b.iter(|| {
                prepared
                    .forward_with_algo_into(
                        &input,
                        ConvAlgo::Im2colPacked,
                        ConvEpilogue::activation(FusedActivation::None),
                        &mut out,
                    )
                    .unwrap()
            })
        });
        group.bench_function(format!("int8_prepared/{label}"), |b| {
            b.iter(|| {
                prepared
                    .forward_with_algo_into(
                        &input,
                        ConvAlgo::Int8,
                        ConvEpilogue::activation(FusedActivation::None),
                        &mut out,
                    )
                    .unwrap()
            })
        });
    }

    // End-to-end: calibrate every unique conv shape across the dense arms with
    // the int8 arm opted in (its accuracy gate still decides eligibility),
    // install the measured-fastest table, and run the forward.
    let mut net = Network::new(ModelKind::ResNet50, 1000, 0);
    let tuner =
        MeasuredTuner::new(MeasuredSweepConfig { reps: 2, int8: true, ..Default::default() });
    let mut records = Vec::new();
    for &res in &[224usize, 448] {
        let input = Tensor::random_uniform(Shape::chw(3, res, res), 1.0, res as u64);
        net.calibrate_int8_ranges(&input).expect("range calibration");
        let layers = ModelKind::ResNet50.arch(1000).conv_layers(res).expect("resnet50 layers");
        let mut calibrated = CalibratedCostModel::new(CpuProfile::host());
        let mut seen = std::collections::HashSet::new();
        for layer in &layers {
            if !seen.insert(ConvShapeKey::new(layer.params, layer.input)) {
                continue;
            }
            let mut algos = vec![ConvAlgo::Im2colPacked];
            if ConvAlgo::Gemm1x1.supports(&layer.params) {
                algos.push(ConvAlgo::Gemm1x1);
            }
            if ConvAlgo::Winograd.supports(&layer.params) {
                algos.push(ConvAlgo::Winograd);
                if tuner.admits_f4(layer) {
                    algos.push(ConvAlgo::WinogradF4);
                }
            }
            if tuner.admits_int8(layer) {
                algos.push(ConvAlgo::Int8);
            }
            for algo in algos {
                let kernel = tuner.measure_algo(layer, algo, 1);
                calibrated.record(layer, kernel.algo, kernel.seconds);
            }
        }
        let int8_shapes = calibrated
            .dispatch_table()
            .entries()
            .filter(|(_, algo)| *algo == ConvAlgo::Int8)
            .count();
        println!("calibrated dispatch @{res}: int8 measured-fastest on {int8_shapes} shapes");
        install_algo_calibration(Some(calibrated.dispatch_table()));
        net.warm_thread_arena(Shape::chw(3, res, res)).expect("arena plan");
        group.bench_with_input(BenchmarkId::new("resnet50_calibrated_int8", res), &res, |b, _| {
            b.iter(|| net.forward(&input).unwrap())
        });
        records.push(LatencyRecord {
            milestone: "pr9_calibrated_int8",
            resolution: res,
            min_ms: min_ms_of(3, || {
                net.forward(&input).unwrap();
            }),
        });
        install_algo_calibration(None);
    }
    write_forward_latency(&records);
    group.finish();
    set_num_threads(original_threads);
}

/// The PR 7 chaining benchmark in isolation: every dense stride-1 3×3 layer
/// forced through the cached Winograd path so both chain shapes engage
/// (3×3→3×3 in basic blocks, 3×3→1×1 bottleneck drains), chained vs unchained
/// on the same dispatch. The 448² point is the acceptance target: the chained
/// staging keeps producer tiles cache-resident where the full 448² mid
/// activation (≈25 MiB at 64 channels) cannot be.
fn chained_forward(c: &mut Criterion) {
    let original_threads = num_threads();
    set_num_threads(1);
    let mut group = c.benchmark_group("chained_forward");
    group.sample_size(10);
    let net = Network::new(ModelKind::ResNet50, 1000, 0);
    force_conv_algo(Some(ConvAlgo::Winograd));
    for &res in &[224usize, 448] {
        let input = Tensor::random_uniform(Shape::chw(3, res, res), 1.0, res as u64);
        net.warm_thread_arena(Shape::chw(3, res, res)).expect("arena plan");
        set_chain_mode(ChainMode::Force);
        group.bench_with_input(BenchmarkId::new("chained", res), &res, |b, _| {
            b.iter(|| net.forward(&input).unwrap())
        });
        set_chain_mode(ChainMode::Off);
        group.bench_with_input(BenchmarkId::new("unchained", res), &res, |b, _| {
            b.iter(|| net.forward(&input).unwrap())
        });
        set_chain_mode(ChainMode::Auto);
    }
    force_conv_algo(None);
    group.finish();
    set_num_threads(original_threads);
}

criterion_group!(
    benches,
    conv_benchmarks,
    engine_benchmarks,
    winograd_benchmarks,
    forward_prepacked,
    quantized_benchmarks,
    chained_forward,
    resnet50_forward
);
criterion_main!(benches);
