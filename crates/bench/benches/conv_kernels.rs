//! Real wall-clock micro-benchmarks of the executable convolution kernels: the
//! measured counterpart of the analytic cost model.
//!
//! Three groups:
//!
//! * `conv2d` — the seed comparison (direct / im2col / tiled) at small resolutions,
//!   demonstrating that the best tiling depends on the input resolution (§VI).
//! * `engine` — the packed engine across the paper's resolution ladder 112–448:
//!   packed GEMM vs the seed's blocked GEMM, the 1×1 fast path, the dedicated
//!   depthwise kernel, and thread counts 1/2/N.
//! * `resnet50_forward` — the end-to-end acceptance benchmark: a ResNet-50-style
//!   forward at 224×224 through the engine vs the seed's im2col path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rescnn_models::{ModelKind, Network};
use rescnn_tensor::{
    conv2d_direct, conv2d_im2col, conv2d_tiled, conv2d_with_algo, force_conv_algo, gemm_blocked,
    gemm_packed, num_threads, set_num_threads, Conv2dParams, ConvAlgo, ConvTiling, GemmBlocking,
    MatDims, Shape, Tensor,
};

/// The paper's inference-resolution ladder (§IV).
const RESOLUTION_LADDER: [usize; 4] = [112, 168, 224, 448];

fn conv_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d");
    group.sample_size(10);
    let params = Conv2dParams::new(16, 32, 3, 1, 1);
    let weight = Tensor::kaiming(Shape::new(32, 16, 3, 3), 16 * 9, 1);
    for &res in &[28usize, 56] {
        let input = Tensor::random_uniform(Shape::chw(16, res, res), 1.0, res as u64);
        group.bench_with_input(BenchmarkId::new("direct", res), &res, |b, _| {
            b.iter(|| conv2d_direct(&input, &weight, None, &params).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("im2col", res), &res, |b, _| {
            b.iter(|| conv2d_im2col(&input, &weight, None, &params).unwrap())
        });
        for (label, tiling) in [
            ("tiled_small", ConvTiling::new(8, 4, 16)),
            ("tiled_large", ConvTiling::new(32, 8, 64)),
        ] {
            group.bench_with_input(BenchmarkId::new(label, res), &res, |b, _| {
                b.iter(|| conv2d_tiled(&input, &weight, None, &params, tiling).unwrap())
            });
        }
    }
    group.finish();
}

/// Thread counts to sweep: 1, 2, and the host's full parallelism.
fn thread_sweep() -> Vec<usize> {
    let max = num_threads();
    let mut counts = vec![1];
    if max >= 2 {
        counts.push(2);
    }
    if max > 2 {
        counts.push(max);
    }
    counts
}

fn engine_benchmarks(c: &mut Criterion) {
    let original_threads = num_threads();
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);

    // Packed GEMM vs the seed's blocked GEMM at a ResNet-50 layer-2 shape.
    let dims = MatDims::new(128, 784, 1152);
    let a: Vec<f32> = (0..dims.m * dims.k).map(|i| (i as f32 * 0.3).sin()).collect();
    let b: Vec<f32> = (0..dims.k * dims.n).map(|i| (i as f32 * 0.7).cos()).collect();
    group.bench_function("gemm_blocked_seed/128x784x1152", |bench| {
        let mut out = vec![0.0; dims.m * dims.n];
        bench.iter(|| {
            out.fill(0.0);
            gemm_blocked(dims, GemmBlocking::default(), &a, &b, &mut out)
        })
    });
    for threads in thread_sweep() {
        set_num_threads(threads);
        group.bench_with_input(
            BenchmarkId::new("gemm_packed_128x784x1152/threads", threads),
            &threads,
            |bench, _| {
                let mut out = vec![0.0; dims.m * dims.n];
                bench.iter(|| {
                    out.fill(0.0);
                    gemm_packed(dims, &a, &b, &mut out)
                })
            },
        );
    }
    set_num_threads(original_threads);

    // Engine algorithms across the paper's resolution ladder. Channel counts are
    // ResNet-50 stage-1-like, scaled by resolution as in the paper's ladder.
    for &res in &RESOLUTION_LADDER {
        let dense = Conv2dParams::new(32, 64, 3, 1, 1);
        let input = Tensor::random_uniform(Shape::chw(32, res, res), 1.0, res as u64);
        let weight = Tensor::kaiming(Shape::new(64, 32, 3, 3), 32 * 9, 2);
        group.bench_with_input(BenchmarkId::new("im2col_packed_3x3", res), &res, |b, _| {
            b.iter(|| {
                conv2d_with_algo(&input, &weight, None, &dense, ConvAlgo::Im2colPacked).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("im2col_seed_3x3", res), &res, |b, _| {
            b.iter(|| conv2d_with_algo(&input, &weight, None, &dense, ConvAlgo::Im2col).unwrap())
        });

        let pointwise = Conv2dParams::new(32, 64, 1, 1, 0);
        let pw_weight = Tensor::kaiming(Shape::new(64, 32, 1, 1), 32, 3);
        group.bench_with_input(BenchmarkId::new("gemm_1x1", res), &res, |b, _| {
            b.iter(|| {
                conv2d_with_algo(&input, &pw_weight, None, &pointwise, ConvAlgo::Gemm1x1).unwrap()
            })
        });

        let depthwise = Conv2dParams::depthwise(32, 3, 1, 1);
        let dw_weight = Tensor::kaiming(Shape::new(32, 1, 3, 3), 9, 4);
        group.bench_with_input(BenchmarkId::new("depthwise", res), &res, |b, _| {
            b.iter(|| {
                conv2d_with_algo(&input, &dw_weight, None, &depthwise, ConvAlgo::Depthwise).unwrap()
            })
        });
    }
    group.finish();
}

/// The acceptance benchmark: ResNet-50-style forward at 224×224, engine vs the
/// seed's im2col path (forced through the whole network via [`force_conv_algo`]).
fn resnet50_forward(c: &mut Criterion) {
    let original_threads = num_threads();
    let mut group = c.benchmark_group("resnet50_forward_224");
    group.sample_size(10);
    let net = Network::new(ModelKind::ResNet50, 1000, 0);
    let input = Tensor::random_uniform(Shape::chw(3, 224, 224), 1.0, 1);

    force_conv_algo(None);
    group.bench_function("engine", |b| b.iter(|| net.forward(&input).unwrap()));
    for threads in thread_sweep() {
        set_num_threads(threads);
        group.bench_with_input(BenchmarkId::new("engine/threads", threads), &threads, |b, _| {
            b.iter(|| net.forward(&input).unwrap())
        });
    }
    set_num_threads(1);
    force_conv_algo(Some(ConvAlgo::Im2col));
    group.bench_function("seed_im2col", |b| b.iter(|| net.forward(&input).unwrap()));
    force_conv_algo(None);
    set_num_threads(original_threads);
    group.finish();
}

criterion_group!(benches, conv_benchmarks, engine_benchmarks, resnet50_forward);
criterion_main!(benches);
