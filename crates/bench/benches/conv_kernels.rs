//! Real wall-clock micro-benchmarks of the executable convolution kernels: the measured
//! counterpart of the analytic cost model, demonstrating that the best implementation
//! choice (tiling) depends on the input resolution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rescnn_tensor::{
    conv2d_direct, conv2d_im2col, conv2d_tiled, Conv2dParams, ConvTiling, Shape, Tensor,
};

fn conv_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d");
    group.sample_size(10);
    let params = Conv2dParams::new(16, 32, 3, 1, 1);
    let weight = Tensor::kaiming(Shape::new(32, 16, 3, 3), 16 * 9, 1);
    for &res in &[28usize, 56] {
        let input = Tensor::random_uniform(Shape::chw(16, res, res), 1.0, res as u64);
        group.bench_with_input(BenchmarkId::new("direct", res), &res, |b, _| {
            b.iter(|| conv2d_direct(&input, &weight, None, &params).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("im2col", res), &res, |b, _| {
            b.iter(|| conv2d_im2col(&input, &weight, None, &params).unwrap())
        });
        for (label, tiling) in [
            ("tiled_small", ConvTiling::new(8, 4, 16)),
            ("tiled_large", ConvTiling::new(32, 8, 64)),
        ] {
            group.bench_with_input(BenchmarkId::new(label, res), &res, |b, _| {
                b.iter(|| conv2d_tiled(&input, &weight, None, &params, tiling).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, conv_benchmarks);
criterion_main!(benches);
