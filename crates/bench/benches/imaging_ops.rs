//! Wall-clock benchmarks of the image-processing substrate: rendering, resizing, cropping,
//! and the SSIM quality metric used by storage calibration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rescnn_imaging::{
    crop_and_resize, render_scene, resize_square, ssim, CropRatio, Filter, SceneSpec,
};

fn imaging_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("imaging");
    group.sample_size(10);
    let scene = SceneSpec::new(472, 405, 17).with_detail(0.7);
    let image = render_scene(&scene).unwrap();
    group.bench_function("render_472x405", |b| b.iter(|| render_scene(&scene).unwrap()));
    for &res in &[112usize, 224, 448] {
        group.bench_with_input(BenchmarkId::new("resize_bilinear", res), &res, |b, &res| {
            b.iter(|| resize_square(&image, res, Filter::Bilinear).unwrap())
        });
    }
    let crop = CropRatio::new(0.75).unwrap();
    group.bench_function("crop_and_resize_224", |b| {
        b.iter(|| crop_and_resize(&image, crop, 224).unwrap())
    });
    let reference = resize_square(&image, 224, Filter::Bilinear).unwrap();
    let distorted = resize_square(
        &resize_square(&image, 112, Filter::Bilinear).unwrap(),
        224,
        Filter::Bilinear,
    )
    .unwrap();
    group.bench_function("ssim_224", |b| b.iter(|| ssim(&reference, &distorted).unwrap()));
    group.finish();
}

criterion_group!(benches, imaging_benchmarks);
criterion_main!(benches);
