//! Wall-clock benchmarks of the image-processing substrate: rendering, resizing, cropping,
//! and the SSIM quality metric used by storage calibration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rescnn_imaging::{
    crop_and_resize, reference, render_scene, resize_square, ssim, CropRatio, Filter, SceneSpec,
    SsimConfig,
};

fn imaging_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("imaging");
    group.sample_size(10);
    let scene = SceneSpec::new(472, 405, 17).with_detail(0.7);
    let image = render_scene(&scene).unwrap();
    group.bench_function("render_472x405", |b| b.iter(|| render_scene(&scene).unwrap()));
    for &res in &[112usize, 224, 448] {
        group.bench_with_input(BenchmarkId::new("resize_bilinear", res), &res, |b, &res| {
            b.iter(|| resize_square(&image, res, Filter::Bilinear).unwrap())
        });
        // The pre-PR 3 single-pass resize, kept as the measured baseline.
        group.bench_with_input(
            BenchmarkId::new("resize_bilinear_reference", res),
            &res,
            |b, &res| b.iter(|| reference::resize(&image, res, res, Filter::Bilinear).unwrap()),
        );
    }
    let crop = CropRatio::new(0.75).unwrap();
    group.bench_function("crop_and_resize_224", |b| {
        b.iter(|| crop_and_resize(&image, crop, 224).unwrap())
    });
    let reference_img = resize_square(&image, 224, Filter::Bilinear).unwrap();
    let distorted = resize_square(
        &resize_square(&image, 112, Filter::Bilinear).unwrap(),
        224,
        Filter::Bilinear,
    )
    .unwrap();
    group.bench_function("ssim_224", |b| b.iter(|| ssim(&reference_img, &distorted).unwrap()));
    // The pre-PR 3 O(window²)-per-window SSIM, kept as the measured baseline.
    group.bench_function("ssim_224_reference", |b| {
        b.iter(|| reference::ssim_with(&reference_img, &distorted, SsimConfig::default()).unwrap())
    });
    group.finish();
}

criterion_group!(benches, imaging_benchmarks);
criterion_main!(benches);
