//! CPU hardware profiles.
//!
//! The paper measures on an Intel i7-4790K (4 cores, AVX2) and an AMD Threadripper 2990WX
//! (32 cores, AVX2). We model the architectural parameters that determine convolution
//! throughput: core count, SIMD width, FMA issue rate, frequency, cache capacities, and
//! sustained memory bandwidth. The cost model consumes these profiles; the Criterion
//! benches additionally measure real kernels on the host CPU.

use serde::{Deserialize, Serialize};

/// Architectural description of a CPU used by the kernel cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuProfile {
    /// Marketing name ("4790K", "2990WX").
    pub name: String,
    /// Physical core count (the paper runs with half the hardware threads, i.e. one thread
    /// per physical core).
    pub cores: usize,
    /// f32 lanes per SIMD vector (8 for AVX2).
    pub simd_width: usize,
    /// Fused multiply–add instructions issued per cycle per core.
    pub fma_per_cycle: usize,
    /// Sustained all-core frequency in GHz.
    pub frequency_ghz: f64,
    /// L1 data cache per core in KiB.
    pub l1_kib: usize,
    /// L2 cache per core in KiB.
    pub l2_kib: usize,
    /// Shared last-level cache in MiB.
    pub llc_mib: usize,
    /// Sustained memory bandwidth in GiB/s.
    pub dram_gib_s: f64,
    /// Fraction of theoretical peak a perfectly tuned dense kernel can sustain on this
    /// microarchitecture (captures frontend/port limits the structural model ignores).
    pub peak_efficiency: f64,
    /// Per-kernel-launch overhead in microseconds (thread wake-up, cache warm-up).
    pub launch_overhead_us: f64,
    /// How well the vendor kernel library (MKLDNN) is tuned for this microarchitecture
    /// (1.0 = the library's home platform). MKLDNN is an Intel library; the paper's AMD
    /// numbers reflect its weaker showing there.
    pub library_affinity: f64,
}

impl CpuProfile {
    /// Intel Core i7-4790K: 4 cores / 8 threads, AVX2, 4.0–4.4 GHz.
    pub fn intel_4790k() -> Self {
        CpuProfile {
            name: "4790K".to_string(),
            cores: 4,
            simd_width: 8,
            fma_per_cycle: 2,
            frequency_ghz: 4.0,
            l1_kib: 32,
            l2_kib: 256,
            llc_mib: 8,
            dram_gib_s: 22.0,
            peak_efficiency: 0.66,
            launch_overhead_us: 18.0,
            library_affinity: 1.0,
        }
    }

    /// AMD Threadripper 2990WX: 32 cores / 64 threads, AVX2 (split 256-bit), 3.0 GHz all-core.
    ///
    /// The 2990WX is NUMA-constrained (half its dies have no local memory), which the
    /// paper's numbers reflect; we fold that into a lower peak efficiency and a modest
    /// sustained bandwidth figure.
    pub fn amd_2990wx() -> Self {
        CpuProfile {
            name: "2990WX".to_string(),
            cores: 32,
            simd_width: 8,
            fma_per_cycle: 1,
            frequency_ghz: 3.0,
            l1_kib: 32,
            l2_kib: 512,
            llc_mib: 64,
            dram_gib_s: 55.0,
            peak_efficiency: 0.50,
            launch_overhead_us: 35.0,
            library_affinity: 0.62,
        }
    }

    /// The two platforms evaluated in the paper, in presentation order.
    pub fn paper_platforms() -> Vec<CpuProfile> {
        vec![CpuProfile::intel_4790k(), CpuProfile::amd_2990wx()]
    }

    /// A generic profile for the machine this process runs on: the 4790K
    /// microarchitectural constants with the core count taken from the host.
    ///
    /// Consumers that only need *relative* rankings refined by measurements —
    /// the calibrated dispatch model, whose exact-shape decisions come from
    /// wall-clock sweeps on this very host — use this as their analytic prior;
    /// faithful absolute latencies still call for one of the paper profiles.
    pub fn host() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        CpuProfile { name: "host".to_string(), cores, ..CpuProfile::intel_4790k() }
    }

    /// Theoretical peak multiply–accumulate throughput in MACs per second
    /// (`cores × simd × fma/cycle × frequency`).
    pub fn peak_macs_per_s(&self) -> f64 {
        self.cores as f64
            * self.simd_width as f64
            * self.fma_per_cycle as f64
            * self.frequency_ghz
            * 1e9
    }

    /// Attainable peak (theoretical peak × microarchitectural efficiency ceiling).
    pub fn attainable_macs_per_s(&self) -> f64 {
        self.peak_macs_per_s() * self.peak_efficiency
    }

    /// Sustained memory bandwidth in bytes per second.
    pub fn dram_bytes_per_s(&self) -> f64 {
        self.dram_gib_s * 1024.0 * 1024.0 * 1024.0
    }

    /// L1 data cache size in bytes.
    pub fn l1_bytes(&self) -> usize {
        self.l1_kib * 1024
    }

    /// L2 cache size in bytes.
    pub fn l2_bytes(&self) -> usize {
        self.l2_kib * 1024
    }
}

impl Default for CpuProfile {
    fn default() -> Self {
        CpuProfile::intel_4790k()
    }
}

impl std::fmt::Display for CpuProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} cores, AVX{}x{}, {:.1} GHz)",
            self.name,
            self.cores,
            self.simd_width * 32,
            self.fma_per_cycle,
            self.frequency_ghz
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_throughput_magnitudes() {
        let intel = CpuProfile::intel_4790k();
        // 4 × 8 × 2 × 4.0 GHz = 256 GMAC/s.
        assert!((intel.peak_macs_per_s() / 1e9 - 256.0).abs() < 1.0);
        let amd = CpuProfile::amd_2990wx();
        // 32 × 8 × 1 × 3.0 GHz = 768 GMAC/s.
        assert!((amd.peak_macs_per_s() / 1e9 - 768.0).abs() < 1.0);
        // The 32-core part has higher attainable peak than the 4-core part.
        assert!(amd.attainable_macs_per_s() > intel.attainable_macs_per_s());
    }

    #[test]
    fn cache_and_bandwidth_accessors() {
        let p = CpuProfile::intel_4790k();
        assert_eq!(p.l1_bytes(), 32 * 1024);
        assert_eq!(p.l2_bytes(), 256 * 1024);
        assert!(p.dram_bytes_per_s() > 2e10);
    }

    #[test]
    fn display_and_default() {
        let p = CpuProfile::default();
        assert_eq!(p.name, "4790K");
        assert!(p.to_string().contains("4 cores"));
        assert_eq!(CpuProfile::paper_platforms().len(), 2);
    }
}
