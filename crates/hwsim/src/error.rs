//! Error types for the hardware simulation crate.

use std::error::Error;
use std::fmt;

/// Error raised while building kernel plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HwError {
    /// The underlying model/architecture walk failed.
    Model(String),
    /// A configuration value is out of range.
    InvalidConfig {
        /// Explanation of the defect.
        reason: String,
    },
    /// Reading or writing persisted calibration data failed.
    Persistence {
        /// Explanation of the failure (path and cause).
        reason: String,
    },
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::Model(msg) => write!(f, "model error: {msg}"),
            HwError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            HwError::Persistence { reason } => write!(f, "calibration persistence: {reason}"),
        }
    }
}

impl Error for HwError {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, HwError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(HwError::Model("bad".into()).to_string().contains("bad"));
        assert!(HwError::InvalidConfig { reason: "trials".into() }.to_string().contains("trials"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HwError>();
    }
}
