//! Measurement-calibrated cost model: wall-clock sweeps folded back into the
//! analytic [`CostModel`], plus the dispatch table the engine consults.
//!
//! The analytic model predicts how schedules behave from first principles; the
//! [`MeasuredTuner`] runs the real kernels. This module closes the loop between
//! them, as promised in the engine roadmap:
//!
//! * **Exact shapes** — every measured `(layer shape, algorithm)` pair keeps its
//!   best observed wall-clock time, so predictions for swept shapes are real
//!   measurements, not estimates.
//! * **Unmeasured shapes** — per-algorithm correction factors (the geometric
//!   mean of measured/analytic across swept shapes) scale the analytic
//!   roofline estimate, so algorithms the analytic model does not distinguish
//!   (e.g. the Winograd arm vs. packed im2col, which have different *effective*
//!   MAC counts) still rank sensibly.
//! * **Dispatch feedback** — [`CalibratedCostModel::dispatch_table`] exports the
//!   measured-fastest algorithm per shape as a
//!   [`rescnn_tensor::AlgoCalibration`]; installing it
//!   ([`rescnn_tensor::install_algo_calibration`]) makes `conv2d_dispatch`'s
//!   *default* choice measurement-driven while explicit overrides keep winning.
//! * **Persistence** — [`save`](CalibratedCostModel::save) /
//!   [`load`](CalibratedCostModel::load) round-trip the measurements through a
//!   line-oriented text file, so a serving process can start warm from a sweep
//!   performed offline (the workspace's vendored serde stub serializes but does
//!   not deserialize, hence the hand-rolled format).

use std::collections::HashMap;
use std::path::Path;

use rescnn_models::ConvLayerShape;
use rescnn_tensor::{AlgoCalibration, Conv2dParams, ConvAlgo, ConvShapeKey, Shape};

use crate::cost::CostModel;
use crate::error::{HwError, Result};
use crate::measured::MeasuredTuner;
use crate::profile::CpuProfile;
use crate::schedule::ConvSchedule;

/// File-format header; bump when the line layout changes.
const FORMAT_HEADER: &str = "rescnn-conv-calibration v1";

/// One persisted measurement [`CalibratedCostModel::load`] skipped because its
/// algorithm name is unknown to this build — typically a file written by a
/// newer engine with an extra kernel arm. Skipping (instead of failing the
/// whole load) keeps calibration files forward-compatible: every measurement
/// this build *can* interpret still loads, and the skips are surfaced so the
/// serving layer can warn rather than silently run uncalibrated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedCalibration {
    /// The unrecognized algorithm name exactly as it appeared in the file.
    pub algo: String,
    /// 1-based line number of the skipped entry.
    pub line: usize,
}

/// An analytic cost model refined with measured kernel timings.
#[derive(Debug, Clone)]
pub struct CalibratedCostModel {
    analytic: CostModel,
    profile: CpuProfile,
    /// Best measured seconds per `(shape, algorithm)`.
    measurements: HashMap<ConvShapeKey, Vec<(ConvAlgo, f64)>>,
    /// Entries [`load`](Self::load) skipped for unknown algorithm names.
    skipped: Vec<SkippedCalibration>,
}

impl CalibratedCostModel {
    /// Creates an uncalibrated model over `profile` (predictions fall back to
    /// the analytic estimate until measurements arrive).
    pub fn new(profile: CpuProfile) -> Self {
        CalibratedCostModel {
            analytic: CostModel::new(),
            profile,
            measurements: HashMap::new(),
            skipped: Vec::new(),
        }
    }

    /// Persisted entries the last [`load`](Self::load) skipped because their
    /// algorithm names are unknown to this build. Empty for models built by
    /// sweeping (nothing to skip) and for files this build fully understands.
    pub fn skipped_entries(&self) -> &[SkippedCalibration] {
        &self.skipped
    }

    /// Number of `(shape, algorithm)` measurements recorded.
    pub fn len(&self) -> usize {
        self.measurements.values().map(Vec::len).sum()
    }

    /// Whether no measurements have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.measurements.is_empty()
    }

    /// Records one wall-clock measurement, keeping the best (smallest) time per
    /// `(shape, algorithm)` — sweeps at several thread counts all funnel through
    /// here and the fastest configuration wins.
    pub fn record(&mut self, layer: &ConvLayerShape, algo: ConvAlgo, seconds: f64) {
        if !seconds.is_finite() || seconds <= 0.0 {
            return;
        }
        let key = ConvShapeKey::new(layer.params, layer.input);
        let entries = self.measurements.entry(key).or_default();
        match entries.iter_mut().find(|(a, _)| *a == algo) {
            Some((_, best)) => *best = best.min(seconds),
            None => entries.push((algo, seconds)),
        }
    }

    /// Sweeps `layers` with `tuner` over every supported algorithm and records
    /// the results: the one-call path from "have a network" to "calibrated".
    pub fn calibrate_layers(&mut self, tuner: &MeasuredTuner, layers: &[ConvLayerShape]) {
        for layer in layers {
            for kernel in tuner.sweep_layer(layer, &ConvAlgo::ALL) {
                self.record(layer, kernel.algo, kernel.seconds);
            }
        }
    }

    /// The best measured seconds for `(layer, algo)`, if this exact shape was
    /// swept with this algorithm.
    pub fn measured_seconds(&self, layer: &ConvLayerShape, algo: ConvAlgo) -> Option<f64> {
        let key = ConvShapeKey::new(layer.params, layer.input);
        self.measurements.get(&key)?.iter().find(|(a, _)| *a == algo).map(|&(_, seconds)| seconds)
    }

    /// The analytic baseline for a layer: the naive-schedule roofline estimate
    /// (algorithm-agnostic — the per-algorithm spread is what calibration adds).
    fn analytic_seconds(&self, layer: &ConvLayerShape) -> f64 {
        let schedule = ConvSchedule::naive(&self.profile);
        self.analytic.estimate(layer, schedule, &self.profile).seconds
    }

    /// The per-algorithm correction factor: geometric mean of
    /// `measured / analytic` over every swept shape that measured `algo`.
    /// `None` when the algorithm was never measured.
    fn algo_factor(&self, algo: ConvAlgo) -> Option<f64> {
        let mut log_sum = 0.0f64;
        let mut count = 0usize;
        for (key, entries) in &self.measurements {
            let Some(&(_, seconds)) = entries.iter().find(|(a, _)| *a == algo) else {
                continue;
            };
            let layer = ConvLayerShape {
                params: key.params,
                input: Shape::chw(key.params.in_channels, key.height, key.width),
            };
            let analytic = self.analytic_seconds(&layer).max(1e-12);
            log_sum += (seconds / analytic).ln();
            count += 1;
        }
        (count > 0).then(|| (log_sum / count as f64).exp())
    }

    /// Predicted seconds for running `layer` with `algo`: the exact measurement
    /// when one exists, otherwise the analytic estimate scaled by the
    /// algorithm's learned correction factor (or unscaled when the algorithm
    /// was never measured anywhere).
    pub fn predict_seconds(&self, layer: &ConvLayerShape, algo: ConvAlgo) -> f64 {
        if let Some(measured) = self.measured_seconds(layer, algo) {
            return measured;
        }
        let factor = self.algo_factor(algo).unwrap_or(1.0);
        self.analytic_seconds(layer) * factor
    }

    /// The predicted-fastest algorithm for a layer among those that support its
    /// shape. For swept shapes this is exactly the measured-fastest algorithm
    /// (measured times are never compared against analytic estimates, whose
    /// absolute scale they need not share); for unmeasured shapes it ranks by
    /// calibrated prediction, ties breaking toward the engine's heuristic
    /// choice.
    pub fn best_algo(&self, layer: &ConvLayerShape) -> ConvAlgo {
        let key = ConvShapeKey::new(layer.params, layer.input);
        if let Some(entries) = self.measurements.get(&key) {
            if let Some(&(algo, _)) = entries.iter().min_by(|(_, a), (_, b)| a.total_cmp(b)) {
                return algo;
            }
        }
        let heuristic = rescnn_tensor::select_algo(&layer.params, layer.input);
        let mut best = heuristic;
        let mut best_seconds = self.predict_seconds(layer, heuristic);
        for algo in ConvAlgo::ALL {
            if algo == heuristic || !algo.supports(&layer.params) {
                continue;
            }
            let seconds = self.predict_seconds(layer, algo);
            if seconds < best_seconds {
                best = algo;
                best_seconds = seconds;
            }
        }
        best
    }

    /// Predicted seconds for a full forward pass over `layers`, each layer at
    /// its [`best_algo`](Self::best_algo). Deterministic for a fixed model
    /// state (measurements are exact lookups, analytic estimates are pure
    /// arithmetic), which is what lets an SLO scheduler base admission and
    /// degradation decisions on it reproducibly.
    pub fn predict_forward_seconds(&self, layers: &[ConvLayerShape]) -> f64 {
        layers.iter().map(|layer| self.predict_seconds(layer, self.best_algo(layer))).sum()
    }

    /// Exports the measured-fastest algorithm per swept shape as the dispatch
    /// table [`rescnn_tensor::conv2d_dispatch`] consults once installed with
    /// [`rescnn_tensor::install_algo_calibration`]. Only shapes with at least
    /// one measurement appear — unmeasured shapes keep the engine's heuristics.
    pub fn dispatch_table(&self) -> AlgoCalibration {
        let mut table = AlgoCalibration::new();
        for (key, entries) in &self.measurements {
            if let Some(&(algo, _)) = entries
                .iter()
                .min_by(|(_, a), (_, b)| a.total_cmp(b))
                .filter(|(_, seconds)| seconds.is_finite())
            {
                table.set(*key, algo);
            }
        }
        table
    }

    /// Serializes the measurements to a line-oriented text file.
    ///
    /// # Errors
    /// Returns an error if the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let mut lines = Vec::with_capacity(self.len() + 1);
        for (key, entries) in &self.measurements {
            let p = key.params;
            for &(algo, seconds) in entries {
                lines.push(format!(
                    "measure {} {} {} {} {} {} {} {} {algo} {seconds:e}",
                    p.in_channels,
                    p.out_channels,
                    p.kernel,
                    p.stride,
                    p.padding,
                    p.groups,
                    key.height,
                    key.width,
                ));
            }
        }
        // Stable output: independent of hash-map iteration order.
        lines.sort();
        let body = format!("{FORMAT_HEADER}\n{}\n", lines.join("\n"));
        std::fs::write(path.as_ref(), body).map_err(|e| HwError::Persistence {
            reason: format!("writing {}: {e}", path.as_ref().display()),
        })
    }

    /// Loads measurements saved by [`save`](Self::save) into a fresh model over
    /// `profile`.
    ///
    /// # Errors
    /// Returns an error if the file cannot be read or a line does not parse.
    pub fn load(path: impl AsRef<Path>, profile: CpuProfile) -> Result<Self> {
        let text = std::fs::read_to_string(path.as_ref()).map_err(|e| HwError::Persistence {
            reason: format!("reading {}: {e}", path.as_ref().display()),
        })?;
        let mut model = CalibratedCostModel::new(profile);
        let mut saw_header = false;
        for (number, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if !saw_header {
                if line != FORMAT_HEADER {
                    return Err(HwError::Persistence {
                        reason: format!("unrecognized calibration header: {line:?}"),
                    });
                }
                saw_header = true;
                continue;
            }
            let bad = |why: &str| HwError::Persistence {
                reason: format!("line {}: {why}: {line:?}", number + 1),
            };
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 11 || fields[0] != "measure" {
                return Err(bad("expected `measure` with 10 fields"));
            }
            let nums: Vec<usize> = fields[1..9].iter().filter_map(|f| f.parse().ok()).collect();
            if nums.len() != 8 {
                return Err(bad("non-numeric shape field"));
            }
            // An unknown algorithm name is the one forgivable defect: it means
            // the file came from a build with a kernel arm this one lacks, not
            // that the file is corrupt. Skip the entry (recording it for the
            // caller to surface) instead of rejecting the whole file.
            let Some(algo) = ConvAlgo::from_name(fields[9]) else {
                model
                    .skipped
                    .push(SkippedCalibration { algo: fields[9].to_string(), line: number + 1 });
                continue;
            };
            let seconds: f64 = fields[10].parse().map_err(|_| bad("bad seconds"))?;
            let params =
                Conv2dParams::new(nums[0], nums[1], nums[2], nums[3], nums[4]).with_groups(nums[5]);
            let layer = ConvLayerShape { params, input: Shape::chw(nums[0], nums[6], nums[7]) };
            model.record(&layer, algo, seconds);
        }
        if !saw_header {
            return Err(HwError::Persistence { reason: "empty calibration file".into() });
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescnn_models::ModelKind;

    fn layer(ic: usize, oc: usize, k: usize, stride: usize, res: usize) -> ConvLayerShape {
        ConvLayerShape {
            params: Conv2dParams::new(ic, oc, k, stride, k / 2),
            input: Shape::chw(ic, res, res),
        }
    }

    #[test]
    fn record_keeps_the_best_time_per_algo() {
        let mut model = CalibratedCostModel::new(CpuProfile::intel_4790k());
        assert!(model.is_empty());
        let l = layer(8, 8, 3, 1, 16);
        model.record(&l, ConvAlgo::Winograd, 2.0e-3);
        model.record(&l, ConvAlgo::Winograd, 1.0e-3);
        model.record(&l, ConvAlgo::Winograd, 5.0e-3);
        model.record(&l, ConvAlgo::Im2colPacked, 4.0e-3);
        model.record(&l, ConvAlgo::Direct, f64::NAN); // ignored
        assert_eq!(model.len(), 2);
        assert_eq!(model.measured_seconds(&l, ConvAlgo::Winograd), Some(1.0e-3));
        assert_eq!(model.measured_seconds(&l, ConvAlgo::Direct), None);
        assert_eq!(model.predict_seconds(&l, ConvAlgo::Winograd), 1.0e-3);
    }

    #[test]
    fn dispatch_table_and_best_algo_follow_measurements() {
        let mut model = CalibratedCostModel::new(CpuProfile::intel_4790k());
        let wino_wins = layer(16, 16, 3, 1, 32);
        model.record(&wino_wins, ConvAlgo::Winograd, 1.0e-3);
        model.record(&wino_wins, ConvAlgo::Im2colPacked, 3.0e-3);
        let packed_wins = layer(16, 16, 3, 1, 8);
        model.record(&packed_wins, ConvAlgo::Winograd, 9.0e-3);
        model.record(&packed_wins, ConvAlgo::Im2colPacked, 2.0e-3);

        assert_eq!(model.best_algo(&wino_wins), ConvAlgo::Winograd);
        assert_eq!(model.best_algo(&packed_wins), ConvAlgo::Im2colPacked);
        let table = model.dispatch_table();
        assert_eq!(table.len(), 2);
        let key = ConvShapeKey::new(wino_wins.params, wino_wins.input);
        assert_eq!(table.get(&key), Some(ConvAlgo::Winograd));
    }

    #[test]
    fn factors_generalize_to_unmeasured_shapes() {
        let mut model = CalibratedCostModel::new(CpuProfile::intel_4790k());
        // Winograd measures 2x faster than the analytic baseline on two swept
        // shapes; packed measures exactly the baseline.
        for res in [32usize, 48] {
            let l = layer(8, 8, 3, 1, res);
            let base = model.analytic_seconds(&l);
            model.record(&l, ConvAlgo::Winograd, base * 0.5);
            model.record(&l, ConvAlgo::Im2colPacked, base);
        }
        // An unmeasured (but same-family) shape now ranks Winograd first.
        let unseen = layer(8, 8, 3, 1, 64);
        assert!(model.measured_seconds(&unseen, ConvAlgo::Winograd).is_none());
        assert!(
            model.predict_seconds(&unseen, ConvAlgo::Winograd)
                < model.predict_seconds(&unseen, ConvAlgo::Im2colPacked)
        );
        assert_eq!(model.best_algo(&unseen), ConvAlgo::Winograd);
        // A shape Winograd cannot execute never selects it.
        let strided = layer(8, 8, 3, 2, 64);
        assert_ne!(model.best_algo(&strided), ConvAlgo::Winograd);
    }

    #[test]
    fn forward_prediction_sums_best_algo_times_and_orders_resolutions() {
        let mut model = CalibratedCostModel::new(CpuProfile::intel_4790k());
        let a = layer(8, 8, 3, 1, 16);
        let b = layer(8, 16, 3, 1, 16);
        model.record(&a, ConvAlgo::Winograd, 1.0e-3);
        model.record(&a, ConvAlgo::Im2colPacked, 3.0e-3);
        model.record(&b, ConvAlgo::Im2colPacked, 2.0e-3);
        let both = [a, b];
        assert_eq!(model.predict_forward_seconds(&both), 3.0e-3);
        // Uncalibrated models fall back to the analytic roofline, which must
        // still rank a deeper resolution as strictly more expensive.
        let fresh = CalibratedCostModel::new(CpuProfile::intel_4790k());
        let arch = ModelKind::ResNet18.arch(10);
        let small = fresh.predict_forward_seconds(&arch.conv_layers(64).unwrap());
        let large = fresh.predict_forward_seconds(&arch.conv_layers(128).unwrap());
        assert!(small > 0.0);
        assert!(large > small, "higher resolution must predict as more expensive");
    }

    #[test]
    fn save_load_round_trips() {
        let mut model = CalibratedCostModel::new(CpuProfile::intel_4790k());
        let layers = ModelKind::ResNet18.arch(10).conv_layers(32).unwrap();
        model.record(&layers[1], ConvAlgo::Winograd, 1.5e-3);
        model.record(&layers[1], ConvAlgo::Im2colPacked, 2.5e-3);
        model.record(&layers[0], ConvAlgo::Im2colPacked, 4.0e-4);

        let path = std::env::temp_dir()
            .join(format!("rescnn-calibration-roundtrip-{}.txt", std::process::id()));
        model.save(&path).unwrap();
        let reloaded = CalibratedCostModel::load(&path, CpuProfile::intel_4790k()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(reloaded.len(), model.len());
        assert_eq!(reloaded.measured_seconds(&layers[1], ConvAlgo::Winograd), Some(1.5e-3));
        assert_eq!(reloaded.dispatch_table(), model.dispatch_table());
    }

    #[test]
    fn load_skips_unknown_algorithms_and_records_them() {
        let path = std::env::temp_dir()
            .join(format!("rescnn-calibration-future-{}.txt", std::process::id()));
        // A file written by a hypothetical future build: one arm this build
        // knows, two entries for arms it does not.
        std::fs::write(
            &path,
            format!(
                "{FORMAT_HEADER}\n\
                 measure 8 8 3 1 1 1 16 16 im2col_packed 2e-3\n\
                 measure 8 8 3 1 1 1 16 16 int4_packed 1e-3\n\
                 measure 8 8 3 1 1 1 32 32 int4_packed 4e-3\n"
            ),
        )
        .unwrap();
        let model = CalibratedCostModel::load(&path, CpuProfile::intel_4790k()).unwrap();
        std::fs::remove_file(&path).ok();
        // The known measurement loaded; the unknown ones were skipped, not fatal.
        assert_eq!(model.len(), 1);
        let l = layer(8, 8, 3, 1, 16);
        assert_eq!(model.measured_seconds(&l, ConvAlgo::Im2colPacked), Some(2.0e-3));
        assert_eq!(
            model.skipped_entries(),
            &[
                SkippedCalibration { algo: "int4_packed".into(), line: 3 },
                SkippedCalibration { algo: "int4_packed".into(), line: 4 },
            ]
        );
        // Malformed lines (wrong arity, bad numbers) are still hard errors:
        // only unknown names get forgiveness.
        assert!(model.dispatch_table().len() == 1);
    }

    #[test]
    fn load_rejects_malformed_files() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rescnn-calibration-bad-{}.txt", std::process::id()));
        std::fs::write(&path, "not a calibration file\n").unwrap();
        assert!(CalibratedCostModel::load(&path, CpuProfile::intel_4790k()).is_err());
        std::fs::write(&path, format!("{FORMAT_HEADER}\nmeasure 1 2 3\n")).unwrap();
        assert!(CalibratedCostModel::load(&path, CpuProfile::intel_4790k()).is_err());
        std::fs::write(&path, format!("{FORMAT_HEADER}\n")).unwrap();
        let empty = CalibratedCostModel::load(&path, CpuProfile::intel_4790k()).unwrap();
        assert!(empty.is_empty());
        std::fs::remove_file(&path).ok();
        assert!(CalibratedCostModel::load(&path, CpuProfile::intel_4790k()).is_err());
    }
}
