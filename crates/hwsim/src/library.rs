//! The "library implementation" baseline (MKLDNN-like).
//!
//! The paper compares its autotuned kernels against Intel MKLDNN as exposed through
//! PyTorch: a hand-optimized library whose schedules are excellent for the shapes it was
//! engineered around (224-class ImageNet models) but generic elsewhere. We model that as:
//!
//! 1. per layer, the library uses the schedule that is optimal *for the corresponding
//!    layer at the anchor resolution* (224 by default), not for the actual shape;
//! 2. a constant *generality tax* on achieved utilization, reflecting that a pre-compiled
//!    generic kernel cannot exploit shape-specific unrolling/layout tricks a
//!    shape-specialized generated kernel can; and
//! 3. an extra penalty when the actual spatial extent is *smaller* than the anchor (tiles
//!    overshoot, vector tails dominate) — shrinking shapes hurt a fixed implementation far
//!    more than growing ones, which simply iterate more.

use serde::{Deserialize, Serialize};

use rescnn_models::{ArchSpec, ConvLayerShape};

use crate::autotune::{AutoTuner, KernelPlan, TunedKernel, TunerConfig};
use crate::cost::{CostModel, KernelEstimate};
use crate::error::{HwError, Result};
use crate::profile::CpuProfile;

/// Configuration of the library baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LibraryConfig {
    /// The resolution whose layer shapes the library's schedules are optimized for.
    pub anchor_resolution: usize,
    /// Fraction of a shape-specialized kernel's utilization a generic library kernel
    /// achieves on its home shapes.
    pub generality_tax: f64,
    /// Exponent of the shrink penalty applied when the actual spatial extent is smaller
    /// than the anchor extent.
    pub shrink_exponent: f64,
}

impl Default for LibraryConfig {
    fn default() -> Self {
        LibraryConfig { anchor_resolution: 224, generality_tax: 0.62, shrink_exponent: 0.7 }
    }
}

/// The MKLDNN-like library kernel provider.
#[derive(Debug, Clone)]
pub struct LibraryKernels {
    config: LibraryConfig,
    cost: CostModel,
    tuner: AutoTuner,
}

impl Default for LibraryKernels {
    fn default() -> Self {
        Self::mkldnn_like()
    }
}

impl LibraryKernels {
    /// Creates a library baseline with the default (MKLDNN-like) configuration.
    pub fn mkldnn_like() -> Self {
        Self::with_config(LibraryConfig::default())
    }

    /// Creates a library baseline with an explicit configuration.
    pub fn with_config(config: LibraryConfig) -> Self {
        LibraryKernels {
            config,
            cost: CostModel::new(),
            tuner: AutoTuner::new(TunerConfig { trials: 128, refine_rounds: 4, seed: 7 }),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> LibraryConfig {
        self.config
    }

    /// Adjusts a shape-specialized estimate into the library's (worse) estimate for the
    /// actual layer.
    fn adjust(
        &self,
        actual: &ConvLayerShape,
        anchor: &ConvLayerShape,
        base: KernelEstimate,
        profile: &CpuProfile,
    ) -> KernelEstimate {
        let actual_out = actual.params.output_shape(actual.input).unwrap_or(actual.input);
        let anchor_out = anchor.params.output_shape(anchor.input).unwrap_or(anchor.input);
        let shrink = if actual_out.w < anchor_out.w {
            (actual_out.w as f64 / anchor_out.w as f64).powf(self.config.shrink_exponent)
        } else {
            1.0
        };
        let slowdown =
            1.0 / (self.config.generality_tax * profile.library_affinity * shrink).max(1e-3);
        let busy = base.seconds - base.overhead_seconds;
        let seconds = busy * slowdown + base.overhead_seconds;
        let utilization =
            (base.macs as f64 / seconds / profile.attainable_macs_per_s()).clamp(0.0, 1.0);
        KernelEstimate {
            seconds,
            compute_seconds: base.compute_seconds * slowdown,
            memory_seconds: base.memory_seconds,
            overhead_seconds: base.overhead_seconds,
            utilization,
            ..base
        }
    }

    /// Builds the library's kernel plan for an architecture at a resolution.
    ///
    /// # Errors
    /// Returns an error if the architecture cannot be instantiated at the requested or the
    /// anchor resolution.
    pub fn plan(
        &self,
        arch: &ArchSpec,
        resolution: usize,
        profile: &CpuProfile,
    ) -> Result<KernelPlan> {
        let actual_layers =
            arch.conv_layers(resolution).map_err(|e| HwError::Model(e.to_string()))?;
        let anchor_layers = arch
            .conv_layers(self.config.anchor_resolution)
            .map_err(|e| HwError::Model(e.to_string()))?;
        if actual_layers.len() != anchor_layers.len() {
            return Err(HwError::Model(format!(
                "layer count mismatch between resolution {} and anchor {}",
                resolution, self.config.anchor_resolution
            )));
        }
        let mut kernels = Vec::with_capacity(actual_layers.len());
        for (actual, anchor) in actual_layers.iter().zip(&anchor_layers) {
            // The library's schedule: optimal for the anchor shape.
            let anchor_kernel = self.tuner.tune_layer(anchor, profile);
            let schedule = anchor_kernel.schedule.clamped_to(actual);
            let base = self.cost.estimate(actual, schedule, profile);
            let estimate = self.adjust(actual, anchor, base, profile);
            kernels.push(TunedKernel { layer: *actual, schedule, estimate });
        }
        Ok(KernelPlan {
            model: arch.kind,
            resolution,
            cpu: profile.name.clone(),
            tuned: false,
            kernels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescnn_models::ModelKind;

    #[test]
    fn library_is_slower_than_tuned_everywhere() {
        let profile = CpuProfile::intel_4790k();
        let arch = ModelKind::ResNet50.arch(1000);
        let tuner = AutoTuner::new(TunerConfig::default());
        let library = LibraryKernels::mkldnn_like();
        for res in [112usize, 224, 448] {
            let tuned = tuner.tune_network(&arch, res, &profile).unwrap();
            let lib = library.plan(&arch, res, &profile).unwrap();
            assert!(
                lib.latency_ms() > tuned.latency_ms(),
                "library must be slower at {res}: {} vs {}",
                lib.latency_ms(),
                tuned.latency_ms()
            );
            assert!(!lib.tuned);
            assert_eq!(lib.kernels.len(), tuned.kernels.len());
        }
    }

    #[test]
    fn library_gap_is_largest_at_low_resolution() {
        // Figure 7 / §VII-a: the tuned/library speedup is biggest for small inputs.
        let profile = CpuProfile::intel_4790k();
        let arch = ModelKind::ResNet50.arch(1000);
        let tuner = AutoTuner::new(TunerConfig::default());
        let library = LibraryKernels::mkldnn_like();
        let ratio = |res: usize| {
            let tuned = tuner.tune_network(&arch, res, &profile).unwrap().latency_ms();
            let lib = library.plan(&arch, res, &profile).unwrap().latency_ms();
            lib / tuned
        };
        let low = ratio(112);
        let high = ratio(448);
        assert!(low > high, "speedup at 112 ({low:.2}) should exceed speedup at 448 ({high:.2})");
        assert!(low > 1.4, "speedup at 112 too small: {low:.2}");
        assert!(high > 1.05, "library should still lose at 448: {high:.2}");
    }

    #[test]
    fn library_throughput_broadly_rises_with_resolution() {
        // The trend of Figure 7: throughput grows from 112 to 448 for the library as well,
        // though non-power-of-two feature-map sizes (280, 336) cause local dips.
        let profile = CpuProfile::amd_2990wx();
        let arch = ModelKind::ResNet18.arch(1000);
        let library = LibraryKernels::mkldnn_like();
        let tput = |res: usize| library.plan(&arch, res, &profile).unwrap().throughput_gmacs();
        let at_112 = tput(112);
        let at_224 = tput(224);
        let at_336 = tput(336);
        let at_448 = tput(448);
        assert!(at_224 > at_112 * 1.5, "224 ({at_224:.0}) should beat 112 ({at_112:.0})");
        assert!(at_448 > at_112 * 2.0, "448 ({at_448:.0}) should beat 112 ({at_112:.0})");
        assert!(at_336 > at_112, "336 ({at_336:.0}) should beat 112 ({at_112:.0})");
        assert!(at_336 > at_224 * 0.6, "336 dip too deep: {at_336:.0} vs {at_224:.0}");
    }

    #[test]
    fn custom_config_round_trips() {
        let config =
            LibraryConfig { anchor_resolution: 168, generality_tax: 0.8, shrink_exponent: 0.5 };
        let lib = LibraryKernels::with_config(config);
        assert_eq!(lib.config().anchor_resolution, 168);
        let profile = CpuProfile::intel_4790k();
        let arch = ModelKind::ResNet18.arch(10);
        let plan = lib.plan(&arch, 112, &profile).unwrap();
        assert!(plan.latency_ms() > 0.0);
    }
}
